"""IFCL walkthrough: verifying non-interference of IFC stack machines.

Reproduces §5.1's IFCL case study: the bounded EENI verifier searches for
two indistinguishable instruction sequences (secrets may differ in
high-labeled immediates) that both halt yet leave distinguishable
memories. The correct machine is proven secure up to the bound; each buggy
variant yields a synthesized *attack program*.

Run: ``python examples/ifcl_attacks.py``
"""

from repro import set_default_int_width
from repro.sdsl.ifcl import (
    BUGGY_MACHINES,
    CORRECT_MACHINES,
    check_attack,
    eeni_check,
)


def main() -> None:
    set_default_int_width(5)  # the paper's 5-bit number representation

    print("== the correct basic machine is secure (bounded EENI) ==")
    for bound in (2, 3):
        result = eeni_check(CORRECT_MACHINES["basic"], bound)
        print(f"  bound {bound}: {result.status} "
              f"(joins={result.stats.joins}, "
              f"union-sum={result.stats.union_cardinality_sum})")

    print("\n== buggy machines: synthesized attacks, replayed concretely ==")
    demos = [
        ("B2", 3, "Push drops the secrecy label of immediates"),
        ("B4", 3, "Store misses the no-sensitive-upgrade check"),
        ("B1", 5, "Add forgets to join operand labels"),
    ]
    for name, bound, description in demos:
        result = eeni_check(BUGGY_MACHINES[name], bound)
        print(f"\n  {name}: {description}")
        print(f"    verdict at bound {bound}: {result.status}")
        if result.counterexample:
            print("    attack (mnemonic valueA|valueB@label):")
            for line in result.counterexample:
                print("      ", line)
        # Close the loop: replay the synthesized attack with the plain
        # concrete semantics and show the observable difference.
        replay = check_attack(BUGGY_MACHINES[name], bound)
        if replay is not None:
            print("    concrete replay:")
            for line in replay.render().splitlines():
                print("      ", line)


if __name__ == "__main__":
    main()
