"""Quickstart: the paper's running example (Figures 5 and 6).

``rev_pos`` reverses a list keeping only its positive elements. We run it
on symbolic inputs under the SVM and use the solver-aided queries:

- ``solve``  — find an input on which the output has the same length
  (angelic execution: only the all-positive input works);
- ``verify`` — prove the output is never longer than the input;
- ``debug``-style introspection — inspect the symbolic union that the
  type-driven merge builds for ``ps`` (the Figure 6 state).

Run: ``python examples/quickstart.py``
"""

from repro import (
    Union,
    assert_,
    branch,
    builtins as B,
    fresh_int,
    set_default_int_width,
    solve,
    union_contents,
    verify,
)
from repro.sym import ops


def rev_pos(xs):
    """Figure 5a, written against the SVM's lifted `branch` and `cons`."""
    ps = ()
    for x in xs:
        ps = branch(x > 0,
                    lambda x=x, ps=ps: B.cons(x, ps),
                    lambda ps=ps: ps)
    return ps


def main() -> None:
    set_default_int_width(8)

    # --- The symbolic union of Figure 6 --------------------------------
    print("== the merged state of ps (Figure 6) ==")
    from repro.vm.context import VM
    with VM():
        xs = (fresh_int("x"), fresh_int("x"))
        ps = rev_pos(xs)
        assert isinstance(ps, Union)
        for guard, value in union_contents(ps):
            print(f"  [{guard!r:60}] {value!r}")

    # --- Angelic execution ---------------------------------------------
    print("\n== solve: find xs with |revPos(xs)| = |xs| ==")
    holder = {}

    def program():
        xs = (fresh_int("x"), fresh_int("x"))
        holder["xs"] = xs
        ps = rev_pos(xs)
        assert_(B.equal(B.length(ps), len(xs)))

    outcome = solve(program)
    print("  status:", outcome.status)
    values = [outcome.model.evaluate(x) for x in holder["xs"]]
    print("  witness:", values, "(all positive, as expected)")
    print("  stats:", outcome.stats.row())

    # --- Verification ---------------------------------------------------
    print("\n== verify: |revPos(xs)| <= |xs| for all xs ==")

    def prop():
        xs = tuple(fresh_int("x") for _ in range(3))
        assert_(ops.le(B.length(rev_pos(xs)), len(xs)))

    outcome = verify(prop)
    print("  status:", outcome.status,
          "(unsat = no counterexample found)")

    # --- A failing property gives a counterexample ----------------------
    print("\n== verify a wrong property: |revPos(xs)| = |xs| always ==")

    def bad_prop():
        xs = (fresh_int("x"), fresh_int("x"))
        holder["xs"] = xs
        assert_(B.equal(B.length(rev_pos(xs)), len(xs)))

    outcome = verify(bad_prop)
    print("  status:", outcome.status)
    values = [outcome.model.evaluate(x) for x in holder["xs"]]
    print("  counterexample:", values, "(some non-positive element)")


if __name__ == "__main__":
    main()
