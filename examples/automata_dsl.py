"""The §2 story end to end: a solver-aided automata SDSL in HL.

This example reproduces, in order, every interaction of the paper's
Section 2 using the HL host language (s-expressions + syntax-rules):

1. the ``automaton`` macro (Figure 2) and concrete execution of the
   c(ad)*r recognizer (Figure 1);
2. **angelic execution** — running the automaton "in reverse" to find an
   accepted word;
3. **debugging** — the buggy Figure 2 automaton accepts the empty word;
   the debug query localizes a minimal core;
4. **verification** — checking the fixed automaton against Racket-style
   regexp matching (lifted by symbolic reflection, §2.3);
5. **synthesis** — completing the Figure 3 sketch of a c(ad)+r automaton
   with ``choose`` holes.

Run: ``python examples/automata_dsl.py``
"""

from repro.lang import Interpreter
from repro.vm.context import VM

PRELUDE = """
(define-syntax automaton
  (syntax-rules (: ->)
    [(_ init-state [state : (label -> target) ...] ...)
     (letrec ([state
               (lambda (stream)
                 (cond
                   [(empty? stream) (empty? '(label ...))]
                   [else
                    (case (first stream)
                      [(label) (target (rest stream))] ...
                      [else false])]))] ...)
       init-state)]))

;; Symbolic words (the paper's word / word* generators).
(define (word k alphabet)
  (build-list k (lambda (i)
    (begin (define-symbolic* idx number?)
           (list-ref alphabet idx)))))
(define (word* k alphabet)
  (begin (define-symbolic* n number?)
         (take (word k alphabet) n)))

;; The spec: Racket's regexp matcher, lifted by symbolic reflection.
(define (word->string w)
  (apply string-append (map symbol->string w)))
(define (spec regex w)
  (regexp-match? regex (word->string w)))
"""

FIXED_AUTOMATON = """
(define m (automaton init
  [init : (c -> more)]
  [more : (a -> more) (d -> more) (r -> end)]
  [end : ]))
"""

BUGGY_AUTOMATON = """
;; Figure 2 as published: every state accepts the empty word (the bug).
(define-syntax automaton-buggy
  (syntax-rules (: ->)
    [(_ init-state [state : (label -> target) ...] ...)
     (letrec ([state
               (lambda (stream)
                 (cond
                   [(empty? stream) true]
                   [else
                    (case (first stream)
                      [(label) (target (rest stream))] ...
                      [else false])]))] ...)
       init-state)]))
(define mb (automaton-buggy init
  [init : (c -> more)]
  [more : (a -> more) (d -> more) (r -> end)]
  [end : ]))
"""

SKETCH = """
(define reject (lambda (stream) false))
(define M (automaton init
  [init : (c -> (choose s1 s2))]
  [s1 : (a -> (choose s1 s2 end reject))
        (d -> (choose s1 s2 end reject))
        (r -> (choose s1 s2 end reject))]
  [s2 : (a -> (choose s1 s2 end reject))
        (d -> (choose s1 s2 end reject))
        (r -> (choose s1 s2 end reject))]
  [end : ]))
"""


def main() -> None:
    interp = Interpreter(int_width=8)
    with VM():
        interp.run(PRELUDE + FIXED_AUTOMATON + BUGGY_AUTOMATON + SKETCH)

        print("== concrete execution ==")
        print("  (m '(c a d a d d r)) =", interp.run("(m '(c a d a d d r))")[0])
        print("  (m '(c a d a d d r r)) =",
              interp.run("(m '(c a d a d d r r))")[0])

        print("\n== angelic execution: a word accepted by m ==")
        word = interp.run("""
            (define w (word* 4 '(c a d r)))
            (define model (solve (assert (m w))))
            (evaluate w model)
        """)[-1]
        print("  found:", "".join(word) or "(empty)")

        print("\n== debugging the buggy automaton (accepts '()) ==")
        core = interp.run(
            "(debug [boolean?] (assert (not (mb '()))))")[0]
        print("  minimal core of", len(core), "expression(s):")
        for label in core:
            print("   ", label)

        print("\n== verification against the regexp spec ==")
        result = interp.run("""
            (define wv (word* 4 '(c a d r)))
            (verify (assert (equal? (spec "^c[ad]*r$" wv) (m wv))))
        """)[-1]
        print("  fixed m:", "no counterexample found" if result is False
              else f"counterexample: {result}")
        cex = interp.run("""
            (define wb (word* 4 '(c a d r)))
            (define bad (verify (assert (equal? (spec "^c[ad]*r$" wb) (mb wb)))))
            (evaluate wb bad)
        """)[-1]
        print("  buggy mb: counterexample word:", "".join(cex) or "(empty)")

        print("\n== synthesis: completing the c(ad)+r sketch ==")
        forms = interp.run("""
            (define ws (word* 4 '(c a d r)))
            (define sm (synthesize [ws]
              (assert (equal? (spec "^c[ad]+r$" ws) (M ws)))))
            (generate-forms sm)
        """)[-1]
        from repro.lang.reader import write_form
        print("  solved", len(forms), "choose holes:")
        for site, chosen in forms[:6]:
            print(f"    {write_form(site)} -> {write_form(chosen)}")


if __name__ == "__main__":
    main()
