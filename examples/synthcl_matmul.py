"""SYNTHCL walkthrough: verifying and synthesizing OpenCL-style kernels.

Follows §5.1's development methodology on Matrix Multiplication:

1. start from a sequential reference implementation;
2. refine to a data-parallel kernel (one work item per output element) and
   *verify* the refinement against the reference on all inputs within
   bounds;
3. refine again to a vectorized kernel and verify it too;
4. sketch the kernel with holes in its index arithmetic and let CEGIS
   *synthesize* the correct row-major access pattern;
5. demonstrate the runtime's implicit race detection.

Run: ``python examples/synthcl_matmul.py``
"""

from repro import AssertionFailure, fresh_int, set_default_int_width
from repro.queries import synthesize, verify
from repro.sym import ops
from repro.vm import assert_
from repro.vm.context import VM
from repro.sdsl.synthcl import CLRuntime, run_benchmark
from repro.sdsl.synthcl.programs import mm


def symbolic_matrix(name, rows, cols):
    return tuple(fresh_int(name) for _ in range(rows * cols))


def main() -> None:
    set_default_int_width(8)
    n, p, m = 2, 3, 2

    print(f"== verify MM refinements on all {n}x{p} x {p}x{m} inputs ==")
    for label, implementation in [("v1 (scalar parallel)", mm.mm_parallel_v1),
                                  ("v2 (vectorized)", mm.mm_parallel_v2)]:
        def thunk(implementation=implementation):
            a = symbolic_matrix("a", n, p)
            b = symbolic_matrix("b", p, m)
            want = mm.mm_reference(a, b, n, p, m)
            got = implementation(a, b, n, p, m)
            for w, g in zip(want, got):
                assert_(ops.num_eq(w, g))
        outcome = verify(thunk)
        print(f"  {label}: {outcome.status} "
              "(unsat = equivalent to the reference)")

    print("\n== synthesize the index arithmetic of the kernel ==")
    inputs = []

    def sketch_thunk():
        a = symbolic_matrix("a", n, p)
        b = symbolic_matrix("b", p, m)
        inputs.extend(a + b)
        want = mm.mm_reference(a, b, n, p, m)
        got = mm.mm_sketch(a, b, n, p, m)
        for w, g in zip(want, got):
            assert_(ops.num_eq(w, g))

    class Inputs:
        def __iter__(self):
            return iter(inputs)

    outcome = synthesize(Inputs(), sketch_thunk)
    print("  status:", outcome.status, "--", outcome.message)

    print("\n== the runtime catches data races ==")
    with VM():
        runtime = CLRuntime()
        out = runtime.buffer("out", [0])
        try:
            # Two work items write the same cell: a definite race.
            runtime.launch(lambda item: item.write(out, 0, 1), 2)
            print("  unexpectedly raced without detection!")
        except AssertionFailure as failure:
            print("  race detected:", failure)

    print("\n== the full Table 1 registry (scaled bounds) ==")
    for name in ("MM1v", "MM2v", "MM2s"):
        outcome = run_benchmark(name)
        print(f"  {name}: {outcome.status:6s} joins={outcome.stats.joins} "
              f"unions={outcome.stats.unions_created}")


if __name__ == "__main__":
    main()
