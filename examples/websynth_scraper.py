"""WEBSYNTH walkthrough: scraping by example (§5.1).

Generates a synthetic web page shaped like the paper's iTunes benchmark
(Table 2), gives the synthesizer four example records, and asks for an
XPath that scrapes *all* records. The synthesized path is then executed
concretely to show the scraped data.

Run: ``python examples/websynth_scraper.py``
"""

from repro import set_default_int_width
from repro.sdsl.websynth import (
    SITE_SPECS,
    concrete_matches,
    generate_site,
    synthesize_xpath,
    tree_depth,
    tree_size,
)
from repro.sdsl.websynth.xpath import token_vocabulary


def main() -> None:
    set_default_int_width(16)
    spec = SITE_SPECS[0]  # iTunes-shaped

    print(f"== generating a synthetic page shaped like {spec.name} ==")
    root, truth, examples = generate_site(spec, scale=0.15)
    print(f"  nodes={tree_size(root)} depth={tree_depth(root)} "
          f"tokens={len(token_vocabulary(root))}")
    print(f"  (paper's page: nodes={spec.paper_nodes} "
          f"depth={spec.paper_depth} tokens={spec.paper_tokens})")
    print("  example records given to the synthesizer:", examples)

    print("\n== synthesizing an XPath from the examples ==")
    result = synthesize_xpath(root, examples)
    print("  status:", result.status)
    print("  synthesized XPath: /" + "/".join(result.xpath))
    print("  ground-truth path: /" + "/".join(truth))
    print("  stats:", result.stats.row(),
          "(note: many joins, zero unions — the Table 4 signature)")

    print("\n== scraping with the synthesized XPath ==")
    scraped = concrete_matches(root, result.xpath)
    print(f"  scraped {len(scraped)} records: {scraped[:6]}{'...' if len(scraped) > 6 else ''}")
    missing = [example for example in examples if example not in scraped]
    print("  all examples covered!" if not missing
          else f"  MISSING: {missing}")


if __name__ == "__main__":
    main()
