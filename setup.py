"""Setup shim: enables `pip install -e .` in offline environments without
the `wheel` package (legacy setup.py develop path)."""
from setuptools import setup

setup()
