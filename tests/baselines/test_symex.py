"""Tests for the classic symbolic-execution baseline (§3.2)."""

import pytest

from repro.baselines import SymbolicExecutor
from repro.sym import fresh_bool, fresh_int, ops
from repro.vm import assert_, builtins as B
from repro.vm.context import current


def rev_pos(xs):
    ps = ()
    for x in xs:
        ps = current().branch(ops.gt(x, 0),
                              lambda x=x, ps=ps: B.cons(x, ps),
                              lambda ps=ps: ps)
    return ps


class TestPathEnumeration:
    def test_branch_free_program_has_one_path(self):
        executor = SymbolicExecutor()
        paths = list(executor.explore(lambda: 42))
        assert len(paths) == 1
        assert paths[0].value == 42

    def test_n_branches_give_2_to_n_paths(self):
        """The exponential blow-up of Fig. 5(b)."""
        for n in (1, 2, 3, 4):
            executor = SymbolicExecutor()
            def program(n=n):
                xs = tuple(fresh_int("pe") for _ in range(n))
                return rev_pos(xs)
            paths = list(executor.explore(program))
            assert len(paths) == 2 ** n

    def test_each_path_value_is_concrete_shaped(self):
        """Along one path, state stays concrete: no unions anywhere."""
        from repro.sym.values import Union
        executor = SymbolicExecutor()
        def program():
            xs = (fresh_int("pc"), fresh_int("pc"))
            return rev_pos(xs)
        for path in executor.explore(program):
            assert not isinstance(path.value, Union)
            assert isinstance(path.value, tuple)

    def test_path_conditions_are_distinct(self):
        executor = SymbolicExecutor()
        def program():
            xs = (fresh_int("pd"),)
            return rev_pos(xs)
        conditions = [p.condition for p in executor.explore(program)]
        assert len(set(conditions)) == len(conditions) == 2

    def test_max_paths_cap(self):
        executor = SymbolicExecutor(max_paths=3)
        def program():
            xs = tuple(fresh_int("pm") for _ in range(4))
            return rev_pos(xs)
        assert len(list(executor.explore(program))) == 3

    def test_multiway_guarded_is_binarized(self):
        from repro.sym.values import Union
        from repro.sym.merge import merge
        executor = SymbolicExecutor()
        def program():
            union = merge(fresh_bool("mw"), (1,), (1, 2))
            return B.length(union)
        paths = list(executor.explore(program))
        assert len(paths) == 2
        assert sorted(p.value for p in paths) == [1, 2]


class TestQueriesViaPaths:
    def test_solve_finds_the_single_successful_path(self):
        """The solve query of Fig. 5: only the all-positive path succeeds."""
        executor = SymbolicExecutor()
        def program():
            xs = (fresh_int("sx"), fresh_int("sx"))
            ps = rev_pos(xs)
            assert_(B.equal(B.length(ps), 2))
            return xs
        result = executor.solve(program)
        assert result is not None
        _, path = result
        assert path.decisions == (True, True)
        # The engine had to wade through failing paths first.
        assert executor.paths_explored >= 1

    def test_solve_unsat_explores_everything(self):
        executor = SymbolicExecutor()
        def program():
            xs = (fresh_int("ux"),)
            assert_(B.equal(B.length(rev_pos(xs)), 5))
        assert executor.solve(program) is None
        assert executor.paths_explored == 2

    def test_verify_finds_violation(self):
        executor = SymbolicExecutor()
        def program():
            x = fresh_int("vx")
            current().branch(ops.gt(x, 0),
                             lambda: assert_(ops.lt(x, 10)),
                             lambda: None)
        result = executor.verify(program)
        assert result is not None
        model, path = result
        assert path.assertions or path.failed

    def test_verify_of_valid_property(self):
        executor = SymbolicExecutor()
        def program():
            x = fresh_int("vv")
            absolute = current().branch(ops.lt(x, 0),
                                        lambda: ops.neg(x), lambda: x)
            # |x| >= 0 except INT_MIN; exclude it as a precondition... the
            # baseline has no assumption channel, so assert the property
            # only on the feasible side.
            current().branch(
                ops.num_eq(x, -(1 << (x.width - 1))),
                lambda: None,
                lambda: assert_(ops.ge(absolute, 0)))
        assert executor.verify(program) is None

    def test_solver_call_count_grows_with_paths(self):
        executor = SymbolicExecutor()
        def program():
            xs = tuple(fresh_int("sc") for _ in range(3))
            assert_(B.equal(B.length(rev_pos(xs)), 3))
        executor.solve(program)
        assert executor.solver_calls >= 1


class TestAgainstSvm:
    def test_agreement_on_solve(self):
        """Path-based and merged encodings answer solve identically."""
        from repro.queries import solve

        def program():
            xs = (fresh_int("ag"), fresh_int("ag"))
            assert_(B.equal(B.length(rev_pos(xs)), 2))

        svm_outcome = solve(program)
        executor = SymbolicExecutor()
        symex_outcome = executor.solve(program)
        assert (svm_outcome.status == "sat") == (symex_outcome is not None)
