"""Tests for the BMC-style merging baseline and the three-way ablation."""

import pytest

from repro.baselines import bmc_solve, bmc_verify, run_with_logical_merging
from repro.sym import fresh_int, ops
from repro.sym.values import Union
from repro.vm import assert_, builtins as B
from repro.vm.context import current


def rev_pos(xs):
    ps = ()
    for x in xs:
        ps = current().branch(ops.gt(x, 0),
                              lambda x=x, ps=ps: B.cons(x, ps),
                              lambda ps=ps: ps)
    return ps


class TestLogicalMerging:
    def test_lists_no_longer_merge_structurally(self):
        def program():
            xs = tuple(fresh_int("bm") for _ in range(3))
            return rev_pos(xs)
        vm, value, failed = run_with_logical_merging(program)
        assert not failed
        assert isinstance(value, Union)
        # Type-driven merging yields n+1 = 4 members (one per length);
        # logical merging keeps one member per *path*, up to 2^n = 8
        # (paths reaching the same list object still collapse).
        assert len(value) > 4

    def test_union_growth_vs_type_driven(self):
        """The paper's core claim, as an executable comparison."""
        from repro.vm.context import VM

        def program():
            xs = tuple(fresh_int("gw") for _ in range(4))
            return rev_pos(xs)

        with VM() as vm_typed:
            vm_typed.stats.start()
            typed_value = program()
            vm_typed.stats.stop()
        vm_logical, logical_value, _ = run_with_logical_merging(program)
        assert len(logical_value) > len(typed_value)
        assert vm_logical.stats.union_cardinality_sum > \
            vm_typed.stats.union_cardinality_sum

    def test_primitives_still_merge_logically(self):
        """BMC merges primitives with ite, like the SVM."""
        from repro.sym.values import SymInt
        def program():
            x = fresh_int("pl")
            return current().branch(ops.gt(x, 0), lambda: 1, lambda: 2)
        _, value, _ = run_with_logical_merging(program)
        assert isinstance(value, SymInt)


class TestBmcQueries:
    def test_bmc_solve_agrees_with_svm(self):
        from repro.queries import solve

        def program():
            xs = (fresh_int("bs"), fresh_int("bs"))
            assert_(B.equal(B.length(rev_pos(xs)), 2))

        svm = solve(program)
        status, _ = bmc_solve(program)
        assert status == svm.status == "sat"

    def test_bmc_solve_unsat(self):
        def program():
            xs = (fresh_int("bu"),)
            assert_(B.equal(B.length(rev_pos(xs)), 9))
        status, _ = bmc_solve(program)
        assert status == "unsat"

    def test_bmc_verify_finds_counterexample(self):
        def program():
            xs = (fresh_int("bv"), fresh_int("bv"))
            assert_(B.equal(B.length(rev_pos(xs)), 2))
        status, _ = bmc_verify(program)
        assert status == "sat"

    def test_bmc_verify_valid_property(self):
        def program():
            xs = (fresh_int("bw"), fresh_int("bw"))
            assert_(ops.le(B.length(rev_pos(xs)), 2))
        status, _ = bmc_verify(program)
        assert status == "unsat"

    def test_bmc_verify_with_setup(self):
        holder = {}

        def setup():
            x = fresh_int("bp")
            holder["x"] = x
            assert_(ops.ge(x, 5))

        def program():
            assert_(ops.ge(holder["x"], 5))

        status, _ = bmc_verify(program, setup=setup)
        assert status == "unsat"

    def test_definite_failure(self):
        from repro.vm.errors import AssertionFailure
        def program():
            raise AssertionFailure("nope")
        status, _ = bmc_solve(program)
        assert status == "unsat"
        status, _ = bmc_verify(program)
        assert status == "sat"
