"""Shared test fixtures: per-test isolation of global interpreter state."""

import pytest

from repro.obs import reset_env_sink
from repro.obs.events import BUS
from repro.sym.fresh import reset_fresh_names
from repro.sym.values import (
    UNION_COUNTERS,
    default_int_width,
    set_default_int_width,
)


@pytest.fixture(autouse=True)
def _isolate_symbolic_state():
    """Reset name streams, union counters, and the default int width
    around every test.

    The width restore matters: the example scripts run by
    test_examples.py call ``set_default_int_width`` as part of their
    demo, and without the restore the narrowed width leaked into every
    later test — the vm differential tests assume the 32-bit default
    (their Python-int reference semantics only match when nothing
    overflows) and failed flakily at 8 bits.

    The term intern table is deliberately left alone: terms are immutable
    and interning is semantics-free, so sharing it across tests only saves
    memory.
    """
    width = default_int_width()
    reset_fresh_names()
    UNION_COUNTERS.reset()
    yield
    set_default_int_width(width)
    reset_fresh_names()
    UNION_COUNTERS.reset()
    # A test that failed mid-trace may leave sinks on the event bus (and
    # the REPRO_TRACE writer open); detach them so tracing stays disabled
    # for everyone else.
    reset_env_sink()
    for sink in BUS.sinks:
        BUS.unsubscribe(sink)
