"""Shared test fixtures: per-test isolation of global interpreter state."""

import pytest

from repro.sym.fresh import reset_fresh_names
from repro.sym.values import UNION_COUNTERS


@pytest.fixture(autouse=True)
def _isolate_symbolic_state():
    """Reset name streams and union counters around every test.

    The term intern table is deliberately left alone: terms are immutable
    and interning is semantics-free, so sharing it across tests only saves
    memory.
    """
    reset_fresh_names()
    UNION_COUNTERS.reset()
    yield
    reset_fresh_names()
    UNION_COUNTERS.reset()
