"""End-to-end validation: synthesized IFCL attacks replay concretely.

These tests exercise the *entire* pipeline — SVM evaluation, bit-blasting,
CDCL solving, model decoding — and then confirm with a plain concrete
execution that the attack genuinely distinguishes two runs.
"""

import pytest

from repro.sym import set_default_int_width
from repro.sdsl.ifcl import (
    BUGGY_MACHINES,
    CORRECT_MACHINES,
    DecodedInstruction,
    check_attack,
    replay_attack,
)
from repro.sdsl.ifcl.machine import ADD, HALT, PUSH, STORE


@pytest.fixture(autouse=True)
def _width5():
    from repro.sym import default_int_width
    old = default_int_width()
    set_default_int_width(5)
    yield
    set_default_int_width(old)


class TestReplayMachinery:
    def test_handwritten_b2_attack_replays(self):
        """The known Push-drops-label attack, written by hand."""
        attack = [
            DecodedInstruction(PUSH, value_a=3, value_b=9, high=True),
            DecodedInstruction(PUSH, value_a=0, value_b=0, high=False),
            DecodedInstruction(STORE, value_a=0, value_b=0, high=False),
        ]
        result = replay_attack(BUGGY_MACHINES["B2"], attack)
        assert result.halted_a and result.halted_b
        assert result.distinguishable
        assert result.mem_a[0] == (3, False)
        assert result.mem_b[0] == (9, False)

    def test_same_attack_fails_on_the_correct_machine(self):
        """On the correct machine the cell is labeled high — no leak."""
        attack = [
            DecodedInstruction(PUSH, value_a=3, value_b=9, high=True),
            DecodedInstruction(PUSH, value_a=0, value_b=0, high=False),
            DecodedInstruction(STORE, value_a=0, value_b=0, high=False),
        ]
        result = replay_attack(CORRECT_MACHINES["basic"], attack)
        assert not result.distinguishable

    def test_ill_formed_attack_rejected(self):
        attack = [DecodedInstruction(PUSH, value_a=1, value_b=2, high=False)]
        with pytest.raises(ValueError):
            replay_attack(BUGGY_MACHINES["B2"], attack)

    def test_render(self):
        ins = DecodedInstruction(ADD, 0, 0, False)
        assert ins.render() == "Add 0|0@L"


class TestSynthesizedAttacksReplay:
    @pytest.mark.parametrize("name,bound", [("B2", 3), ("B4", 3)])
    def test_synthesized_attack_is_concretely_valid(self, name, bound):
        result = check_attack(BUGGY_MACHINES[name], bound)
        assert result is not None, f"{name} must be attackable at {bound}"
        assert result.halted_a and result.halted_b
        assert result.distinguishable, \
            f"synthesized {name} attack must replay concretely:\n" \
            f"{result.render()}"

    def test_correct_machine_yields_no_attack(self):
        assert check_attack(CORRECT_MACHINES["basic"], 3) is None
