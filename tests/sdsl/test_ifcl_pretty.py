"""Tests for the IFCL pretty printer."""

from repro.sym import fresh_bool, fresh_int, merge, set_default_int_width
from repro.vm.context import VM
from repro.sdsl.ifcl import MachineState
from repro.sdsl.ifcl.machine import HALT, PUSH, entry, frame
from repro.sdsl.ifcl.pretty import (
    render_cell,
    render_program,
    render_stack_entry,
    render_state,
)


class TestRendering:
    def test_cells(self):
        assert render_cell((3, False)) == "3@L"
        assert render_cell((7, True)) == "7@H"

    def test_symbolic_cell(self):
        with VM():
            rendered = render_cell((fresh_int("pc_v"), fresh_bool("pc_l")))
            assert "@?" in rendered

    def test_stack_entries(self):
        assert render_stack_entry(entry(5, False)) == "5@L"
        assert render_stack_entry(frame(2, True)) == "ret(2)@H"

    def test_state_line(self):
        state = MachineState.initial(((0, False), (1, True)))
        state = state.replace(stack=(entry(9, False),))
        line = render_state(state)
        assert "pc=0@L" in line
        assert "running" in line
        assert "9@L" in line
        assert "1@H" in line

    def test_halted_and_crashed(self):
        state = MachineState.initial(((0, False),) * 2)
        assert "halted" in render_state(state.replace(halted=True))
        assert "crashed" in render_state(state.replace(crashed=True))

    def test_union_fields_fall_back_to_repr(self):
        with VM():
            stack_union = merge(fresh_bool(), (entry(1, False),), ())
            state = MachineState.initial(((0, False),) * 2)
            line = render_state(state.replace(stack=stack_union))
            assert "Union" in line

    def test_program(self):
        text = render_program([(PUSH, 3, True), (HALT, 0, False)])
        assert "0: Push 3@H" in text
        assert "1: Halt 0@L" in text
