"""Tests for the SYNTHCL SDSL: types, runtime, programs, benchmarks."""

import pytest

from repro.sym import fresh_bool, fresh_int, merge, ops, set_default_int_width
from repro.sym.values import SymInt, Union
from repro.vm import AssertionFailure, VM
from repro.vm.context import current
from repro.sdsl.synthcl import (
    Buffer,
    CLRuntime,
    IntVec,
    SYNTHCL_BENCHMARKS,
    int4,
    run_benchmark,
)
from repro.sdsl.synthcl.programs import fwt, mm, sobel
from repro.sdsl.synthcl.sketch import choice, hole


@pytest.fixture(autouse=True)
def _width8():
    from repro.sym import default_int_width
    old = default_int_width()
    set_default_int_width(8)
    yield
    set_default_int_width(old)


class TestVectors:
    def test_lanewise_arithmetic(self):
        a = int4(1, 2, 3, 4)
        b = int4(10, 20, 30, 40)
        assert (a + b).lanes == (11, 22, 33, 44)
        assert (b - a).lanes == (9, 18, 27, 36)
        assert (a * 2).lanes == (2, 4, 6, 8)

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            IntVec((1, 2)) + IntVec((1, 2, 3))

    def test_reduce_add(self):
        assert int4(1, 2, 3, 4).reduce_add() == 10

    def test_vectors_merge_lanewise(self):
        with VM():
            merged = merge(fresh_bool(), int4(1, 2, 3, 4), int4(5, 6, 7, 8))
            assert isinstance(merged, IntVec)
            assert all(isinstance(lane, SymInt) for lane in merged.lanes)

    def test_different_width_vectors_union(self):
        with VM():
            merged = merge(fresh_bool(), IntVec((1, 2)), int4(1, 2, 3, 4))
            assert isinstance(merged, Union)


class TestRuntime:
    def test_buffers_and_launch(self):
        with VM():
            runtime = CLRuntime()
            src = runtime.buffer("src", [1, 2, 3, 4])
            dst = runtime.buffer("dst", [0, 0, 0, 0])
            runtime.launch(lambda item: item.write(
                dst, item.get_global_id(),
                ops.mul(item.read(src, item.get_global_id()), 2)), 4)
            assert dst.snapshot() == (2, 4, 6, 8)

    def test_concrete_race_is_detected(self):
        with VM():
            runtime = CLRuntime()
            dst = runtime.buffer("dst", [0])
            with pytest.raises(AssertionFailure):
                runtime.launch(lambda item: item.write(dst, 0, 1), 2)

    def test_symbolic_race_becomes_assertion(self):
        with VM() as vm:
            runtime = CLRuntime()
            dst = runtime.buffer("dst", [0, 0])
            offset = fresh_int("race")
            vm.assert_(ops.and_(ops.ge(offset, 0), ops.lt(offset, 2)))
            def kernel(item):
                index = ops.add(item.get_global_id(), offset) \
                    if item.get_global_id() == 0 else item.get_global_id()
                item.write(dst, ops.modulo(index, 2), 1)
            runtime.launch(kernel, 2)
            # The distinctness obligation landed in the assertion store.
            assert len(vm.assertions) >= 2

    def test_races_can_be_disabled(self):
        with VM():
            runtime = CLRuntime(check_races=False)
            dst = runtime.buffer("dst", [0])
            runtime.launch(lambda item: item.write(dst, 0, 1), 2)

    def test_multidim_ids_rejected(self):
        with VM():
            runtime = CLRuntime()
            with pytest.raises(ValueError):
                runtime.launch(lambda item: item.get_global_id(1), 1)


class TestMatrixMultiply:
    def concrete(self, fn, n, p, m):
        a = tuple(range(1, n * p + 1))
        b = tuple(range(1, p * m + 1))
        with VM():
            return fn(a, b, n, p, m)

    def test_reference_matches_numpy_style(self):
        out = self.concrete(mm.mm_reference, 2, 2, 2)
        # [[1,2],[3,4]] @ [[1,2],[3,4]] = [[7,10],[15,22]]
        assert out == (7, 10, 15, 22)

    def test_v1_matches_reference_concretely(self):
        for dims in ((2, 2, 2), (2, 3, 2), (3, 2, 3)):
            assert self.concrete(mm.mm_parallel_v1, *dims) == \
                self.concrete(mm.mm_reference, *dims)

    def test_v2_matches_reference_concretely(self):
        for dims in ((2, 2, 2), (2, 3, 2), (3, 4, 2)):
            assert self.concrete(mm.mm_parallel_v2, *dims) == \
                self.concrete(mm.mm_reference, *dims)

    def test_symbolic_verification_has_zero_unions(self):
        outcome = run_benchmark("MM1v", bounds=[(2, 2, 2)])
        assert outcome.status == "unsat"
        assert outcome.stats.unions_created == 0


class TestSobel:
    def image(self, w, h):
        return tuple((i * 7 + 3) % 50 for i in range(w * h * sobel.CHANNELS))

    @pytest.mark.parametrize("version", [1, 2, 3, 4, 5])
    def test_variants_match_reference_concretely(self, version):
        fn = sobel.SOBEL_VERSIONS[version]
        for w, h in ((1, 1), (2, 2), (3, 2)):
            with VM():
                assert fn(self.image(w, h), w, h) == \
                    sobel.sobel_reference(self.image(w, h), w, h)

    @pytest.mark.parametrize("version", [6, 7])
    def test_interior_variants_match_reference(self, version):
        fn = sobel.SOBEL_VERSIONS[version]
        for w, h in ((3, 3), (4, 3)):
            with VM():
                assert fn(self.image(w, h), w, h) == \
                    sobel.sobel_reference(self.image(w, h), w, h)

    def test_interior_variants_require_3x3(self):
        with pytest.raises(ValueError):
            sobel.sobel_v6(self.image(2, 2), 2, 2)
        with pytest.raises(ValueError):
            sobel.sobel_v7(self.image(1, 3), 1, 3)

    def test_sf_verification_passes(self):
        outcome = run_benchmark("SF1v", bounds=[(2, 2)])
        assert outcome.status == "unsat"

    def test_sketch_with_correct_weights_matches(self):
        with VM():
            # The sketch evaluated under any weights produces symbolic out.
            out = sobel.sobel_sketch(self.image(2, 2), 2, 2)
            assert any(isinstance(v, SymInt) for v in out)


class TestFwt:
    def test_reference_small(self):
        with VM():
            assert fwt.fwt_reference((1, 0, 1, 0)) == (2, 2, 0, 0)
            assert fwt.fwt_reference((1, 2)) == (3, -1)

    def test_reference_requires_power_of_two(self):
        with pytest.raises(ValueError):
            fwt.fwt_reference((1, 2, 3))

    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_v1_matches_reference(self, size):
        data = tuple(range(size))
        with VM():
            assert fwt.fwt_parallel_v1(data) == fwt.fwt_reference(data)

    @pytest.mark.parametrize("size", [1, 2, 4, 8, 16])
    def test_v2_matches_reference(self, size):
        data = tuple((i * 3 - 5) % 11 for i in range(size))
        with VM():
            assert fwt.fwt_parallel_v2(data) == fwt.fwt_reference(data)

    def test_fwt_verification_passes(self):
        outcome = run_benchmark("FWT2v", bounds=[0, 1, 2])
        assert outcome.status == "unsat"


class TestSketching:
    def test_hole_is_symbolic(self):
        assert isinstance(hole("h"), SymInt)

    def test_choice_of_ints_merges_logically(self):
        with VM():
            value = choice([1, 2, 3], "c")
            assert isinstance(value, SymInt)

    def test_choice_of_closures_is_a_union(self):
        with VM():
            value = choice([lambda: 1, lambda: 2], "p")
            assert isinstance(value, Union)

    def test_choice_requires_options(self):
        with pytest.raises(ValueError):
            choice([], "empty")

    def test_mm_synthesis_succeeds(self):
        outcome = run_benchmark("MM2s")
        assert outcome.status == "sat"
        assert outcome.stats.unions_created > 0  # Table 4's synthesis shape

    def test_fwt_synthesis_succeeds(self):
        outcome = run_benchmark("FWT2s")
        assert outcome.status == "sat"


class TestBenchmarkRegistry:
    def test_all_table1_ids_present(self):
        expected = {"MM1v", "MM2v", "MM2s", "SF1v", "SF2v", "SF3v", "SF4v",
                    "SF5v", "SF6v", "SF7v", "SF3s", "SF7s", "FWT1v", "FWT2v",
                    "FWT1s", "FWT2s"}
        assert expected == set(SYNTHCL_BENCHMARKS)

    def test_kinds(self):
        assert SYNTHCL_BENCHMARKS["MM1v"].kind == "verify"
        assert SYNTHCL_BENCHMARKS["SF7s"].kind == "synthesize"

    def test_paper_bounds_recorded(self):
        assert "16" in SYNTHCL_BENCHMARKS["MM1v"].paper_bounds
