"""Deeper IFCL machine tests: jump/call/return semantics, label algebra."""

import pytest

from repro.sym import fresh_bool, fresh_int, ops, set_default_int_width
from repro.vm.context import VM
from repro.sdsl.ifcl import BUGGY_MACHINES, CORRECT_MACHINES, MachineState
from repro.sdsl.ifcl.machine import (
    ADD, CALL, CR_OPS, HALT, JUMP, JUMP_OPS, LOAD, NOOP, POP, PUSH, RETURN,
    STORE, Semantics, entry, frame,
)


@pytest.fixture(autouse=True)
def _width5():
    from repro.sym import default_int_width
    old = default_int_width()
    set_default_int_width(5)
    yield
    set_default_int_width(old)


def run(semantics, *instructions, steps=None):
    program = tuple(instructions)
    state = MachineState.initial(((0, False), (0, False)))
    with VM():
        return semantics.run(state, program,
                             steps if steps is not None else
                             len(program) + 1)


class TestJumpMachine:
    def test_jump_transfers_control(self):
        sem = Semantics(JUMP_OPS)
        final = run(sem,
                    (PUSH, 3, False),   # target
                    (JUMP, 0, False),
                    (PUSH, 9, False),   # skipped
                    (HALT, 0, False))
        assert final.halted is True
        assert final.stack == ()

    def test_jump_raises_pc_label(self):
        sem = Semantics(JUMP_OPS)
        final = run(sem, (PUSH, 2, True), (JUMP, 0, False), (HALT, 0, False))
        assert final.halted is True
        assert final.pc_lab is True  # secret target taints the pc

    def test_jump_out_of_range_crashes(self):
        sem = Semantics(JUMP_OPS)
        final = run(sem, (PUSH, 30, False), (JUMP, 0, False))
        assert final.crashed is True

    def test_store_under_high_pc_crashes(self):
        """The correct machine's NSU check covers the pc label."""
        sem = Semantics(JUMP_OPS)
        final = run(sem,
                    (PUSH, 2, True),     # secret target = 2
                    (JUMP, 0, False),
                    (PUSH, 5, False),    # value
                    (PUSH, 0, False),    # address
                    (STORE, 0, False))
        assert final.crashed is True

    def test_j1_bug_leaves_pc_low(self):
        final = run(BUGGY_MACHINES["J1"],
                    (PUSH, 2, True), (JUMP, 0, False), (HALT, 0, False))
        assert final.halted is True
        assert final.pc_lab is False  # the bug

    def test_jump_on_frame_crashes(self):
        sem = Semantics(CR_OPS)
        # Return with a data value on top (not a frame) crashes.
        final = run(sem, (PUSH, 1, False), (RETURN, 0, False))
        assert final.crashed is True


class TestCallReturnMachine:
    def test_call_and_return_roundtrip(self):
        sem = Semantics(CR_OPS)
        final = run(sem,
                    (PUSH, 3, False),    # call target
                    (CALL, 0, False),    # pc := 3, frame saves 2
                    (HALT, 0, False),    # reached after the return
                    (RETURN, 0, False),  # pops the frame, pc := 2
                    steps=6)
        assert final.halted is True
        assert final.stack == ()

    def test_call_pushes_frame(self):
        sem = Semantics(CR_OPS)
        final = run(sem, (PUSH, 2, False), (CALL, 0, False),
                    (HALT, 0, False), steps=3)
        assert final.halted is True
        assert final.stack == (frame(2, False),)

    def test_call_on_secret_target_taints_pc(self):
        sem = Semantics(CR_OPS)
        final = run(sem, (PUSH, 2, True), (CALL, 0, False),
                    (HALT, 0, False), steps=3)
        assert final.pc_lab is True

    def test_return_restores_saved_pc_label(self):
        """Correct machine: leaving a secret call re-lowers the pc."""
        sem = Semantics(CR_OPS)
        final = run(sem,
                    (PUSH, 2, True),     # secret target = 2
                    (CALL, 0, False),
                    (RETURN, 0, False),  # restores the frame's LOW label
                    (HALT, 0, False),    # wait: pc returns to 2? no — to 2.
                    steps=6)
        # Return jumps back to pc 2 (call site + 1)… which is the RETURN
        # itself: the run crashes on the now-empty stack. That is fine —
        # the property under test is the pc label at the first Return.
        assert final.crashed is True or final.halted is True

    def test_cr3_clears_pc_label_on_return(self):
        buggy = BUGGY_MACHINES["CR3"]
        state = MachineState.initial(((0, False), (0, False)))
        with VM():
            # Build a high-pc state artificially and return from a frame.
            state = state.replace(pc_lab=True,
                                  stack=(frame(1, True),), pc=0)
            stepped = buggy.dispatch(state, RETURN, 0, False)
        assert stepped.pc_lab is False   # the bug clears it
        with VM():
            state2 = MachineState.initial(((0, False), (0, False)))
            state2 = state2.replace(pc_lab=True,
                                    stack=(frame(1, True),), pc=0)
            correct = Semantics(CR_OPS).dispatch(state2, RETURN, 0, False)
        assert correct.pc_lab is True    # correct restores the high label

    def test_cr2_saves_low_frame_labels(self):
        buggy = BUGGY_MACHINES["CR2"]
        state = MachineState.initial(((0, False), (0, False)))
        with VM():
            state = state.replace(pc_lab=True,
                                  stack=(entry(3, False),))
            stepped = buggy.dispatch(state, CALL, 0, False)
        tag, saved_pc, saved_label = stepped.stack[0]
        assert saved_label is False      # bug: forgets the high pc
