"""Tests for the WEBSYNTH SDSL."""

import pytest

from repro.sym import fresh_int, set_default_int_width
from repro.sym.values import SymBool
from repro.vm.context import VM
from repro.sdsl.websynth import (
    HtmlNode,
    SITE_SPECS,
    SymbolicXPath,
    concrete_matches,
    generate_site,
    synthesize_xpath,
    tree_depth,
    tree_size,
    xpath_selects,
)
from repro.sdsl.websynth.tree import render_html
from repro.sdsl.websynth.xpath import token_vocabulary


@pytest.fixture(autouse=True)
def _width16():
    from repro.sym import default_int_width
    old = default_int_width()
    set_default_int_width(16)
    yield
    set_default_int_width(old)


def sample_page():
    return HtmlNode("html", (
        HtmlNode("body", (
            HtmlNode("div", (
                HtmlNode("span", text="alpha"),
                HtmlNode("span", text="beta"),
            )),
            HtmlNode("div", (
                HtmlNode("p", text="noise"),
                HtmlNode("span", text="gamma"),
            )),
        )),
    ))


class TestTree:
    def test_size_and_depth(self):
        page = sample_page()
        assert tree_size(page) == 8
        assert tree_depth(page) == 4

    def test_walk_order(self):
        tags = [node.tag for node in sample_page().walk()]
        assert tags[0] == "html"
        assert tags.count("span") == 3

    def test_texts(self):
        assert set(sample_page().texts()) == {"alpha", "beta", "gamma",
                                              "noise"}

    def test_render_html(self):
        rendered = render_html(sample_page())
        assert "<html>" in rendered and "alpha" in rendered

    def test_vocabulary(self):
        assert token_vocabulary(sample_page()) == \
            ("html", "body", "div", "span", "p")


class TestConcreteXPath:
    def test_matches(self):
        page = sample_page()
        assert concrete_matches(page, ["body", "div", "span"]) == \
            ["alpha", "beta", "gamma"]
        assert concrete_matches(page, ["body", "div", "p"]) == ["noise"]
        assert concrete_matches(page, ["body", "nothing"]) == []


class TestSymbolicInterpreter:
    def test_selects_builds_boolean(self):
        page = sample_page()
        with VM() as vm:
            xpath = SymbolicXPath(token_vocabulary(page), 3)
            xpath.assume_well_formed()
            reached = xpath_selects(page, xpath, 0, "alpha")
            assert isinstance(reached, SymBool)
            assert vm.stats.joins > 0
            # Zero unions: the Table 4 signature of WEBSYNTH.
            assert vm.stats.unions_created == 0

    def test_unreachable_text_is_false(self):
        page = sample_page()
        with VM():
            xpath = SymbolicXPath(token_vocabulary(page), 3)
            xpath.assume_well_formed()
            reached = xpath_selects(page, xpath, 0, "no-such-text")
            assert reached is False or isinstance(reached, SymBool)


class TestSynthesis:
    def test_recovers_the_path(self):
        page = sample_page()
        result = synthesize_xpath(page, ["alpha", "beta", "gamma"])
        assert result.status == "sat"
        assert result.xpath == ("body", "div", "span")

    def test_single_example_may_overfit_but_selects_it(self):
        page = sample_page()
        result = synthesize_xpath(page, ["noise"])
        assert result.status == "sat"
        assert "noise" in concrete_matches(page, result.xpath)

    def test_impossible_examples(self):
        page = sample_page()
        # alpha and noise live under different leaf tags: no single XPath.
        result = synthesize_xpath(page, ["alpha", "noise"])
        assert result.status == "unsat"

    def test_missing_example_text(self):
        result = synthesize_xpath(sample_page(), ["never-present"])
        assert result.status == "unsat"


class TestSyntheticSites:
    def test_spec_table_matches_paper(self):
        by_name = {spec.name: spec for spec in SITE_SPECS}
        assert by_name["iTunes"].paper_nodes == 1104
        assert by_name["IMDb"].paper_depth == 20
        assert by_name["AlAnon"].paper_tokens == 161

    def test_generated_shape_roughly_matches(self):
        spec = SITE_SPECS[0]
        root, path, examples = generate_site(spec, scale=0.1)
        assert tree_size(root) >= 16
        assert len(examples) == 4
        # Ground truth actually selects the examples.
        got = concrete_matches(root, path)
        assert all(example in got for example in examples)

    def test_generation_is_deterministic(self):
        spec = SITE_SPECS[1]
        first = generate_site(spec, scale=0.05, seed=3)
        second = generate_site(spec, scale=0.05, seed=3)
        assert first[1] == second[1]
        assert tree_size(first[0]) == tree_size(second[0])

    def test_end_to_end_synthesis_on_synthetic_site(self):
        root, path, examples = generate_site(SITE_SPECS[0], scale=0.08)
        result = synthesize_xpath(root, examples)
        assert result.status == "sat"
        got = concrete_matches(root, result.xpath)
        assert all(example in got for example in examples)
        assert result.stats.unions_created == 0  # Table 4 shape
