"""Tests for the automata SDSL (the paper's §2 interactions)."""

import re

import pytest

from repro.sdsl.automata import AutomataSession

CADR = """
(define m (automaton init
  [init : (c -> more)]
  [more : (a -> more) (d -> more) (r -> end)]
  [end : ]))
"""

SKETCH = """
(define M (automaton init
  [init : (c -> (choose s1 s2))]
  [s1 : (a -> (choose s1 s2 end reject))
        (d -> (choose s1 s2 end reject))
        (r -> (choose s1 s2 end reject))]
  [s2 : (a -> (choose s1 s2 end reject))
        (d -> (choose s1 s2 end reject))
        (r -> (choose s1 s2 end reject))]
  [end : ]))
"""


class TestConcreteExecution:
    def test_accepts_cadr_words(self):
        with AutomataSession() as session:
            session.define(CADR)
            assert session.accepts("m", "c a d a d d r".split())
            assert session.accepts("m", ["c", "r"])
            assert not session.accepts("m", "c a d a d d r r".split())
            assert not session.accepts("m", ["a"])
            assert not session.accepts("m", [])

    def test_buggy_macro_accepts_empty(self):
        with AutomataSession(buggy=True) as session:
            session.define(CADR)
            assert session.accepts("m", [])  # the §2.2 bug


class TestAngelicExecution:
    def test_finds_an_accepted_word(self):
        with AutomataSession() as session:
            session.define(CADR)
            word = session.find_accepted_word("m", 4, ["c", "a", "d", "r"])
            assert word is not None
            assert re.fullmatch("c[ad]*r", "".join(word))

    def test_no_word_for_empty_automaton(self):
        with AutomataSession() as session:
            session.define("(define dead (automaton init [init : ]))")
            # `init` has no outgoing transitions, so it accepts only '().
            word = session.find_accepted_word("dead", 3, ["a"])
            assert word == ()


class TestDebugging:
    def test_core_localizes_the_bug(self):
        with AutomataSession(buggy=True) as session:
            session.define(CADR)
            core = session.debug_empty_word("m")
            assert core, "the failure must have a non-empty core"
            # The paper's core names the cond/true expressions of Fig. 2.
            assert any("true" in label or "cond" in label
                       for label in core)


class TestVerification:
    def test_fixed_automaton_verifies(self):
        with AutomataSession() as session:
            session.define(CADR)
            cex = session.verify_against_regex(
                "m", "^c[ad]*r$", 4, ["c", "a", "d", "r"])
            assert cex is None

    def test_buggy_automaton_has_counterexample(self):
        with AutomataSession(buggy=True) as session:
            session.define(CADR)
            cex = session.verify_against_regex(
                "m", "^c[ad]*r$", 4, ["c", "a", "d", "r"])
            assert cex is not None
            assert re.fullmatch("c[ad]*r", "".join(cex)) is None


class TestSynthesis:
    def test_completes_the_cadplusr_sketch(self):
        with AutomataSession() as session:
            session.define(SKETCH)
            forms = session.synthesize_against_regex(
                "M", "^c[ad]+r$", 4, ["c", "a", "d", "r"])
            assert forms is not None
            assert len(forms) >= 7  # one resolved hole per choose site
