"""Tests for the IFCL SDSL: machine semantics, merging shape, EENI."""

import pytest

from repro.sym import fresh_bool, fresh_int, ops, set_default_int_width
from repro.sym.values import SymInt, Union
from repro.vm.context import VM
from repro.sdsl.ifcl import (
    BUGGY_MACHINES,
    CORRECT_MACHINES,
    MachineState,
    SymbolicProgram,
    eeni_check,
    eeni_thunks,
)
from repro.sdsl.ifcl.machine import (
    ADD, BASIC_OPS, HALT, LOAD, NOOP, POP, PUSH, STORE,
    Semantics, entry,
)


@pytest.fixture(autouse=True)
def _width5():
    from repro.sym import default_int_width
    old = default_int_width()
    set_default_int_width(5)
    yield
    set_default_int_width(old)


def concrete_program(*instructions):
    """Build a concrete program: [(opcode, value, label), ...]."""
    return tuple((op, value, label) for op, value, label in instructions)


def run_concrete(semantics, program, steps=None):
    state = MachineState.initial(((0, False), (0, False)))
    with VM():
        return semantics.run(state, program,
                             steps if steps is not None else
                             len(program) + 1)


class TestConcreteExecution:
    def test_push_then_fall_off_halts(self):
        sem = Semantics(BASIC_OPS)
        final = run_concrete(sem, concrete_program((PUSH, 7, False)))
        assert final.halted is True
        assert final.crashed is False
        assert final.stack == (entry(7, False),)

    def test_halt_instruction(self):
        sem = Semantics(BASIC_OPS)
        final = run_concrete(sem, concrete_program(
            (HALT, 0, False), (PUSH, 1, False)))
        assert final.halted is True
        assert final.stack == ()  # Push never ran

    def test_pop_underflow_crashes(self):
        sem = Semantics(BASIC_OPS)
        final = run_concrete(sem, concrete_program((POP, 0, False)))
        assert final.crashed is True

    def test_add_joins_labels(self):
        sem = Semantics(BASIC_OPS)
        final = run_concrete(sem, concrete_program(
            (PUSH, 2, False), (PUSH, 3, True), (ADD, 0, False)))
        assert final.halted is True
        tag, value, label = final.stack[0]
        assert value == 5
        assert label is True  # high taints the sum

    def test_store_load_roundtrip(self):
        sem = Semantics(BASIC_OPS)
        final = run_concrete(sem, concrete_program(
            (PUSH, 9, False),    # value
            (PUSH, 1, False),    # address
            (STORE, 0, False),
            (PUSH, 1, False),
            (LOAD, 0, False)))
        assert final.halted is True
        assert final.mem[1] == (9, False)
        assert final.stack[0] == entry(9, False)

    def test_store_bad_address_crashes(self):
        sem = Semantics(BASIC_OPS)
        final = run_concrete(sem, concrete_program(
            (PUSH, 0, False), (PUSH, 7, False), (STORE, 0, False)))
        assert final.crashed is True

    def test_no_sensitive_upgrade_crashes(self):
        """Store through a high address into a low cell must crash."""
        sem = Semantics(BASIC_OPS)
        final = run_concrete(sem, concrete_program(
            (PUSH, 0, False), (PUSH, 1, True), (STORE, 0, False)))
        assert final.crashed is True

    def test_b4_skips_the_nsu_check(self):
        final = run_concrete(BUGGY_MACHINES["B4"], concrete_program(
            (PUSH, 0, False), (PUSH, 1, True), (STORE, 0, False)))
        assert final.halted is True
        assert final.mem[1][1] is True  # label moved to a secret cell

    def test_unknown_opcode_crashes(self):
        sem = Semantics(BASIC_OPS)
        final = run_concrete(sem, concrete_program((99, 0, False)))
        assert final.crashed is True


class TestSymbolicExecutionShape:
    def test_symbolic_opcode_merges_states(self):
        """One step on a symbolic opcode creates stack-length unions."""
        sem = Semantics(BASIC_OPS)
        opcode = fresh_int("so")
        program = ((opcode, 1, False),)
        state = MachineState.initial(((0, False), (0, False)))
        with VM() as vm:
            vm.assert_(ops.and_(ops.ge(opcode, 0), ops.lt(opcode, 7)))
            stepped = sem.step(state, program)
            assert isinstance(stepped, MachineState)
            # Push grows the stack, others leave it empty: a union.
            assert isinstance(stepped.stack, Union)
            assert vm.stats.joins > 0

    def test_state_merging_is_fieldwise(self):
        with VM():
            cond = fresh_bool("sm")
            state_a = MachineState.initial(((1, False), (0, False)))
            state_b = MachineState.initial(((2, False), (0, False)))
            from repro.sym.merge import merge
            merged = merge(cond, state_a, state_b)
            assert isinstance(merged, MachineState)
            assert isinstance(merged.mem[0][0], SymInt)
            assert merged.mem[1] == (0, False)

    def test_union_cardinality_grows_polynomially(self):
        """Fig. 10's driver: cardinality sums across bounds are not
        exponential in the number of joins."""
        sums = []
        joins = []
        for length in (1, 2, 3):
            setup, check, _ = eeni_thunks(BUGGY_MACHINES["B1"], length)
            with VM() as vm:
                vm.stats.start()
                setup()
                check()
                vm.stats.stop()
            sums.append(vm.stats.union_cardinality_sum)
            joins.append(vm.stats.joins)
        assert sums[0] < sums[1] < sums[2]
        # Polynomial, not exponential: ratio sum/joins² stays bounded.
        assert sums[2] <= 5 * (joins[2] ** 2)


class TestSymbolicProgram:
    def test_decoding(self):
        from repro.queries.outcome import Model
        from repro.smt.solver import Model as SmtModel
        program = SymbolicProgram(Semantics(BASIC_OPS), 2)
        bindings = {
            program.opcodes[0].term: 1, program.values_a[0].term: 3,
            program.values_b[0].term: 4, program.labels[0].term: True,
            program.opcodes[1].term: 6, program.values_a[1].term: 0,
            program.values_b[1].term: 0,
        }
        decoded = program.decode(Model(SmtModel(bindings)))
        assert decoded == ["Push 3|4@H", "Halt 0|0@L"]

    def test_well_formedness_constrains_opcodes(self):
        with VM() as vm:
            program = SymbolicProgram(Semantics(BASIC_OPS), 1)
            program.assume_well_formed()
            assert len(vm.assertions) == 2  # opcode range + low agreement


class TestEeni:
    def test_correct_basic_machine_secure_at_3(self):
        result = eeni_check(CORRECT_MACHINES["basic"], 3)
        assert result.status == "secure"
        assert result.is_secure

    def test_b2_insecure_at_3(self):
        result = eeni_check(BUGGY_MACHINES["B2"], 3)
        assert result.status == "insecure"
        assert result.counterexample is not None
        assert any("Store" in line for line in result.counterexample)

    def test_b4_insecure_at_3(self):
        result = eeni_check(BUGGY_MACHINES["B4"], 3)
        assert result.status == "insecure"

    def test_counterexample_uses_a_high_immediate(self):
        result = eeni_check(BUGGY_MACHINES["B2"], 3)
        assert any("@H" in line for line in result.counterexample)

    def test_stats_populated(self):
        result = eeni_check(BUGGY_MACHINES["B2"], 3)
        assert result.stats.joins > 0
        assert result.stats.unions_created > 0
