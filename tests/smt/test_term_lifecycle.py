"""Intern-table lifecycle: weak-value interning across query boundaries.

The regression here: `reset_terms()` used to *clear* the table, so a term
held across the reset and a structurally equal term built afterwards were
distinct objects — breaking the identity-based equality every layer above
relies on. Interning is weak now: live terms are never evicted, dead
terms leave the table on their own.
"""

import gc

from repro.smt import terms as T


def build(x):
    return T.mk_eq(T.mk_add(x, T.bv_const(1, 8)), T.bv_const(5, 8))


class TestWeakInterning:
    def test_identity_survives_reset(self):
        x = T.bv_var("life_x", 8)
        before = build(x)
        T.reset_terms()
        after = build(x)
        assert after is before

    def test_identity_across_query_boundaries(self):
        """Two independent 'queries' building the same formula share it."""
        first = build(T.bv_var("life_q", 8))
        T.reset_terms()  # what a query runner might do between queries
        second = build(T.bv_var("life_q", 8))
        assert second is first

    def test_true_false_singletons_survive(self):
        T.reset_terms()
        gc.collect()
        assert T.bool_const(True) is T.TRUE
        assert T.bool_const(False) is T.FALSE

    def test_dead_terms_are_reclaimed(self):
        base = T.num_interned_terms()
        x = T.bv_var("reclaim_x", 8)
        terms = [T.mk_add(x, T.bv_const(n, 8)) for n in range(2, 60)]
        assert T.num_interned_terms() >= base + len(terms)
        del terms
        gc.collect()
        # The adds (and the constants they solely referenced) are gone;
        # `x` itself is still live and must still be interned.
        assert T.num_interned_terms() < base + 58
        assert T.bv_var("reclaim_x", 8) is x

    def test_live_subterms_keep_identity_after_parent_dies(self):
        x = T.bv_var("sub_x", 8)
        inner = T.mk_add(x, T.bv_const(1, 8))
        outer = T.mk_eq(inner, T.bv_const(9, 8))
        del outer
        gc.collect()
        assert T.mk_add(x, T.bv_const(1, 8)) is inner
