"""SmtSolver trust-but-verify mode: flag plumbing, certification, model
completeness, and the minimize_core postcondition."""

import pytest

from repro.obs.events import BUS
from repro.smt import terms as T
from repro.smt.solver import CheckStats, SmtResult, SmtSolver
from repro.solver.certify import CertificationError


class TestCertifyFlag:
    def test_off_by_default(self):
        solver = SmtSolver()
        assert solver.certify is False
        assert solver.proof is None
        assert solver.sat.proof is None

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_CERTIFY", "1")
        assert SmtSolver().certify is True
        monkeypatch.setenv("REPRO_CERTIFY", "0")
        assert SmtSolver().certify is False
        monkeypatch.setenv("REPRO_CERTIFY", "")
        assert SmtSolver().certify is False

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CERTIFY", "1")
        assert SmtSolver(certify=False).certify is False
        monkeypatch.delenv("REPRO_CERTIFY", raising=False)
        assert SmtSolver(certify=True).certify is True

    def test_uncertified_check_records_zero(self):
        solver = SmtSolver()
        solver.add_assertion(T.bool_var("cf_a"))
        assert solver.check() is SmtResult.SAT
        assert solver.last_cert is None
        assert solver.last_check.certified == 0


class TestCertifiedAnswers:
    def test_sat_answer_is_certified(self):
        solver = SmtSolver(certify=True)
        x = T.bv_var("cx", 8)
        solver.add_assertion(T.mk_eq(T.mk_mul(x, T.bv_const(3, 8)),
                                     T.bv_const(21, 8)))
        assert solver.check() is SmtResult.SAT
        assert solver.last_cert == "model"
        assert solver.last_check.certified == 1
        assert solver.cumulative.certified == 1

    def test_unsat_answer_is_certified(self):
        solver = SmtSolver(certify=True)
        x = T.bv_var("cy", 8)
        solver.add_assertion(T.mk_eq(x, T.bv_const(1, 8)))
        solver.add_assertion(T.mk_eq(x, T.bv_const(2, 8)))
        assert solver.check() is SmtResult.UNSAT
        assert solver.last_cert == "proof"
        assert solver.last_check.certified == 1

    def test_trivially_false_fast_path(self):
        solver = SmtSolver(certify=True)
        solver.add_assertion(T.FALSE)
        assert solver.check() is SmtResult.UNSAT
        assert solver.last_cert == "trivial"
        assert solver.last_check.certified == 1

    def test_certified_across_push_pop(self):
        solver = SmtSolver(certify=True)
        x = T.bv_var("cz", 8)
        solver.add_assertion(T.mk_ult(x, T.bv_const(10, 8)))
        solver.push()
        solver.add_assertion(T.mk_eq(x, T.bv_const(12, 8)))
        assert solver.check() is SmtResult.UNSAT
        assert solver.last_cert == "proof"
        solver.pop()
        assert solver.check() is SmtResult.SAT
        assert solver.last_cert == "model"
        assert solver.model()[x] < 10

    def test_certified_assumption_core(self):
        solver = SmtSolver(certify=True)
        a, b = T.bool_var("cc_a"), T.bool_var("cc_b")
        solver.add_assertion(T.mk_or(T.mk_not(a), T.mk_not(b)))
        assert solver.check([a, b]) is SmtResult.UNSAT
        assert solver.last_cert == "proof"
        assert set(solver.unsat_core()) == {a, b}

    def test_unknown_is_not_certified(self):
        solver = SmtSolver(max_conflicts=1, certify=True)
        x = T.bv_var("cu", 12)
        y = T.bv_var("cv", 12)
        solver.add_assertion(T.mk_eq(T.mk_mul(x, y), T.bv_const(3131, 12)))
        result = solver.check()
        if result is SmtResult.UNKNOWN:
            assert solver.last_cert is None
            assert solver.last_check.certified == 0

    def test_certify_model_rejects_corrupted_bindings(self):
        solver = SmtSolver(certify=True)
        x = T.bv_var("cw", 8)
        solver.add_assertion(T.mk_eq(x, T.bv_const(90, 8)))
        assert solver.check() is SmtResult.SAT
        solver.certify_model()  # the genuine model passes
        bad = solver.model().bindings()
        bad[x] ^= 1
        with pytest.raises(CertificationError):
            solver.certify_model(bad)

    def test_cert_events_on_bus(self):
        events = []
        unsubscribe = BUS.subscribe(events.append)
        try:
            solver = SmtSolver(certify=True)
            solver.add_assertion(T.bool_var("ce_a"))
            solver.check()
        finally:
            unsubscribe()
        cert_ends = [e for e in events
                     if e.name == "cert.model" and e.ph == "E"]
        assert len(cert_ends) == 1
        assert cert_ends[0].args["ok"] is True
        check_ends = [e for e in events
                      if e.name == "smt.check" and e.ph == "E"]
        assert check_ends[0].args["certified"] == 1


class TestMinimizeCorePostcondition:
    def test_minimized_core_is_reproved(self):
        solver = SmtSolver(certify=True)
        a, b = T.bool_var("mc_a"), T.bool_var("mc_b")
        pads = [T.bool_var(f"mc_p{i}") for i in range(4)]
        solver.add_assertion(T.mk_or(T.mk_not(a), T.mk_not(b)))
        assert solver.check([a, b] + pads) is SmtResult.UNSAT
        core = solver.minimize_core()
        assert set(core) == {a, b}

    def test_non_core_claim_is_rejected(self):
        solver = SmtSolver(certify=True)
        a, b = T.bool_var("nc_a"), T.bool_var("nc_b")
        solver.add_assertion(T.mk_or(T.mk_not(a), T.mk_not(b)))
        assert solver.check([a, b]) is SmtResult.UNSAT
        with pytest.raises(CertificationError):
            solver._certify_core([a])  # a alone is satisfiable

    def test_postcondition_respects_open_scopes(self):
        solver = SmtSolver(certify=True)
        a = T.bool_var("sc_a")
        solver.push()
        solver.add_assertion(T.mk_not(a))
        assert solver.check([a]) is SmtResult.UNSAT
        core = solver.minimize_core()
        assert core == [a]
        solver.pop()


class TestModelCompleteness:
    def test_declared_variable_gets_a_value(self):
        solver = SmtSolver()
        x = T.bv_var("mc_lonely", 8)
        flag = T.bool_var("mc_flag")
        solver.declare(x, flag)
        solver.add_assertion(T.TRUE)
        assert solver.check() is SmtResult.SAT
        model = solver.model()
        assert x in model and model[x] == 0
        assert flag in model and model[flag] is False

    def test_assertion_variables_always_appear(self):
        # The model scan walks the active assertions, so even if a future
        # encoder stops eagerly translating every subterm, asserted
        # variables keep a defined model value. Exercise the scan by
        # dropping the blaster's record of the variable.
        solver = SmtSolver()
        x = T.bv_var("mc_scanned", 8)
        solver.add_assertion(T.mk_ule(x, T.bv_const(200, 8)))
        assert solver.check() is SmtResult.SAT
        solver.blaster._bv_vars.pop(x)
        model = solver.model()
        assert x in model and model[x] == 0

    def test_declare_rejects_non_variables(self):
        solver = SmtSolver()
        with pytest.raises(TypeError):
            solver.declare(T.bv_const(1, 8))

    def test_explicit_variable_list_still_wins(self):
        solver = SmtSolver()
        x = T.bv_var("mc_x", 8)
        y = T.bv_var("mc_y", 8)
        solver.add_assertion(T.mk_eq(x, T.bv_const(5, 8)))
        solver.declare(y)
        assert solver.check() is SmtResult.SAT
        model = solver.model([x])
        assert x in model and y not in model


class TestCheckStatsCertified:
    def test_certified_field_survives_arithmetic(self):
        a = CheckStats(checks=2, certified=2)
        b = CheckStats(checks=1, certified=1)
        assert (a - b).certified == 1
        a += b
        assert a.certified == 3
        assert a.copy().certified == 3
