"""Bit-blasting correctness: circuits vs. the term-level constant folders.

Every operator is checked exhaustively at width 3 by forcing the solver to
produce a model for symbolic operands pinned to each value pair, comparing
the circuit's output with the reference semantics in
:mod:`repro.smt.terms`. This is the strongest guarantee we can give that
the CNF encodings implement SMT-LIB semantics (including the division-by-
zero conventions).
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver

WIDTH = 3
ALL_VALUES = range(1 << WIDTH)

BINARY_OPS = [
    ("add", T.mk_add), ("sub", T.mk_sub), ("mul", T.mk_mul),
    ("udiv", T.mk_udiv), ("urem", T.mk_urem), ("sdiv", T.mk_sdiv),
    ("srem", T.mk_srem), ("smod", T.mk_smod), ("and", T.mk_bvand),
    ("or", T.mk_bvor), ("xor", T.mk_bvxor), ("shl", T.mk_shl),
    ("lshr", T.mk_lshr), ("ashr", T.mk_ashr),
]

COMPARE_OPS = [
    ("eq", T.mk_eq), ("ult", T.mk_ult), ("ule", T.mk_ule),
    ("slt", T.mk_slt), ("sle", T.mk_sle),
]


@pytest.mark.parametrize("name,mk", BINARY_OPS)
def test_binary_op_circuit_exhaustive(name, mk):
    """One shared solver per op; each value pair is pinned via assumptions."""
    x = T.bv_var(f"bb_{name}_x", WIDTH)
    y = T.bv_var(f"bb_{name}_y", WIDTH)
    z = T.bv_var(f"bb_{name}_z", WIDTH)
    solver = SmtSolver()
    solver.add_assertion(T.mk_eq(z, mk(x, y)))
    for a_val, b_val in itertools.product(ALL_VALUES, repeat=2):
        expected = mk(T.bv_const(a_val, WIDTH),
                      T.bv_const(b_val, WIDTH)).const_value()
        assumptions = [T.mk_eq(x, T.bv_const(a_val, WIDTH)),
                       T.mk_eq(y, T.bv_const(b_val, WIDTH))]
        assert solver.check(assumptions) is SmtResult.SAT
        got = solver.model([z])[z]
        assert got == expected, (name, a_val, b_val, got, expected)


@pytest.mark.parametrize("name,mk", COMPARE_OPS)
def test_compare_op_circuit_exhaustive(name, mk):
    x = T.bv_var(f"bp_{name}_x", WIDTH)
    y = T.bv_var(f"bp_{name}_y", WIDTH)
    p = T.bool_var(f"bp_{name}_p")
    solver = SmtSolver()
    solver.add_assertion(T.mk_iff(p, mk(x, y)))
    for a_val, b_val in itertools.product(ALL_VALUES, repeat=2):
        expected = mk(T.bv_const(a_val, WIDTH),
                      T.bv_const(b_val, WIDTH)) is T.TRUE
        assumptions = [T.mk_eq(x, T.bv_const(a_val, WIDTH)),
                       T.mk_eq(y, T.bv_const(b_val, WIDTH))]
        assert solver.check(assumptions) is SmtResult.SAT
        got = solver.model([p])[p]
        assert got == expected, (name, a_val, b_val, got, expected)


def test_neg_and_bvnot_circuits():
    for a_val in ALL_VALUES:
        for name, mk in (("neg", T.mk_neg), ("not", T.mk_bvnot)):
            x = T.bv_var(f"un_{name}_x", WIDTH)
            z = T.bv_var(f"un_{name}_z", WIDTH)
            solver = SmtSolver()
            solver.add_assertion(T.mk_eq(x, T.bv_const(a_val, WIDTH)))
            solver.add_assertion(T.mk_eq(z, mk(x)))
            assert solver.check() is SmtResult.SAT
            expected = mk(T.bv_const(a_val, WIDTH)).const_value()
            assert solver.model([z])[z] == expected


def test_bv_ite_circuit():
    p = T.bool_var("ite_p")
    x = T.bv_var("ite_x", WIDTH)
    expr = T.mk_ite(p, T.mk_add(x, T.bv_const(1, WIDTH)), x)
    solver = SmtSolver()
    solver.add_assertion(p)
    solver.add_assertion(T.mk_eq(x, T.bv_const(3, WIDTH)))
    solver.add_assertion(T.mk_eq(expr, T.bv_const(4, WIDTH)))
    assert solver.check() is SmtResult.SAT


def test_unconstrained_variable_defaults_in_model():
    x = T.bv_var("free_x", WIDTH)
    solver = SmtSolver()
    solver.add_assertion(T.mk_ule(x, T.bv_const(7, WIDTH)))  # tautology
    assert solver.check() is SmtResult.SAT
    assert 0 <= solver.model([x])[x] < 8


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255),
       st.sampled_from([mk for _, mk in BINARY_OPS]))
@settings(max_examples=60, deadline=None)
def test_width8_circuit_matches_fold(a_val, b_val, mk):
    width = 8
    x = T.bv_var("w8x", width)
    y = T.bv_var("w8y", width)
    z = T.bv_var("w8z", width)
    solver = SmtSolver()
    solver.add_assertion(T.mk_eq(x, T.bv_const(a_val, width)))
    solver.add_assertion(T.mk_eq(y, T.bv_const(b_val, width)))
    solver.add_assertion(T.mk_eq(z, mk(x, y)))
    assert solver.check() is SmtResult.SAT
    expected = mk(T.bv_const(a_val, width), T.bv_const(b_val, width))
    assert solver.model([z])[z] == expected.const_value()


def test_boolean_gate_sharing_via_interning():
    """The same subterm must not enlarge the CNF twice."""
    p, q = T.bool_var("share_p"), T.bool_var("share_q")
    conj = T.mk_and(p, q)
    solver = SmtSolver()
    solver.add_assertion(T.mk_or(conj, T.mk_not(q)))
    clauses_before = len(solver.sat._clauses)
    solver.add_assertion(T.mk_or(conj, p))
    # Re-encoding `conj` costs no new gate clauses beyond the new or-clause.
    assert len(solver.sat._clauses) <= clauses_before + 1
