"""Tests for the SmtSolver facade: models, assumptions, minimized cores."""

import pytest

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver


def bv(value, width=4):
    return T.bv_const(value, width)


class TestCheck:
    def test_sat_with_model(self):
        x = T.bv_var("fx", 4)
        solver = SmtSolver()
        solver.add_assertion(T.mk_ult(bv(5), x))
        solver.add_assertion(T.mk_ult(x, bv(8)))
        assert solver.check() is SmtResult.SAT
        assert 5 < solver.model([x])[x] < 8

    def test_unsat(self):
        x = T.bv_var("fy", 4)
        solver = SmtSolver()
        solver.add_assertion(T.mk_ult(x, bv(2)))
        solver.add_assertion(T.mk_ult(bv(4), x))
        assert solver.check() is SmtResult.UNSAT

    def test_constant_true_assertion_is_free(self):
        solver = SmtSolver()
        solver.add_assertion(T.TRUE)
        assert solver.check() is SmtResult.SAT

    def test_constant_false_assertion(self):
        solver = SmtSolver()
        solver.add_assertion(T.FALSE)
        assert solver.check() is SmtResult.UNSAT

    def test_non_boolean_assertion_rejected(self):
        solver = SmtSolver()
        with pytest.raises(TypeError):
            solver.add_assertion(T.bv_var("bad", 4))

    def test_model_requires_sat(self):
        solver = SmtSolver()
        solver.add_assertion(T.FALSE)
        solver.check()
        with pytest.raises(RuntimeError):
            solver.model()

    def test_model_evaluate_composite_term(self):
        x = T.bv_var("fz", 4)
        solver = SmtSolver()
        solver.add_assertion(T.mk_eq(x, bv(6)))
        assert solver.check() is SmtResult.SAT
        model = solver.model([x])
        assert model.evaluate(T.mk_add(x, bv(1))) == 7


class TestAssumptions:
    def test_sat_under_assumptions(self):
        p = T.bool_var("ap")
        solver = SmtSolver()
        assert solver.check([p]) is SmtResult.SAT
        assert solver.model([p])[p] is True

    def test_unsat_under_assumptions_is_recoverable(self):
        p = T.bool_var("aq")
        solver = SmtSolver()
        solver.add_assertion(T.mk_not(p))
        assert solver.check([p]) is SmtResult.UNSAT
        assert solver.check([T.mk_not(p)]) is SmtResult.SAT

    def test_true_assumptions_are_skipped(self):
        solver = SmtSolver()
        assert solver.check([T.TRUE, T.TRUE]) is SmtResult.SAT

    def test_false_assumption_short_circuits(self):
        solver = SmtSolver()
        assert solver.check([T.FALSE]) is SmtResult.UNSAT
        assert solver.unsat_core() == [T.FALSE]


class TestCores:
    def _interval_solver(self):
        x = T.bv_var("core_x", 4)
        low = T.mk_ult(bv(5), x)     # x > 5
        high = T.mk_ult(x, bv(3))    # x < 3
        odd = T.mk_eq(T.mk_bvand(x, bv(1)), bv(1))
        return SmtSolver(), low, high, odd

    def test_core_contains_conflicting_assumptions(self):
        solver, low, high, odd = self._interval_solver()
        assert solver.check([low, high, odd]) is SmtResult.UNSAT
        assert set(solver.unsat_core()) <= {low, high, odd}

    def test_minimized_core_is_minimal(self):
        solver, low, high, odd = self._interval_solver()
        assert solver.check([low, high, odd]) is SmtResult.UNSAT
        core = solver.minimize_core()
        assert set(core) == {low, high}
        # Minimality: every strict subset is satisfiable.
        for i in range(len(core)):
            subset = core[:i] + core[i + 1:]
            assert solver.check(subset) is SmtResult.SAT

    def test_minimize_core_with_explicit_core(self):
        solver, low, high, odd = self._interval_solver()
        assert solver.check([low, high, odd]) is SmtResult.UNSAT
        core = solver.minimize_core([low, high, odd])
        assert set(core) == {low, high}
