"""Tests for incremental solving: push/pop scopes, encode-cache reuse,
per-check statistics, and unsat-core edge cases."""

import pytest

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver


def bv(value, width=4):
    return T.bv_const(value, width)


class TestPushPop:
    def test_pop_retracts_assertions(self):
        x = T.bv_var("inc_x", 4)
        solver = SmtSolver()
        solver.add_assertion(T.mk_ult(bv(5), x))
        solver.push()
        solver.add_assertion(T.mk_ult(x, bv(3)))
        assert solver.check() is SmtResult.UNSAT
        solver.pop()
        assert solver.check() is SmtResult.SAT
        assert solver.model([x])[x] > 5

    def test_nested_scopes_retract_in_lifo_order(self):
        x = T.bv_var("inc_n", 4)
        solver = SmtSolver()
        solver.push()
        solver.add_assertion(T.mk_ult(x, bv(8)))       # x < 8
        solver.push()
        solver.add_assertion(T.mk_ult(bv(6), x))       # x > 6
        assert solver.check() is SmtResult.SAT
        assert solver.model([x])[x] == 7
        solver.pop()                                    # drop x > 6
        solver.add_assertion(T.mk_ult(x, bv(2)))       # x < 2, outer scope
        assert solver.check() is SmtResult.SAT
        assert solver.model([x])[x] < 2
        solver.pop()
        assert solver.num_scopes == 0
        assert solver.check() is SmtResult.SAT

    def test_pop_without_push_raises(self):
        solver = SmtSolver()
        with pytest.raises(RuntimeError):
            solver.pop()

    def test_assertions_view_tracks_scopes(self):
        p = T.bool_var("inc_p")
        q = T.bool_var("inc_q")
        solver = SmtSolver()
        solver.add_assertion(p)
        solver.push()
        solver.add_assertion(q)
        assert solver.assertions() == [p, q]
        solver.pop()
        assert solver.assertions() == [p]

    def test_scoped_false_assertion_recovers_after_pop(self):
        p = T.bool_var("inc_fp")
        solver = SmtSolver()
        solver.push()
        solver.add_assertion(T.FALSE)
        assert solver.check([p]) is SmtResult.UNSAT
        # The assertions alone are unsat: no assumption is to blame.
        assert solver.unsat_core() == []
        solver.pop()
        assert solver.check([p]) is SmtResult.SAT

    def test_assumptions_and_cores_inside_scope(self):
        x = T.bv_var("inc_c", 4)
        low = T.mk_ult(bv(5), x)
        high = T.mk_ult(x, bv(3))
        solver = SmtSolver()
        solver.push()
        solver.add_assertion(low)
        assert solver.check([high]) is SmtResult.UNSAT
        # The scope's activation literal must not leak into the core.
        assert solver.unsat_core() == [high]
        solver.pop()
        assert solver.check([high]) is SmtResult.SAT

    def test_learned_clauses_persist_across_pop(self):
        """Conflict clauses learned inside a scope survive its retraction."""
        solver = SmtSolver()
        x = T.bv_var("inc_l", 8)
        y = T.bv_var("inc_m", 8)
        solver.add_assertion(T.mk_eq(T.mk_mul(x, y), T.bv_const(143, 8)))
        solver.push()
        solver.add_assertion(T.mk_ult(bv(1, 8), x))
        assert solver.check() is SmtResult.SAT
        learned_before_pop = solver.sat.num_learned
        solver.pop()
        assert solver.sat.num_learned == learned_before_pop
        assert solver.check() is SmtResult.SAT


class TestEncodeCache:
    def test_repeated_scoped_query_reencodes_nothing(self):
        """The second scoped use of a formula is all cache hits."""
        x = T.bv_var("inc_e", 8)
        y = T.bv_var("inc_f", 8)
        equation = T.mk_eq(T.mk_mul(x, y), T.bv_const(77, 8))
        solver = SmtSolver()

        solver.push()
        solver.add_assertion(equation)
        assert solver.check() is SmtResult.SAT
        misses_after_first = solver.blaster.cache_misses
        solver.pop()

        solver.push()
        solver.add_assertion(equation)
        assert solver.check() is SmtResult.SAT
        solver.pop()
        assert solver.blaster.cache_misses == misses_after_first
        assert solver.blaster.cache_hits > 0

    def test_check_stats_report_cache_counters(self):
        x = T.bv_var("inc_g", 8)
        solver = SmtSolver()
        solver.add_assertion(T.mk_ult(bv(0, 8), x))
        assert solver.check() is SmtResult.SAT
        assert solver.last_check.checks == 1
        assert solver.last_check.encode_misses > 0
        # Re-checking does no new encoding work.
        assert solver.check() is SmtResult.SAT
        assert solver.last_check.encode_misses == 0
        assert solver.cumulative.checks == 2

    def test_variables_accessor(self):
        p = T.bool_var("inc_vp")
        x = T.bv_var("inc_vx", 4)
        solver = SmtSolver()
        solver.add_assertion(p)
        solver.add_assertion(T.mk_ult(bv(0), x))
        assert set(solver.blaster.variables()) == {p, x}
        assert solver.check() is SmtResult.SAT
        model = solver.model()  # no explicit list: uses variables()
        assert model[p] is True
        assert model[x] > 0


class TestCoreEdgeCases:
    def test_false_assertion_yields_empty_core(self):
        """Regression: a constant-false assertion must not blame assumptions."""
        p = T.bool_var("inc_ra")
        solver = SmtSolver()
        solver.add_assertion(T.FALSE)
        assert solver.check([p, T.TRUE]) is SmtResult.UNSAT
        assert solver.unsat_core() == []

    def test_true_assumptions_never_appear_in_core(self):
        p = T.bool_var("inc_rb")
        solver = SmtSolver()
        solver.add_assertion(T.mk_not(p))
        assert solver.check([T.TRUE, p, T.TRUE]) is SmtResult.UNSAT
        assert solver.unsat_core() == [p]

    def test_false_assumption_is_its_own_core(self):
        solver = SmtSolver()
        assert solver.check([T.FALSE]) is SmtResult.UNSAT
        assert solver.unsat_core() == [T.FALSE]
        assert solver.minimize_core() == [T.FALSE]

    def test_minimize_empty_core_is_empty(self):
        p = T.bool_var("inc_rc")
        solver = SmtSolver()
        solver.add_assertion(T.FALSE)
        assert solver.check([p]) is SmtResult.UNSAT
        assert solver.minimize_core() == []


class TestMinimizeCore:
    def _interval_solver(self):
        x = T.bv_var("inc_mx", 4)
        low = T.mk_ult(bv(5), x)     # x > 5
        high = T.mk_ult(x, bv(3))    # x < 3
        odd = T.mk_eq(T.mk_bvand(x, bv(1)), bv(1))
        return SmtSolver(), x, low, high, odd

    def test_minimize_is_idempotent(self):
        solver, _, low, high, odd = self._interval_solver()
        assert solver.check([low, high, odd]) is SmtResult.UNSAT
        once = solver.minimize_core()
        twice = solver.minimize_core(once)
        assert set(once) == set(twice) == {low, high}

    def test_minimize_restores_result_and_model(self):
        solver, x, low, high, odd = self._interval_solver()
        assert solver.check([low, high, odd]) is SmtResult.UNSAT
        stale_core = solver.unsat_core()
        # A later SAT check: its model must survive minimization.
        assert solver.check([low, odd]) is SmtResult.SAT
        value_before = solver.model([x])[x]
        solver.minimize_core(stale_core)
        assert solver.model([x])[x] == value_before

    def test_minimize_restores_unsat_state(self):
        solver, _, low, high, odd = self._interval_solver()
        assert solver.check([low, high, odd]) is SmtResult.UNSAT
        core_before = set(solver.unsat_core())
        solver.minimize_core()
        assert set(solver.unsat_core()) == core_before
        with pytest.raises(RuntimeError):
            solver.model()
