"""SmtSolver resource governance: UNKNOWN paths, reports, stats."""

import pytest

from repro.smt import bitblast
from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.solver.budget import (
    Budget,
    CancellationToken,
    REASON_CANCELLED,
    REASON_CONFLICTS,
)

WIDTH = 8


def factoring(feasible: bool = False):
    """Factor 143 = 11 * 13 with 1 < x, y < 16 (no 8-bit wraparound).

    The feasible variant is SAT (x=11, y=13 up to symmetry); capping x
    below 11 makes it UNSAT. Either way the SAT solver needs genuine
    conflicts — propagation alone cannot decide multiplication — which is
    the deterministic lever the conflict-budget tests rely on.
    """
    x = T.bv_var("fx", WIDTH)
    y = T.bv_var("fy", WIDTH)
    return [T.mk_eq(T.mk_mul(x, y), T.bv_const(143, WIDTH)),
            T.mk_ult(T.bv_const(1, WIDTH), x),
            T.mk_ult(T.bv_const(1, WIDTH), y),
            T.mk_ult(y, T.bv_const(16, WIDTH)),
            T.mk_ult(x, T.bv_const(16 if feasible else 11, WIDTH))]


class TestSearchTrips:
    def test_conflict_budget_yields_unknown_with_report(self):
        solver = SmtSolver(budget=Budget(conflicts=0))
        solver.add_assertions(factoring())
        assert solver.check() is SmtResult.UNKNOWN
        report = solver.last_report
        assert report is not None
        assert report.reason == REASON_CONFLICTS
        assert report.phase == "search"
        assert report.conflicts >= 1
        assert report.limits == {"conflicts": 0}

    def test_unbudgeted_answer_unchanged(self):
        solver = SmtSolver()
        solver.add_assertions(factoring())
        assert solver.check() is SmtResult.UNSAT
        feasible = SmtSolver()
        feasible.add_assertions(factoring(feasible=True))
        assert feasible.check() is SmtResult.SAT

    def test_check_stats_record_trip_and_time(self):
        solver = SmtSolver(budget=Budget(conflicts=0))
        solver.add_assertions(factoring())
        solver.check()
        assert solver.last_check.tripped == 1
        assert solver.last_check.seconds > 0
        assert solver.cumulative.tripped == 1

    def test_untripped_check_has_zero_trips(self):
        solver = SmtSolver()
        solver.add_assertion(T.bool_var("ok"))
        solver.check()
        assert solver.last_check.tripped == 0
        assert solver.last_report is None

    def test_budget_swappable_between_checks(self):
        solver = SmtSolver(budget=Budget(conflicts=0))
        solver.add_assertions(factoring())
        assert solver.check() is SmtResult.UNKNOWN
        solver.set_budget(None)
        assert solver.check() is SmtResult.UNSAT
        assert solver.last_report is None

    def test_legacy_max_conflicts_reports_too(self):
        solver = SmtSolver(max_conflicts=1)
        solver.add_assertions(factoring(feasible=True))
        assert solver.check() is SmtResult.UNKNOWN
        report = solver.last_report
        assert report is not None
        assert report.phase == "search"
        assert report.limits == {"max_conflicts": 1}


class TestEncodeTrips:
    def test_encode_trip_poisons_the_solver(self, monkeypatch):
        monkeypatch.setattr(bitblast, "_ENCODE_CHECK_INTERVAL", 1)
        token = CancellationToken()
        token.cancel()
        solver = SmtSolver(budget=Budget(token=token))
        for term in factoring():
            solver.add_assertion(term)  # must not raise
        assert solver.check() is SmtResult.UNKNOWN
        report = solver.last_report
        assert report is not None
        assert report.phase == "encode"
        assert report.reason == REASON_CANCELLED
        # The formula is only partially encoded: every later check must
        # stay UNKNOWN even after the budget is lifted.
        solver.set_budget(None)
        assert solver.check() is SmtResult.UNKNOWN
        assert solver.last_report is report

    def test_encode_checkpoint_interval_batches_checks(self, monkeypatch):
        monkeypatch.setattr(bitblast, "_ENCODE_CHECK_INTERVAL", 10_000)
        token = CancellationToken()
        token.cancel()
        solver = SmtSolver(budget=Budget(token=token))
        # Far fewer cache misses than the interval: no checkpoint fires
        # during encoding, so the trip surfaces in the search phase.
        solver.add_assertion(T.bool_var("tiny"))
        assert solver.check() is SmtResult.UNKNOWN
        assert solver.last_report.phase == "search"


class TestAnytimeMinimize:
    def _unsat_assumptions(self, solver):
        a = T.bool_var("ma")
        b = T.bool_var("mb")
        c = T.bool_var("mc")
        solver.add_assertion(T.mk_or(T.mk_not(a), T.mk_not(b)))
        return [a, b, c]

    def test_minimize_stops_on_trip_and_keeps_core(self):
        solver = SmtSolver()
        assumptions = self._unsat_assumptions(solver)
        assert solver.check(assumptions) is SmtResult.UNSAT
        core_before = solver.unsat_core()
        assert core_before
        token = CancellationToken()
        token.cancel()
        solver.set_budget(Budget(token=token))
        minimized = solver.minimize_core()
        # Anytime contract: the trip aborts probing, the smallest core
        # proven so far comes back unchanged, and the report says why.
        assert minimized == core_before
        assert solver.last_report is not None
        assert solver.last_report.reason == REASON_CANCELLED

    def test_minimize_unbudgeted_is_minimal(self):
        solver = SmtSolver()
        assumptions = self._unsat_assumptions(solver)
        assert solver.check(assumptions) is SmtResult.UNSAT
        minimized = solver.minimize_core()
        assert len(minimized) == 2
        assert solver.check(minimized) is SmtResult.UNSAT
