"""Tests for SMT-LIB 2 export."""

import re

import pytest

from repro.smt import terms as T
from repro.smt.smtlib import to_smtlib


def bv(value, width=4):
    return T.bv_const(value, width)


class TestExport:
    def test_declarations_and_assertion(self):
        x = T.bv_var("ex_x", 4)
        script = to_smtlib([T.mk_ult(x, bv(3))])
        assert "(set-logic QF_BV)" in script
        assert "(declare-const ex_x (_ BitVec 4))" in script
        assert "(assert (bvult ex_x (_ bv3 4)))" in script
        assert script.rstrip().endswith("(check-sat)")

    def test_boolean_variables(self):
        p, q = T.bool_var("ex_p"), T.bool_var("ex_q")
        script = to_smtlib([T.mk_or(p, T.mk_not(q))])
        assert "(declare-const ex_p Bool)" in script
        assert "(declare-const ex_q Bool)" in script

    def test_constants(self):
        script = to_smtlib([T.mk_eq(T.bv_var("ex_c", 8), bv(255, 8))])
        assert "(_ bv255 8)" in script

    def test_each_variable_declared_once(self):
        x = T.bv_var("ex_once", 4)
        script = to_smtlib([T.mk_ult(x, bv(3)), T.mk_ult(bv(0), x)])
        assert script.count("declare-const ex_once") == 1

    def test_shared_subterms_are_let_bound(self):
        x = T.bv_var("ex_share", 4)
        shared = T.mk_mul(x, x)
        formula = T.mk_and(T.mk_ult(shared, bv(8)),
                           T.mk_eq(shared, bv(4)))
        script = to_smtlib([formula])
        assert "define-fun .t" in script
        # The shared multiplication is rendered exactly once.
        assert script.count("(bvmul ex_share ex_share)") == 1

    def test_weird_names_are_quoted(self):
        x = T.bv_var("choose weird!", 4)
        script = to_smtlib([T.mk_eq(x, bv(0))])
        assert "|choose weird!|" in script

    def test_get_model_flag(self):
        script = to_smtlib([T.TRUE], get_model=True)
        assert "(get-model)" in script

    def test_no_check_sat(self):
        script = to_smtlib([T.TRUE], check_sat=False)
        assert "check-sat" not in script

    def test_all_operators_render(self):
        # bvsub/bvneg are normalized into bvadd/bvmul by the linear normal
        # form, so they never reach the exporter.
        x, y = T.bv_var("op_x", 4), T.bv_var("op_y", 4)
        formulas = [
            T.mk_eq(T.mk_add(x, y), T.mk_mul(x, y)),
            T.mk_eq(T.mk_udiv(x, y), T.mk_urem(x, y)),
            T.mk_eq(T.mk_sdiv(x, y), T.mk_srem(x, y)),
            T.mk_eq(T.mk_smod(x, y), T.mk_bvand(x, y)),
            T.mk_eq(T.mk_bvor(x, y), T.mk_bvxor(x, y)),
            T.mk_eq(T.mk_bvnot(x), T.mk_shl(x, y)),
            T.mk_eq(T.mk_lshr(x, y), T.mk_ashr(x, y)),
            T.mk_ule(x, y), T.mk_slt(x, y), T.mk_sle(x, y),
            T.mk_xor(T.mk_ult(x, y), T.mk_ule(y, x)),
        ]
        script = to_smtlib(formulas)
        for op_name in ("bvadd", "bvmul", "bvudiv", "bvurem",
                        "bvsdiv", "bvsrem", "bvsmod", "bvand", "bvor",
                        "bvxor", "bvnot", "bvshl", "bvlshr", "bvashr",
                        "bvule", "bvslt", "bvsle", "xor"):
            assert op_name in script, op_name

    def test_script_is_parenthesis_balanced(self):
        x = T.bv_var("bal_x", 4)
        formula = T.mk_ite(T.mk_ult(x, bv(2)),
                           T.mk_and(T.mk_eq(x, bv(1)), T.TRUE),
                           T.mk_eq(T.mk_mul(x, x), bv(4)))
        script = to_smtlib([formula])
        assert script.count("(") == script.count(")")
