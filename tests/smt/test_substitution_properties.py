"""Property tests tying substitution, evaluation, and solving together."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver

WIDTH = 4
MASK = (1 << WIDTH) - 1


@st.composite
def term_trees(draw, depth=3):
    """Random bitvector terms over variables a, b and small constants."""
    a = T.bv_var("prop_a", WIDTH)
    b = T.bv_var("prop_b", WIDTH)

    def build(level):
        if level == 0 or draw(st.booleans()):
            choice = draw(st.integers(min_value=0, max_value=3))
            if choice == 0:
                return a
            if choice == 1:
                return b
            return T.bv_const(draw(st.integers(min_value=0, max_value=MASK)),
                              WIDTH)
        op = draw(st.sampled_from([T.mk_add, T.mk_sub, T.mk_mul,
                                   T.mk_bvand, T.mk_bvor, T.mk_bvxor]))
        return op(build(level - 1), build(level - 1))

    return build(depth)


class TestSubstitution:
    @given(term_trees(), st.integers(min_value=0, max_value=MASK),
           st.integers(min_value=0, max_value=MASK))
    @settings(max_examples=100, deadline=None)
    def test_full_substitution_equals_evaluation(self, term, va, vb):
        """Substituting all variables constant-folds to evaluate's answer."""
        a = T.bv_var("prop_a", WIDTH)
        b = T.bv_var("prop_b", WIDTH)
        env = {a: T.bv_const(va, WIDTH), b: T.bv_const(vb, WIDTH)}
        substituted = T.substitute(term, env)
        assert substituted.is_const
        assert substituted.const_value() == T.evaluate(term, {a: va, b: vb})

    @given(term_trees())
    @settings(max_examples=50, deadline=None)
    def test_identity_substitution_is_noop(self, term):
        assert T.substitute(term, {}) is term

    @given(term_trees(), st.integers(min_value=0, max_value=MASK))
    @settings(max_examples=50, deadline=None)
    def test_partial_substitution_commutes(self, term, va):
        """Substituting a then b equals substituting both at once."""
        a = T.bv_var("prop_a", WIDTH)
        b = T.bv_var("prop_b", WIDTH)
        staged = T.substitute(T.substitute(term, {a: T.bv_const(va, WIDTH)}),
                              {b: T.bv_const(1, WIDTH)})
        at_once = T.substitute(term, {a: T.bv_const(va, WIDTH),
                                      b: T.bv_const(1, WIDTH)})
        assert staged is at_once

    @given(term_trees())
    @settings(max_examples=30, deadline=None)
    def test_solver_models_satisfy_equations(self, term):
        """Any model of `term == c` evaluates term to c."""
        a = T.bv_var("prop_a", WIDTH)
        b = T.bv_var("prop_b", WIDTH)
        target = T.bv_var("prop_t", WIDTH)
        solver = SmtSolver()
        solver.add_assertion(T.mk_eq(term, target))
        if solver.check() is SmtResult.SAT:
            model = solver.model([a, b, target])
            assert T.evaluate(term, {a: model[a], b: model[b]}) == \
                model[target]


class TestCegisSubstitutionContract:
    """The synthesis loop depends on substitution shrinking formulas."""

    def test_counterexample_substitution_folds_inputs_away(self):
        x = T.bv_var("cs_x", WIDTH)  # input
        h = T.bv_var("cs_h", WIDTH)  # hole
        goal = T.mk_eq(T.mk_mul(x, h), T.mk_add(x, x))
        bound = T.substitute(goal, {x: T.bv_const(3, WIDTH)})
        assert x not in T.term_vars(bound)
        assert h in T.term_vars(bound)
