"""Tests for the hash-consed term layer and its simplifying constructors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T


def bv(value, width=4):
    return T.bv_const(value, width)


class TestInterning:
    def test_structurally_equal_terms_are_identical(self):
        x = T.bv_var("ix", 4)
        a = T.mk_add(x, bv(1))
        b = T.mk_add(x, bv(1))
        assert a is b

    def test_commutative_normalization(self):
        x, y = T.bv_var("cx", 4), T.bv_var("cy", 4)
        assert T.mk_add(x, y) is T.mk_add(y, x)
        assert T.mk_mul(x, y) is T.mk_mul(y, x)
        assert T.mk_bvand(x, y) is T.mk_bvand(y, x)

    def test_distinct_widths_are_distinct_terms(self):
        assert T.bv_const(1, 4) is not T.bv_const(1, 5)


class TestBooleanSimplification:
    def test_not_involution(self):
        p = T.bool_var("p0")
        assert T.mk_not(T.mk_not(p)) is p

    def test_and_identity_and_zero(self):
        p = T.bool_var("p1")
        assert T.mk_and(p, T.TRUE) is p
        assert T.mk_and(p, T.FALSE) is T.FALSE
        assert T.mk_and() is T.TRUE

    def test_or_identity_and_zero(self):
        p = T.bool_var("p2")
        assert T.mk_or(p, T.FALSE) is p
        assert T.mk_or(p, T.TRUE) is T.TRUE
        assert T.mk_or() is T.FALSE

    def test_complement_pairs(self):
        p = T.bool_var("p3")
        assert T.mk_and(p, T.mk_not(p)) is T.FALSE
        assert T.mk_or(p, T.mk_not(p)) is T.TRUE

    def test_and_flattening(self):
        p, q, r = (T.bool_var(f"pf{i}") for i in range(3))
        nested = T.mk_and(T.mk_and(p, q), r)
        assert set(nested.args) == {p, q, r}

    def test_duplicate_conjuncts_collapse(self):
        p, q = T.bool_var("pd"), T.bool_var("qd")
        assert T.mk_and(p, q, p) is T.mk_and(p, q)

    def test_xor_units(self):
        p = T.bool_var("px")
        assert T.mk_xor(p, T.FALSE) is p
        assert T.mk_xor(p, T.TRUE) is T.mk_not(p)
        assert T.mk_xor(p, p) is T.FALSE

    def test_implies(self):
        p = T.bool_var("pi")
        assert T.mk_implies(T.FALSE, p) is T.TRUE
        assert T.mk_implies(T.TRUE, p) is p

    def test_ite_folding(self):
        p = T.bool_var("pt")
        x, y = T.bv_var("tx", 4), T.bv_var("ty", 4)
        assert T.mk_ite(T.TRUE, x, y) is x
        assert T.mk_ite(T.FALSE, x, y) is y
        assert T.mk_ite(p, x, x) is x

    def test_bool_ite_to_connectives(self):
        p, q = T.bool_var("pb"), T.bool_var("qb")
        assert T.mk_ite(p, T.TRUE, T.FALSE) is p
        assert T.mk_ite(p, T.FALSE, T.TRUE) is T.mk_not(p)
        assert T.mk_ite(p, q, T.FALSE) is T.mk_and(p, q)

    def test_ite_negated_condition_normalizes(self):
        p = T.bool_var("pn")
        x, y = T.bv_var("nx", 4), T.bv_var("ny", 4)
        assert T.mk_ite(T.mk_not(p), x, y) is T.mk_ite(p, y, x)


class TestBitvectorSimplification:
    def test_constant_folding_wraps(self):
        assert T.mk_add(bv(15), bv(1)).const_value() == 0
        assert T.mk_sub(bv(0), bv(1)).const_value() == 15
        assert T.mk_mul(bv(5), bv(5)).const_value() == 9  # 25 mod 16

    def test_additive_units(self):
        x = T.bv_var("ax", 4)
        assert T.mk_add(x, bv(0)) is x
        assert T.mk_sub(x, bv(0)) is x
        assert T.mk_sub(x, x) is T.bv_const(0, 4)

    def test_multiplicative_units(self):
        x = T.bv_var("mx", 4)
        assert T.mk_mul(x, bv(1)) is x
        assert T.mk_mul(x, bv(0)) is T.bv_const(0, 4)

    def test_neg_involution(self):
        x = T.bv_var("nx2", 4)
        assert T.mk_neg(T.mk_neg(x)) is x

    def test_bitwise_units(self):
        x = T.bv_var("bx", 4)
        assert T.mk_bvand(x, bv(15)) is x
        assert T.mk_bvand(x, bv(0)) is T.bv_const(0, 4)
        assert T.mk_bvor(x, bv(0)) is x
        assert T.mk_bvxor(x, x) is T.bv_const(0, 4)
        assert T.mk_bvnot(T.mk_bvnot(x)) is x

    def test_comparison_folding(self):
        assert T.mk_ult(bv(3), bv(5)) is T.TRUE
        assert T.mk_slt(bv(15), bv(0)) is T.TRUE  # -1 < 0 signed
        assert T.mk_ult(bv(15), bv(0)) is T.FALSE
        x = T.bv_var("cmp", 4)
        assert T.mk_ule(x, x) is T.TRUE
        assert T.mk_slt(x, x) is T.FALSE

    def test_eq_folding(self):
        x = T.bv_var("ex", 4)
        assert T.mk_eq(x, x) is T.TRUE
        assert T.mk_eq(bv(3), bv(3)) is T.TRUE
        assert T.mk_eq(bv(3), bv(4)) is T.FALSE

    def test_width_mismatch_rejected(self):
        with pytest.raises(TypeError):
            T.mk_add(T.bv_var("w4", 4), T.bv_var("w5", 5))

    def test_sort_mismatch_rejected(self):
        with pytest.raises(TypeError):
            T.mk_and(T.bv_var("s4", 4))
        with pytest.raises(TypeError):
            T.mk_add(T.bool_var("sb"), T.bool_var("sb2"))


class TestDivisionSemantics:
    """SMT-LIB division-by-zero and signedness conventions."""

    def test_udiv_by_zero_is_all_ones(self):
        assert T.mk_udiv(bv(7), bv(0)).const_value() == 15

    def test_urem_by_zero_is_dividend(self):
        assert T.mk_urem(bv(7), bv(0)).const_value() == 7

    def test_sdiv_truncates_toward_zero(self):
        assert T.mk_sdiv(bv(-7 & 15), bv(2)).const_value() == (-3 & 15)

    def test_srem_follows_dividend_sign(self):
        assert T.mk_srem(bv(-7 & 15), bv(3)).const_value() == (-1 & 15)

    def test_smod_follows_divisor_sign(self):
        assert T.mk_smod(bv(-7 & 15), bv(3)).const_value() == 2
        assert T.mk_smod(bv(7), bv(-3 & 15)).const_value() == (-2 & 15)


class TestTraversals:
    def test_term_size_counts_shared_nodes_once(self):
        x = T.bv_var("sx", 4)
        shared = T.mk_add(x, bv(1))
        expr = T.mk_eq(T.mk_mul(shared, shared), shared)
        # Nodes: x, 1, add, mul, eq — the shared add counts once.
        assert T.term_size(expr) == 5

    def test_term_vars(self):
        x, y = T.bv_var("vx", 4), T.bv_var("vy", 4)
        expr = T.mk_ult(T.mk_add(x, y), x)
        assert set(T.term_vars(expr)) == {x, y}

    def test_substitute_constant_folds(self):
        x, y = T.bv_var("ux", 4), T.bv_var("uy", 4)
        expr = T.mk_add(T.mk_mul(x, y), bv(1))
        result = T.substitute(expr, {x: bv(2), y: bv(3)})
        assert result.const_value() == 7

    def test_substitute_partial(self):
        x, y = T.bv_var("wx", 4), T.bv_var("wy", 4)
        expr = T.mk_add(x, y)
        result = T.substitute(expr, {x: bv(0)})
        assert result is y

    def test_substitute_sort_check(self):
        x = T.bv_var("zx", 4)
        with pytest.raises(TypeError):
            T.substitute(T.mk_add(x, x), {x: T.bv_const(0, 5)})

    def test_evaluate(self):
        x = T.bv_var("evx", 4)
        p = T.bool_var("evp")
        expr = T.mk_ite(p, T.mk_add(x, bv(1)), x)
        assert T.evaluate(expr, {p: True, x: 3}) == 4
        assert T.evaluate(expr, {p: False, x: 3}) == 3

    def test_evaluate_defaults_unassigned_to_zero(self):
        x = T.bv_var("dflt", 4)
        assert T.evaluate(T.mk_add(x, bv(2)), {}) == 2


class TestPrinting:
    def test_sexpr_output(self):
        x = T.bv_var("prx", 4)
        assert T.to_sexpr(T.mk_add(x, bv(1))) == "(bvadd (_ bv1 4) prx)" or \
            T.to_sexpr(T.mk_add(x, bv(1))) == "(bvadd prx (_ bv1 4))"

    def test_sexpr_depth_cap(self):
        x = T.bv_var("cap", 4)
        deep = x
        for _ in range(10):
            deep = T.mk_mul(deep, x)  # multiplication does not flatten
        assert "..." in T.to_sexpr(deep, max_depth=2)

    def test_add_chain_flattens_to_linear_form(self):
        """The linear normal form: x+1+1+...+1 is the single term x+10."""
        x = T.bv_var("cap2", 8)
        deep = x
        for _ in range(10):
            deep = T.mk_add(deep, T.bv_const(1, 8))
        assert deep is T.mk_add(x, T.bv_const(10, 8))

    def test_linear_normalization_identifies_equal_sums(self):
        """(a+b)+2c == 2c+b+a and x+x == 2x intern to the same term."""
        a, b, c = (T.bv_var(f"lin{i}", 8) for i in range(3))
        left = T.mk_add(T.mk_add(a, b), T.mk_mul(c, bv(2, 8)))
        right = T.mk_add(T.mk_add(T.mk_mul(bv(2, 8), c), b), a)
        assert left is right
        assert T.mk_add(a, a) is T.mk_mul(a, bv(2, 8))
        # Equalities between them fold away entirely.
        assert T.mk_eq(left, right) is T.TRUE
        assert T.mk_eq(T.mk_sub(left, right), T.bv_const(0, 8)) is T.TRUE


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255))
@settings(max_examples=100, deadline=None)
def test_signed_round_trip(a, b):
    width = 8
    signed = T.to_signed(a, width)
    assert -128 <= signed <= 127
    assert signed & 0xFF == a
    # add folding agrees with modular arithmetic
    total = T.mk_add(T.bv_const(a, width), T.bv_const(b, width))
    assert total.const_value() == (a + b) % 256
