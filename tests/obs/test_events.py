"""Tests for the event bus core: subscription, enabled flag, emission."""

import pytest

from repro.obs.events import BEGIN, BUS, END, Event, EventBus, INSTANT
from repro.obs.sinks import MemorySink


class TestSubscription:
    def test_enabled_tracks_subscribers(self):
        bus = EventBus()
        assert not bus.enabled
        unsub_a = bus.subscribe(MemorySink())
        assert bus.enabled
        unsub_b = bus.subscribe(MemorySink())
        unsub_a()
        assert bus.enabled  # one sink left
        unsub_b()
        assert not bus.enabled

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        sink_a, sink_b = MemorySink(), MemorySink()
        unsub_a = bus.subscribe(sink_a)
        bus.subscribe(sink_b)
        unsub_a()
        unsub_a()  # second call must not detach sink_b
        assert bus.sinks == [sink_b]
        assert bus.enabled

    def test_out_of_order_unsubscribe(self):
        bus = EventBus()
        unsub_a = bus.subscribe(MemorySink())
        unsub_b = bus.subscribe(MemorySink())
        unsub_a()  # LIFO not required
        assert bus.enabled
        unsub_b()
        assert not bus.enabled

    def test_same_sink_twice(self):
        bus = EventBus()
        sink = MemorySink()
        unsub_1 = bus.subscribe(sink)
        unsub_2 = bus.subscribe(sink)
        bus.instant("x", "test")
        assert len(sink.events) == 2  # delivered once per subscription
        unsub_1()
        bus.instant("y", "test")
        assert len(sink.events) == 3
        unsub_2()
        assert not bus.enabled


class TestEmission:
    def test_delivery_order_and_payload(self):
        bus = EventBus()
        sink = MemorySink()
        bus.subscribe(sink)
        bus.begin("op", "test", n=1)
        bus.instant("tick", "test")
        bus.end("op", "test", ok=True)
        phases = [e.ph for e in sink.events]
        assert phases == [BEGIN, INSTANT, END]
        assert sink.events[0].args == {"n": 1}
        assert sink.events[1].args is None  # no payload → no dict alloc
        assert sink.events[2].args == {"ok": True}

    def test_timestamps_monotonic(self):
        bus = EventBus()
        sink = MemorySink()
        bus.subscribe(sink)
        for index in range(100):
            bus.instant("t", "test", i=index)
        stamps = [e.ts_us for e in sink.events]
        assert stamps == sorted(stamps)

    def test_multiple_sinks_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("a"))
        bus.subscribe(lambda e: order.append("b"))
        bus.instant("x", "test")
        assert order == ["a", "b"]

    def test_event_to_dict(self):
        event = Event("smt.check", "smt", END, 12.5, {"result": "sat"})
        assert event.to_dict() == {
            "name": "smt.check", "cat": "smt", "ph": "E",
            "ts_us": 12.5, "args": {"result": "sat"}}
        bare = Event("vm.join", "vm", INSTANT, 1.0, None)
        assert bare.to_dict()["args"] == {}


class TestGlobalBus:
    def test_disabled_by_default(self):
        assert not BUS.enabled
        assert BUS.sinks == []

    def test_instrumented_code_emits_nothing_when_disabled(self):
        from repro.sym import fresh_bool, merge
        sink = MemorySink()
        merge(fresh_bool("off"), (1,), (1, 2))  # before subscribing
        unsubscribe = BUS.subscribe(sink)
        try:
            merge(fresh_bool("on"), (1,), (1, 2))
        finally:
            unsubscribe()
        merge(fresh_bool("off2"), (1,), (1, 2))  # after detaching
        unions = [e for e in sink.events if e.name == "vm.union"]
        assert len(unions) == 1
