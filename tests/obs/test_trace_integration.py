"""End-to-end tracing tests: the PR's acceptance criteria, automated.

A SYNTHCL benchmark run under ``REPRO_TRACE`` must produce a JSONL trace
that converts to a valid Chrome trace containing at least one query span,
one ``smt.check`` span with a result, one ``smt.encode`` event with its
cache disposition, and one ``vm.join`` event with a cardinality — and the
trace must satisfy the structural invariants (monotonic timestamps, LIFO
span nesting).
"""

import json

import pytest

from repro.obs import (
    MemorySink,
    check_trace_invariants,
    jsonl_to_chrome,
    load_jsonl_trace,
    reset_env_sink,
    tracing,
)
from repro.obs.events import BUS
from repro.queries import solve, verify
from repro.sym import fresh_int, ops
from repro.vm import assert_, current


def _factor_program():
    x = fresh_int("tx", width=8)
    y = fresh_int("ty", width=8)
    current().branch(ops.gt(x, 0), lambda: None, lambda: None)
    assert_(ops.num_eq(ops.mul(x, y), 15))
    assert_(ops.lt(1, x))
    assert_(ops.lt(1, y))


class TestEnvCapture:
    def test_synthcl_run_produces_valid_chrome_trace(self, tmp_path,
                                                     monkeypatch):
        from repro.sdsl.synthcl.bench import run_benchmark

        jsonl_path = tmp_path / "synthcl.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(jsonl_path))
        try:
            outcome = run_benchmark("FWT2s")
        finally:
            reset_env_sink()
        assert outcome.status == "sat"

        rows = load_jsonl_trace(jsonl_path)
        assert rows
        check_trace_invariants(rows)

        # ≥1 query span with a status.
        query_ends = [r for r in rows if r["name"] == "query.synthesize"
                      and r["ph"] == "E"]
        assert query_ends and query_ends[0]["args"]["status"] == "sat"
        # ≥1 check span with a result.
        check_ends = [r for r in rows if r["name"] == "smt.check"
                      and r["ph"] == "E"]
        assert check_ends
        assert all(c["args"]["result"] in ("sat", "unsat", "unknown")
                   for c in check_ends)
        # ≥1 encode span with its cache disposition.
        encode_ends = [r for r in rows if r["name"] == "smt.encode"
                       and r["ph"] == "E"]
        assert encode_ends
        for encode in encode_ends:
            assert {"hits", "misses", "cached"} <= set(encode["args"])
        # ≥1 VM join with a cardinality.
        joins = [r for r in rows if r["name"] == "vm.join"]
        assert joins
        assert all(j["args"]["cardinality"] >= 2 for j in joins)
        # CEGIS iterations are labelled, and the last one converged.
        iteration_ends = [r for r in rows if r["name"] == "cegis.iteration"
                          and r["ph"] == "E"]
        assert iteration_ends
        assert iteration_ends[-1]["args"]["outcome"] == "converged"

        # The Chrome conversion loads as strict JSON with the required
        # fields on every event.
        chrome_path = tmp_path / "synthcl.json"
        count = jsonl_to_chrome(jsonl_path, chrome_path)
        assert count == len(rows)
        with open(chrome_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for event in payload["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid"):
                assert key in event

    def test_hl_program_traced_via_env(self, tmp_path, monkeypatch):
        """The HL host language's query forms honor REPRO_TRACE too —
        zero-code-change capture is language-independent."""
        from repro.lang import run_program

        jsonl_path = tmp_path / "hl.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(jsonl_path))
        reset_env_sink()  # drop any writer captured with the old env
        try:
            results = run_program("""
              (define-symbolic x number?)
              (assert (> x 3))
              (define m (solve (assert (< x 6))))
              (evaluate x m)
            """, int_width=8)
        finally:
            reset_env_sink()
        assert results[-1] in (4, 5)

        rows = load_jsonl_trace(jsonl_path)
        check_trace_invariants(rows)
        names = {r["name"] for r in rows}
        assert "query.solve" in names and "smt.check" in names
        solve_ends = [r for r in rows if r["name"] == "query.solve"
                      and r["ph"] == "E"]
        assert solve_ends and solve_ends[-1]["args"]["status"] == "sat"

    def test_no_env_var_means_no_trace(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        reset_env_sink()
        outcome = solve(_factor_program)
        assert outcome.status == "sat"
        assert not BUS.enabled

    def test_env_writer_spans_multiple_queries(self, tmp_path, monkeypatch):
        """The env sink persists across queries: one file, both traces."""
        jsonl_path = tmp_path / "multi.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(jsonl_path))
        try:
            solve(_factor_program)
            solve(_factor_program)
        finally:
            reset_env_sink()
        rows = load_jsonl_trace(jsonl_path)
        check_trace_invariants(rows)
        solves = [r for r in rows if r["name"] == "query.solve"
                  and r["ph"] == "B"]
        assert len(solves) == 2


class TestTraceArgument:
    def test_path_argument_writes_jsonl(self, tmp_path):
        jsonl_path = tmp_path / "q.jsonl"
        outcome = solve(_factor_program, trace=str(jsonl_path))
        assert outcome.status == "sat"
        rows = load_jsonl_trace(jsonl_path)
        check_trace_invariants(rows)
        assert rows[0]["name"] == "query.solve"
        assert rows[-1]["name"] == "query.solve"
        assert rows[-1]["args"]["status"] == "sat"
        assert not BUS.enabled  # sink detached afterwards

    def test_callable_argument_receives_events(self):
        sink = MemorySink()
        outcome = verify(_factor_program, trace=sink)
        assert outcome.status == "sat"  # a counterexample exists
        names = {e.name for e in sink.events}
        assert "query.verify" in names and "smt.check" in names
        assert not BUS.enabled

    def test_query_span_reports_error_status(self, tmp_path):
        jsonl_path = tmp_path / "err.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            solve(lambda: (_ for _ in ()).throw(RuntimeError("boom")),
                  trace=str(jsonl_path))
        rows = load_jsonl_trace(jsonl_path)
        check_trace_invariants(rows)  # spans still balanced
        assert rows[-1]["name"] == "query.solve"
        assert rows[-1]["args"]["status"] == "error"

    def test_driver_level_trace_covers_a_sweep(self, tmp_path):
        """A synthcl verification sweep lands in ONE trace file."""
        from repro.sdsl.synthcl.bench import run_benchmark

        jsonl_path = tmp_path / "sweep.jsonl"
        outcome = run_benchmark("SF1v", bounds=[(1, 1), (1, 2)],
                                trace=str(jsonl_path))
        assert outcome.status == "unsat"
        rows = load_jsonl_trace(jsonl_path)
        check_trace_invariants(rows)
        sweeps = [r for r in rows if r["name"] == "query.verify"
                  and r["ph"] == "B"]
        assert len(sweeps) == 2  # both bounds, not just the last


class TestStatsEquivalence:
    def test_stats_identical_with_and_without_tracing(self):
        """Tracing must observe, not perturb: the rebased stats pipeline
        yields the same numbers whether or not a sink is attached."""
        baseline = solve(_factor_program)
        sink = MemorySink()
        traced = solve(_factor_program, trace=sink)
        assert baseline.status == traced.status == "sat"
        assert baseline.stats.solver_checks == traced.stats.solver_checks
        assert baseline.stats.solver_conflicts == \
            traced.stats.solver_conflicts
        assert baseline.stats.joins == traced.stats.joins
        assert baseline.stats.unions_created == traced.stats.unions_created
        assert baseline.stats.encode_cache_misses == \
            traced.stats.encode_cache_misses

    def test_check_events_match_query_stats(self):
        """The smt.check end events sum to exactly the query's stats."""
        sink = MemorySink()
        outcome = solve(_factor_program, trace=sink)
        ends = [e for e in sink.events
                if e.name == "smt.check" and e.ph == "E"]
        assert sum(e.args["checks"] for e in ends) == \
            outcome.stats.solver_checks
        assert sum(e.args["conflicts"] for e in ends) == \
            outcome.stats.solver_conflicts
        assert sum(e.args["encode_misses"] for e in ends) == \
            outcome.stats.encode_cache_misses
