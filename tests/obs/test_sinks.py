"""Tests for trace sinks: JSONL, Chrome trace-event export, summaries."""

import io
import json

from repro.obs.events import BEGIN, END, Event, EventBus, INSTANT
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlTraceWriter,
    SummarySink,
    jsonl_to_chrome,
)


def _span(bus):
    bus.begin("outer", "test", n=1)
    bus.instant("mark", "test")
    bus.begin("inner", "test")
    bus.end("inner", "test")
    bus.end("outer", "test", ok=True)


class TestJsonlWriter:
    def test_writes_one_json_object_per_line(self, tmp_path):
        bus = EventBus()
        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(path)
        bus.subscribe(writer)
        _span(bus)
        writer.close()
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 5
        rows = [json.loads(line) for line in lines]
        assert [r["ph"] for r in rows] == ["B", "i", "B", "E", "E"]
        assert rows[0]["args"] == {"n": 1}
        assert writer.events_written == 5

    def test_file_like_target_not_closed(self):
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer)
        writer(Event("x", "test", INSTANT, 1.0, None))
        writer.close()
        assert not buffer.closed  # caller owns file-likes
        assert json.loads(buffer.getvalue())["name"] == "x"

    def test_flushed_line_by_line(self, tmp_path):
        """A crashed run's trace is readable up to the failure point."""
        bus = EventBus()
        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(path)
        bus.subscribe(writer)
        bus.begin("op", "test")
        # Without close(): the line must already be on disk.
        assert json.loads(path.read_text().strip())["name"] == "op"
        writer.close()


class TestChromeExport:
    def test_sink_emits_loadable_json(self, tmp_path):
        bus = EventBus()
        sink = ChromeTraceSink(pid=7, tid=3)
        bus.subscribe(sink)
        _span(bus)
        path = tmp_path / "trace.json"
        sink.write(path)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)  # must parse as strict JSON
        events = payload["traceEvents"]
        assert len(events) == 5
        for event in events:
            assert event["ph"] in ("B", "E", "i")
            assert isinstance(event["ts"], (int, float))
            assert event["pid"] == 7
            assert event["tid"] == 3
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)
        assert payload["displayTimeUnit"] == "ms"

    def test_jsonl_to_chrome_roundtrip(self, tmp_path):
        bus = EventBus()
        jsonl = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(jsonl)
        bus.subscribe(writer)
        _span(bus)
        writer.close()
        chrome = tmp_path / "t.json"
        count = jsonl_to_chrome(jsonl, chrome, pid=9, tid=2)
        assert count == 5
        with open(chrome, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert len(payload["traceEvents"]) == 5
        for event in payload["traceEvents"]:
            for key in ("name", "cat", "ph", "ts", "pid", "tid", "args"):
                assert key in event
            assert event["pid"] == 9 and event["tid"] == 2


class TestSummarySink:
    def test_aggregates_by_nesting_path(self):
        bus = EventBus()
        summary = SummarySink()
        bus.subscribe(summary)
        for _ in range(3):
            _span(bus)
        report = summary.report()
        lines = report.splitlines()
        assert "span" in lines[0]
        outer = next(line for line in lines if line.startswith("outer"))
        assert " 3 " in " ".join(outer.split())
        inner = next(line for line in lines if "inner" in line)
        assert inner.startswith("  ")  # nested under outer

    def test_tolerates_unbalanced_end(self):
        summary = SummarySink()
        summary(Event("orphan", "test", END, 1.0, None))  # must not raise
        assert summary.report()
