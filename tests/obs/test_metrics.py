"""Tests for the metrics registry and the standard bus aggregation."""

import json

import pytest

from repro.obs.events import END, Event, EventBus, INSTANT
from repro.obs.metrics import (
    BusMetrics,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(0.25)
        assert gauge.snapshot() == 0.25

    def test_histogram_buckets(self):
        hist = Histogram()
        for value in (0, 1, 2, 3, 5, 9):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 6
        assert snap["sum"] == 20
        assert snap["max"] == 9
        # 0→0, 1→1, 2→2, 3→4, 5→8, 9→16
        assert snap["buckets"] == {"0": 1, "1": 1, "2": 1, "4": 1,
                                   "8": 1, "16": 1}

    def test_registry_get_or_create_and_type_check(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        assert registry.counter("a") is counter
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.histogram("a.first").observe(3)
        registry.gauge("m.mid").set(1.5)
        snap = registry.snapshot()
        assert list(snap) == ["a.first", "m.mid", "z.last"]
        json.dumps(snap)  # must not raise


def _check_end(**args) -> Event:
    defaults = {"result": "sat", "checks": 1, "conflicts": 0,
                "decisions": 0, "propagations": 0, "learned": 0,
                "encode_hits": 0, "encode_misses": 0, "seconds": 0.001,
                "tripped": 0}
    defaults.update(args)
    return Event("smt.check", "smt", END, 1.0, defaults)


class TestBusMetrics:
    def test_check_aggregation(self):
        metrics = BusMetrics()
        metrics(_check_end(result="sat", conflicts=10,
                           encode_hits=3, encode_misses=1))
        metrics(_check_end(result="unsat", conflicts=2, encode_hits=5))
        snap = metrics.snapshot()
        assert snap["smt.checks"] == 2
        assert snap["smt.result.sat"] == 1
        assert snap["smt.result.unsat"] == 1
        assert snap["smt.conflicts"] == 12
        assert snap["derived.encode_cache_hit_rate"] == 8 / 9
        assert snap["derived.conflicts_per_check"] == 6.0
        assert snap["smt.check_conflicts"]["count"] == 2

    def test_vm_and_sat_events(self):
        metrics = BusMetrics()
        metrics(Event("vm.join", "vm", INSTANT, 1.0, {"cardinality": 2}))
        metrics(Event("vm.union", "vm", INSTANT, 2.0, {"cardinality": 3}))
        metrics(Event("vm.merge", "vm", INSTANT, 3.0, {"locations": 4}))
        metrics(Event("sat.restart", "sat", INSTANT, 4.0, {"restarts": 2}))
        metrics(Event("sat.budget_trip", "sat", INSTANT, 5.0,
                      {"reason": "conflicts", "phase": "search"}))
        metrics(Event("cegis.iteration", "query", END, 6.0,
                      {"outcome": "converged"}))
        snap = metrics.snapshot()
        assert snap["vm.joins"] == 1
        assert snap["vm.union_cardinality"]["max"] == 3
        assert snap["vm.merges"] == 1
        assert snap["sat.restarts"] == 1
        assert snap["sat.budget_trip.conflicts"] == 1
        assert snap["cegis.outcome.converged"] == 1

    def test_unknown_events_ignored(self):
        metrics = BusMetrics()
        metrics(Event("custom.thing", "x", INSTANT, 1.0, None))
        assert metrics.registry.snapshot() == {}

    def test_subscribed_context(self):
        bus = EventBus()
        metrics = BusMetrics(bus=bus)
        with metrics.subscribed():
            bus.emit(_check_end())
        bus.emit(_check_end())  # after detach: not counted
        assert metrics.snapshot()["smt.checks"] == 1
        assert not bus.enabled

    def test_live_query_aggregation(self):
        """End-to-end: metrics subscribed across a real solve."""
        from repro.queries import solve
        from repro.sym import fresh_int, ops
        from repro.vm import assert_, current

        def program():
            x = fresh_int("mx", width=8)
            current().branch(ops.gt(x, 0), lambda: None, lambda: None)
            assert_(ops.num_eq(ops.mul(x, x), 49))

        metrics = BusMetrics()
        with metrics.subscribed():
            outcome = solve(program)
        assert outcome.status == "sat"
        snap = metrics.snapshot()
        assert snap["smt.checks"] == 1
        assert snap["smt.result.sat"] == 1
        assert snap["vm.joins"] >= 1
        assert snap["encode.spans"] >= 1
        assert 0.0 <= snap["derived.encode_cache_hit_rate"] <= 1.0
        # The snapshot agrees with the query's own stats (one emission
        # path: both consumed the same smt.check events).
        assert snap["smt.conflicts"] == outcome.stats.solver_conflicts
        assert snap["smt.encode_misses"] == outcome.stats.encode_cache_misses
