"""Tests for symbolic value wrappers, unions, and constant factories."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.sym import (
    FreshStream,
    fresh_bool,
    fresh_int,
    set_default_int_width,
    default_int_width,
)
from repro.sym.values import (
    Box,
    SymBool,
    SymInt,
    SymbolicError,
    Union,
    bool_term,
    int_term,
    wrap_bool,
    wrap_int,
)


class TestWrapping:
    def test_wrap_bool_folds_constants(self):
        assert wrap_bool(T.TRUE) is True
        assert wrap_bool(T.FALSE) is False
        assert isinstance(wrap_bool(T.bool_var("wv")), SymBool)

    def test_wrap_int_folds_constants_signed(self):
        assert wrap_int(T.bv_const(5, 4)) == 5
        assert wrap_int(T.bv_const(15, 4)) == -1  # two's complement
        assert isinstance(wrap_int(T.bv_var("wi", 4)), SymInt)

    def test_bool_term_round_trip(self):
        b = fresh_bool()
        assert bool_term(b) is b.term
        assert bool_term(True) is T.TRUE

    def test_int_term_of_concrete(self):
        term = int_term(3, width=4)
        assert term.const_value() == 3

    def test_bool_is_not_an_int(self):
        with pytest.raises(TypeError):
            int_term(True)


class TestSymBool:
    def test_connective_operators(self):
        a, b = fresh_bool("ba"), fresh_bool("bb")
        assert isinstance(a & b, SymBool)
        assert isinstance(a | b, SymBool)
        assert isinstance(~a, SymBool)
        assert isinstance(a ^ b, SymBool)

    def test_operators_fold_with_constants(self):
        a = fresh_bool()
        assert (a & False) is False
        assert (a | True) is True
        assert (a ^ False).term is a.term

    def test_no_concrete_truth_value(self):
        with pytest.raises(SymbolicError):
            bool(fresh_bool())

    def test_equality_builds_iff(self):
        a, b = fresh_bool(), fresh_bool()
        assert isinstance(a == b, SymBool)
        same = fresh_bool("same", numbered=False)
        again = fresh_bool("same", numbered=False)
        assert (same == again) is True

    def test_hashable(self):
        a = fresh_bool()
        assert hash(a) == hash(a.term)


class TestSymInt:
    def test_arithmetic_operators(self):
        x = fresh_int("xa")
        assert isinstance(x + 1, SymInt)
        assert isinstance(1 + x, SymInt)
        assert isinstance(x - 1, SymInt)
        assert isinstance(2 - x, SymInt)
        assert isinstance(x * 3, SymInt)
        assert isinstance(-x, SymInt)
        assert isinstance(x // 2, SymInt)
        assert isinstance(x % 2, SymInt)

    def test_operators_fold_units(self):
        x = fresh_int()
        assert (x + 0).term is x.term
        assert (x * 1).term is x.term

    def test_bitwise_and_shifts(self):
        x = fresh_int()
        assert isinstance(x & 3, SymInt)
        assert isinstance(x | 3, SymInt)
        assert isinstance(x ^ 3, SymInt)
        assert isinstance(~x, SymInt)
        assert isinstance(x << 1, SymInt)
        assert isinstance(x >> 1, SymInt)

    def test_comparisons_build_symbools(self):
        x = fresh_int()
        for expr in (x < 1, x <= 1, x > 1, x >= 1, x == 1, x != 1):
            assert isinstance(expr, SymBool)

    def test_no_concrete_truth_value(self):
        with pytest.raises(SymbolicError):
            bool(fresh_int())

    def test_eq_with_non_number_is_not_implemented(self):
        x = fresh_int()
        assert (x == "hello") is False  # Python falls back to identity
        assert (x == True) is False     # bools are not numbers

    def test_width_respected(self):
        x = fresh_int("w3", width=3)
        assert x.width == 3
        assert (x + 1).width == 3


class TestDefaultWidth:
    def test_set_and_restore(self):
        old = default_int_width()
        try:
            set_default_int_width(6)
            assert fresh_int().width == 6
        finally:
            set_default_int_width(old)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_default_int_width(0)


class TestFresh:
    def test_numbered_names_are_distinct(self):
        a, b = fresh_int("n"), fresh_int("n")
        assert a.term is not b.term

    def test_unnumbered_names_are_shared(self):
        a = fresh_int("fixed", numbered=False)
        b = fresh_int("fixed", numbered=False)
        assert a.term is b.term

    def test_stream_iteration(self):
        stream = FreshStream("s", kind="int", width=4)
        first, second = next(stream), next(stream)
        assert first.term is not second.term
        assert first.width == 4

    def test_bool_stream(self):
        stream = FreshStream("t", kind="bool")
        assert isinstance(stream.next(), SymBool)

    def test_bad_stream_kind(self):
        with pytest.raises(ValueError):
            FreshStream("u", kind="float")


class TestUnion:
    def test_false_guards_are_dropped(self):
        union = Union([(T.FALSE, 1), (T.bool_var("ug"), 2)])
        assert len(union) == 1

    def test_nested_unions_flatten(self):
        g1, g2, g3 = (T.bool_var(f"uf{i}") for i in range(3))
        inner = Union([(g1, 1), (g2, (2,))])
        outer = Union([(g3, inner)])
        assert len(outer) == 2
        assert all(not isinstance(v, Union) for v in outer.values())

    def test_map_applies_under_guards(self):
        g1, g2 = T.bool_var("um1"), T.bool_var("um2")
        union = Union([(g1, (1,)), (g2, (1, 2))])
        mapped = union.map(lambda lst: len(lst))
        assert set(mapped.values()) == {1, 2}
        assert mapped.guards() == union.guards()


class TestBox:
    def test_read_write_protocol(self):
        box = Box(10, name="cell")
        assert box._sym_read(None) == 10
        box._sym_write_raw(None, 20)
        assert box.value == 20

    def test_boxes_have_unique_default_names(self):
        assert Box(1).name != Box(1).name
