"""Regression tests for merge flattening with a TRUE guard.

merge_many's precondition is pairwise-disjoint guards, so a TRUE guard
makes every other entry infeasible. The old `_flatten` kept the infeasible
entries anyway, so the merge produced an ite (or a union) whose dead
branches inflated every downstream formula.
"""

from repro.smt import terms as T
from repro.sym.merge import merge_many
from repro.sym.values import SymInt, Union, wrap_int


class TestTrueGuardShortCircuit:
    def test_true_guard_returns_lone_value(self):
        b = T.bool_var("fg_b")
        assert merge_many([(b, 1), (T.TRUE, 2)]) == 2
        assert merge_many([(T.TRUE, 1), (b, 2)]) == 1

    def test_no_ite_is_built(self):
        b = T.bool_var("fg_c")
        x = wrap_int(T.bv_var("fg_x", 8))
        result = merge_many([(b, x), (T.TRUE, 3)])
        # A concrete int, not a SymInt wrapping ite(b, x, 3).
        assert result == 3
        assert not isinstance(result, SymInt)

    def test_no_union_is_built_across_classes(self):
        b = T.bool_var("fg_d")
        result = merge_many([(b, (1, 2)), (T.TRUE, 7)])
        assert result == 7
        assert not isinstance(result, Union)

    def test_true_guarded_union_is_flattened(self):
        b = T.bool_var("fg_e")
        c = T.bool_var("fg_f")
        inner = Union([(c, 1), (T.mk_not(c), (2, 3))])
        result = merge_many([(b, 99), (T.TRUE, inner)])
        assert isinstance(result, Union)
        assert len(result.entries) == 2
        # No entry is guarded by (or mentions) the dead guard b.
        for guard, _ in result.entries:
            assert b not in T.term_vars(guard)

    def test_disjoint_symbolic_guards_still_merge(self):
        b = T.bool_var("fg_g")
        result = merge_many([(b, 1), (T.mk_not(b), 2)])
        assert isinstance(result, SymInt)  # genuine ite, nothing dropped
