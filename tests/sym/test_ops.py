"""Tests for the lifted primitive operations (concrete folding + lifting)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.sym import fresh_bool, fresh_int, merge, set_default_int_width, ops
from repro.sym.values import SymBool, SymInt, Union

small_ints = st.integers(min_value=-8, max_value=7)


class TestConcreteFolding:
    """With concrete operands every op must produce a plain Python value
    with finite-precision (default-width) semantics."""

    @given(small_ints, small_ints)
    @settings(max_examples=50, deadline=None)
    def test_add_sub_mul(self, a, b):
        assert ops.add(a, b) == a + b
        assert ops.sub(a, b) == a - b
        assert ops.mul(a, b) == a * b

    def test_wrapping_at_width(self):
        from repro.sym import default_int_width, set_default_int_width
        old = default_int_width()
        try:
            set_default_int_width(4)
            assert ops.add(7, 1) == -8  # overflow wraps in 4 bits
            assert ops.mul(4, 4) == 0
        finally:
            set_default_int_width(old)

    def test_truncating_division(self):
        assert ops.div(7, 2) == 3
        assert ops.div(-7, 2) == -3     # truncates toward zero
        assert ops.rem(-7, 2) == -1     # remainder keeps dividend sign
        assert ops.modulo(-7, 2) == 1   # modulo keeps divisor sign

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            ops.div(1, 0)
        with pytest.raises(ZeroDivisionError):
            ops.rem(1, 0)
        with pytest.raises(ZeroDivisionError):
            ops.modulo(1, 0)

    @given(small_ints, small_ints)
    @settings(max_examples=50, deadline=None)
    def test_comparisons(self, a, b):
        assert ops.lt(a, b) == (a < b)
        assert ops.le(a, b) == (a <= b)
        assert ops.gt(a, b) == (a > b)
        assert ops.ge(a, b) == (a >= b)
        assert ops.num_eq(a, b) == (a == b)

    def test_bitwise(self):
        assert ops.bitand(6, 3) == 2
        assert ops.bitor(6, 3) == 7
        assert ops.bitxor(6, 3) == 5
        assert ops.bitnot(0) == -1

    def test_boolean_connectives(self):
        assert ops.and_(True, True) is True
        assert ops.and_(True, False) is False
        assert ops.or_(False, False) is False
        assert ops.or_(False, True) is True
        assert ops.not_(False) is True
        assert ops.implies(False, False) is True

    def test_type_errors(self):
        with pytest.raises(TypeError):
            ops.add(1, "x")
        with pytest.raises(TypeError):
            ops.add(True, 1)  # booleans are not numbers
        with pytest.raises(TypeError):
            ops.and_(1, True)
        with pytest.raises(TypeError):
            ops.not_(0)


class TestSymbolicLifting:
    def test_symbolic_operand_builds_term(self):
        x = fresh_int("ox")
        result = ops.add(x, 1)
        assert isinstance(result, SymInt)

    def test_short_circuit_with_constants(self):
        b = fresh_bool()
        assert ops.and_(False, b) is False
        assert ops.or_(True, b) is True
        assert isinstance(ops.and_(True, b), SymBool)

    def test_symbolic_result_is_satisfiable_correctly(self):
        x = fresh_int("oy")
        constraint = ops.num_eq(ops.add(ops.mul(x, 2), 1), 7)
        solver = SmtSolver()
        solver.add_assertion(constraint.term)
        assert solver.check() is SmtResult.SAT
        assert T.to_signed(solver.model([x.term])[x.term], x.width) == 3


class TestSymEqual:
    def test_primitives(self):
        assert ops.sym_equal(1, 1) is True
        assert ops.sym_equal(1, 2) is False
        assert ops.sym_equal(True, True) is True
        assert isinstance(ops.sym_equal(fresh_int(), 1), SymBool)

    def test_bool_int_never_equal(self):
        assert ops.sym_equal(True, 1) is False

    def test_lists_structural(self):
        assert ops.sym_equal((1, 2), (1, 2)) is True
        assert ops.sym_equal((1, 2), (1, 3)) is False
        assert ops.sym_equal((1,), (1, 2)) is False
        x = fresh_int()
        symbolic = ops.sym_equal((x, 2), (3, 2))
        assert isinstance(symbolic, SymBool)

    def test_strings_and_none(self):
        assert ops.sym_equal("a", "a") is True
        assert ops.sym_equal("a", "b") is False
        assert ops.sym_equal(None, None) is True
        assert ops.sym_equal("a", None) is False

    def test_union_equality_is_guarded(self):
        union = merge(fresh_bool(), (1,), (1, 2))
        result = ops.sym_equal(union, (1,))
        assert isinstance(result, SymBool)

    def test_union_on_right(self):
        union = merge(fresh_bool(), "x", (1,))
        assert isinstance(ops.sym_equal("x", union), SymBool)


class TestTruthy:
    def test_booleans_pass_through(self):
        assert ops.truthy(True) is True
        assert ops.truthy(False) is False
        b = fresh_bool()
        assert ops.truthy(b) is b

    def test_non_booleans_are_true(self):
        assert ops.truthy(0) is True       # Scheme truthiness: only #f is false
        assert ops.truthy(()) is True
        assert ops.truthy("") is True

    def test_union_truthiness(self):
        union = merge(fresh_bool("tb"), False, (1,))
        result = ops.truthy(union)
        assert isinstance(result, SymBool)
        # The union is truthy exactly when the list member is selected.
        solver = SmtSolver()
        solver.add_assertion(result.term)
        assert solver.check() is SmtResult.SAT

    def test_union_of_true_and_list_is_definitely_truthy(self):
        # Both members are truthy, so the disjunction folds to True.
        union = merge(fresh_bool("tc"), True, (1,))
        assert ops.truthy(union) is True

    def test_union_with_symbolic_bool_member(self):
        union = merge(fresh_bool("td"), fresh_bool("inner"), (1,))
        assert isinstance(ops.truthy(union), SymBool)


class TestShifts:
    def test_concrete_shifts(self):
        assert ops.shl(1, 3) == 8
        assert ops.lshr(8, 3) == 1
        assert ops.ashr(-8, 2) == -2

    def test_overshift_is_zero(self):
        from repro.sym import default_int_width
        width = default_int_width()
        assert ops.shl(1, width) == 0
        assert ops.lshr(1, width) == 0
