"""Tests for the type-driven merging function µ (Figure 9)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.sym import fresh_bool, fresh_int, merge, merge_many
from repro.sym.merge import class_key, merge_strategy
from repro.sym.values import Box, SymBool, SymInt, Union


def guards_are_disjoint(union: Union) -> bool:
    """Check pairwise disjointness of guards with the solver."""
    from repro.smt.solver import SmtResult, SmtSolver
    guards = union.guards()
    for i in range(len(guards)):
        for j in range(i + 1, len(guards)):
            solver = SmtSolver()
            solver.add_assertion(T.mk_and(guards[i], guards[j]))
            if solver.check() is SmtResult.SAT:
                return False
    return True


class TestConcreteConditions:
    def test_true_picks_left(self):
        assert merge(True, 1, 2) == 1

    def test_false_picks_right(self):
        assert merge(False, 1, 2) == 2

    def test_identical_values_short_circuit(self):
        value = ("a", "b")
        assert merge(fresh_bool(), value, value) is value


class TestPrimitiveMerging:
    def test_integers_merge_logically(self):
        b = fresh_bool("mb")
        merged = merge(b, 1, 2)
        assert isinstance(merged, SymInt)
        assert merged.term.op == T.OP_ITE

    def test_booleans_merge_logically(self):
        b = fresh_bool("mb2")
        merged = merge(b, True, False)
        assert isinstance(merged, SymBool)
        assert merged.term is b.term

    def test_symbolic_integers_merge(self):
        b, x, y = fresh_bool(), fresh_int("mx"), fresh_int("my")
        merged = merge(b, x, y)
        assert isinstance(merged, SymInt)

    def test_int_bool_do_not_merge_into_primitive(self):
        merged = merge(fresh_bool(), 1, True)
        assert isinstance(merged, Union)
        assert len(merged) == 2


class TestListMerging:
    def test_same_length_lists_merge_elementwise(self):
        b, x = fresh_bool(), fresh_int()
        merged = merge(b, (1, x), (2, x))
        assert isinstance(merged, tuple)
        assert isinstance(merged[0], SymInt)
        assert merged[1] is x

    def test_different_length_lists_form_union(self):
        merged = merge(fresh_bool(), (1,), (1, 2))
        assert isinstance(merged, Union)
        assert sorted(len(v) for v in merged.values()) == [1, 2]

    def test_nested_lists_merge_structurally(self):
        b = fresh_bool()
        merged = merge(b, ((1,), 2), ((3,), 4))
        assert isinstance(merged, tuple)
        assert isinstance(merged[0], tuple)
        assert isinstance(merged[0][0], SymInt)

    def test_revpos_shape(self):
        """Figure 6: filtering n symbolic values yields n+1 merged lists."""
        from repro.sym import ops
        xs = [fresh_int(f"rp{i}") for i in range(3)]
        ps = ()
        for x in xs:
            consed = ps.map(lambda l, x=x: (x,) + l) \
                if isinstance(ps, Union) else (x,) + ps
            ps = merge(ops.gt(x, 0), consed, ps)
        assert isinstance(ps, Union)
        assert sorted(len(v) for v in ps.values()) == [0, 1, 2, 3]
        assert guards_are_disjoint(ps)


class TestPointerMerging:
    def test_same_box_merges_to_itself(self):
        box = Box(1)
        assert merge(fresh_bool(), box, box) is box

    def test_distinct_boxes_form_union(self):
        merged = merge(fresh_bool(), Box(1), Box(2))
        assert isinstance(merged, Union)

    def test_procedures_merge_by_identity(self):
        def f():
            return 1
        def g():
            return 2
        assert merge(fresh_bool(), f, f) is f
        assert isinstance(merge(fresh_bool(), f, g), Union)


class TestAtomMerging:
    def test_equal_strings_merge(self):
        assert merge(fresh_bool(), "abc", "abc") == "abc"

    def test_different_strings_form_union(self):
        merged = merge(fresh_bool(), "abc", "xyz")
        assert isinstance(merged, Union)

    def test_none_merges_with_none(self):
        assert merge(fresh_bool(), None, None) is None


class TestUnionMerging:
    def _union_ab(self):
        return merge(fresh_bool("ub"), (1,), (1, 2))

    def test_union_with_matching_member(self):
        union = self._union_ab()
        merged = merge(fresh_bool("um"), union, (9,))
        assert isinstance(merged, Union)
        # Still one member per class: lengths {1, 2}.
        assert sorted(len(v) for v in merged.values()) == [1, 2]
        assert guards_are_disjoint(merged)

    def test_union_with_unmatched_value(self):
        union = self._union_ab()
        merged = merge(fresh_bool(), union, (1, 2, 3))
        assert sorted(len(v) for v in merged.values()) == [1, 2, 3]
        assert guards_are_disjoint(merged)

    def test_union_union_merges_by_class(self):
        left = merge(fresh_bool(), (1,), (1, 2))
        right = merge(fresh_bool(), (9,), (8, 7, 6))
        merged = merge(fresh_bool(), left, right)
        assert sorted(len(v) for v in merged.values()) == [1, 2, 3]
        assert guards_are_disjoint(merged)

    def test_nonunion_union_flips(self):
        union = self._union_ab()
        merged = merge(fresh_bool(), (9, 9, 9), union)
        assert sorted(len(v) for v in merged.values()) == [1, 2, 3]

    def test_unions_never_nest(self):
        union = self._union_ab()
        other = merge(fresh_bool(), "a", (1, 2, 3))
        merged = merge(fresh_bool(), union, other)
        assert all(not isinstance(v, Union) for v in merged.values())


class TestMergeMany:
    def test_single_entry(self):
        assert merge_many([(T.TRUE, 42)]) == 42

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            merge_many([])

    def test_primitive_group_merges_to_ite_chain(self):
        guards = [fresh_bool(f"g{i}").term for i in range(3)]
        merged = merge_many(list(zip(guards, [10, 20, 30])))
        assert isinstance(merged, SymInt)

    def test_mixed_classes_group_into_union(self):
        guards = [fresh_bool(f"h{i}").term for i in range(3)]
        merged = merge_many(list(zip(guards, [1, (2,), (3, 4)])))
        assert isinstance(merged, Union)
        assert len(merged) == 3

    def test_union_entries_are_flattened(self):
        union = merge(fresh_bool(), (1,), (1, 2))
        merged = merge_many([(fresh_bool().term, union),
                             (fresh_bool().term, (5, 6, 7))])
        assert all(not isinstance(v, Union) for v in merged.values())

    def test_same_length_lists_merge_into_one(self):
        guards = [fresh_bool(f"k{i}").term for i in range(2)]
        merged = merge_many(list(zip(guards, [(1, 2), (3, 4)])))
        assert isinstance(merged, tuple)
        assert len(merged) == 2


class TestClassKey:
    def test_bool_and_int_are_different_classes(self):
        assert class_key(True) != class_key(1)

    def test_symbolic_and_concrete_int_share_class(self):
        assert class_key(fresh_int()) == class_key(3)

    def test_list_class_includes_length(self):
        assert class_key((1,)) != class_key((1, 2))
        assert class_key((1,)) == class_key((9,))

    def test_union_has_no_class(self):
        union = merge(fresh_bool(), (1,), (1, 2))
        with pytest.raises(TypeError):
            class_key(union)


class TestMergeStrategy:
    def test_logical_strategy_disables_structural_list_merge(self):
        with merge_strategy("logical"):
            merged = merge(fresh_bool(), (1,), (2,))
            assert isinstance(merged, Union)
        # Back to type-driven: same-length lists merge structurally.
        merged = merge(fresh_bool(), (1,), (2,))
        assert isinstance(merged, tuple)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            merge_strategy("optimistic")


class TestSemanticCorrectness:
    """µ must denote: result == u when cond else v — checked via models."""

    @given(st.integers(min_value=-4, max_value=3),
           st.integers(min_value=-4, max_value=3),
           st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_primitive_merge_denotes_selection(self, a, b, pick):
        from repro.queries.outcome import Model
        from repro.smt.solver import Model as SmtModel
        cond = fresh_bool("sem")
        merged = merge(cond, a, b)
        model = Model(SmtModel({cond.term: pick}))
        expected = a if pick else b
        assert model.evaluate(merged) == expected

    @given(st.lists(st.integers(min_value=-4, max_value=3),
                    min_size=0, max_size=3),
           st.lists(st.integers(min_value=-4, max_value=3),
                    min_size=0, max_size=3),
           st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_list_merge_denotes_selection(self, left, right, pick):
        from repro.queries.outcome import Model
        from repro.smt.solver import Model as SmtModel
        cond = fresh_bool("sem2")
        merged = merge(cond, tuple(left), tuple(right))
        model = Model(SmtModel({cond.term: pick}))
        expected = tuple(left) if pick else tuple(right)
        assert model.evaluate(merged) == expected
