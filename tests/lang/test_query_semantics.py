"""HL query semantics details from Figure 8 (rule SQ1 and friends)."""

import pytest

from repro.lang.interp import Interpreter
from repro.sym.values import SymInt
from repro.vm.context import VM


@pytest.fixture
def session():
    interp = Interpreter(int_width=8)
    vm = VM()
    vm.__enter__()
    yield interp, vm
    vm.__exit__(None, None, None)


class TestSq1StoreDiscipline:
    def test_solve_restores_the_assertion_store(self, session):
        """SQ1: ⟨(solve e), σ, π, α⟩ → ⟨model, σ0, π, α⟩ — α, not α0."""
        interp, vm = session
        interp.run("(define-symbolic x number?)")
        interp.run("(assert (> x 0))")
        before = list(vm.assertions)
        interp.run("(solve (assert (< x 5)))")
        assert vm.assertions == before  # the query's assertion is gone

    def test_solve_sees_prior_assertions(self, session):
        interp, vm = session
        interp.run("(define-symbolic x number?)")
        interp.run("(assert (> x 10))")
        value = interp.run(
            "(evaluate x (solve (assert (< x 13))))")[0]
        assert 10 < value < 13

    def test_solve_keeps_side_effects(self, session):
        """SQ1 keeps σ0: mutations from evaluating e survive the query."""
        interp, vm = session
        interp.run("(define counter 0)")
        interp.run("(solve (begin (set! counter (+ counter 1)) (assert #t)))")
        assert interp.run("counter")[0] == 1

    def test_verify_restores_the_store_too(self, session):
        interp, vm = session
        interp.run("(define-symbolic y number?)")
        before = list(vm.assertions)
        interp.run("(verify (assert (> y 100)))")
        assert vm.assertions == before

    def test_failed_solve_restores_the_store(self, session):
        interp, vm = session
        interp.run("(define-symbolic z number?)")
        before = list(vm.assertions)
        result = interp.run("(solve (assert (and (< z 0) (> z 0))))")[0]
        assert result is False
        assert vm.assertions == before

    def test_nested_queries(self, session):
        """A solve inside a solve: each restores its own increment."""
        interp, vm = session
        interp.run("(define-symbolic w number?)")
        value = interp.run("""
            (evaluate w
              (solve (begin
                       (assert (> w 3))
                       (if (sat? (solve (assert (> w 100))))
                           (assert (< w 120))
                           (assert (< w 6))))))
        """)[0]
        # The inner solve is satisfiable (w can exceed 100), so the outer
        # asserts w < 120; any 3 < w < 120 works.
        assert 3 < value < 120
        assert vm.assertions == []


class TestFig8Details:
    def test_hl_has_no_eq_operator(self, session):
        """§4.4: eq?/eqv? are deliberately excluded from HL."""
        from repro.lang.interp import LangError
        interp, _ = session
        with pytest.raises(LangError):
            interp.run("(eq? 1 1)")
        with pytest.raises(LangError):
            interp.run("(eqv? 1 1)")

    def test_if_requires_branches(self, session):
        from repro.lang.interp import LangError
        interp, _ = session
        with pytest.raises(LangError):
            interp.run("(if #t)")

    def test_define_symbolic_rejects_other_types(self, session):
        """Fig. 7: define-symbolic only creates boolean? and number?."""
        from repro.lang.interp import LangError
        interp, _ = session
        with pytest.raises(LangError):
            interp.run("(define-symbolic l list?)")

    def test_assertion_store_collects_across_toplevel(self, session):
        interp, vm = session
        interp.run("(define-symbolic p boolean?)")
        interp.run("(assert p)")
        interp.run("(define-symbolic q boolean?)")
        interp.run("(assert q)")
        assert len(vm.assertions) == 2

    def test_pl1_style_symbolic_arithmetic(self, session):
        """Rule PL1: + over symbolic operands builds an expression."""
        interp, _ = session
        interp.run("(define-symbolic n number?)")
        value = interp.run("(+ n 1)")[0]
        assert isinstance(value, SymInt)

    def test_ap2_union_of_closures(self, session):
        """Rule AP2: applying a union of procedures merges the results."""
        interp, _ = session
        interp.run("(define-symbolic b boolean?)")
        value = interp.run("""
            (define f (if b (lambda (v) (+ v 1)) (lambda (v) (* v 2))))
            (f 10)
        """)[-1]
        assert isinstance(value, SymInt)
