"""Tests for the HL REPL session driver."""

import pytest

from repro.lang.repl import Repl


@pytest.fixture
def repl():
    session = Repl(int_width=8)
    yield session
    session._stop()


class TestRepl:
    def test_evaluates_expressions(self, repl):
        assert repl.eval_line("(+ 1 2)") == "3"

    def test_definitions_persist(self, repl):
        assert repl.eval_line("(define x 10)") is None
        assert repl.eval_line("(* x x)") == "100"

    def test_assertions_accumulate_across_lines(self, repl):
        repl.eval_line("(define-symbolic x number?)")
        repl.eval_line("(assert (> x 3))")
        output = repl.eval_line("(evaluate x (solve (assert (< x 6))))")
        assert output in ("4", "5")

    def test_asserts_command(self, repl):
        assert "empty" in repl.eval_line(",asserts")
        repl.eval_line("(define-symbolic b boolean?)")
        repl.eval_line("(assert b)")
        assert "b" in repl.eval_line(",asserts")

    def test_reset_clears_definitions(self, repl):
        repl.eval_line("(define x 1)")
        repl.eval_line(",reset")
        assert "error" in repl.eval_line("x")

    def test_width_command(self, repl):
        repl.eval_line(",width 4")
        repl.eval_line("(define-symbolic n number?)")
        output = repl.eval_line("(evaluate n (solve (assert (= n 7))))")
        assert output == "7"
        assert "usage" in repl.eval_line(",width nope")

    def test_parse_errors_are_reported(self, repl):
        assert "error" in repl.eval_line("(unclosed")

    def test_runtime_errors_are_reported(self, repl):
        assert "error" in repl.eval_line("(car null)")

    def test_quit_raises_eof(self, repl):
        with pytest.raises(EOFError):
            repl.eval_line(",quit")

    def test_blank_lines_ignored(self, repl):
        assert repl.eval_line("   ") is None
