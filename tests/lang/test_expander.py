"""Tests for the syntax-rules macro expander."""

import pytest

from repro.lang.expander import MacroError, MacroExpander
from repro.lang.reader import read, read_all


def expand_program(source: str):
    """Expand all forms; define-syntax forms are consumed."""
    expander = MacroExpander()
    out = []
    for form in read_all(source):
        expanded = expander.expand(form)
        if expanded is not None:
            out.append(expanded)
    return out


class TestBasicRules:
    def test_simple_substitution(self):
        forms = expand_program("""
            (define-syntax twice (syntax-rules () [(_ e) (+ e e)]))
            (twice 3)
        """)
        assert forms == [read("(+ 3 3)")]

    def test_multiple_rules_first_match_wins(self):
        forms = expand_program("""
            (define-syntax m (syntax-rules ()
              [(_ a) (one a)]
              [(_ a b) (two a b)]))
            (m 1)
            (m 1 2)
        """)
        assert forms == [read("(one 1)"), read("(two 1 2)")]

    def test_literals_must_match(self):
        forms = expand_program("""
            (define-syntax rel (syntax-rules (=>)
              [(_ a => b) (pair a b)]))
            (rel 1 => 2)
        """)
        assert forms == [read("(pair 1 2)")]
        with pytest.raises(MacroError):
            expand_program("""
                (define-syntax rel (syntax-rules (=>)
                  [(_ a => b) (pair a b)]))
                (rel 1 to 2)
            """)

    def test_wildcard(self):
        forms = expand_program("""
            (define-syntax ignore (syntax-rules () [(_ _ keep) keep]))
            (ignore junk 42)
        """)
        assert forms == [42]

    def test_recursive_expansion(self):
        forms = expand_program("""
            (define-syntax my-or (syntax-rules ()
              [(_) #f]
              [(_ e) e]
              [(_ e rest ...) (if e e (my-or rest ...))]))
            (my-or 1 2 3)
        """)
        assert forms == [read("(if 1 1 (if 2 2 3))")]


class TestEllipses:
    def test_simple_repetition(self):
        forms = expand_program("""
            (define-syntax lst (syntax-rules () [(_ x ...) (list x ...)]))
            (lst 1 2 3)
            (lst)
        """)
        assert forms == [read("(list 1 2 3)"), read("(list)")]

    def test_repetition_with_trailing_pattern(self):
        forms = expand_program("""
            (define-syntax rotate (syntax-rules ()
              [(_ first mid ... final) (list final mid ... first)]))
            (rotate 1 2 3 4)
        """)
        assert forms == [read("(list 4 2 3 1)")]

    def test_paired_repetition(self):
        forms = expand_program("""
            (define-syntax my-let (syntax-rules ()
              [(_ ([name value] ...) body)
               ((lambda (name ...) body) value ...)]))
            (my-let ([x 1] [y 2]) (+ x y))
        """)
        assert forms == [read("((lambda (x y) (+ x y)) 1 2)")]

    def test_nested_ellipses(self):
        """The automaton macro's shape: per-state lists of transitions."""
        forms = expand_program("""
            (define-syntax table (syntax-rules ()
              [(_ [state (label target) ...] ...)
               (list (list 'state (list 'label 'target) ...) ...)]))
            (table [s1 (a s2) (b s1)] [s2])
        """)
        assert forms == [read(
            "(list (list 's1 (list 'a 's2) (list 'b 's1)) (list 's2))")]

    def test_mismatched_repetition_counts(self):
        with pytest.raises(MacroError):
            expand_program("""
                (define-syntax bad (syntax-rules ()
                  [(_ (a ...) (b ...)) ((a b) ...)]))
                (bad (1 2) (3))
            """)

    def test_ellipsis_variable_without_ellipsis_in_template(self):
        with pytest.raises(MacroError):
            expand_program("""
                (define-syntax bad2 (syntax-rules () [(_ x ...) x]))
                (bad2 1 2)
            """)


class TestErrors:
    def test_no_matching_rule(self):
        with pytest.raises(MacroError):
            expand_program("""
                (define-syntax one (syntax-rules () [(_ a) a]))
                (one 1 2)
            """)

    def test_malformed_define_syntax(self):
        with pytest.raises(MacroError):
            expand_program("(define-syntax 42 (syntax-rules ()))")

    def test_nonterminating_macro_detected(self):
        with pytest.raises(MacroError):
            expand_program("""
                (define-syntax loop (syntax-rules () [(_ x) (loop x)]))
                (loop 1)
            """)

    def test_quote_is_opaque(self):
        forms = expand_program("""
            (define-syntax t (syntax-rules () [(_ x) x]))
            '(t 1)
        """)
        assert forms == [read("'(t 1)")]
