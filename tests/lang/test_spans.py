"""Source positions: tokens, the SourceMap, and located errors."""

import pytest

from repro.lang.interp import Interpreter, LangError
from repro.lang.reader import (
    ParseError,
    Span,
    read_all_spanned,
    tokenize,
)

SOURCE = """\
(define (double x)
  (* x 2))
(double
  21)
"""


class TestTokens:
    def test_positions_are_one_based(self):
        tokens = tokenize("(+ 1 2)")
        assert [(t.value, t.line, t.col) for t in tokens] == [
            ("(", 1, 1), ("+", 1, 2), ("1", 1, 4), ("2", 1, 6), (")", 1, 7)]

    def test_newlines_advance_lines(self):
        tokens = tokenize("a\n  bb\n   c")
        assert [(t.value, t.line, t.col, t.end_col) for t in tokens] == [
            ("a", 1, 1, 2), ("bb", 2, 3, 5), ("c", 3, 4, 5)]

    def test_string_spans_cover_quotes(self):
        (token,) = tokenize('"hi there"')
        assert (token.line, token.col, token.end_col) == (1, 1, 11)


class TestSourceMap:
    def test_form_spans_cover_multi_line_forms(self):
        forms, srcmap = read_all_spanned(SOURCE, "demo.hl")
        define, call = forms
        assert srcmap.span_of(define) == Span(1, 1, 2, 11, "demo.hl")
        assert srcmap.span_of(call) == Span(3, 1, 4, 6, "demo.hl")

    def test_nested_forms_and_atoms(self):
        forms, srcmap = read_all_spanned(SOURCE, "demo.hl")
        define = forms[0]
        header, body = define[1], define[2]
        assert srcmap.span_of(header) == Span(1, 9, 1, 19, "demo.hl")
        assert srcmap.span_of(body) == Span(2, 3, 2, 10, "demo.hl")
        # Atoms are located by (parent, index).
        assert srcmap.atom_span(header, 1) == Span(1, 17, 1, 18, "demo.hl")
        assert srcmap.span_at(body, 2) == Span(2, 8, 2, 9, "demo.hl")

    def test_top_level_atoms_keyed_by_forms_list(self):
        forms, srcmap = read_all_spanned("alpha\n42", "top.hl")
        assert srcmap.span_at(forms, 0) == Span(1, 1, 1, 6, "top.hl")
        assert srcmap.span_at(forms, 1) == Span(2, 1, 2, 3, "top.hl")

    def test_quote_forms_are_recorded(self):
        forms, srcmap = read_all_spanned("'(1 2)", "q.hl")
        assert srcmap.span_of(forms[0]) == Span(1, 1, 1, 7, "q.hl")

    def test_span_label(self):
        span = Span(3, 7, 3, 9, "file.hl")
        assert span.label() == "file.hl:3:7"
        assert Span(1, 1, 1, 2).label() == "<string>:1:1"


class TestParseErrors:
    def test_unterminated_string_located(self):
        with pytest.raises(ParseError, match=r"f\.hl:1:6: unterminated"):
            read_all_spanned('(ok) "oops', "f.hl")

    def test_missing_closer_points_at_opener(self):
        with pytest.raises(ParseError, match=r"g\.hl:2:3: missing closing"):
            read_all_spanned("(a\n  (b c", "g.hl")

    def test_mismatched_delimiter_located(self):
        with pytest.raises(ParseError, match=r"<string>:1:3: mismatched"):
            read_all_spanned("(a]")


class TestLocatedLangErrors:
    def test_runtime_error_carries_top_form_position(self):
        interp = Interpreter()
        source = "(define x 1)\n(undefined-fn x)\n"
        with pytest.raises(LangError, match=r"prog\.hl:2:1: unbound"):
            interp.run(source, filename="prog.hl")

    def test_error_has_span_attribute(self):
        interp = Interpreter()
        try:
            interp.run("(nope 1)", filename="c.hl")
        except LangError as error:
            assert error.span == Span(1, 1, 1, 9, "c.hl")
        else:
            pytest.fail("expected LangError")

    def test_locate_is_idempotent(self):
        error = LangError("boom")
        span = Span(2, 5, 2, 9, "x.hl")
        error.locate(span)
        error.locate(Span(9, 9, 9, 9, "y.hl"))
        assert error.span == span
        assert str(error).startswith("x.hl:2:5: boom")

    def test_run_without_filename_still_locates(self):
        interp = Interpreter()
        with pytest.raises(LangError, match=r"<string>:1:1"):
            interp.run("(nope 1)")

    def test_clean_programs_unaffected(self):
        interp = Interpreter()
        assert interp.run(SOURCE)[-1] == 42
