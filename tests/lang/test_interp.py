"""Tests for the HL interpreter: evaluation, closures, symbolic semantics."""

import pytest

from repro.lang import LangError, run_program
from repro.lang.reader import Symbol
from repro.queries.outcome import Model
from repro.sym.values import SymBool, SymInt, Union
from repro.vm.errors import AssertionFailure


def run1(source: str, width: int = 8):
    """Run a program and return the last form's value."""
    return run_program(source, int_width=width)[-1]


class TestCoreEvaluation:
    def test_literals(self):
        assert run1("42") == 42
        assert run1("#t") is True
        assert run1('"str"') == "str"

    def test_arithmetic(self):
        assert run1("(+ 1 2 3)") == 6
        assert run1("(- 10 3 2)") == 5
        assert run1("(- 5)") == -5
        assert run1("(* 2 3 4)") == 24
        assert run1("(quotient 7 2)") == 3
        assert run1("(remainder 7 2)") == 1
        assert run1("(modulo -7 2)") == 1

    def test_comparisons(self):
        assert run1("(< 1 2 3)") is True
        assert run1("(< 1 3 2)") is False
        assert run1("(= 2 2 2)") is True
        assert run1("(>= 3 3 2)") is True

    def test_define_and_reference(self):
        assert run1("(define x 10) (+ x 1)") == 11

    def test_function_definition_sugar(self):
        assert run1("(define (square n) (* n n)) (square 5)") == 25

    def test_lambda_and_application(self):
        assert run1("((lambda (a b) (+ a b)) 3 4)") == 7

    def test_variadic_lambda(self):
        assert run1("((lambda args (length args)) 1 2 3)") == 3

    def test_closures_capture_environment(self):
        assert run1("""
            (define (adder n) (lambda (m) (+ n m)))
            ((adder 10) 5)
        """) == 15

    def test_recursion(self):
        assert run1("""
            (define (fib n)
              (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
            (fib 10)
        """) == 55

    def test_letrec_mutual_recursion(self):
        assert run1("""
            (letrec ([even? (lambda (n) (if (= n 0) #t (odd? (- n 1))))]
                     [odd?  (lambda (n) (if (= n 0) #f (even? (- n 1))))])
              (even? 10))
        """) is True

    def test_named_let(self):
        assert run1("""
            (let loop ([i 0] [acc 0])
              (if (= i 5) acc (loop (+ i 1) (+ acc i))))
        """) == 10

    def test_let_star_sequential(self):
        assert run1("(let* ([x 1] [y (+ x 1)]) (+ x y))") == 3

    def test_set_bang(self):
        assert run1("(define x 1) (set! x 2) x") == 2

    def test_begin(self):
        assert run1("(define x 0) (begin (set! x 1) (set! x (+ x 1)) x)") == 2

    def test_cond_else(self):
        assert run1("(cond [#f 1] [else 2])") == 2

    def test_case_dispatch(self):
        assert run1("(case 2 [(1) 'one] [(2 3) 'two-or-three] [else 'many])") \
            == Symbol("two-or-three")

    def test_and_or_short_circuit(self):
        assert run1("(and 1 2 3)") == 3
        assert run1("(and 1 #f 3)") is False
        assert run1("(or #f 2)") == 2
        assert run1("(or #f #f)") is False

    def test_when_unless(self):
        assert run1("(when #t 1)") == 1
        assert run1("(unless #f 2)") == 2

    def test_quote_produces_data(self):
        value = run1("'(a 1 (b))")
        assert value == (Symbol("a"), 1, (Symbol("b"),))

    def test_lists(self):
        assert run1("(cons 1 '(2 3))") == (1, 2, 3)
        assert run1("(map (lambda (v) (* v v)) '(1 2 3))") == (1, 4, 9)
        assert run1("(foldl + 0 '(1 2 3))") == 6
        assert run1("(filter odd? '(1 2 3 4 5))") == (1, 3, 5)
        assert run1("(reverse (range 3))") == (2, 1, 0)

    def test_vectors_and_boxes(self):
        assert run1("""
            (define v (vector 1 2 3))
            (vector-set! v 0 9)
            (+ (vector-ref v 0) (vector-length v))
        """) == 12
        assert run1("(define b (box 1)) (set-box! b 7) (unbox b)") == 7

    def test_unbound_identifier(self):
        with pytest.raises(LangError):
            run1("nope")

    def test_error_builtin_fails(self):
        with pytest.raises(AssertionFailure):
            run1('(error "boom")')


class TestSymbolicEvaluation:
    def test_define_symbolic_types(self):
        from repro.sym.values import SymBool, SymInt
        results = run_program("""
            (define-symbolic b boolean?)
            (define-symbolic n number?)
            b n
        """, int_width=4)
        assert isinstance(results[-2], SymBool)
        assert isinstance(results[-1], SymInt)
        assert results[-1].width == 4

    def test_define_symbolic_is_stable(self):
        assert run1("""
            (define (static) (define-symbolic x number?) x)
            (equal? (static) (static))
        """) is True

    def test_define_symbolic_star_is_fresh(self):
        value = run1("""
            (define (dynamic) (define-symbolic* y number?) y)
            (equal? (dynamic) (dynamic))
        """)
        assert isinstance(value, SymBool)

    def test_symbolic_if_merges(self):
        value = run1("""
            (define-symbolic b boolean?)
            (if b 1 2)
        """)
        assert isinstance(value, SymInt)

    def test_symbolic_branch_with_different_shapes(self):
        value = run1("""
            (define-symbolic b boolean?)
            (if b '(1) '(1 2))
        """)
        assert isinstance(value, Union)

    def test_symbolic_list_ref(self):
        value = run1("""
            (define-symbolic i number?)
            (list-ref '(10 20 30) i)
        """)
        assert isinstance(value, SymInt)

    def test_set_bang_merges_at_joins(self):
        value = run1("""
            (define-symbolic b boolean?)
            (define x 0)
            (if b (set! x 1) (set! x 2))
            x
        """)
        assert isinstance(value, SymInt)

    def test_choose_is_stable_per_site(self):
        value = run1("""
            (define (pick) (choose 1 2))
            (equal? (pick) (pick))
        """)
        assert value is True

    def test_for_all_reflection(self):
        value = run1("""
            (define-symbolic b boolean?)
            (define u (if b "short" "longer!"))
            (for/all ([s u]) (regexp-match? "short" s))
        """)
        assert isinstance(value, SymBool)


class TestQueriesInHL:
    def test_solve_and_evaluate(self):
        value = run1("""
            (define-symbolic x number?)
            (define m (solve (assert (= (* x x) 25))))
            (evaluate x m)
        """)
        assert value in (5, -5)

    def test_solve_unsat_returns_false(self):
        assert run1("""
            (define-symbolic x number?)
            (solve (assert (and (< x 0) (> x 0))))
        """) is False

    def test_solve_respects_prior_assertions(self):
        value = run1("""
            (define-symbolic x number?)
            (assert (> x 10))
            (define m (solve (assert (< x 13))))
            (evaluate x m)
        """)
        assert 10 < value < 13

    def test_verify_no_counterexample(self):
        assert run1("""
            (define-symbolic x number?)
            (verify (assert (= x x)))
        """) is False

    def test_verify_counterexample_model(self):
        result = run1("""
            (define-symbolic x number?)
            (define cex (verify (assert (< x 10))))
            (evaluate x cex)
        """)
        assert result >= 10

    def test_synthesize_constant(self):
        value = run1("""
            (define-symbolic x number?)
            (define-symbolic c number?)
            (define m (synthesize [x] (assert (= (* x c) (+ x x)))))
            (evaluate c m)
        """)
        assert value == 2

    def test_sat_unsat_predicates(self):
        results = run_program("""
            (define-symbolic x number?)
            (sat? (solve (assert (= x 1))))
            (unsat? (solve (assert (and (< x 0) (> x 0)))))
        """, int_width=8)
        assert results[-2] is True
        assert results[-1] is True

    def test_debug_core(self):
        core = run1("""
            (define-symbolic unused number?)
            (define core (debug [number?] (assert (= (+ 2 2) 5))))
            core
        """)
        assert len(core) >= 1
