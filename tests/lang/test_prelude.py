"""Tests for the HL standard prelude (written in HL itself)."""

import pytest

from repro.lang import run_program
from repro.lang.reader import Symbol
from repro.sym.values import SymBool, SymInt


def run1(source: str, width: int = 8):
    return run_program(source, int_width=width)[-1]


class TestListUtilities:
    def test_accessors(self):
        assert run1("(cadr '(1 2 3))") == 2
        assert run1("(caddr '(1 2 3))") == 3
        assert run1("(caar '((9) 2))") == 9
        assert run1("(cddr '(1 2 3 4))") == (3, 4)

    def test_list_tail(self):
        assert run1("(list-tail '(1 2 3 4) 2)") == (3, 4)
        assert run1("(list-tail '(1) 0)") == (1,)

    def test_member(self):
        assert run1("(member 2 '(1 2 3))") == (2, 3)
        assert run1("(member 9 '(1 2 3))") is False

    def test_assoc(self):
        assert run1("(assoc 'b '((a 1) (b 2)))") == (Symbol("b"), 2)
        assert run1("(assoc 'z '((a 1)))") is False

    def test_andmap_ormap(self):
        assert run1("(andmap positive? '(1 2 3))") is True
        assert run1("(andmap positive? '(1 -2 3))") is False
        assert run1("(andmap positive? null)") is True
        assert run1("(ormap negative? '(1 -2 3))") is True
        assert run1("(ormap negative? '(1 2))") is False

    def test_remove(self):
        assert run1("(remove 2 '(1 2 3 2))") == (1, 3, 2)
        assert run1("(remove 9 '(1 2))") == (1, 2)

    def test_count(self):
        assert run1("(count even? '(1 2 3 4 5 6))") == 3

    def test_append_map(self):
        assert run1("(append-map (lambda (v) (list v v)) '(1 2))") == \
            (1, 1, 2, 2)

    def test_index_of(self):
        assert run1("(index-of '(a b c) 'c)") == 2
        assert run1("(index-of '(a b c) 'z)") is False

    def test_flatten(self):
        assert run1("(flatten '((1 (2)) (3) 4))") == (1, 2, 3, 4)

    def test_sum_and_iota(self):
        assert run1("(sum (iota 5))") == 10


class TestHigherOrder:
    def test_compose(self):
        assert run1("((compose add1 add1) 1)") == 3

    def test_const_and_identity(self):
        assert run1("((const 7) 1 2 3)") == 7
        assert run1("(identity 'x)") == Symbol("x")

    def test_curry2(self):
        assert run1("((curry2 + 10) 5)") == 15


class TestNumericHelpers:
    def test_clamp(self):
        assert run1("(clamp 0 10 15)") == 10
        assert run1("(clamp 0 10 -3)") == 0
        assert run1("(clamp 0 10 7)") == 7

    def test_between(self):
        assert run1("(between? 1 5 3)") is True
        assert run1("(between? 1 5 9)") is False

    def test_sgn(self):
        assert run1("(sgn -9)") == -1
        assert run1("(sgn 0)") == 0
        assert run1("(sgn 2)") == 1


class TestPreludeOnSymbolicValues:
    """The prelude is defined over lifted builtins, so it lifts for free."""

    def test_member_with_symbolic_element(self):
        value = run1("""
            (define-symbolic x number?)
            (member x '(1 2 3))
        """)
        from repro.sym.values import Union
        assert isinstance(value, (Union, SymBool)) or value is False

    def test_andmap_on_symbolic_list(self):
        value = run1("""
            (define-symbolic a number?)
            (define-symbolic b number?)
            (andmap positive? (list a b))
        """)
        assert isinstance(value, SymBool)

    def test_clamp_symbolic(self):
        value = run1("""
            (define-symbolic v number?)
            (clamp 0 10 v)
        """)
        assert isinstance(value, SymInt)

    def test_sum_of_symbolic_list(self):
        value = run1("""
            (define-symbolic n number?)
            (sum (list n 1 2))
        """)
        assert isinstance(value, SymInt)

    def test_solve_through_prelude_code(self):
        value = run1("""
            (define-symbolic x number?)
            (define m (solve (assert (equal? (clamp 0 10 x) 7))))
            (evaluate x m)
        """)
        assert value == 7

    def test_prelude_can_be_disabled(self):
        from repro.lang import Interpreter, LangError
        from repro.vm.context import VM
        interp = Interpreter(prelude=False)
        with VM():
            with pytest.raises(LangError):
                interp.run("(clamp 0 1 2)")


class TestComprehensions:
    def test_for_list_over_list(self):
        assert run1("(for/list ([x '(1 2 3)]) (* x x))") == (1, 4, 9)

    def test_for_list_over_count(self):
        assert run1("(for/list ([i 4]) (* i 10))") == (0, 10, 20, 30)

    def test_for_and_or(self):
        assert run1("(for/and ([x '(2 4 6)]) (even? x))") is True
        assert run1("(for/and ([x '(2 5 6)]) (even? x))") is False
        assert run1("(for/or ([x '(1 3 4)]) (even? x))") is True
        assert run1("(for/or ([x '(1 3 5)]) (even? x))") is False

    def test_paper_word_generator_shape(self):
        """The §2.2 word generator, exactly as written in the paper."""
        from repro.sym.values import Union
        value = run1("""
            (define (word k alphabet)
              (for/list ([i k])
                (begin (define-symbolic* idx number?)
                       (list-ref alphabet idx))))
            (word 2 '(a b c))
        """)
        assert isinstance(value, tuple) and len(value) == 2
        assert all(isinstance(element, Union) for element in value)
