"""Tests for the s-expression reader."""

import pytest

from repro.lang.reader import ParseError, Symbol, read, read_all, write_form


class TestAtoms:
    def test_integers(self):
        assert read("42") == 42
        assert read("-7") == -7
        assert read("0x10") == 16

    def test_booleans(self):
        assert read("#t") is True
        assert read("#f") is False
        assert read("true") is True
        assert read("false") is False

    def test_symbols(self):
        sym = read("hello-world!")
        assert isinstance(sym, Symbol)
        assert sym == "hello-world!"

    def test_symbols_are_interned(self):
        assert read("foo") is read("foo")

    def test_strings(self):
        assert read('"hello"') == "hello"
        assert read(r'"line\nbreak"') == "line\nbreak"
        assert read(r'"quo\"te"') == 'quo"te'

    def test_arrow_symbols(self):
        assert read("->") == Symbol("->")


class TestLists:
    def test_nested(self):
        form = read("(a (b c) 1)")
        assert form == [Symbol("a"), [Symbol("b"), Symbol("c")], 1]

    def test_square_brackets(self):
        assert read("[a b]") == [Symbol("a"), Symbol("b")]

    def test_mixed_brackets_must_match(self):
        with pytest.raises(ParseError):
            read("(a b]")

    def test_empty_list(self):
        assert read("()") == []

    def test_quote_sugar(self):
        assert read("'x") == [Symbol("quote"), Symbol("x")]
        assert read("'(1 2)") == [Symbol("quote"), [1, 2]]


class TestErrors:
    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            read("(a b")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            read('"oops')

    def test_trailing_input(self):
        with pytest.raises(ParseError):
            read("a b")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            read("")


class TestReadAll:
    def test_multiple_forms(self):
        forms = read_all("(define x 1) x ; trailing comment\n2")
        assert len(forms) == 3
        assert forms[2] == 2

    def test_comments_ignored(self):
        assert read_all("; nothing here\n1") == [1]


class TestWriteForm:
    def test_round_trip(self):
        source = "(define (f x) (if (< x 1) #t (quote (a b))))"
        assert read(write_form(read(source))) == read(source)

    def test_string_escaping(self):
        assert write_form('a"b') == '"a\\"b"'

    def test_booleans(self):
        assert write_form(True) == "#t"
        assert write_form(False) == "#f"


from hypothesis import given, settings, strategies as st


@st.composite
def random_forms(draw, depth=3):
    atom = st.one_of(
        st.integers(min_value=-99, max_value=99),
        st.booleans(),
        st.sampled_from(["foo", "bar-baz", "x!", "->", "set!"]).map(Symbol),
        st.text(alphabet="abc \\\"", min_size=0, max_size=6),
    )
    if depth == 0:
        return draw(atom)
    return draw(st.one_of(
        atom,
        st.lists(random_forms(depth - 1), min_size=0, max_size=4)))


@given(random_forms())
@settings(max_examples=150, deadline=None)
def test_write_read_round_trip(form):
    """write_form and read are mutually inverse on arbitrary forms."""
    assert read(write_form(form)) == form
