"""Tests for the lifted builtin library (rule CO1 behaviours)."""

import pytest

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.sym import fresh_bool, fresh_int, merge, ops
from repro.sym.values import SymBool, SymInt, Union
from repro.vm import AssertionFailure, TypeFailure, VM
from repro.vm import builtins as B


def list_union(guard_name="lu"):
    """A union of a 1-list and a 2-list."""
    return merge(fresh_bool(guard_name), (1,), (2, 3))


class TestConcreteLists:
    def test_cons_car_cdr(self):
        lst = B.cons(1, B.cons(2, ()))
        assert lst == (1, 2)
        assert B.car(lst) == 1
        assert B.cdr(lst) == (2,)

    def test_car_of_empty_fails(self):
        with VM():
            with pytest.raises(AssertionFailure):
                B.car(())

    def test_cons_onto_non_list_fails(self):
        with VM():
            with pytest.raises(TypeFailure):
                B.cons(1, 2)

    def test_length_append_reverse(self):
        assert B.length((1, 2, 3)) == 3
        assert B.append((1,), (2,), (3,)) == (1, 2, 3)
        assert B.reverse((1, 2, 3)) == (3, 2, 1)

    def test_null_and_pair_predicates(self):
        assert B.is_null(()) is True
        assert B.is_null((1,)) is False
        assert B.is_pair((1,)) is True
        assert B.is_pair(()) is False
        assert B.is_null(5) is False


class TestUnionLifting:
    def test_cons_distributes_over_union(self):
        with VM() as vm:
            union = list_union()
            result = B.cons(9, union)
            assert isinstance(result, Union)
            assert sorted(len(v) for v in result.values()) == [2, 3]
            assert all(v[0] == 9 for v in result.values())

    def test_car_merges_heads(self):
        with VM() as vm:
            union = list_union()
            head = B.car(union)
            assert isinstance(head, SymInt)  # 1 vs 2 merge logically

    def test_length_merges_logically(self):
        with VM() as vm:
            union = list_union()
            length = B.length(union)
            assert isinstance(length, SymInt)

    def test_is_null_on_union_with_empty_member(self):
        with VM():
            union = merge(fresh_bool(), (), (1,))
            result = B.is_null(union)
            assert isinstance(result, SymBool)

    def test_wrong_typed_members_are_excluded(self):
        """CO1: cons applies only to list members; others become infeasible."""
        with VM() as vm:
            union = merge(fresh_bool("wt"), (1,), 42)  # list vs int
            result = B.cons(0, union)
            # Only the list member fits: result is concrete.
            assert result == (0, 1)
            # And the store says the list member's guard must hold.
            assert len(vm.assertions) >= 1

    def test_no_member_fits_raises(self):
        with VM():
            union = merge(fresh_bool(), 1, True)
            with pytest.raises(AssertionFailure):
                B.car(union)

    def test_coverage_assertion_constrains_solver(self):
        with VM() as vm:
            union = merge(fresh_bool("cov"), (1,), 42)
            B.car(union)
            solver = SmtSolver()
            for assertion in vm.assertions:
                solver.add_assertion(assertion)
            # The int member's guard (~cov) must be unsatisfiable now.
            guard = union.entries[0][0]
            solver.add_assertion(T.mk_not(guard))
            assert solver.check() is SmtResult.UNSAT


class TestListRef:
    def test_concrete_index(self):
        assert B.list_ref((10, 20, 30), 1) == 20

    def test_out_of_range_concrete(self):
        with VM():
            with pytest.raises(AssertionFailure):
                B.list_ref((1,), 3)

    def test_symbolic_index_merges_elements(self):
        with VM() as vm:
            index = fresh_int("ix")
            element = B.list_ref((10, 20, 30), index)
            assert isinstance(element, SymInt)
            assert len(vm.assertions) == 1  # bounds assertion

    def test_symbolic_index_semantics(self):
        with VM() as vm:
            index = fresh_int("iy")
            element = B.list_ref((10, 20, 30), index)
            solver = SmtSolver()
            for assertion in vm.assertions:
                solver.add_assertion(assertion)
            solver.add_assertion(
                T.mk_eq(index.term, T.bv_const(2, index.width)))
            solver.add_assertion(
                T.mk_not(T.mk_eq(element.term,
                                 T.bv_const(30, element.width))))
            assert solver.check() is SmtResult.UNSAT

    def test_bool_index_rejected(self):
        with VM():
            with pytest.raises(TypeFailure):
                B.list_ref((1, 2), True)


class TestTakeDrop:
    def test_concrete(self):
        assert B.take((1, 2, 3), 2) == (1, 2)
        assert B.drop((1, 2, 3), 2) == (3,)
        assert B.take((1, 2, 3), 0) == ()

    def test_symbolic_count_builds_union(self):
        with VM():
            count = fresh_int("tk")
            result = B.take((1, 2, 3), count)
            assert isinstance(result, Union)
            assert sorted(len(v) for v in result.values()) == [0, 1, 2, 3]

    def test_out_of_range_concrete(self):
        with VM():
            with pytest.raises(AssertionFailure):
                B.take((1,), 5)


class TestTypePredicates:
    def test_concrete_values(self):
        assert B.is_boolean(True) is True
        assert B.is_boolean(1) is False
        assert B.is_number(1) is True
        assert B.is_number(True) is False
        assert B.is_list(()) is True
        assert B.is_procedure(len) is True
        assert B.is_union(merge(fresh_bool(), (1,), 2)) is True
        assert B.is_union(3) is False

    def test_symbolic_wrappers(self):
        assert B.is_boolean(fresh_bool()) is True
        assert B.is_number(fresh_int()) is True

    def test_union_type_predicates_are_guarded(self):
        union = merge(fresh_bool("tp"), (1,), 2)
        listness = B.is_list(union)
        assert isinstance(listness, SymBool)
        numberness = B.is_number(union)
        assert isinstance(numberness, SymBool)
        assert B.is_boolean(union) is False  # no boolean member


class TestApplyValue:
    def test_plain_application(self):
        assert B.apply_value(lambda a, b: a + b, 1, 2) == 3

    def test_non_procedure_fails(self):
        with VM():
            with pytest.raises(TypeFailure):
                B.apply_value(42, 1)

    def test_union_of_procedures_merges_results(self):
        with VM() as vm:
            union = merge(fresh_bool("ap"),
                          lambda x: x + 1, lambda x: x * 2)
            result = B.apply_value(union, 10)
            assert isinstance(result, SymInt)
            assert vm.stats.joins == 1  # AP2 counts as a control join

    def test_union_argument_passes_through(self):
        """Arguments are NOT unpacked (only lifted ops do that)."""
        seen = []
        union = merge(fresh_bool(), (1,), (2, 3))
        B.apply_value(lambda v: seen.append(v), union)
        assert seen == [union]

    def test_union_of_procedures_with_effects(self):
        from repro.vm import box_get, box_set, make_box
        with VM():
            box = make_box(0)
            union = merge(fresh_bool("fx"),
                          lambda: box_set(box, 1), lambda: box_set(box, 2))
            B.apply_value(union)
            assert isinstance(box_get(box), SymInt)


class TestHigherOrder:
    def test_list_map(self):
        result = B.list_map(lambda v: v + 1, (1, 2, 3))
        assert result == (2, 3, 4)

    def test_list_map_over_union(self):
        with VM():
            union = list_union()
            result = B.list_map(lambda v: 0, union)
            assert isinstance(result, Union)
            assert sorted(len(v) for v in result.values()) == [1, 2]

    def test_list_foldl(self):
        result = B.list_foldl(lambda el, acc: acc + el, 0, (1, 2, 3))
        assert result == 6
