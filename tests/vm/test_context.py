"""Tests for the VM: path conditions, guarded evaluation, state merging."""

import pytest

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.sym import fresh_bool, fresh_int, ops
from repro.sym.values import SymBool, SymInt, Union
from repro.vm import AssertionFailure, VM, make_box, box_get, box_set
from repro.vm.context import current


class TestAssertions:
    def test_true_assertion_is_free(self):
        with VM() as vm:
            vm.assert_(True)
            assert vm.assertions == []

    def test_concrete_false_assertion_raises(self):
        with VM() as vm:
            with pytest.raises(AssertionFailure):
                vm.assert_(False)

    def test_symbolic_assertion_joins_store(self):
        with VM() as vm:
            b = fresh_bool()
            vm.assert_(b)
            assert vm.assertions == [b.term]

    def test_non_boolean_values_are_truthy(self):
        with VM() as vm:
            vm.assert_(42)      # Scheme truthiness
            vm.assert_(())
            assert vm.assertions == []

    def test_assertion_is_guarded_by_path(self):
        with VM() as vm:
            b, p = fresh_bool("guard"), fresh_bool("prop")
            vm.branch(b, lambda: vm.assert_(p), lambda: None)
            assert len(vm.assertions) == 1
            # The stored term must be b => p, not p.
            stored = vm.assertions[0]
            assert stored is T.mk_implies(b.term, p.term)

    def test_false_assert_under_guard_becomes_constraint(self):
        with VM() as vm:
            b = fresh_bool()
            vm.branch(b, lambda: vm.assert_(False), lambda: None)
            # The then-path is infeasible: store says ~b.
            assert vm.assertions == [T.mk_not(b.term)]


class TestBranch:
    def test_concrete_condition_runs_single_branch(self):
        with VM() as vm:
            log = []
            result = vm.branch(True, lambda: log.append("t") or 1,
                               lambda: log.append("e") or 2)
            assert result == 1 and log == ["t"]
            assert vm.stats.joins == 0  # concrete: no join (rule IF1)

    def test_symbolic_condition_merges_results(self):
        with VM() as vm:
            b = fresh_bool()
            result = vm.branch(b, lambda: 1, lambda: 2)
            assert isinstance(result, SymInt)
            assert vm.stats.joins == 1

    def test_branch_without_else(self):
        with VM() as vm:
            b = fresh_bool()
            result = vm.branch(b, lambda: 5)
            assert isinstance(result, Union)  # int vs None

    def test_path_condition_restored(self):
        with VM() as vm:
            b = fresh_bool()
            inner_paths = []
            vm.branch(b, lambda: inner_paths.append(vm.path),
                      lambda: inner_paths.append(vm.path))
            assert vm.path is T.TRUE
            assert inner_paths[0] is b.term
            assert inner_paths[1] is T.mk_not(b.term)

    def test_nested_branches_conjoin_paths(self):
        with VM() as vm:
            b1, b2 = fresh_bool("n1"), fresh_bool("n2")
            seen = []
            vm.branch(b1,
                      lambda: vm.branch(b2, lambda: seen.append(vm.path),
                                        lambda: None),
                      lambda: None)
            assert seen[0] is T.mk_and(b1.term, b2.term)

    def test_infeasible_branch_is_skipped(self):
        with VM() as vm:
            b = fresh_bool()
            executed = []
            vm.branch(b, lambda: vm.branch(
                ops.not_(b), lambda: executed.append("impossible"),
                lambda: executed.append("ok")), lambda: None)
            assert executed == ["ok"]

    def test_one_failing_branch_adds_constraint(self):
        with VM() as vm:
            b = fresh_bool()
            result = vm.branch(b,
                               lambda: (_ for _ in ()).throw(
                                   AssertionFailure("boom")),
                               lambda: 7)
            assert result == 7
            assert T.mk_not(T.mk_and(T.TRUE, b.term)) in vm.assertions

    def test_both_branches_failing_raises(self):
        with VM() as vm:
            b = fresh_bool()
            def boom():
                raise AssertionFailure("boom")
            with pytest.raises(AssertionFailure):
                vm.branch(b, boom, boom)


class TestEffectMerging:
    def test_box_writes_merge_at_join(self):
        with VM() as vm:
            box = make_box(0)
            b = fresh_bool()
            vm.branch(b, lambda: box_set(box, 1), lambda: box_set(box, 2))
            value = box_get(box)
            assert isinstance(value, SymInt)

    def test_one_sided_write_merges_with_old_value(self):
        with VM() as vm:
            box = make_box(10)
            b = fresh_bool("os")
            vm.branch(b, lambda: box_set(box, 20), lambda: None)
            merged = box_get(box)
            assert isinstance(merged, SymInt)
            # Check semantics with the solver: b => 20, ~b => 10.
            solver = SmtSolver()
            solver.add_assertion(b.term)
            solver.add_assertion(
                T.mk_eq(merged.term, T.bv_const(10, merged.width)))
            assert solver.check() is SmtResult.UNSAT

    def test_writes_rolled_back_between_branches(self):
        with VM() as vm:
            box = make_box(0)
            observed = []
            b = fresh_bool()
            vm.branch(b,
                      lambda: box_set(box, 1),
                      lambda: observed.append(box_get(box)))
            assert observed == [0]  # else-branch saw the pre-state

    def test_failed_branch_effects_are_discarded(self):
        with VM() as vm:
            box = make_box(0)
            b = fresh_bool()
            def failing():
                box_set(box, 99)
                raise AssertionFailure("after write")
            vm.branch(b, failing, lambda: None)
            assert box_get(box) == 0

    def test_nested_writes_propagate_to_outer_merge(self):
        with VM() as vm:
            box = make_box(0)
            b1, b2 = fresh_bool(), fresh_bool()
            vm.branch(b1,
                      lambda: vm.branch(b2, lambda: box_set(box, 1),
                                        lambda: box_set(box, 2)),
                      lambda: box_set(box, 3))
            assert isinstance(box_get(box), SymInt)

    def test_mutation_semantics_via_solver(self):
        """|x| computed by branching is never negative."""
        with VM() as vm:
            x = fresh_int("absx")
            box = make_box(0)
            vm.branch(ops.lt(x, 0), lambda: box_set(box, ops.neg(x)),
                      lambda: box_set(box, x))
            result = box_get(box)
            solver = SmtSolver()
            # Exclude INT_MIN whose negation overflows.
            solver.add_assertion(
                T.mk_not(T.mk_eq(x.term, T.bv_const(1 << (x.width - 1),
                                                    x.width))))
            solver.add_assertion(T.mk_slt(result.term,
                                          T.bv_const(0, result.width)))
            assert solver.check() is SmtResult.UNSAT


class TestGuarded:
    def test_coverage_assertion_emitted(self):
        with VM() as vm:
            g1, g2 = fresh_bool("c1"), fresh_bool("c2")
            vm.guarded([(g1, lambda: 1), (g2, lambda: 2)],
                       assert_coverage=True)
            assert T.mk_or(g1.term, g2.term) in vm.assertions

    def test_all_infeasible_raises(self):
        with VM() as vm:
            with pytest.raises(AssertionFailure):
                vm.guarded([(False, lambda: 1)])

    def test_count_join_flag(self):
        with VM() as vm:
            g = fresh_bool()
            vm.guarded([(g, lambda: 1), (ops.not_(g), lambda: 2)],
                       count_join=False)
            assert vm.stats.joins == 0


class TestCurrent:
    def test_nested_vms_restore(self):
        outer = VM()
        with outer:
            assert current() is outer
            inner = VM()
            with inner:
                assert current() is inner
            assert current() is outer

    def test_ambient_vm_exists(self):
        assert current() is not None
