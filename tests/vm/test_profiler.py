"""Tests for the symbolic profiler extension."""

import pytest

from repro.sym import fresh_bool, fresh_int, merge, ops
from repro.vm import builtins as B
from repro.vm.context import VM, current
from repro.vm.profiler import SymbolicProfiler


def branchy_workload():
    x = fresh_int("pw")
    total = 0
    for bound in (0, 1, 2):
        total = current().branch(ops.gt(x, bound),
                                 lambda total=total: ops.add(total, 1),
                                 lambda total=total: total)
    return total


def union_workload():
    value = ()
    for depth in (1, 2):
        value = merge(fresh_bool(f"pu{depth}"), (0,) * depth, value)
    return value


class TestProfiler:
    def test_joins_are_attributed(self):
        with VM(), SymbolicProfiler() as profiler:
            branchy_workload()
        assert sum(s.joins for s in profiler.sites.values()) == 3
        top_site, top_stats = profiler.top_sites(1)[0]
        assert "branchy_workload" in top_site
        assert top_stats.joins == 3

    def test_unions_are_attributed(self):
        with VM(), SymbolicProfiler() as profiler:
            union_workload()
        assert sum(s.unions for s in profiler.sites.values()) == 2
        assert sum(s.union_cardinality for s in profiler.sites.values()) >= 4

    def test_uninstalled_after_exit(self):
        with VM():
            with SymbolicProfiler() as profiler:
                branchy_workload()
            joins_recorded = sum(s.joins for s in profiler.sites.values())
            branchy_workload()  # outside the profiler
            assert sum(s.joins for s in profiler.sites.values()) == \
                joins_recorded

    def test_nested_profilers_both_record(self):
        with VM():
            with SymbolicProfiler() as outer:
                with SymbolicProfiler() as inner:
                    branchy_workload()
            assert sum(s.joins for s in outer.sites.values()) == 3
            assert sum(s.joins for s in inner.sites.values()) == 3

    def test_interleaved_profilers_restore_cleanly(self):
        """Non-LIFO enter/exit: each profiler sees exactly the events of
        its own active window, and the bus ends up with no subscribers.
        (The monkey-patching implementation corrupted the hooks here:
        exiting `first` mid-way restored the original methods while
        `second` was still live.)"""
        from repro.obs.events import BUS

        with VM():
            first = SymbolicProfiler()
            second = SymbolicProfiler()
            first.__enter__()
            branchy_workload()           # seen by first only
            second.__enter__()
            branchy_workload()           # seen by both
            first.__exit__(None, None, None)
            branchy_workload()           # seen by second only
            second.__exit__(None, None, None)
            branchy_workload()           # seen by neither
        assert sum(s.joins for s in first.sites.values()) == 6
        assert sum(s.joins for s in second.sites.values()) == 6
        assert not BUS.enabled
        assert BUS.sinks == []

    def test_exit_is_idempotent(self):
        from repro.obs.events import BUS

        profiler = SymbolicProfiler()
        with VM():
            profiler.__enter__()
            branchy_workload()
            profiler.__exit__(None, None, None)
            profiler.__exit__(None, None, None)  # double exit: no error
        assert not BUS.enabled

    def test_no_methods_are_patched(self):
        """The profiler subscribes to the bus; it must not rebind any VM
        or solver methods."""
        from repro.smt.solver import SmtSolver

        guarded = VM.guarded
        check = SmtSolver.check
        with VM(), SymbolicProfiler():
            branchy_workload()
        assert VM.guarded is guarded
        assert SmtSolver.check is check

    def test_report_renders(self):
        with VM(), SymbolicProfiler() as profiler:
            branchy_workload()
            union_workload()
        report = profiler.report()
        assert "joins" in report and "unions" in report
        assert "branchy_workload" in report

    def test_profiles_a_real_query(self):
        from repro.queries import solve
        from repro.vm import assert_

        def program():
            xs = (fresh_int("pq"), fresh_int("pq"))
            ps = ()
            for x in xs:
                ps = current().branch(ops.gt(x, 0),
                                      lambda x=x, ps=ps: B.cons(x, ps),
                                      lambda ps=ps: ps)
            assert_(B.equal(B.length(ps), 2))

        with SymbolicProfiler() as profiler:
            outcome = solve(program)
        assert outcome.status == "sat"
        assert profiler.sites  # something was attributed
