"""Tests for evaluation statistics (Table 4's instrumentation)."""

from repro.sym import fresh_bool, fresh_int, merge
from repro.sym.values import UNION_COUNTERS
from repro.vm import VM
from repro.vm.stats import EvalStats


class TestUnionCounters:
    def test_counting(self):
        UNION_COUNTERS.reset()
        merge(fresh_bool(), (1,), (1, 2))
        assert UNION_COUNTERS.created == 1
        assert UNION_COUNTERS.cardinality_sum == 2
        assert UNION_COUNTERS.max_cardinality == 2

    def test_reset(self):
        merge(fresh_bool(), (1,), (1, 2))
        UNION_COUNTERS.reset()
        assert UNION_COUNTERS.created == 0


class TestEvalStats:
    def test_window_captures_only_bracketed_unions(self):
        merge(fresh_bool("before"), (1,), (1, 2))  # outside the window
        stats = EvalStats()
        stats.start()
        merge(fresh_bool("inside"), (1,), (1, 2, 3))
        stats.stop()
        assert stats.unions_created == 1
        assert stats.union_cardinality_sum == 2
        assert stats.svm_seconds > 0

    def test_accumulates_across_windows(self):
        stats = EvalStats()
        for _ in range(2):
            stats.start()
            merge(fresh_bool(), (1,), (1, 2))
            stats.stop()
        assert stats.unions_created == 2

    def test_row_shape(self):
        stats = EvalStats()
        row = stats.row()
        assert set(row) == {"joins", "count", "sum", "max",
                            "svm_sec", "solver_sec"}

    def test_vm_counts_joins(self):
        with VM() as vm:
            vm.stats.start()
            vm.branch(fresh_bool(), lambda: 1, lambda: 2)
            vm.branch(True, lambda: 1, lambda: 2)  # concrete: no join
            vm.stats.stop()
            assert vm.stats.joins == 1

    def test_max_cardinality_tracks_peak(self):
        stats = EvalStats()
        stats.start()
        union = merge(fresh_bool("p1"), (1,), (1, 2))
        merge(fresh_bool("p2"), union, (1, 2, 3))
        stats.stop()
        assert stats.max_union_cardinality == 3
