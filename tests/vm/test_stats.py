"""Tests for evaluation statistics (Table 4's instrumentation)."""

from repro.sym import fresh_bool, fresh_int, merge
from repro.sym.values import UNION_COUNTERS
from repro.vm import VM
from repro.vm.stats import EvalStats


class TestUnionCounters:
    def test_counting(self):
        UNION_COUNTERS.reset()
        merge(fresh_bool(), (1,), (1, 2))
        assert UNION_COUNTERS.created == 1
        assert UNION_COUNTERS.cardinality_sum == 2
        assert UNION_COUNTERS.max_cardinality == 2

    def test_reset(self):
        merge(fresh_bool(), (1,), (1, 2))
        UNION_COUNTERS.reset()
        assert UNION_COUNTERS.created == 0


class TestEvalStats:
    def test_window_captures_only_bracketed_unions(self):
        merge(fresh_bool("before"), (1,), (1, 2))  # outside the window
        stats = EvalStats()
        stats.start()
        merge(fresh_bool("inside"), (1,), (1, 2, 3))
        stats.stop()
        assert stats.unions_created == 1
        assert stats.union_cardinality_sum == 2
        assert stats.svm_seconds > 0

    def test_accumulates_across_windows(self):
        stats = EvalStats()
        for _ in range(2):
            stats.start()
            merge(fresh_bool(), (1,), (1, 2))
            stats.stop()
        assert stats.unions_created == 2

    def test_row_shape(self):
        stats = EvalStats()
        row = stats.row()
        assert set(row) == {"joins", "count", "sum", "max",
                            "svm_sec", "solver_sec"}

    def test_vm_counts_joins(self):
        with VM() as vm:
            vm.stats.start()
            vm.branch(fresh_bool(), lambda: 1, lambda: 2)
            vm.branch(True, lambda: 1, lambda: 2)  # concrete: no join
            vm.stats.stop()
            assert vm.stats.joins == 1

    def test_max_cardinality_tracks_peak(self):
        stats = EvalStats()
        stats.start()
        union = merge(fresh_bool("p1"), (1,), (1, 2))
        merge(fresh_bool("p2"), union, (1, 2, 3))
        stats.stop()
        assert stats.max_union_cardinality == 3

    def test_nested_windows_do_not_clobber_outer_max(self):
        """Regression: start() zeroes the global max counter for its own
        window; stop() must restore the surrounding window's peak, or a
        nested evaluation (a query run from inside another evaluation)
        under-reports the outer `max` column."""
        outer = EvalStats()
        inner = EvalStats()
        outer.start()
        union = merge(fresh_bool("n1"), (1,), (1, 2))
        merge(fresh_bool("n2"), union, (1, 2, 3))  # outer peak: 3
        inner.start()
        merge(fresh_bool("n3"), (1,), (1, 2))      # inner peak: 2
        inner.stop()
        outer.stop()
        assert inner.max_union_cardinality == 2
        assert outer.max_union_cardinality == 3  # not clobbered to 2

    def test_interleaved_windows_keep_global_peak(self):
        outer = EvalStats()
        inner = EvalStats()
        outer.start()
        merge(fresh_bool("i1"), (1,), (1, 2))      # peak 2, before inner
        inner.start()
        inner.stop()                                # inner saw nothing
        outer.stop()
        assert inner.max_union_cardinality == 0
        # The peak predates inner's window, but stop() restores it.
        assert outer.max_union_cardinality == 2

    def test_check_listener_matches_record_check(self):
        """The bus listener and the legacy record_check accumulate the
        same totals from the same delta."""
        from repro.obs.events import END, Event

        delta = {"checks": 1, "conflicts": 7, "decisions": 20,
                 "propagations": 150, "learned": 5, "encode_hits": 9,
                 "encode_misses": 4, "seconds": 0.01, "tripped": 1}
        via_listener = EvalStats()
        via_listener.check_listener(
            Event("smt.check", "smt", END, 1.0, dict(delta)))
        assert via_listener.solver_checks == 1
        assert via_listener.solver_conflicts == 7
        assert via_listener.solver_decisions == 20
        assert via_listener.solver_propagations == 150
        assert via_listener.solver_learned == 5
        assert via_listener.encode_cache_hits == 9
        assert via_listener.encode_cache_misses == 4
        assert via_listener.budget_trips == 1

    def test_check_listener_ignores_other_events(self):
        from repro.obs.events import BEGIN, INSTANT, Event

        stats = EvalStats()
        stats.check_listener(Event("smt.check", "smt", BEGIN, 1.0,
                                   {"assumptions": 2}))
        stats.check_listener(Event("vm.join", "vm", INSTANT, 2.0,
                                   {"cardinality": 2}))
        assert stats.solver_checks == 0
