"""Tests for boxes and vectors under symbolic evaluation."""

import pytest

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.sym import fresh_bool, fresh_int, merge, ops
from repro.sym.values import SymInt
from repro.vm import AssertionFailure, TypeFailure, VM
from repro.vm.mutable import Vector, box_get, box_set, make_box


class TestBoxes:
    def test_read_write(self):
        with VM():
            box = make_box(5)
            assert box_get(box) == 5
            box_set(box, 6)
            assert box_get(box) == 6

    def test_unlogged_writes_outside_frames(self):
        # Writing outside any guarded frame needs no rollback machinery.
        box = make_box(1)
        with VM():
            box_set(box, 2)
        assert box.value == 2


class TestVectorConcrete:
    def test_construction_and_ref(self):
        vec = Vector([10, 20, 30])
        assert len(vec) == 3
        assert vec.ref(0) == 10
        assert vec.ref(2) == 30

    def test_filled(self):
        vec = Vector.filled(4, value=7)
        assert vec.snapshot() == (7, 7, 7, 7)

    def test_set(self):
        with VM():
            vec = Vector([1, 2, 3])
            vec.set(1, 9)
            assert vec.snapshot() == (1, 9, 3)

    def test_out_of_bounds_concrete(self):
        with VM():
            vec = Vector([1])
            with pytest.raises(AssertionFailure):
                vec.ref(1)
            with pytest.raises(AssertionFailure):
                vec.set(-1, 0)


class TestVectorSymbolicIndex:
    def test_symbolic_read_merges_cells(self):
        with VM() as vm:
            vec = Vector([10, 20, 30])
            index = fresh_int("vi")
            value = vec.ref(index)
            assert isinstance(value, SymInt)
            assert len(vm.assertions) == 1  # bounds check

    def test_symbolic_read_semantics(self):
        with VM() as vm:
            vec = Vector([10, 20, 30])
            index = fresh_int("vj")
            value = vec.ref(index)
            solver = SmtSolver()
            for assertion in vm.assertions:
                solver.add_assertion(assertion)
            solver.add_assertion(T.mk_eq(index.term,
                                         T.bv_const(1, index.width)))
            solver.add_assertion(
                T.mk_not(T.mk_eq(value.term, T.bv_const(20, value.width))))
            assert solver.check() is SmtResult.UNSAT

    def test_symbolic_write_updates_conditionally(self):
        with VM() as vm:
            vec = Vector([10, 20])
            index = fresh_int("vk")
            vec.set(index, 99)
            # Every cell is now an ite on index.
            assert all(isinstance(cell, SymInt) for cell in vec.cells)
            # Exactly the indexed cell changed: check cell 0 under index=1.
            solver = SmtSolver()
            for assertion in vm.assertions:
                solver.add_assertion(assertion)
            cell0 = vec.cells[0]
            solver.add_assertion(T.mk_eq(index.term,
                                         T.bv_const(1, index.width)))
            solver.add_assertion(
                T.mk_not(T.mk_eq(cell0.term, T.bv_const(10, cell0.width))))
            assert solver.check() is SmtResult.UNSAT

    def test_index_union_is_merged(self):
        with VM():
            vec = Vector([10, 20, 30])
            index = merge(fresh_bool("vu"), 0, 2)
            value = vec.ref(index)
            assert isinstance(value, SymInt)

    def test_non_integer_index_rejected(self):
        with VM():
            vec = Vector([1])
            with pytest.raises(TypeFailure):
                vec.ref("zero")
            with pytest.raises(TypeFailure):
                vec.ref(True)
            with pytest.raises(TypeFailure):
                vec.set((), 1)
            bad_union = merge(fresh_bool(), 0, "one")
            with pytest.raises(TypeFailure):
                vec.ref(bad_union)


class TestVectorJoins:
    def test_vector_writes_merge_at_branch_join(self):
        with VM() as vm:
            vec = Vector([0, 0])
            b = fresh_bool("vb")
            vm.branch(b, lambda: vec.set(0, 1), lambda: vec.set(0, 2))
            assert isinstance(vec.cells[0], SymInt)
            assert vec.cells[1] == 0

    def test_vectors_merge_by_pointer(self):
        from repro.sym.values import Union
        with VM():
            v1, v2 = Vector([1]), Vector([2])
            merged = merge(fresh_bool(), v1, v2)
            assert isinstance(merged, Union)

    def test_same_vector_merges_to_itself(self):
        with VM():
            vec = Vector([1])
            assert merge(fresh_bool(), vec, vec) is vec
