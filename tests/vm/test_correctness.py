"""Differential testing of the SVM against concrete execution (§4.4).

The paper's correctness claim: "the program state produced by each
evaluation step represents all and only those concrete states that could
be reached via some fully concrete execution". We check it end to end by
generating random little programs over integers, booleans and lists,
executing them twice:

- **symbolically** — inputs are fresh symbolic constants, control flow
  goes through ``vm.branch``, lists through the lifted builtins; then the
  symbolic result is concretized under a model binding the inputs;
- **concretely** — the same program over plain Python values with plain
  ``if``.

For every randomly drawn input vector the two answers must coincide.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.queries.outcome import Model
from repro.smt.solver import Model as SmtModel
from repro.sym import fresh_int, ops
from repro.sym.values import SymInt
from repro.vm import builtins as B
from repro.vm.context import VM, current

WIDTH_MASK_HELP = """programs use the default 32-bit width; inputs are
small enough that no operation overflows, so Python ints are an exact
reference semantics."""


# A tiny expression language over (x0, x1, x2): each node is a tuple.
def expressions(depth):
    leaf = st.one_of(
        st.sampled_from([("var", 0), ("var", 1), ("var", 2)]),
        st.integers(min_value=-4, max_value=4).map(lambda n: ("const", n)))
    if depth == 0:
        return leaf
    sub = expressions(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["add", "sub", "mul"]), sub, sub),
        st.tuples(st.just("ite"), conditions(depth - 1), sub, sub),
    )


def conditions(depth):
    sub = expressions(depth)
    return st.tuples(st.sampled_from(["lt", "le", "eq"]), sub, sub)


def eval_concrete(node, env):
    kind = node[0]
    if kind == "var":
        return env[node[1]]
    if kind == "const":
        return node[1]
    if kind in ("add", "sub", "mul"):
        left = eval_concrete(node[1], env)
        right = eval_concrete(node[2], env)
        return {"add": left + right, "sub": left - right,
                "mul": left * right}[kind]
    if kind == "ite":
        return eval_concrete(node[2], env) if _cond_concrete(node[1], env) \
            else eval_concrete(node[3], env)
    raise AssertionError(kind)


def _cond_concrete(node, env):
    kind, left_node, right_node = node
    left = eval_concrete(left_node, env)
    right = eval_concrete(right_node, env)
    return {"lt": left < right, "le": left <= right,
            "eq": left == right}[kind]


def eval_symbolic(node, env):
    kind = node[0]
    if kind == "var":
        return env[node[1]]
    if kind == "const":
        return node[1]
    if kind in ("add", "sub", "mul"):
        left = eval_symbolic(node[1], env)
        right = eval_symbolic(node[2], env)
        return {"add": ops.add, "sub": ops.sub, "mul": ops.mul}[kind](
            left, right)
    if kind == "ite":
        condition = _cond_symbolic(node[1], env)
        return current().branch(condition,
                                lambda: eval_symbolic(node[2], env),
                                lambda: eval_symbolic(node[3], env))
    raise AssertionError(kind)


def _cond_symbolic(node, env):
    kind, left_node, right_node = node
    left = eval_symbolic(left_node, env)
    right = eval_symbolic(right_node, env)
    return {"lt": ops.lt, "le": ops.le, "eq": ops.num_eq}[kind](left, right)


small_inputs = st.tuples(*(st.integers(min_value=-5, max_value=5)
                           for _ in range(3)))


class TestScalarPrograms:
    @given(expressions(3), small_inputs)
    @settings(max_examples=150, deadline=None)
    def test_symbolic_agrees_with_concrete(self, program, inputs):
        expected = eval_concrete(program, list(inputs))
        with VM():
            sym_inputs = [fresh_int(f"d{i}") for i in range(3)]
            symbolic = eval_symbolic(program, sym_inputs)
            bindings = {var.term: value & ((1 << var.width) - 1)
                        for var, value in zip(sym_inputs, inputs)}
            model = Model(SmtModel(bindings))
            assert model.evaluate(symbolic) == expected

    @given(expressions(2), expressions(2), small_inputs)
    @settings(max_examples=80, deadline=None)
    def test_list_building_agrees(self, first, second, inputs):
        """Branch-dependent list construction concretizes correctly."""
        def concrete():
            env = list(inputs)
            out = []
            if _cond_concrete(("lt", first, second), env):
                out.append(eval_concrete(first, env))
            out.append(eval_concrete(second, env))
            return tuple(out)

        with VM():
            sym_inputs = [fresh_int(f"l{i}") for i in range(3)]
            condition = _cond_symbolic(("lt", first, second), sym_inputs)
            value = current().branch(
                condition,
                lambda: (eval_symbolic(first, sym_inputs),
                         eval_symbolic(second, sym_inputs)),
                lambda: (eval_symbolic(second, sym_inputs),))
            bindings = {var.term: value_in & ((1 << var.width) - 1)
                        for var, value_in in zip(sym_inputs, inputs)}
            model = Model(SmtModel(bindings))
            assert model.evaluate(value) == concrete()

    @given(expressions(2), small_inputs)
    @settings(max_examples=80, deadline=None)
    def test_mutation_agrees(self, program, inputs):
        """set!-style accumulation through boxes concretizes correctly."""
        from repro.vm.mutable import box_get, box_set, make_box

        def concrete():
            env = list(inputs)
            total = 0
            for round_ in range(2):
                value = eval_concrete(program, env) + round_
                if value > 0:
                    total = total + value
            return total

        with VM():
            sym_inputs = [fresh_int(f"m{i}") for i in range(3)]
            box = make_box(0)
            for round_ in range(2):
                value = ops.add(eval_symbolic(program, sym_inputs), round_)
                current().branch(
                    ops.gt(value, 0),
                    lambda value=value: box_set(
                        box, ops.add(box_get(box), value)),
                    lambda: None)
            bindings = {var.term: value_in & ((1 << var.width) - 1)
                        for var, value_in in zip(sym_inputs, inputs)}
            model = Model(SmtModel(bindings))
            assert model.evaluate(box_get(box)) == concrete()
