"""Tests for symbolic reflection (§2.3, §4.7): for_all, lift, introspection."""

import re

import pytest

from repro.sym import fresh_bool, fresh_int, merge
from repro.sym.values import SymBool, SymInt, Union
from repro.vm import VM, for_all, lift, union_contents, union_size
from repro.vm.reflection import union_guards, union_values


class TestForAll:
    def test_concrete_value_is_plain_call(self):
        assert for_all(21, lambda v: v * 2) == 42

    def test_union_components_evaluated_concretely(self):
        with VM():
            union = merge(fresh_bool("fa"), "car", "cdr")
            lengths = for_all(union, len)  # len is unlifted Python!
            assert isinstance(lengths, SymInt) or lengths == 3
            # both strings have length 3, so the merge folds
            assert lengths == 3

    def test_union_with_distinct_results_merges(self):
        with VM():
            union = merge(fresh_bool("fb"), "a", "abc")
            lengths = for_all(union, len)
            assert isinstance(lengths, SymInt)

    def test_regexp_matcher_example(self):
        """The paper's §2.3 example: lifting re.search over symbolic strings."""
        with VM():
            union = merge(fresh_bool("fc"), "car", "cxr")
            matches = for_all(
                union, lambda s: re.search("^c[ad]*r$", s) is not None)
            assert isinstance(matches, SymBool)

    def test_effects_inside_for_all_merge(self):
        from repro.vm import box_get, box_set, make_box
        with VM():
            box = make_box(0)
            union = merge(fresh_bool("fd"), 1, (2,))
            for_all(union, lambda v: box_set(box, 1 if isinstance(v, tuple)
                                             else 2))
            assert isinstance(box_get(box), SymInt)


class TestLift:
    def test_decorator(self):
        @lift
        def loud(s):
            return s.upper()
        with VM():
            union = merge(fresh_bool("lf"), "a", "bc")
            result = loud(union)
            assert isinstance(result, Union)
            assert set(result.values()) == {"A", "BC"}

    def test_lift_preserves_name(self):
        @lift
        def some_op(s):
            return s
        assert some_op.__name__ == "some_op"


class TestIntrospection:
    def test_union_size(self):
        union = merge(fresh_bool(), (1,), (1, 2))
        assert union_size(union) == 2
        assert union_size(42) == 1

    def test_union_contents_of_non_union(self):
        contents = union_contents("x")
        assert contents == [(True, "x")]

    def test_union_contents_guards_are_symbolic(self):
        union = merge(fresh_bool("ic"), (1,), (1, 2))
        contents = union_contents(union)
        assert len(contents) == 2
        assert all(isinstance(guard, SymBool) for guard, _ in contents)

    def test_union_guards_and_values(self):
        union = merge(fresh_bool(), "a", (1,))
        assert len(union_guards(union)) == 2
        assert set(union_values(union)) == {"a", (1,)}

    def test_cardinality_guided_finitization(self):
        """§4.7: code can bound recursion by observing union cardinality."""
        with VM():
            value = ()
            depth = 0
            while union_size(value) < 3 and depth < 10:
                depth += 1
                value = merge(fresh_bool(f"fin{depth}"), (0,) * depth, value)
            assert union_size(value) == 3
            assert depth == 2  # one new list length per step
