"""Differential testing of union lifting (rule CO1).

A symbolic union denotes "one of these concrete values, selected by the
guards". So for any lifted operation `op` and any model M:

    M(op(union)) == op(M(union))

i.e. applying the operation symbolically and then concretizing must equal
concretizing first and applying the plain concrete operation. We build
random unions by merging randomly-shaped lists under fresh guards, pick
random guard assignments, and check the equation for the whole lifted
list library.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.queries.outcome import Model
from repro.smt.solver import Model as SmtModel
from repro.sym import fresh_bool, merge, ops
from repro.sym.values import Union
from repro.vm import builtins as B
from repro.vm.context import VM
from repro.vm.errors import AssertionFailure

# Concrete lists of small ints, possibly empty, lengths 0..3.
concrete_lists = st.lists(st.integers(min_value=-3, max_value=3),
                          min_size=0, max_size=3).map(tuple)


@st.composite
def guarded_unions(draw):
    """A value built by merging 2-3 lists under fresh guards, plus a
    model assigning each guard."""
    count = draw(st.integers(min_value=2, max_value=3))
    lists = [draw(concrete_lists) for _ in range(count)]
    value = lists[0]
    guards = []
    for other in lists[1:]:
        guard = fresh_bool("us")
        guards.append(guard)
        value = merge(guard, other, value)
    assignment = {guard.term: draw(st.booleans()) for guard in guards}
    return value, assignment


def concretize(value, assignment):
    return Model(SmtModel(assignment)).evaluate(value)


class TestUnionDenotation:
    @given(guarded_unions())
    @settings(max_examples=120, deadline=None)
    def test_length(self, case):
        value, assignment = case
        selected = concretize(value, assignment)
        with VM():
            symbolic_length = B.length(value)
        assert concretize(symbolic_length, assignment) == len(selected)

    @given(guarded_unions())
    @settings(max_examples=120, deadline=None)
    def test_cons(self, case):
        value, assignment = case
        selected = concretize(value, assignment)
        with VM():
            consed = B.cons(9, value)
        assert concretize(consed, assignment) == (9,) + selected

    @given(guarded_unions())
    @settings(max_examples=120, deadline=None)
    def test_car_and_cdr(self, case):
        value, assignment = case
        selected = concretize(value, assignment)
        with VM():
            if not selected:
                # car is only defined on the non-empty members; the VM
                # either excludes the path or fails if no member fits.
                return
            try:
                head = B.car(value)
                tail = B.cdr(value)
            except AssertionFailure:
                return  # every member empty: nothing to check
        assert concretize(head, assignment) == selected[0]
        assert concretize(tail, assignment) == selected[1:]

    @given(guarded_unions())
    @settings(max_examples=100, deadline=None)
    def test_reverse_and_append(self, case):
        value, assignment = case
        selected = concretize(value, assignment)
        with VM():
            reversed_value = B.reverse(value)
            appended = B.append2(value, (7,))
        assert concretize(reversed_value, assignment) == \
            tuple(reversed(selected))
        assert concretize(appended, assignment) == selected + (7,)

    @given(guarded_unions())
    @settings(max_examples=100, deadline=None)
    def test_is_null(self, case):
        value, assignment = case
        selected = concretize(value, assignment)
        with VM():
            nullness = B.is_null(value)
        assert concretize(nullness, assignment) == (selected == ())

    @given(guarded_unions())
    @settings(max_examples=100, deadline=None)
    def test_equal_with_selected_member(self, case):
        value, assignment = case
        selected = concretize(value, assignment)
        with VM():
            equality = B.equal(value, selected)
        assert concretize(equality, assignment) is True

    @given(guarded_unions(), guarded_unions())
    @settings(max_examples=80, deadline=None)
    def test_merge_of_unions_denotes_selection(self, case_a, case_b):
        value_a, assign_a = case_a
        value_b, assign_b = case_b
        outer = fresh_bool("outer")
        pick = True
        assignment = {**assign_a, **assign_b, outer.term: pick}
        with VM():
            merged = merge(outer, value_a, value_b)
        expected = concretize(value_a if pick else value_b, assignment)
        assert concretize(merged, assignment) == expected

    @given(guarded_unions())
    @settings(max_examples=80, deadline=None)
    def test_for_all_with_python_function(self, case):
        from repro.vm.reflection import for_all
        value, assignment = case
        selected = concretize(value, assignment)
        with VM():
            summed = for_all(value, lambda lst: sum(lst) if lst else 0)
        expected = sum(selected) if selected else 0
        assert concretize(summed, assignment) == expected
