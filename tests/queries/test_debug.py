"""Tests for the debug query (minimal-core fault localization)."""

import pytest

from repro.sym import fresh_int, ops
from repro.vm import assert_, builtins as B
from repro.queries import debug, relax
from repro.queries.debug import DebugSession


class TestRelax:
    def test_identity_outside_a_session(self):
        assert relax(5, "x") == 5
        assert relax(True, "y") is True

    def test_relaxed_value_becomes_symbolic(self):
        from repro.sym.values import SymBool, SymInt
        with DebugSession(lambda v: True) as session:
            assert isinstance(relax(5, "five"), SymInt)
            assert isinstance(relax(True, "flag"), SymBool)
            assert len(session.relaxations) == 2

    def test_predicate_filters_values(self):
        from repro.sym.values import SymInt
        def ints_only(value):
            return not isinstance(value, bool) and isinstance(value, int)
        with DebugSession(ints_only) as session:
            assert relax(True, "flag") is True      # filtered out
            assert isinstance(relax(5, "five"), SymInt)
            assert [label for label, _ in session.relaxations] == ["five"]

    def test_non_primitives_pass_through(self):
        with DebugSession(lambda v: True):
            assert relax((1, 2), "lst") == (1, 2)


class TestDebug:
    def test_single_faulty_constant(self):
        def program():
            x = relax(5, "the-five")
            assert_(B.equal(x, 6))

        outcome = debug(program)
        assert outcome.status == "sat"
        assert outcome.core == ["the-five"]

    def test_core_of_jointly_wrong_sum(self):
        """5 + 3 != 9: repairing either constant fixes it, so the minimal
        core contains both (like the paper's cond/true core)."""
        def program():
            x = relax(5, "five")
            y = relax(3, "three")
            assert_(B.equal(ops.add(x, y), 9))

        outcome = debug(program)
        assert outcome.status == "sat"
        assert set(outcome.core) == {"five", "three"}

    def test_irrelevant_expressions_are_outside_core(self):
        def program():
            x = relax(5, "culprit")
            _ = relax(7, "innocent")  # not involved in the failing assert
            assert_(B.equal(x, 6))

        outcome = debug(program)
        assert outcome.core == ["culprit"]

    def test_non_failing_program_has_no_core(self):
        def program():
            x = relax(5, "ok")
            assert_(B.equal(x, 5))

        outcome = debug(program)
        assert outcome.status == "unsat"
        assert "no assertion failure" in outcome.message

    def test_failure_without_relaxable_expressions(self):
        outcome = debug(lambda: assert_(False))
        assert outcome.status == "unknown"

    def test_core_minimality(self):
        """An over-constrained chain: the core must be a *minimal* subset.

        The failing assertion is b+c == 99, but a+b == 3 ties a and b
        together, so the two minimal cores are {b, c} and {a, c}: every
        core contains c plus exactly one of a/b.
        """
        def program():
            a = relax(1, "a")
            b = relax(2, "b")
            c = relax(3, "c")
            assert_(B.equal(ops.add(a, b), 3))   # holds as written
            assert_(B.equal(ops.add(b, c), 99))  # fails

        outcome = debug(program)
        assert outcome.status == "sat"
        assert "c" in outcome.core
        assert len(outcome.core) == 2
        assert set(outcome.core) in ({"b", "c"}, {"a", "c"})
