"""Tests for first-class models (the paper's ``evaluate`` utility)."""

import pytest

from repro.queries.outcome import Model, QueryOutcome
from repro.smt import terms as T
from repro.smt.solver import Model as SmtModel
from repro.sym import fresh_bool, fresh_int, merge
from repro.sym.values import Box
from repro.vm.mutable import Vector


def model_with(**bindings):
    terms = {}
    for name, value in bindings.items():
        if isinstance(value, bool):
            terms[T.bool_var(name)] = value
        else:
            terms[T.bv_var(name, 8)] = value & 0xFF
    return Model(SmtModel(terms))


class TestEvaluate:
    def test_concrete_values_pass_through(self):
        model = Model(SmtModel({}))
        assert model.evaluate(42) == 42
        assert model.evaluate("str") == "str"
        assert model.evaluate((1, "a")) == (1, "a")
        assert model.evaluate(None) is None

    def test_symbolic_primitives(self):
        from repro.sym.values import SymBool, SymInt
        x = SymInt(T.bv_var("mx", 8))
        b = SymBool(T.bool_var("mb"))
        model = model_with(mx=250, mb=True)
        assert model.evaluate(x) == -6  # signed interpretation
        assert model.evaluate(b) is True

    def test_composite_terms(self):
        from repro.sym.values import SymInt
        x = SymInt(T.bv_var("my", 8))
        model = model_with(my=5)
        assert model.evaluate(x + 3) == 8

    def test_tuples_recursive(self):
        from repro.sym.values import SymInt
        x = SymInt(T.bv_var("mz", 8))
        model = model_with(mz=5)
        assert model.evaluate((x, (x + 1, 2))) == (5, (6, 2))

    def test_union_selects_by_guard(self):
        b = fresh_bool("sel", numbered=False)
        union = merge(b, (1,), (2, 3))
        true_model = Model(SmtModel({b.term: True}))
        false_model = Model(SmtModel({b.term: False}))
        assert true_model.evaluate(union) == (1,)
        assert false_model.evaluate(union) == (2, 3)

    def test_boxes_and_vectors(self):
        from repro.sym.values import SymInt
        x = SymInt(T.bv_var("mv", 8))
        model = model_with(mv=7)
        assert model.evaluate(Box(x)) == 7
        assert model.evaluate(Vector([x, 1])) == [7, 1]

    def test_unbound_variables_default(self):
        from repro.sym.values import SymBool, SymInt
        model = Model(SmtModel({}))
        assert model.evaluate(SymInt(T.bv_var("unbound1", 8))) == 0
        assert model.evaluate(SymBool(T.bool_var("unbound2"))) is False

    def test_contains(self):
        from repro.sym.values import SymInt
        x = SymInt(T.bv_var("mc", 8))
        model = model_with(mc=1)
        assert x in model
        assert SymInt(T.bv_var("other", 8)) not in model
        assert "plain" not in model


class TestQueryOutcome:
    def test_status_validation(self):
        with pytest.raises(ValueError):
            QueryOutcome("maybe")

    def test_truthiness(self):
        assert bool(QueryOutcome("sat")) is True
        assert bool(QueryOutcome("unsat")) is False
        assert bool(QueryOutcome("unknown")) is False

    def test_repr_with_message(self):
        outcome = QueryOutcome("unsat", message="nothing to see")
        assert "unsat" in repr(outcome)
        assert "nothing to see" in repr(outcome)
