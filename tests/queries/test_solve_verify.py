"""Tests for the solve and verify queries (the revPos story of §3/§4)."""

import pytest

from repro.sym import fresh_bool, fresh_int, ops
from repro.vm import assert_, branch, builtins as B
from repro.queries import solve, verify


def rev_pos(xs):
    """The paper's running example (Fig. 5a), written against the SVM."""
    ps = ()
    for x in xs:
        ps = branch(ops.gt(x, 0),
                    lambda x=x, ps=ps: B.cons(x, ps),
                    lambda ps=ps: ps)
    return ps


class TestSolve:
    def test_finds_all_positive_input(self):
        holder = {}

        def program():
            xs = tuple(fresh_int("s") for _ in range(2))
            holder["xs"] = xs
            assert_(B.equal(B.length(rev_pos(xs)), len(xs)))

        outcome = solve(program)
        assert outcome.status == "sat"
        values = [outcome.model.evaluate(x) for x in holder["xs"]]
        assert all(v > 0 for v in values)

    def test_unsat_when_impossible(self):
        def program():
            xs = (fresh_int("u"),)
            # A 1-element input can never filter to 2 elements.
            assert_(B.equal(B.length(rev_pos(xs)), 2))

        assert solve(program).status == "unsat"

    def test_definite_failure_is_unsat(self):
        def program():
            assert_(False)

        outcome = solve(program)
        assert outcome.status == "unsat"
        assert "every path" in outcome.message

    def test_no_assertions_is_trivially_sat(self):
        assert solve(lambda: None).status == "sat"

    def test_stats_are_collected(self):
        def program():
            xs = tuple(fresh_int("t") for _ in range(2))
            assert_(B.equal(B.length(rev_pos(xs)), len(xs)))

        outcome = solve(program)
        assert outcome.stats.joins == 2            # one join per element
        assert outcome.stats.unions_created >= 2   # Fig. 6 shape
        assert outcome.stats.svm_seconds >= 0


class TestVerify:
    def test_property_that_holds(self):
        def program():
            xs = tuple(fresh_int("v") for _ in range(3))
            assert_(ops.le(B.length(rev_pos(xs)), len(xs)))

        assert verify(program).status == "unsat"

    def test_property_that_fails_yields_counterexample(self):
        holder = {}

        def program():
            xs = tuple(fresh_int("w") for _ in range(2))
            holder["xs"] = xs
            assert_(B.equal(B.length(rev_pos(xs)), len(xs)))

        outcome = verify(program)
        assert outcome.status == "sat"
        values = [outcome.model.evaluate(x) for x in holder["xs"]]
        assert not all(v > 0 for v in values)  # genuine counterexample

    def test_setup_assertions_are_assumptions(self):
        """Preconditions from setup are never counted as violations."""
        holder = {}

        def setup():
            x = fresh_int("pre")
            holder["x"] = x
            assert_(ops.ge(x, 0))

        def program():
            assert_(ops.ge(holder["x"], 0))  # implied by the precondition

        assert verify(program, setup=setup).status == "unsat"

    def test_counterexample_respects_assumptions(self):
        holder = {}

        def setup():
            x = fresh_int("amt")
            holder["x"] = x
            assert_(ops.ge(x, 10))

        def program():
            assert_(ops.ge(holder["x"], 20))

        outcome = verify(program, setup=setup)
        assert outcome.status == "sat"
        value = outcome.model.evaluate(holder["x"])
        assert 10 <= value < 20

    def test_unsatisfiable_preconditions(self):
        def setup():
            x = fresh_int("bad")
            assert_(ops.and_(ops.lt(x, 0), ops.gt(x, 0)))

        outcome = verify(lambda: assert_(False), setup=setup)
        # Caught either as vacuous (unsat) or as a definite failure probe.
        assert outcome.status in ("unsat", "sat")

    def test_definite_failure_is_counterexample(self):
        outcome = verify(lambda: assert_(False))
        assert outcome.status == "sat"
        assert "definite" in outcome.message

    def test_no_assertions_has_no_counterexample(self):
        assert verify(lambda: 42).status == "unsat"


class TestOutcome:
    def test_bool_conversion(self):
        assert bool(solve(lambda: None)) is True
        assert bool(solve(lambda: assert_(fresh_bool() & ~fresh_bool()))) \
            in (True, False)

    def test_repr(self):
        outcome = solve(lambda: None)
        assert "sat" in repr(outcome)
