"""Tests for CEGIS synthesis."""

import pytest

from repro.sym import fresh_bool, fresh_int, merge, ops
from repro.vm import assert_, branch, builtins as B
from repro.queries import synthesize


class TestCegis:
    def test_linear_coefficient(self):
        """forall x: x * c == x + x  =>  c == 2."""
        x, c = fresh_int("cx"), fresh_int("cc")
        outcome = synthesize(
            [x], lambda: assert_(B.equal(x * c, x + x)))
        assert outcome.status == "sat"
        assert outcome.model.evaluate(c) == 2

    def test_affine_pair(self):
        """forall x: a*x + b == 3x + 5."""
        x, a, b = fresh_int("px"), fresh_int("pa"), fresh_int("pb")
        outcome = synthesize(
            [x],
            lambda: assert_(B.equal(ops.add(ops.mul(a, x), b),
                                    ops.add(ops.mul(x, 3), 5))))
        assert outcome.status == "sat"
        assert outcome.model.evaluate(a) == 3
        assert outcome.model.evaluate(b) == 5

    def test_boolean_hole(self):
        """Pick the branch that makes the sketch compute max(x, 0)."""
        x = fresh_int("bx")
        sel = fresh_bool("bsel")

        def program():
            value = branch(sel, lambda: branch(ops.gt(x, 0), lambda: x,
                                               lambda: 0),
                           lambda: 0)
            spec = branch(ops.gt(x, 0), lambda: x, lambda: 0)
            assert_(B.equal(value, spec))

        outcome = synthesize([x], program)
        assert outcome.status == "sat"
        assert outcome.model.evaluate(sel) is True

    def test_impossible_synthesis_is_unsat(self):
        """No constant c with x * c == x + 1 for all x."""
        x, c = fresh_int("ix"), fresh_int("ic")
        outcome = synthesize(
            [x], lambda: assert_(B.equal(x * c, x + 1)))
        assert outcome.status == "unsat"

    def test_preconditions_weaken_the_goal(self):
        """With x >= 0 assumed, |x| == x is realizable by the identity."""
        x, sel = fresh_int("wx"), fresh_bool("wsel")

        def setup():
            assert_(ops.ge(x, 0))

        def program():
            candidate = branch(sel, lambda: x, lambda: ops.neg(x))
            assert_(B.equal(candidate, x))

        outcome = synthesize([x], program, setup=setup)
        assert outcome.status == "sat"
        assert outcome.model.evaluate(sel) is True

    def test_definite_failure(self):
        outcome = synthesize([], lambda: assert_(False))
        assert outcome.status == "unsat"

    def test_union_holes_via_procedure_choice(self):
        """Holes choosing among closures (the SynthCL sketch pattern)."""
        x = fresh_int("ux")
        op = merge(fresh_bool("usel"),
                   lambda v: ops.add(v, v), lambda v: ops.mul(v, v))

        def program():
            assert_(B.equal(B.apply_value(op, x), ops.mul(x, 2)))

        outcome = synthesize([x], program)
        assert outcome.status == "sat"

    def test_iteration_cap_reports_unknown(self):
        x, c = fresh_int("kx"), fresh_int("kc")
        outcome = synthesize(
            [x], lambda: assert_(B.equal(x * c, x + x)),
            max_iterations=0)
        assert outcome.status == "unknown"

    def test_convergence_message(self):
        x, c = fresh_int("mx"), fresh_int("mc")
        outcome = synthesize([x], lambda: assert_(B.equal(x + c, x + 7)))
        assert outcome.status == "sat"
        assert "cegis converged" in outcome.message

    def test_bad_input_type_rejected(self):
        with pytest.raises(TypeError):
            synthesize(["not-symbolic"], lambda: None)
