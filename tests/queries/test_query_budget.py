"""Every query's UNKNOWN path, forced deterministically with tiny budgets.

Conflict budgets are exact (the solver is deterministic and charging is
in-band), so ``Budget(conflicts=0)`` reliably trips at the first conflict.
The workhorse formula is factoring 143 = 11 * 13 within bounds — deciding
multiplication takes the SAT core through genuine conflicts, unlike the
propagation-only formulas most other tests use.
"""

import pytest

from repro.sym import fresh_bool, fresh_int, ops
from repro.vm import assert_, builtins as B
from repro.queries import (
    Budget,
    CancellationToken,
    debug,
    solve,
    synthesize,
    verify,
)

TARGET = 143  # = 11 * 13, the only factoring within the bounds below


def assert_factoring(x, y, x_cap=16):
    assert_(ops.num_eq(ops.mul(x, y), TARGET))
    assert_(ops.gt(x, 1))
    assert_(ops.gt(y, 1))
    assert_(ops.lt(x, x_cap))
    assert_(ops.lt(y, 16))


def feasible_factoring(holder=None):
    x, y = fresh_int("qx"), fresh_int("qy")
    if holder is not None:
        holder["xy"] = (x, y)
    assert_factoring(x, y)


def impossible_factoring():
    # x < 11 excludes the only factor pair: UNSAT, but proving it needs
    # conflicts.
    assert_factoring(fresh_int("nx"), fresh_int("ny"), x_cap=11)


class TestSolveUnknown:
    def test_conflict_budget_trips(self):
        outcome = solve(feasible_factoring, budget=Budget(conflicts=0))
        assert outcome.status == "unknown"
        assert outcome.report is not None
        assert outcome.report.reason == "conflicts"
        assert outcome.report.phase == "search"
        assert outcome.report.conflicts >= 1
        assert "budget exhausted" in outcome.message
        assert outcome.stats.budget_trips == 1

    def test_unbudgeted_answer_unchanged(self):
        holder = {}
        outcome = solve(lambda: feasible_factoring(holder))
        assert outcome.status == "sat"
        x, y = holder["xy"]
        assert outcome.model.evaluate(x) * outcome.model.evaluate(y) \
            == TARGET
        assert outcome.report is None
        assert outcome.stats.budget_trips == 0

    def test_cancellation_token(self):
        token = CancellationToken()
        token.cancel()
        outcome = solve(feasible_factoring, budget=Budget(token=token))
        assert outcome.status == "unknown"
        assert outcome.report.reason == "cancelled"


class TestVerifyUnknown:
    def _setup_and_thunk(self):
        holder = {}

        def setup():
            x, y = fresh_int("vx"), fresh_int("vy")
            holder["xy"] = (x, y)
            assert_(ops.gt(x, 1))
            assert_(ops.gt(y, 1))
            assert_(ops.lt(x, 16))
            assert_(ops.lt(y, 16))

        def thunk():
            x, y = holder["xy"]
            assert_(ops.not_(ops.num_eq(ops.mul(x, y), TARGET)))

        return setup, thunk

    def test_conflict_budget_trips(self):
        setup, thunk = self._setup_and_thunk()
        outcome = verify(thunk, setup=setup, budget=Budget(conflicts=0))
        assert outcome.status == "unknown"
        assert outcome.report is not None
        assert outcome.report.reason == "conflicts"
        assert outcome.stats.budget_trips == 1

    def test_unbudgeted_finds_counterexample(self):
        setup, thunk = self._setup_and_thunk()
        outcome = verify(thunk, setup=setup)
        assert outcome.status == "sat"  # 11 * 13 is the counterexample


class TestDebugUnknown:
    def test_conflict_budget_trips_initial_check(self):
        outcome = debug(impossible_factoring, budget=Budget(conflicts=0))
        assert outcome.status == "unknown"
        assert outcome.report is not None
        assert outcome.report.reason == "conflicts"
        assert "budget exhausted" in outcome.message

    def test_unbudgeted_answer_unchanged(self):
        def program():
            from repro.queries import relax
            x = relax(5, "five")
            y = relax(3, "three")
            assert_(B.equal(ops.add(x, y), 9))

        outcome = debug(program)
        assert outcome.status == "sat"
        assert set(outcome.core) == {"five", "three"}
        assert outcome.report is None


class TestSynthesizeUnknown:
    def test_guess_phase_trips(self):
        h1, h2 = fresh_int("gh1"), fresh_int("gh2")
        outcome = synthesize(
            [], lambda: assert_factoring(h1, h2),
            budget=Budget(conflicts=0))
        assert outcome.status == "unknown"
        assert outcome.report is not None
        assert "guess phase" in outcome.message
        assert outcome.model is None  # tripped before any candidate

    def test_guess_phase_unbudgeted_synthesizes(self):
        h1, h2 = fresh_int("uh1"), fresh_int("uh2")
        outcome = synthesize([], lambda: assert_factoring(h1, h2))
        assert outcome.status == "sat"
        values = {outcome.model.evaluate(h1), outcome.model.evaluate(h2)}
        assert values == {11, 13}

    def _check_hard_thunk(self):
        """Guessing is trivial, refuting the candidate needs conflicts."""
        x, y, h = fresh_int("cx"), fresh_int("cy"), fresh_int("ch")

        def thunk():
            infeasible = ops.and_(
                ops.num_eq(ops.mul(x, y), TARGET),
                ops.and_(ops.gt(x, 1),
                         ops.and_(ops.gt(y, 1),
                                  ops.and_(ops.lt(x, 11), ops.lt(y, 16)))))
            assert_(ops.or_(ops.num_eq(h, 5), ops.not_(infeasible)))

        return (x, y), h, thunk

    def test_check_phase_trips_with_best_candidate(self):
        inputs, h, thunk = self._check_hard_thunk()
        outcome = synthesize(list(inputs), thunk, budget=Budget(conflicts=0))
        assert outcome.status == "unknown"
        assert outcome.report is not None
        assert "check phase" in outcome.message
        assert "best candidate" in outcome.message
        # The anytime candidate: it satisfied every example seen so far.
        assert outcome.model is not None
        assert outcome.model.evaluate(h) == 0

    def test_check_phase_unbudgeted_converges(self):
        inputs, h, thunk = self._check_hard_thunk()
        outcome = synthesize(list(inputs), thunk)
        assert outcome.status == "sat"

    def test_per_iteration_budget_trips(self):
        h1, h2 = fresh_int("ph1"), fresh_int("ph2")
        outcome = synthesize(
            [], lambda: assert_factoring(h1, h2),
            iteration_budget={"conflicts": 0})
        assert outcome.status == "unknown"
        assert outcome.report is not None

    def test_generous_per_iteration_budget_converges(self):
        x, c = fresh_int("lx"), fresh_int("lc")
        outcome = synthesize(
            [x], lambda: assert_(B.equal(x * c, x + x)),
            budget=Budget(conflicts=1_000_000),
            iteration_budget={"conflicts": 100_000})
        assert outcome.status == "sat"
        assert outcome.model.evaluate(c) == 2

    def test_iteration_budget_chains_into_total(self):
        """A tiny total budget trips even with generous per-iteration caps."""
        h1, h2 = fresh_int("th1"), fresh_int("th2")
        outcome = synthesize(
            [], lambda: assert_factoring(h1, h2),
            budget=Budget(conflicts=0),
            iteration_budget={"conflicts": 1_000_000})
        assert outcome.status == "unknown"
        assert outcome.report.limits.get("parent") == {"conflicts": 0}
