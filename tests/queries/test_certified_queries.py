"""certify= threading through solve/verify/synthesize/debug and the stats."""

from repro.obs.metrics import BusMetrics
from repro.queries import solve, synthesize, verify
from repro.queries.debug import debug, relax
from repro.smt import terms as T
from repro.sym.values import SymInt
from repro.vm.context import assert_


def _sym(name, width=8):
    return SymInt(T.bv_var(name, width))


class _LazyInputs:
    def __init__(self, backing):
        self._backing = backing

    def __iter__(self):
        return iter(self._backing)


class TestCertifiedQueries:
    def test_solve_certified(self):
        outcome = solve(lambda: assert_(_sym("cq_a") + 1 == 5), certify=True)
        assert outcome.status == "sat"
        assert outcome.stats.certified_checks == 1
        assert outcome.model.evaluate(_sym("cq_a")) == 4

    def test_verify_certified(self):
        outcome = verify(lambda: assert_(_sym("cq_b") * 2 != 7), certify=True)
        assert outcome.status == "unsat"
        assert outcome.stats.certified_checks == 1

    def test_verify_counterexample_certified(self):
        outcome = verify(lambda: assert_(_sym("cq_c") != 3), certify=True)
        assert outcome.status == "sat"
        assert outcome.stats.certified_checks == 1
        assert outcome.model.evaluate(_sym("cq_c")) == 3

    def test_synthesize_certified(self):
        inputs = []

        def thunk():
            x = _sym("cq_x")
            hole = _sym("cq_h")
            inputs.append(x)
            assert_(x + hole == x + 3)

        outcome = synthesize(_LazyInputs(inputs), thunk, certify=True)
        assert outcome.status == "sat"
        # CEGIS runs at least one guess and one check, each certified.
        assert outcome.stats.certified_checks >= 2
        assert outcome.model.evaluate(_sym("cq_h")) == 3

    def test_debug_certified(self):
        def thunk():
            x = relax(_sym("cq_d"), "x")
            y = relax(x + 1, "x+1")
            assert_(y == 0)
            assert_(x == 7)

        outcome = debug(thunk, certify=True)
        assert outcome.status == "sat"
        assert outcome.core  # some relaxation is to blame
        assert outcome.stats.certified_checks >= 2

    def test_env_knob_reaches_queries(self, monkeypatch):
        monkeypatch.setenv("REPRO_CERTIFY", "1")
        outcome = solve(lambda: assert_(_sym("cq_e") == 9))
        assert outcome.status == "sat"
        assert outcome.stats.certified_checks == 1

    def test_certify_off_records_zero(self):
        outcome = solve(lambda: assert_(_sym("cq_f") == 1))
        assert outcome.status == "sat"
        assert outcome.stats.certified_checks == 0

    def test_cert_metrics_aggregate(self):
        metrics = BusMetrics()
        with metrics.subscribed():
            solve(lambda: assert_(_sym("cq_g") == 2), certify=True)
        snapshot = metrics.snapshot()
        assert snapshot["smt.certified"] == 1
        assert snapshot["cert.model.checks"] == 1
        assert "cert.model.rejected" not in snapshot
