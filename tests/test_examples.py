"""Smoke tests: the example scripts run end to end.

Only the fast examples run here (the automata and IFCL walkthroughs
exercise deeper solver queries and are covered by their SDSL test suites
and the benchmarks).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", ["quickstart", "websynth_scraper",
                                  "synthcl_matmul"])
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{name} printed nothing"
    assert "status" in output or "==" in output
