"""Fault injection: every chaos fault class must be caught by a certifier."""

import pytest

from repro.solver.chaos import FAULT_CLASSES, inject, run_chaos


def test_fault_taxonomy_covers_at_least_six_classes():
    assert len(FAULT_CLASSES) >= 6
    assert len(set(FAULT_CLASSES)) == len(FAULT_CLASSES)


@pytest.mark.parametrize("fault", FAULT_CLASSES)
def test_every_fault_class_is_caught(fault):
    outcome = inject(fault, seed=0)
    assert outcome.caught, (
        f"certifiers accepted an injected {fault} fault: {outcome.detail}")
    assert outcome.fault == fault
    assert "certification failed" in outcome.detail


def test_run_chaos_is_deterministic_per_seed():
    # Outcomes are stable per seed. Detail strings are not compared: they
    # embed SAT literal numbers, and the term layer's id-ordered n-ary
    # canonicalization can renumber variables between runs once the
    # weakly-interned terms of a previous run have been collected.
    first = run_chaos(seed=7, faults=("corrupt-model-bit", "truncate-core"))
    second = run_chaos(seed=7, faults=("corrupt-model-bit", "truncate-core"))
    assert [(o.fault, o.caught) for o in first] == \
           [(o.fault, o.caught) for o in second]


def test_chaos_catches_faults_under_other_seeds():
    # The harness must not depend on one lucky seed; a different seed
    # mutates different positions and the certifiers still reject.
    for outcome in run_chaos(seed=3):
        assert outcome.caught, f"{outcome.fault}: {outcome.detail}"


def test_unknown_fault_class_is_an_error():
    with pytest.raises(ValueError):
        inject("unplug-the-machine")


def test_outcome_rows_are_json_shaped():
    outcome = inject("truncate-proof", seed=0)
    row = outcome.row()
    assert set(row) == {"fault", "caught", "detail"}
    assert row["caught"] is True
