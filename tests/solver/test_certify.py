"""Certification layer: proof logs, the RUP checker, and the certifiers."""

import pytest

from repro.solver.certify import (
    STEP_DELETE,
    STEP_INPUT,
    STEP_LEARN,
    CertificationError,
    ProofLog,
    RupChecker,
    check_model,
    check_proof,
    recheck_unsat,
)
from repro.solver.sat import SatResult, SatSolver


def _pigeonhole(solver, pigeons, holes):
    var = {(p, h): solver.new_var()
           for p in range(pigeons) for h in range(holes)}
    for p in range(pigeons):
        solver.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return var


class TestProofLog:
    def test_records_inputs_learns_and_deletes(self):
        proof = ProofLog()
        proof.input([1, 2])
        proof.learn([1])
        proof.delete([1, 2])
        assert proof.counts() == {"i": 1, "a": 1, "d": 1}
        assert proof.input_clauses() == [(1, 2)]
        assert len(proof) == 3

    def test_jsonl_round_trip(self, tmp_path):
        proof = ProofLog()
        proof.input([1, -2, 3])
        proof.learn([-1])
        proof.delete([1, -2, 3])
        path = tmp_path / "proof.jsonl"
        proof.to_jsonl(path)
        loaded = ProofLog.from_jsonl(path)
        assert loaded.steps == proof.steps

    def test_drup_text_has_no_input_clauses(self):
        proof = ProofLog()
        proof.input([1, 2])
        proof.learn([-1, 2])
        proof.delete([1, 2])
        text = proof.to_drup()
        assert text == "-1 2 0\nd 1 2 0\n"

    def test_enable_proof_requires_pristine_solver(self):
        solver = SatSolver()
        solver.add_clause([solver.new_var()])
        with pytest.raises(RuntimeError):
            solver.enable_proof()


class TestSolverLogging:
    def test_unsat_proof_certifies(self):
        solver = SatSolver()
        proof = solver.enable_proof()
        _pigeonhole(solver, 4, 3)
        assert solver.solve() is SatResult.UNSAT
        stats = check_proof(proof)
        assert stats["rup_checked"] == proof.counts()[STEP_LEARN]
        assert proof.counts()[STEP_LEARN] > 0

    def test_sat_model_certifies(self):
        solver = SatSolver()
        proof = solver.enable_proof()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([a, b])
        solver.add_clause([-a, c])
        solver.add_clause([-b, -c])
        assert solver.solve() is SatResult.SAT
        check_model(proof, solver.model())

    def test_assumption_core_certifies(self):
        solver = SatSolver()
        proof = solver.enable_proof()
        a, b, pad = (solver.new_var() for _ in range(3))
        solver.add_clause([-a, -b])
        assert solver.solve([a, b, pad]) is SatResult.UNSAT
        core = solver.unsat_core()
        check_proof(proof, core=core)
        recheck_unsat(proof.input_clauses(), core)

    def test_truncated_core_is_rejected(self):
        solver = SatSolver()
        proof = solver.enable_proof()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([-a, -b])
        assert solver.solve([a, b]) is SatResult.UNSAT
        core = solver.unsat_core()
        assert len(core) == 2
        with pytest.raises(CertificationError):
            check_proof(proof, core=core[:1])
        with pytest.raises(CertificationError):
            recheck_unsat(proof.input_clauses(), core[:1])

    def test_reduce_db_logs_deletions_and_proof_still_checks(self):
        # The reduce threshold (1000+ learnts) is far beyond what a unit
        # test can afford to reach organically, so trigger the reduction
        # directly: the deletion steps it logs must leave a checkable
        # proof (deletions follow every learn, and the derived
        # contradiction is already latched).
        solver = SatSolver()
        proof = solver.enable_proof()
        _pigeonhole(solver, 4, 3)
        assert solver.solve() is SatResult.UNSAT
        solver._reduce_db()
        assert proof.counts()[STEP_DELETE] > 0
        check_proof(proof)

    def test_wrong_model_is_rejected(self):
        solver = SatSolver()
        proof = solver.enable_proof()
        a = solver.new_var()
        solver.add_clause([a])
        assert solver.solve() is SatResult.SAT
        with pytest.raises(CertificationError) as err:
            check_model(proof, {a: False})
        assert err.value.kind == "model"

    def test_false_assumption_in_model_is_rejected(self):
        solver = SatSolver()
        proof = solver.enable_proof()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        assert solver.solve([a]) is SatResult.SAT
        with pytest.raises(CertificationError):
            check_model(proof, {a: False, b: True}, assumptions=[a])


class TestRupChecker:
    def test_learn_delete_then_conclusion_still_follows(self):
        # x1; x1 -> x2; learn [x2] (RUP); delete it; the conclusion -x2
        # still conflicts because the inputs re-derive x2 at root.
        proof = ProofLog([
            (STEP_INPUT, (1,)),
            (STEP_INPUT, (-1, 2)),
            (STEP_LEARN, (2,)),
            (STEP_DELETE, (2,)),
            (STEP_INPUT, (-2,)),
        ])
        check_proof(proof)

    def test_root_reason_deletion_is_guarded(self):
        checker = RupChecker()
        checker.add_clause([1])          # root unit: reason for 1
        checker.add_clause([-1, 2])      # propagates 2 at root
        checker.delete_clause([1])       # drat-trim: must be kept
        checker.delete_clause([-1, 2])   # also a root reason
        assert checker.check_conflict([-2])

    def test_non_rup_learn_is_rejected(self):
        proof = ProofLog([
            (STEP_INPUT, (1, 2)),
            (STEP_LEARN, (1,)),   # not implied: {x1=F, x2=T} satisfies input
        ])
        with pytest.raises(CertificationError) as err:
            check_proof(proof)
        assert err.value.kind == "proof"

    def test_unsupported_conclusion_is_rejected(self):
        proof = ProofLog([(STEP_INPUT, (1, 2))])
        with pytest.raises(CertificationError):
            check_proof(proof)

    def test_tautologies_are_inert(self):
        # A tautological input neither aids propagation toward the
        # conclusion (x2 and -x2 still conflict without it) ...
        check_proof(ProofLog([
            (STEP_INPUT, (1, -1)),
            (STEP_INPUT, (2,)),
            (STEP_INPUT, (-2,)),
        ]))
        # ... nor can a model falsify it, whatever x1 is.
        satisfiable = ProofLog([
            (STEP_INPUT, (1, -1)),
            (STEP_INPUT, (2,)),
        ])
        check_model(satisfiable, {1: False, 2: True})
        check_model(satisfiable, {1: True, 2: True})

    def test_duplicate_literals_are_deduplicated(self):
        checker = RupChecker()
        checker.add_clause([1, 1, 2, 2])
        assert checker.check_conflict([-1, -2])
        assert not checker.check_conflict([-1])

    def test_unknown_step_kind_is_rejected(self):
        proof = ProofLog([("x", (1,))])
        with pytest.raises(CertificationError):
            check_proof(proof)


class TestRecheckUnsat:
    def test_satisfiable_claim_is_rejected_as_core(self):
        with pytest.raises(CertificationError) as err:
            recheck_unsat([(1, 2)], [1])
        assert err.value.kind == "core"

    def test_empty_core_on_unsat_inputs(self):
        stats = recheck_unsat([(1,), (-1,)])
        assert stats["core"] == 0
