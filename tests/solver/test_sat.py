"""Unit and property tests for the CDCL SAT solver."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.sat import SatResult, SatSolver, _luby


def brute_force_sat(num_vars, clauses):
    """Reference decision procedure by exhaustive enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any((bits[abs(l) - 1] if l > 0 else not bits[abs(l) - 1])
                   for l in clause) for clause in clauses):
            return True
    return False


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert SatSolver().solve() is SatResult.SAT

    def test_single_unit_clause(self):
        solver = SatSolver()
        x = solver.new_var()
        solver.add_clause([x])
        assert solver.solve() is SatResult.SAT
        assert solver.model_value(x) is True

    def test_contradicting_units(self):
        solver = SatSolver()
        x = solver.new_var()
        solver.add_clause([x])
        assert not solver.add_clause([-x])
        assert solver.solve() is SatResult.UNSAT

    def test_binary_implication_chain(self):
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(10)]
        for a, b in zip(variables, variables[1:]):
            solver.add_clause([-a, b])
        solver.add_clause([variables[0]])
        assert solver.solve() is SatResult.SAT
        assert all(solver.model_value(v) for v in variables)

    def test_tautology_is_dropped(self):
        solver = SatSolver()
        x = solver.new_var()
        assert solver.add_clause([x, -x])
        assert solver.solve() is SatResult.SAT

    def test_duplicate_literals_collapse(self):
        solver = SatSolver()
        x = solver.new_var()
        solver.add_clause([x, x, x])
        assert solver.solve() is SatResult.SAT
        assert solver.model_value(x) is True

    def test_pigeonhole_3_into_2_unsat(self):
        # Three pigeons, two holes: classic small UNSAT instance.
        solver = SatSolver()
        var = {(p, h): solver.new_var() for p in range(3) for h in range(2)}
        for p in range(3):
            solver.add_clause([var[(p, 0)], var[(p, 1)]])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert solver.solve() is SatResult.UNSAT

    def test_model_satisfies_all_clauses(self):
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(6)]
        clauses = [[1, -2, 3], [-1, 4], [2, -5, 6], [-4, -6], [5, 1]]
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_solver_reusable_after_unsat_assumptions(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([-a, -b])
        assert solver.solve([a, b]) is SatResult.UNSAT
        assert solver.solve([a]) is SatResult.SAT
        assert solver.solve() is SatResult.SAT

    def test_max_conflicts_gives_unknown(self):
        solver = SatSolver()
        # A hard-enough pigeonhole so that 1 conflict is not sufficient.
        var = {(p, h): solver.new_var() for p in range(5) for h in range(4)}
        for p in range(5):
            solver.add_clause([var[(p, h)] for h in range(4)])
        for h in range(4):
            for p1 in range(5):
                for p2 in range(p1 + 1, 5):
                    solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        solver.max_conflicts = 1
        assert solver.solve() in (SatResult.UNKNOWN, SatResult.UNSAT)


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = SatSolver()
        x = solver.new_var()
        assert solver.solve([-x]) is SatResult.SAT
        assert solver.model_value(x) is False

    def test_core_is_subset_of_assumptions(self):
        solver = SatSolver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([-a, -b])
        assert solver.solve([a, b, c]) is SatResult.UNSAT
        core = solver.unsat_core()
        assert set(core) <= {a, b, c}
        assert set(core) >= {a} or set(core) >= {b}

    def test_conflicting_assumptions(self):
        solver = SatSolver()
        x = solver.new_var()
        assert solver.solve([x, -x]) is SatResult.UNSAT
        assert set(solver.unsat_core()) == {x, -x}

    def test_core_through_propagation_chain(self):
        solver = SatSolver()
        a, b, c, d = (solver.new_var() for _ in range(4))
        solver.add_clause([-a, b])
        solver.add_clause([-b, c])
        solver.add_clause([-c, -d])
        assert solver.solve([a, d]) is SatResult.UNSAT
        assert set(solver.unsat_core()) == {a, d}

    def test_toplevel_unsat_has_empty_core(self):
        solver = SatSolver()
        x = solver.new_var()
        solver.add_clause([x])
        solver.add_clause([-x])
        assert solver.solve([x]) is SatResult.UNSAT
        assert solver.unsat_core() == []


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == \
            [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


@st.composite
def cnf_instances(draw):
    num_vars = draw(st.integers(min_value=1, max_value=7))
    num_clauses = draw(st.integers(min_value=1, max_value=20))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [draw(st.integers(min_value=1, max_value=num_vars)) *
                  draw(st.sampled_from([1, -1])) for _ in range(width)]
        clauses.append(clause)
    return num_vars, clauses


class TestAgainstBruteForce:
    @given(cnf_instances())
    @settings(max_examples=200, deadline=None)
    def test_decision_matches_brute_force(self, instance):
        num_vars, clauses = instance
        solver = SatSolver()
        for _ in range(num_vars):
            solver.new_var()
        ok = True
        for clause in clauses:
            if not solver.add_clause(clause):
                ok = False
                break
        result = solver.solve() if ok else SatResult.UNSAT
        assert (result is SatResult.SAT) == brute_force_sat(num_vars, clauses)
        if result is SatResult.SAT:
            model = solver.model()
            for clause in clauses:
                assert any(model.get(abs(l), True) == (l > 0) for l in clause)

    @given(cnf_instances(), st.lists(st.integers(min_value=1, max_value=7),
                                     min_size=0, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_unsat_core_is_really_unsat(self, instance, assumption_vars):
        num_vars, clauses = instance
        assumptions = sorted({v for v in assumption_vars if v <= num_vars})
        solver = SatSolver()
        for _ in range(num_vars):
            solver.new_var()
        ok = all(solver.add_clause(clause) for clause in clauses)
        if not ok:
            return
        if solver.solve(assumptions) is SatResult.UNSAT and \
                brute_force_sat(num_vars, clauses):
            core = solver.unsat_core()
            assert set(core) <= set(assumptions)
            with_core = clauses + [[lit] for lit in core]
            assert not brute_force_sat(num_vars, with_core)
