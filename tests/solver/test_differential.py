"""Property-based differential tests: certified answers vs brute force.

Two oracles, both exhaustive:

- random CNFs (small enough to enumerate all assignments) solved by
  :class:`SatSolver` with proof logging, every answer certified;
- random bitvector formulas (built from a seeded grammar over two 4-bit
  variables) decided by the certified :class:`SmtSolver` and by
  evaluating the term under all 256 assignments.

Certification is on throughout, so these cases double as a
no-false-rejections property: a certifier that wrongly rejected a genuine
answer would raise and fail the test.
"""

import random

import pytest

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.solver.certify import check_model, check_proof
from repro.solver.sat import SatResult, SatSolver

WIDTH = 4


def _random_cnf(rng, num_vars, num_clauses):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, 3)
        lits = []
        for _ in range(size):
            var = rng.randint(1, num_vars)
            lits.append(var if rng.random() < 0.5 else -var)
        clauses.append(lits)
    return clauses


def _brute_force_sat(clauses, num_vars):
    for bits in range(1 << num_vars):
        assignment = {v: bool((bits >> (v - 1)) & 1)
                      for v in range(1, num_vars + 1)}
        if all(any(assignment[abs(l)] == (l > 0) for l in clause)
               for clause in clauses):
            return True
    return False


@pytest.mark.parametrize("seed", range(40))
def test_random_cnfs_match_brute_force_with_certification(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(3, 8)
    num_clauses = rng.randint(num_vars, 4 * num_vars)
    clauses = _random_cnf(rng, num_vars, num_clauses)

    solver = SatSolver()
    proof = solver.enable_proof()
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve()

    expected = _brute_force_sat(clauses, num_vars)
    if expected:
        assert result is SatResult.SAT
        check_model(proof, solver.model())
    else:
        assert result is SatResult.UNSAT
        check_proof(proof)


def _random_bv(rng, depth, x, y):
    if depth <= 0 or rng.random() < 0.3:
        choice = rng.randrange(3)
        if choice == 0:
            return x
        if choice == 1:
            return y
        return T.bv_const(rng.randrange(1 << WIDTH), WIDTH)
    op = rng.choice([T.mk_add, T.mk_sub, T.mk_mul, T.mk_bvand,
                     T.mk_bvor, T.mk_bvxor])
    return op(_random_bv(rng, depth - 1, x, y),
              _random_bv(rng, depth - 1, x, y))


def _random_formula(rng, x, y):
    left = _random_bv(rng, 2, x, y)
    right = _random_bv(rng, 2, x, y)
    relation = rng.choice([T.mk_eq, T.mk_ult, T.mk_ule])
    formula = relation(left, right)
    return T.mk_not(formula) if rng.random() < 0.5 else formula


@pytest.mark.parametrize("seed", range(25))
def test_random_bitvector_terms_match_brute_force_certified(seed):
    rng = random.Random(1000 + seed)
    x = T.bv_var(f"dx{seed}", WIDTH)
    y = T.bv_var(f"dy{seed}", WIDTH)
    formula = _random_formula(rng, x, y)

    expected_sat = any(
        T.evaluate(formula, {x: vx, y: vy})
        for vx in range(1 << WIDTH) for vy in range(1 << WIDTH))

    solver = SmtSolver(certify=True)
    solver.add_assertion(formula)
    result = solver.check()
    if expected_sat:
        assert result is SmtResult.SAT
        assert solver.last_cert == "model"
        model = solver.model()
        assert T.evaluate(formula, {x: model[x], y: model[y]}) is True
    else:
        assert result is SmtResult.UNSAT
        assert solver.last_cert in ("proof", "trivial")
