"""Tests for the CNF container and DIMACS round-tripping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import CNF, SatSolver, SatResult, parse_dimacs, to_dimacs


class TestCnf:
    def test_new_var_sequence(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_add_clause_grows_vars(self):
        cnf = CNF()
        cnf.add_clause([3, -5])
        assert cnf.num_vars == 5
        assert len(cnf) == 1

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([1, 0])

    def test_extend(self):
        cnf = CNF()
        cnf.extend([[1], [2, -1]])
        assert len(cnf) == 2

    def test_repr(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        assert "vars=2" in repr(cnf)


class TestDimacs:
    def test_render(self):
        cnf = CNF()
        cnf.add_clause([1, -2])
        cnf.add_clause([2])
        text = to_dimacs(cnf)
        assert text.startswith("p cnf 2 2\n")
        assert "1 -2 0" in text

    def test_parse(self):
        cnf = parse_dimacs("""
            c a comment
            p cnf 3 2
            1 -2 0
            2 3 0
        """)
        assert cnf.num_vars == 3
        assert cnf.clauses == [[1, -2], [2, 3]]

    def test_parse_malformed_header(self):
        with pytest.raises(ValueError):
            parse_dimacs("p dnf 1 1\n1 0\n")

    def test_round_trip(self):
        cnf = CNF()
        cnf.extend([[1, 2, -3], [-1], [3, 2]])
        again = parse_dimacs(to_dimacs(cnf))
        assert again.clauses == cnf.clauses
        assert again.num_vars == cnf.num_vars

    @given(st.lists(
        st.lists(st.integers(min_value=1, max_value=6).flatmap(
            lambda v: st.sampled_from([v, -v])), min_size=1, max_size=4),
        min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_solver_agrees_across_round_trip(self, clauses):
        cnf = CNF()
        cnf.extend(clauses)
        parsed = parse_dimacs(to_dimacs(cnf))

        def decide(instance):
            solver = SatSolver()
            ok = all(solver.add_clause(c) for c in instance.clauses)
            return solver.solve() if ok else SatResult.UNSAT

        assert decide(cnf) == decide(parsed)
