"""Budget / cancellation unit tests and SAT-solver integration."""

import pytest

from repro.solver.budget import (
    Budget,
    BudgetExhausted,
    CancellationToken,
    REASON_CANCELLED,
    REASON_CONFLICTS,
    REASON_DEADLINE,
    REASON_LEARNED,
    REASON_PROPAGATIONS,
)
from repro.solver.sat import SatResult, SatSolver


def pigeonhole(solver, pigeons, holes):
    """Encode the classic UNSAT pigeonhole instance; returns nothing."""
    var = {(p, h): solver.new_var()
           for p in range(pigeons) for h in range(holes)}
    for p in range(pigeons):
        solver.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-var[(p1, h)], -var[(p2, h)]])


class TestBudget:
    def test_no_limits_never_trips(self):
        budget = Budget().start()
        budget.charge_conflict()
        budget.charge_propagations(10_000)
        budget.charge_learned()
        assert budget.exceeded() is None

    def test_conflict_cap_allows_exactly_n(self):
        budget = Budget(conflicts=2)
        budget.charge_conflict()
        budget.charge_conflict()
        assert budget.exceeded() is None
        budget.charge_conflict()
        assert budget.exceeded() == REASON_CONFLICTS

    def test_zero_conflicts_trips_at_first(self):
        budget = Budget(conflicts=0)
        assert budget.exceeded() is None
        budget.charge_conflict()
        assert budget.exceeded() == REASON_CONFLICTS

    def test_propagation_cap(self):
        budget = Budget(propagations=5)
        budget.charge_propagations(5)
        assert budget.exceeded() is None
        budget.charge_propagations(1)
        assert budget.exceeded() == REASON_PROPAGATIONS

    def test_learned_cap(self):
        budget = Budget(learned=0)
        budget.charge_learned()
        assert budget.exceeded() == REASON_LEARNED

    def test_deadline(self):
        budget = Budget(ms=0).start()
        assert budget.exceeded() == REASON_DEADLINE

    def test_deadline_not_running_until_started(self):
        budget = Budget(ms=0)
        assert budget.exceeded() is None  # clock has not started

    def test_cancellation_token(self):
        token = CancellationToken()
        budget = Budget(token=token)
        assert budget.exceeded() is None
        token.cancel()
        assert budget.exceeded() == REASON_CANCELLED

    def test_charges_cascade_to_parent(self):
        total = Budget(conflicts=3)
        child = total.child(conflicts=10)
        for _ in range(4):
            child.charge_conflict()
        assert total.spent_conflicts == 4
        # The child itself is within its own cap, but the chain is not.
        assert child.exceeded() == REASON_CONFLICTS

    def test_child_trips_before_parent(self):
        total = Budget(conflicts=100)
        child = total.child(conflicts=0)
        child.charge_conflict()
        assert child.exceeded() == REASON_CONFLICTS
        assert total.exceeded() is None

    def test_child_shares_token(self):
        token = CancellationToken()
        total = Budget(token=token)
        child = total.child(conflicts=5)
        token.cancel()
        assert child.exceeded() == REASON_CANCELLED

    def test_start_is_idempotent(self):
        budget = Budget(ms=10_000)
        budget.start()
        t0 = budget._t0
        budget.start()
        assert budget._t0 == t0

    def test_report_carries_spend_and_limits(self):
        budget = Budget(conflicts=1, ms=5_000).start()
        budget.charge_conflict()
        budget.charge_conflict()
        report = budget.report(REASON_CONFLICTS, phase="search")
        assert report.reason == REASON_CONFLICTS
        assert report.phase == "search"
        assert report.conflicts == 2
        assert report.limits == {"ms": 5_000, "conflicts": 1}
        row = report.row()
        assert row["reason"] == REASON_CONFLICTS
        assert row["conflicts"] == 2

    def test_nested_limits_in_report(self):
        total = Budget(conflicts=9)
        child = total.child(conflicts=1)
        assert child.limits() == {"conflicts": 1,
                                  "parent": {"conflicts": 9}}

    def test_exhausted_exception_carries_report(self):
        report = Budget(conflicts=0).report(REASON_CONFLICTS, phase="encode")
        error = BudgetExhausted(report)
        assert error.report is report
        assert "conflicts" in str(error)


class TestSatSolverBudget:
    def test_conflict_budget_returns_unknown(self):
        solver = SatSolver()
        pigeonhole(solver, 4, 3)
        solver.budget = Budget(conflicts=0)
        assert solver.solve() is SatResult.UNKNOWN
        assert solver.interrupt_reason == REASON_CONFLICTS

    def test_unbudgeted_answer_unchanged(self):
        solver = SatSolver()
        pigeonhole(solver, 4, 3)
        assert solver.solve() is SatResult.UNSAT

    def test_solver_reusable_after_trip(self):
        solver = SatSolver()
        pigeonhole(solver, 4, 3)
        solver.budget = Budget(conflicts=0)
        assert solver.solve() is SatResult.UNKNOWN
        solver.budget = None
        assert solver.solve() is SatResult.UNSAT
        assert solver.interrupt_reason is None

    def test_learned_state_survives_trip(self):
        """A trip mid-search keeps the clauses learned so far."""
        solver = SatSolver()
        pigeonhole(solver, 5, 4)
        solver.budget = Budget(conflicts=3)
        assert solver.solve() is SatResult.UNKNOWN
        learned_after_trip = solver.num_learned
        assert learned_after_trip >= 1
        solver.budget = None
        assert solver.solve() is SatResult.UNSAT

    def test_pre_cancelled_token_skips_search(self):
        token = CancellationToken()
        token.cancel()
        solver = SatSolver()
        x = solver.new_var()
        solver.add_clause([x])
        solver.budget = Budget(token=token)
        assert solver.solve() is SatResult.UNKNOWN
        assert solver.interrupt_reason == REASON_CANCELLED
        assert solver.num_conflicts == 0

    def test_easy_instance_within_budget_still_sat(self):
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(5)]
        for a, b in zip(variables, variables[1:]):
            solver.add_clause([-a, b])
        solver.add_clause([variables[0]])
        solver.budget = Budget(conflicts=1_000)
        assert solver.solve() is SatResult.SAT

    def test_deadline_trips_search(self):
        solver = SatSolver()
        pigeonhole(solver, 6, 5)
        solver.budget = Budget(ms=0)
        assert solver.solve() is SatResult.UNKNOWN
        assert solver.interrupt_reason == REASON_DEADLINE
