"""The abstract interpreter and sanitizer against a brute-force oracle.

Random formulas over two 4-bit variables (the grammar of
``tests/solver/test_differential.py``, widened with division, shifts,
``ite`` and boolean structure) are small enough to evaluate under all
256 assignments, giving three exhaustive properties:

- *containment*: every node's concrete value lies in its abstraction;
- *equivalence*: the sanitized formula agrees with the original on
  every assignment (and certify mode re-proves it without raising);
- *preservation*: a sanitizing solver returns the same SAT/UNSAT answer
  as a non-sanitizing one.

Plus the deliberate-fault direction: a corrupted transfer function must
be caught by the certify cross-check (directly and via the chaos
harness), which is what distinguishes a sanitizer that is sound from
one that merely never fires.
"""

import random

import pytest

from repro.analysis import analyze_term, bool3_of, sanitize
from repro.analysis.domains import (
    BFALSE,
    BTRUE,
    AbsVal,
    chaos_wrong_transfer,
)
from repro.analysis.sanitize import SanitizeStats, sanitize_assertion
from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.solver.certify import CertificationError

WIDTH = 4


def _random_bv(rng, depth, x, y):
    if depth <= 0 or rng.random() < 0.3:
        choice = rng.randrange(3)
        if choice == 0:
            return x
        if choice == 1:
            return y
        return T.bv_const(rng.randrange(1 << WIDTH), WIDTH)
    op = rng.choice([T.mk_add, T.mk_sub, T.mk_mul, T.mk_bvand, T.mk_bvor,
                     T.mk_bvxor, T.mk_udiv, T.mk_urem, T.mk_shl, T.mk_lshr,
                     T.mk_ashr])
    return op(_random_bv(rng, depth - 1, x, y),
              _random_bv(rng, depth - 1, x, y))


def _random_formula(rng, x, y, depth=2):
    relation = rng.choice([T.mk_eq, T.mk_ult, T.mk_ule, T.mk_slt, T.mk_sle])
    formula = relation(_random_bv(rng, depth, x, y),
                       _random_bv(rng, depth, x, y))
    if rng.random() < 0.4:
        other = relation(_random_bv(rng, depth, x, y),
                         _random_bv(rng, depth, x, y))
        connect = rng.choice([T.mk_and, T.mk_or, T.mk_xor])
        formula = connect(formula, other)
    if rng.random() < 0.3:
        formula = T.mk_ite(formula,
                           _random_bv(rng, 1, x, y),
                           _random_bv(rng, 1, x, y))
        formula = T.mk_ule(formula, T.bv_const(rng.randrange(16), WIDTH))
    return T.mk_not(formula) if rng.random() < 0.5 else formula


def _assignments(x, y):
    for vx in range(1 << WIDTH):
        for vy in range(1 << WIDTH):
            yield {x: vx, y: vy}


@pytest.mark.parametrize("seed", range(30))
def test_abstraction_contains_every_concrete_value(seed):
    rng = random.Random(2000 + seed)
    x = T.bv_var(f"abs_x{seed}", WIDTH)
    y = T.bv_var(f"abs_y{seed}", WIDTH)
    formula = _random_formula(rng, x, y)
    abstraction = analyze_term(formula)
    for env in _assignments(x, y):
        for node, value in abstraction.items():
            concrete = T.evaluate(node, env)
            if isinstance(value, AbsVal):
                assert value.contains(concrete), (
                    f"{node!r} = {concrete} outside {value!r}")
            elif value is BTRUE:
                assert concrete is True
            elif value is BFALSE:
                assert concrete is False


@pytest.mark.parametrize("seed", range(30))
def test_sanitize_preserves_meaning_on_all_assignments(seed):
    rng = random.Random(3000 + seed)
    x = T.bv_var(f"san_x{seed}", WIDTH)
    y = T.bv_var(f"san_y{seed}", WIDTH)
    formula = _random_formula(rng, x, y)
    stats = SanitizeStats()
    rewritten = sanitize(formula, certify=True, stats=stats)
    assert stats.nodes > 0
    assert T.term_size(rewritten) <= T.term_size(formula)
    for env in _assignments(x, y):
        assert T.evaluate(formula, env) == T.evaluate(rewritten, env)


@pytest.mark.parametrize("seed", range(20))
def test_sanitizing_solver_matches_plain_solver(seed):
    rng = random.Random(4000 + seed)
    x = T.bv_var(f"pair_x{seed}", WIDTH)
    y = T.bv_var(f"pair_y{seed}", WIDTH)
    formulas = [_random_formula(rng, x, y) for _ in range(2)]

    plain = SmtSolver(analyze=False)
    analyzed = SmtSolver(analyze=True, certify=True)
    for formula in formulas:
        plain.add_assertion(formula)
        analyzed.add_assertion(formula)
    expected = plain.check()
    assert analyzed.check() is expected
    if expected is SmtResult.SAT:
        model = analyzed.model()
        env = {x: model[x], y: model[y]}
        for formula in formulas:
            assert T.evaluate(formula, env) is True


def test_statically_decided_ite_collapses():
    x = T.bv_var("ite_x", 8)
    # (x & 0x0F) < 0x10 is an interval/known-bits tautology.
    guard = T.mk_ult(T.mk_bvand(x, T.bv_const(0x0F, 8)), T.bv_const(0x10, 8))
    term = T.mk_ite(guard, T.mk_add(x, T.bv_const(1, 8)), T.bv_const(0, 8))
    stats = SanitizeStats()
    rewritten = sanitize(term, stats=stats)
    assert rewritten is T.mk_add(x, T.bv_const(1, 8))
    assert stats.rewrites >= 1


def test_provably_false_assertion_short_circuits_solver():
    x = T.bv_var("false_x", 8)
    solver = SmtSolver(analyze=True)
    # x+2 == x+5 normalizes to 3 == 0 in the linear view; the sanitizer
    # proves it false so the solver answers UNSAT with zero search.
    solver.add_assertion(T.mk_eq(T.mk_add(x, T.bv_const(2, 8)),
                                 T.mk_add(x, T.bv_const(5, 8))))
    assert solver.check() is SmtResult.UNSAT
    assert solver.sanitize_stats.proved_false == 1
    assert solver.cumulative.conflicts == 0


def test_certified_proved_false_still_proof_backed():
    x = T.bv_var("cfalse_x", 8)
    solver = SmtSolver(analyze=True, certify=True)
    solver.add_assertion(T.mk_eq(T.mk_add(x, T.bv_const(2, 8)),
                                 T.mk_add(x, T.bv_const(5, 8))))
    assert solver.check() is SmtResult.UNSAT
    assert solver.last_cert == "proof"


def test_proved_true_assertion_drops_to_nothing():
    x = T.bv_var("true_x", 8)
    solver = SmtSolver(analyze=True)
    tautology = T.mk_ule(T.mk_bvand(x, T.bv_const(0x3F, 8)),
                         T.bv_const(0x3F, 8))
    solver.add_assertion(tautology)
    solver.add_assertion(T.mk_eq(x, T.bv_const(7, 8)))
    assert solver.check() is SmtResult.SAT
    assert solver.sanitize_stats.proved_true == 1
    assert solver.model()[x] == 7


def test_sanitize_stats_flow_into_check_stats():
    x = T.bv_var("stats_x", 8)
    solver = SmtSolver(analyze=True)
    solver.add_assertion(T.mk_ule(T.mk_bvand(x, T.bv_const(0x3F, 8)),
                                  T.bv_const(0x3F, 8)))
    solver.add_assertion(T.mk_eq(x, T.bv_const(9, 8)))
    solver.check()
    assert solver.last_check.sanitize_rewrites >= 1
    # A second check with no new assertions attributes no new rewrites.
    solver.check()
    assert solver.last_check.sanitize_rewrites == 0


def test_analyze_knob_defaults_off_and_env_overrides(monkeypatch):
    assert SmtSolver().analyze is False
    monkeypatch.setenv("REPRO_ANALYZE", "1")
    assert SmtSolver().analyze is True
    monkeypatch.setenv("REPRO_ANALYZE", "0")
    assert SmtSolver().analyze is False
    assert SmtSolver(analyze=True).analyze is True


def test_corrupted_transfer_is_caught_by_certify():
    x = T.bv_var("chaos_t_x", 4)
    formula = T.mk_eq(T.mk_add(x, T.bv_const(1, 4)), T.bv_const(3, 4))
    with chaos_wrong_transfer(T.OP_ADD):
        # Without certification the unsound rewrite lands silently...
        assert sanitize(formula) is not formula
        # ...with certification it is rejected.
        with pytest.raises(CertificationError):
            sanitize(formula, certify=True)
    # The context manager restores soundness.
    assert sanitize(formula, certify=True) is formula


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_chaos_corrupt_sanitizer_fault_is_caught(seed):
    from repro.solver.chaos import inject

    outcome = inject("corrupt-sanitizer", seed=seed)
    assert outcome.caught, outcome.detail


def test_sanitize_assertion_counts_and_events():
    from repro.obs.events import BUS
    from repro.obs.metrics import BusMetrics

    x = T.bv_var("ev_x", 8)
    metrics = BusMetrics()
    with metrics.subscribed():
        stats = SanitizeStats()
        sanitize_assertion(T.mk_eq(T.mk_add(x, T.bv_const(2, 8)),
                                   T.mk_add(x, T.bv_const(5, 8))),
                           stats=stats)
        assert stats.proved_false == 1
    snapshot = metrics.snapshot()
    assert snapshot["analysis.sanitize.passes"] == 1
    assert snapshot["analysis.sanitize.proved_false"] == 1
    assert not BUS.enabled
