"""symlint: rules, spans, CLI, and baseline behaviour."""

import json

import pytest

from repro.analysis.lint import (
    Diagnostic,
    all_rules,
    lint_hl_source,
    lint_paths,
    lint_python_source,
    main,
)

BUGGY_HL = """\
; seeded-buggy HL program
(define-symbolic n number?)
(define xs (list 1 2 3 4))

(define (sum-to k)
  (if (= k n)
      0
      (+ k (sum-to (+ k 1)))))

(define (spin x) (spin x))

(assert #t)
(assert (< 2 1))
(define v (list-ref xs n))

(cond
  [else 'a]
  [(= n 2) 'b])
"""

RACY_PY = """\
from repro.sdsl.synthcl.runtime import CLRuntime, WorkItemContext


def broken(values):
    runtime = CLRuntime(check_races=False)
    out = runtime.buffer("out", [0] * len(values))

    def kernel(item: WorkItemContext):
        gid = item.get_global_id()
        item.write(out, 0, gid)

    runtime.launch(kernel, len(values))
    return out.snapshot()
"""


def _by_rule(diagnostics):
    grouped = {}
    for diagnostic in diagnostics:
        grouped.setdefault(diagnostic.rule, []).append(diagnostic)
    return grouped


class TestHLRules:
    def test_seeded_buggy_program_flags_everything(self):
        found = _by_rule(lint_hl_source(BUGGY_HL, "buggy.hl"))
        assert set(found) == {"HL001", "HL002", "HL003", "HL004"}

    def test_symbolic_recursion_span_points_at_define(self):
        found = _by_rule(lint_hl_source(BUGGY_HL, "buggy.hl"))
        symbolic, unguarded = sorted(found["HL001"],
                                     key=lambda d: d.span.line)
        assert symbolic.span.line == 5 and symbolic.span.col == 1
        assert "sum-to" in symbolic.message
        assert unguarded.span.line == 10
        assert "spin" in unguarded.message
        assert symbolic.location == "buggy.hl:5:1"

    def test_constant_asserts(self):
        found = _by_rule(lint_hl_source(BUGGY_HL, "buggy.hl"))
        dead, failing = sorted(found["HL003"], key=lambda d: d.span.line)
        assert dead.span.line == 12 and dead.severity == "warning"
        assert failing.span.line == 13 and failing.severity == "error"

    def test_symbolic_index_span_points_at_index_argument(self):
        found = _by_rule(lint_hl_source(BUGGY_HL, "buggy.hl"))
        (diagnostic,) = found["HL002"]
        assert diagnostic.span.line == 14
        # The span is the `n` argument, not the whole form.
        assert diagnostic.span.col == 24
        assert diagnostic.span.end_col == 25

    def test_unreachable_after_else(self):
        found = _by_rule(lint_hl_source(BUGGY_HL, "buggy.hl"))
        (diagnostic,) = found["HL004"]
        assert diagnostic.span.line == 18
        assert "else" in diagnostic.message

    def test_layer1_decides_nontrivial_asserts(self):
        source = """\
(define-symbolic x number?)
(assert (<= (- x x) 0))
"""
        found = _by_rule(lint_hl_source(source, "f.hl"))
        assert "HL003" in found  # (x - x) folds to 0 in the linear view

    def test_fueled_recursion_is_clean(self):
        source = """\
(define (len xs fuel)
  (if (zero? fuel)
      0
      (+ 1 (len (rest xs) (- fuel 1)))))
"""
        assert lint_hl_source(source, "ok.hl") == []

    def test_concrete_index_is_clean(self):
        source = "(define xs (list 1 2)) (define v (list-ref xs 1))"
        assert lint_hl_source(source, "ok.hl") == []

    def test_parse_error_becomes_diagnostic(self):
        (diagnostic,) = lint_hl_source("(define (f x)", "broken.hl")
        assert diagnostic.rule == "HL000"
        assert diagnostic.severity == "error"
        assert diagnostic.span.line == 1


class TestPythonRules:
    def test_seeded_racy_kernel(self):
        found = _by_rule(lint_python_source(RACY_PY, "racy.py"))
        assert set(found) == {"CL001", "CL002"}
        (disabled,) = found["CL001"]
        assert disabled.span.line == 5
        (race,) = found["CL002"]
        assert race.span.line == 10
        assert race.severity == "error"
        # The span is the constant index argument of item.write.
        assert race.span.col == 25

    def test_gid_indexed_write_is_clean(self):
        clean = RACY_PY.replace("item.write(out, 0, gid)",
                                "item.write(out, gid, gid)")
        found = _by_rule(lint_python_source(clean, "ok.py"))
        assert "CL002" not in found

    def test_constant_write_without_gid_is_not_a_kernel(self):
        source = """\
def helper(buffer, item):
    item.write(buffer, 0, 1)
"""
        assert lint_python_source(source, "ok.py") == []

    def test_race_mode_off_is_informational(self):
        source = "runtime = CLRuntime(race_mode=\"off\")\n"
        (diagnostic,) = lint_python_source(source, "off.py")
        assert diagnostic.rule == "CL003"
        assert diagnostic.severity == "info"

    def test_syntax_error_becomes_diagnostic(self):
        (diagnostic,) = lint_python_source("def broken(:\n", "bad.py")
        assert diagnostic.rule == "CL000"
        assert diagnostic.severity == "error"


class TestDriver:
    def test_registry_is_complete(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == ["CL001", "CL002", "CL003",
                         "HL001", "HL002", "HL003", "HL004"]

    def test_lint_paths_walks_directories_and_emits_bus_span(self, tmp_path):
        from repro.obs.metrics import BusMetrics

        (tmp_path / "a.hl").write_text("(assert #t)\n")
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not lintable\n")
        metrics = BusMetrics()
        with metrics.subscribed():
            diagnostics = lint_paths([str(tmp_path)])
        assert [d.rule for d in diagnostics] == ["HL003"]
        snapshot = metrics.snapshot()
        assert snapshot["analysis.lint.runs"] == 1
        assert snapshot["analysis.lint.files"] == 2
        assert snapshot["analysis.lint.diagnostics"] == 1

    def test_fingerprint_is_line_independent(self):
        first = Diagnostic("HL003", "warning", "message", None, "f.hl")
        assert first.fingerprint() == "f.hl::HL003::message"


class TestCli:
    def _write_sources(self, tmp_path):
        (tmp_path / "buggy.hl").write_text(BUGGY_HL)
        (tmp_path / "racy.py").write_text(RACY_PY)
        return str(tmp_path)

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.hl").write_text("(define x 1)\n")
        assert main([str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_on_errors(self, tmp_path, capsys):
        path = self._write_sources(tmp_path)
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert "buggy.hl:13:1: error: HL003" in out
        assert "racy.py:10:25: error: CL002" in out

    def test_fail_on_new_without_baseline_fails_on_anything(
            self, tmp_path, capsys):
        path = self._write_sources(tmp_path)
        assert main([path, "--fail-on-new"]) == 1
        assert "not in baseline" in capsys.readouterr().err

    def test_baseline_roundtrip_suppresses_known_findings(
            self, tmp_path, capsys):
        path = self._write_sources(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([path, "--write-baseline", str(baseline)]) == 1
        payload = json.loads(baseline.read_text())
        assert payload["fingerprints"]
        # With the baseline, the same findings are accepted...
        assert main([path, "--fail-on-new",
                     "--baseline", str(baseline)]) == 0
        # ...but a new finding still fails.
        (tmp_path / "new.hl").write_text("(assert (< 3 1))\n")
        capsys.readouterr()
        assert main([path, "--fail-on-new",
                     "--baseline", str(baseline)]) == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "HL001" in out and "CL002" in out

    def test_quiet_suppresses_findings(self, tmp_path, capsys):
        path = self._write_sources(tmp_path)
        main([path, "--quiet"])
        out = capsys.readouterr().out
        assert "HL003" not in out
        assert "findings" in out

    def test_repo_examples_are_lint_clean(self):
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        diagnostics = lint_paths([str(repo / "examples"),
                                  str(repo / "src/repro/sdsl")])
        assert diagnostics == []
