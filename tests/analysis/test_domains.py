"""Soundness of the abstract domains, checked against exhaustive
concretization at small widths.

For every transfer function `f#` and abstract inputs `A, B`, soundness
means ``{f(a, b) | a ∈ γ(A), b ∈ γ(B)} ⊆ γ(f#(A, B))``. At width ≤ 3
the abstract elements and their concretizations are small enough to
enumerate *all* of them, so these are proofs-by-exhaustion, not spot
checks; width 4–6 is covered by seeded sampling over the same property.
"""

import random

import pytest

from repro.analysis.domains import (
    BFALSE,
    BTOP,
    BTRUE,
    AbsVal,
    Interval,
    KnownBits,
    bool3,
)

WIDTHS = (1, 2, 3)


def _all_knownbits(width):
    for zeros in range(1 << width):
        for ones in range(1 << width):
            if zeros & ones:
                continue
            yield KnownBits(zeros, ones, width)


def _all_intervals(width):
    for lo in range(1 << width):
        for hi in range(lo, 1 << width):
            yield Interval(lo, hi, width)


def _interval_values(interval):
    return range(interval.lo, interval.hi + 1)


def _mask(width):
    return (1 << width) - 1


# ---------------------------------------------------------------------------
# KnownBits
# ---------------------------------------------------------------------------

_KB_BINARY = [
    ("and_", lambda a, b, m: a & b),
    ("or_", lambda a, b, m: a | b),
    ("xor_", lambda a, b, m: a ^ b),
    ("add", lambda a, b, m: (a + b) & m),
    ("sub", lambda a, b, m: (a - b) & m),
    ("mul", lambda a, b, m: (a * b) & m),
]

_KB_UNARY = [
    ("not_", lambda a, m: ~a & m),
    ("neg", lambda a, m: -a & m),
]


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("name,concrete", _KB_BINARY)
def test_knownbits_binary_transfers_sound(width, name, concrete):
    mask = _mask(width)
    for lhs in _all_knownbits(width):
        for rhs in _all_knownbits(width):
            out = getattr(lhs, name)(rhs)
            for a in lhs.concretizations():
                for b in rhs.concretizations():
                    assert out.contains(concrete(a, b, mask)), (
                        f"{name}: {lhs!r} op {rhs!r} -> {out!r} "
                        f"misses f({a}, {b})")


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("name,concrete", _KB_UNARY)
def test_knownbits_unary_transfers_sound(width, name, concrete):
    mask = _mask(width)
    for operand in _all_knownbits(width):
        out = getattr(operand, name)()
        for a in operand.concretizations():
            assert out.contains(concrete(a, mask))


@pytest.mark.parametrize("width", WIDTHS)
def test_knownbits_const_shifts_sound(width):
    mask = _mask(width)
    for operand in _all_knownbits(width):
        for amount in range(width + 1):
            shl = operand.shl_const(amount)
            lshr = operand.lshr_const(amount)
            ashr = operand.ashr_const(amount)
            sign = 1 << (width - 1)
            for a in operand.concretizations():
                assert shl.contains((a << amount) & mask)
                assert lshr.contains(a >> amount)
                signed = a - (1 << width) if a & sign else a
                assert ashr.contains((signed >> amount) & mask)


@pytest.mark.parametrize("width", WIDTHS)
def test_knownbits_min_max_and_join(width):
    for element in _all_knownbits(width):
        values = list(element.concretizations())
        assert min(values) == element.min_value()
        assert max(values) == element.max_value()
    top = KnownBits.top(width)
    for element in _all_knownbits(width):
        joined = element.join(top)
        assert joined.zeros == 0 and joined.ones == 0


# ---------------------------------------------------------------------------
# Interval
# ---------------------------------------------------------------------------

_IV_BINARY = [
    ("add", lambda a, b, m: (a + b) & m),
    ("sub", lambda a, b, m: (a - b) & m),
    ("mul", lambda a, b, m: (a * b) & m),
    ("udiv", lambda a, b, m: (a // b) if b else m),
    ("urem", lambda a, b, m: (a % b) if b else a),
    ("bvand", lambda a, b, m: a & b),
    ("bvor", lambda a, b, m: a | b),
    ("bvxor", lambda a, b, m: a ^ b),
    ("shl", lambda a, b, m: (a << b) & m),
    ("lshr", lambda a, b, m: a >> b),
]


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("name,concrete", _IV_BINARY)
def test_interval_binary_transfers_sound(width, name, concrete):
    mask = _mask(width)
    for lhs in _all_intervals(width):
        for rhs in _all_intervals(width):
            out = getattr(lhs, name)(rhs)
            for a in _interval_values(lhs):
                for b in _interval_values(rhs):
                    assert out.contains(concrete(a, b, mask)), (
                        f"{name}: {lhs!r} op {rhs!r} -> {out!r} "
                        f"misses f({a}, {b})")


@pytest.mark.parametrize("width", WIDTHS)
def test_interval_unary_transfers_sound(width):
    mask = _mask(width)
    for operand in _all_intervals(width):
        neg, bvnot = operand.neg(), operand.bvnot()
        for a in _interval_values(operand):
            assert neg.contains(-a & mask)
            assert bvnot.contains(~a & mask)


def _signed(value, width):
    sign = 1 << (width - 1)
    return value - (1 << width) if value & sign else value


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("name", ["ult", "ule", "slt", "sle"])
def test_interval_comparisons_sound(width, name):
    concrete = {
        "ult": lambda a, b, w: a < b,
        "ule": lambda a, b, w: a <= b,
        "slt": lambda a, b, w: _signed(a, w) < _signed(b, w),
        "sle": lambda a, b, w: _signed(a, w) <= _signed(b, w),
    }[name]
    for lhs in _all_intervals(width):
        for rhs in _all_intervals(width):
            verdict = getattr(lhs, name)(rhs)
            truths = {concrete(a, b, width)
                      for a in _interval_values(lhs)
                      for b in _interval_values(rhs)}
            if verdict is BTRUE:
                assert truths == {True}
            elif verdict is BFALSE:
                assert truths == {False}
            else:
                assert verdict is BTOP


# ---------------------------------------------------------------------------
# Reduced product
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("width", WIDTHS)
def test_reduction_preserves_concretization(width):
    """reduce() may only *drop* values outside the product's meaning."""
    for bits in _all_knownbits(width):
        for rng in _all_intervals(width):
            product = AbsVal(bits, rng)
            members = [v for v in range(1 << width)
                       if bits.contains(v) and rng.contains(v)]
            reduced = product.reduce()
            for value in members:
                assert reduced.contains(value), (
                    f"reduce dropped {value} from {product!r} -> {reduced!r}")


@pytest.mark.parametrize("width", (4, 5, 6))
@pytest.mark.parametrize("seed", range(8))
def test_sampled_transfers_sound_at_larger_widths(width, seed):
    """The same containment property, seeded-sampled at width 4–6."""
    rng = random.Random(f"{width}:{seed}")
    mask = _mask(width)

    def sample_kb():
        zeros = rng.randrange(1 << width)
        ones = rng.randrange(1 << width) & ~zeros
        return KnownBits(zeros, ones, width)

    def sample_iv():
        lo = rng.randrange(1 << width)
        hi = rng.randrange(lo, 1 << width)
        return Interval(lo, hi, width)

    for _ in range(40):
        ka, kb = sample_kb(), sample_kb()
        name, concrete = _KB_BINARY[rng.randrange(len(_KB_BINARY))]
        out = getattr(ka, name)(kb)
        for _ in range(16):
            a = rng.choice(list(ka.concretizations()))
            b = rng.choice(list(kb.concretizations()))
            assert out.contains(concrete(a, b, mask))

        ia, ib = sample_iv(), sample_iv()
        name, concrete = _IV_BINARY[rng.randrange(len(_IV_BINARY))]
        out = getattr(ia, name)(ib)
        for _ in range(16):
            a = rng.randrange(ia.lo, ia.hi + 1)
            b = rng.randrange(ib.lo, ib.hi + 1)
            assert out.contains(concrete(a, b, mask))


def test_bool3_basics():
    assert bool3(True) is BTRUE
    assert bool3(False) is BFALSE
    assert bool3(None) is BTOP
    assert BTOP is not BTRUE and BTOP is not BFALSE
