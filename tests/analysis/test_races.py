"""The static data-race pre-detector: discharge without the solver.

The acceptance property from the issue: a disjoint-write kernel is
discharged entirely by the static classifier — zero solver checks,
zero residual obligations — and the evidence is visible on the
``analysis.race`` bus counters. The other direction matters equally:
definite overlaps are reported as such, and genuinely symbolic pairs
still reach the dynamic machinery.
"""

import pytest

from repro.analysis.races import (
    DISJOINT,
    OVERLAP,
    UNKNOWN,
    classify_index_pair,
    classify_launch,
)
from repro.obs.metrics import BusMetrics
from repro.sdsl.synthcl.runtime import CLRuntime, KernelRace
from repro.sym import fresh_int, ops
from repro.vm import VM


class TestClassifier:
    def test_concrete_indices(self):
        assert classify_index_pair(3, 3) == (OVERLAP, "concrete")
        assert classify_index_pair(3, 4) == (DISJOINT, "concrete")

    def test_linear_difference(self):
        with VM():
            i = fresh_int("lin_i")
            assert classify_index_pair(ops.add(i, 2),
                                       ops.add(i, 5)) == (DISJOINT, "linear")
            assert classify_index_pair(ops.add(i, 2),
                                       ops.add(2, i)) != (UNKNOWN, "dynamic")

    def test_abstract_parity(self):
        with VM():
            i = fresh_int("par_i")
            even = ops.mul(i, 2)
            odd = ops.add(ops.mul(i, 2), 1)
            verdict, reason = classify_index_pair(even, odd)
            assert verdict is DISJOINT
            assert reason in ("linear", "abstract")

    def test_unrelated_symbolic_is_dynamic(self):
        with VM():
            a = fresh_int("dyn_a")
            b = fresh_int("dyn_b")
            assert classify_index_pair(a, b) == (UNKNOWN, "dynamic")


class _Item:
    """A minimal stand-in for WorkItemContext in classifier-only tests."""

    def __init__(self, gid, accesses):
        self.global_id = gid
        self.accesses = accesses


class TestClassifyLaunch:
    def test_write_read_pairs_and_residual(self):
        with VM():
            sym = fresh_int("launch_sym")
            items = [
                _Item(0, [("buf", 0, True), ("other", 1, True)]),
                _Item(1, [("buf", 0, False), ("buf", sym, False)]),
            ]
            report, residual = classify_launch(items)
            # write(buf,0) vs read(buf,0) overlaps; vs read(buf,sym) is
            # dynamic; the "other" buffer has no second accessor.
            assert report.pairs == 2
            assert report.overlaps == 1
            assert report.residual == 1
            assert len(residual) == 1
            check, condition = residual[0]
            assert check.verdict is UNKNOWN
            assert not isinstance(condition, bool)


class TestRuntimeModes:
    def _disjoint_launch(self, runtime):
        dst = runtime.buffer("dst", [0, 0, 0, 0])
        runtime.launch(
            lambda item: item.write(dst, item.get_global_id(), 1), 4)

    def test_disjoint_kernel_discharges_with_zero_solver_checks(self):
        metrics = BusMetrics()
        with metrics.subscribed():
            with VM() as vm:
                runtime = CLRuntime()
                self._disjoint_launch(runtime)
                # Every pair proven disjoint: no path obligations at all.
                assert vm.assertions == []
        snapshot = metrics.snapshot()
        assert snapshot["analysis.race.launches"] == 1
        assert snapshot["analysis.race.pairs"] == 6
        assert snapshot["analysis.race.discharged"] == 6
        assert snapshot["analysis.race.residual"] == 0
        # The headline acceptance check: the launch triggered no solver
        # work whatsoever — not a single smt.check span on the bus.
        assert snapshot.get("smt.checks", 0) == 0
        report = runtime.race_reports[0]
        assert report.discharged == report.pairs == 6

    def test_linear_symbolic_indices_discharge(self):
        with VM() as vm:
            runtime = CLRuntime()
            base = fresh_int("lin_base")
            dst = runtime.buffer("dst", [0, 0, 0])
            runtime.launch(
                lambda item: item.write(
                    dst, ops.add(base, item.get_global_id()), 1), 3)
            # The symbolic writes leave buffer-bounds obligations in the
            # store; zero residual below means no *race* obligation was
            # added on top of them.
            bounds_only = len(vm.assertions)
        report = runtime.race_reports[0]
        assert bounds_only == 3  # one in-bounds obligation per work item
        assert report.discharged == report.pairs == 3
        assert all(c.reason == "linear" for c in report.checks)

    def test_assert_mode_raises_on_definite_overlap(self):
        with VM():
            runtime = CLRuntime()  # default: assert mode
            dst = runtime.buffer("dst", [0])
            with pytest.raises(KernelRace, match="proven statically"):
                runtime.launch(lambda item: item.write(dst, 0, 1), 2)

    def test_symbolic_mode_models_definite_overlap(self):
        from repro.vm.errors import AssertionFailure

        with VM():
            runtime = CLRuntime(race_mode="symbolic")
            dst = runtime.buffer("dst", [0])
            # On a concretely-true path a definite race is an ordinary
            # failed obligation (AssertionFailure), not the launch-time
            # KernelRace of assert mode — under symbolic guards it would
            # fold into the path condition instead.
            with pytest.raises(AssertionFailure) as failure:
                runtime.launch(lambda item: item.write(dst, 0, 1), 2)
            assert not isinstance(failure.value, KernelRace)

    def test_off_mode_checks_nothing(self):
        with VM() as vm:
            runtime = CLRuntime(race_mode="off")
            dst = runtime.buffer("dst", [0])
            runtime.launch(lambda item: item.write(dst, 0, 1), 2)
            assert vm.assertions == []
            assert runtime.race_reports == []

    def test_legacy_check_races_flag_maps_to_modes(self):
        assert CLRuntime().race_mode == "assert"
        assert CLRuntime(check_races=False).race_mode == "off"
        assert CLRuntime(check_races=True).race_mode == "assert"
        with pytest.raises(ValueError):
            CLRuntime(race_mode="sometimes")

    def test_residual_pairs_still_reach_the_dynamic_machinery(self):
        with VM() as vm:
            runtime = CLRuntime(race_mode="symbolic")
            sym = fresh_int("resid")
            vm.assert_(ops.and_(ops.ge(sym, 0), ops.lt(sym, 2)))
            dst = runtime.buffer("dst", [0, 0])

            def kernel(item):
                if item.get_global_id() == 0:
                    item.write(dst, sym, 1)
                else:
                    item.write(dst, 1, 1)

            runtime.launch(kernel, 2)
            report = runtime.race_reports[0]
            assert report.residual == 1
            # The distinctness obligation landed in the assertion store.
            assert len(vm.assertions) >= 2


class TestMatrixMultiplySketch:
    def test_mm_sketch_writes_discharge_statically(self):
        """The mm.py fix: holes in *read* indices leave the write set
        concrete, so the pre-detector discharges every pair."""
        from repro.sdsl.synthcl.programs import mm

        with VM():
            a = (1, 2, 3, 4)
            b = (5, 6, 7, 8)
            metrics = BusMetrics()
            with metrics.subscribed():
                mm.mm_sketch(a, b, 2, 2, 2)
            snapshot = metrics.snapshot()
            assert snapshot["analysis.race.pairs"] > 0
            assert (snapshot["analysis.race.discharged"]
                    == snapshot["analysis.race.pairs"])
            assert snapshot["analysis.race.residual"] == 0
