"""Symbolic value wrappers and the symbolic union datatype.

``SymBool`` and ``SymInt`` are thin wrappers around boolean/bitvector terms
from :mod:`repro.smt.terms` with Python operator overloading, so solver-aided
code reads like ordinary Python. Construction is *normalizing*: wrapping a
constant term yields the corresponding Python ``bool``/``int`` instead, which
maintains the SVM invariant that anything concrete stays a plain host value.

``Union`` is the paper's symbolic union: an immutable set of guarded values
whose guards are pairwise disjoint by construction. Unions never nest and
never appear inside terms; they are taken apart by lifted operations (rule
CO1) and by symbolic reflection (§2.3).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple

from repro.obs.events import BUS
from repro.smt import terms as T

_DEFAULT_INT_WIDTH = 32


def default_int_width() -> int:
    """Width, in bits, of newly created symbolic integers."""
    return _DEFAULT_INT_WIDTH


def set_default_int_width(width: int) -> None:
    """Set the width used for fresh symbolic integers and int literals."""
    global _DEFAULT_INT_WIDTH
    if width <= 0:
        raise ValueError("width must be positive")
    _DEFAULT_INT_WIDTH = width


class SymbolicError(RuntimeError):
    """Raised when a symbolic value is used where a concrete one is needed."""


def wrap_bool(term: T.Term):
    """Wrap a boolean term, folding constants to Python bools."""
    if term is T.TRUE:
        return True
    if term is T.FALSE:
        return False
    return SymBool(term)


def wrap_int(term: T.Term):
    """Wrap a bitvector term, folding constants to Python ints (signed)."""
    if term.op == T.OP_BV_CONST:
        return T.to_signed(term.const_value(), term.width)
    return SymInt(term)


def bool_term(value) -> T.Term:
    """The term denoting a concrete or symbolic boolean value."""
    if isinstance(value, SymBool):
        return value.term
    if isinstance(value, bool):
        return T.TRUE if value else T.FALSE
    raise TypeError(f"not a boolean value: {value!r}")


def int_term(value, width: int | None = None) -> T.Term:
    """The term denoting a concrete or symbolic integer value."""
    if isinstance(value, SymInt):
        return value.term
    if isinstance(value, bool):
        raise TypeError(f"not an integer value: {value!r}")
    if isinstance(value, int):
        return T.bv_const(value, width or _DEFAULT_INT_WIDTH)
    raise TypeError(f"not an integer value: {value!r}")


class SymBool:
    """A symbolic boolean: a non-constant boolean term."""

    __slots__ = ("term",)

    def __init__(self, term: T.Term):
        if term.sort is not T.BOOL:
            raise TypeError(f"expected a boolean term, got {term!r}")
        self.term = term

    # Logical connectives. Python's `and`/`or`/`not` cannot be overloaded,
    # so symbolic code uses `&`, `|`, `~`, `^` (or repro.sym.ops helpers).
    def __and__(self, other):
        return wrap_bool(T.mk_and(self.term, bool_term(other)))

    __rand__ = __and__

    def __or__(self, other):
        return wrap_bool(T.mk_or(self.term, bool_term(other)))

    __ror__ = __or__

    def __xor__(self, other):
        return wrap_bool(T.mk_xor(self.term, bool_term(other)))

    __rxor__ = __xor__

    def __invert__(self):
        return wrap_bool(T.mk_not(self.term))

    def implies(self, other):
        return wrap_bool(T.mk_implies(self.term, bool_term(other)))

    def __eq__(self, other):
        if isinstance(other, (bool, SymBool)):
            return wrap_bool(T.mk_iff(self.term, bool_term(other)))
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return ~result if isinstance(result, SymBool) else not result

    def __hash__(self):
        return hash(self.term)

    def __bool__(self):
        raise SymbolicError(
            "symbolic boolean has no concrete truth value; branch on it with "
            "the SVM (vm.branch) or use solver queries")

    def __repr__(self):
        return f"SymBool({T.to_sexpr(self.term, max_depth=6)})"


class SymInt:
    """A symbolic finite-precision integer: a non-constant bitvector term."""

    __slots__ = ("term",)

    def __init__(self, term: T.Term):
        if term.sort is not T.BV:
            raise TypeError(f"expected a bitvector term, got {term!r}")
        self.term = term

    @property
    def width(self) -> int:
        return self.term.width

    def _coerce(self, other) -> T.Term:
        return int_term(other, self.width)

    def _binop(self, other, mk):
        try:
            other_term = self._coerce(other)
        except TypeError:
            return NotImplemented
        return wrap_int(mk(self.term, other_term))

    def _rbinop(self, other, mk):
        try:
            other_term = self._coerce(other)
        except TypeError:
            return NotImplemented
        return wrap_int(mk(other_term, self.term))

    def __add__(self, other):
        return self._binop(other, T.mk_add)

    __radd__ = __add__

    def __sub__(self, other):
        return self._binop(other, T.mk_sub)

    def __rsub__(self, other):
        return self._rbinop(other, T.mk_sub)

    def __mul__(self, other):
        return self._binop(other, T.mk_mul)

    __rmul__ = __mul__

    def __floordiv__(self, other):
        return self._binop(other, T.mk_sdiv)

    def __rfloordiv__(self, other):
        return self._rbinop(other, T.mk_sdiv)

    def __mod__(self, other):
        return self._binop(other, T.mk_srem)

    def __rmod__(self, other):
        return self._rbinop(other, T.mk_srem)

    def __neg__(self):
        return wrap_int(T.mk_neg(self.term))

    def __and__(self, other):
        return self._binop(other, T.mk_bvand)

    __rand__ = __and__

    def __or__(self, other):
        return self._binop(other, T.mk_bvor)

    __ror__ = __or__

    def __xor__(self, other):
        return self._binop(other, T.mk_bvxor)

    __rxor__ = __xor__

    def __invert__(self):
        return wrap_int(T.mk_bvnot(self.term))

    def __lshift__(self, other):
        return self._binop(other, T.mk_shl)

    def __rshift__(self, other):
        return self._binop(other, T.mk_ashr)

    def __lt__(self, other):
        return wrap_bool(T.mk_slt(self.term, self._coerce(other)))

    def __le__(self, other):
        return wrap_bool(T.mk_sle(self.term, self._coerce(other)))

    def __gt__(self, other):
        return wrap_bool(T.mk_slt(self._coerce(other), self.term))

    def __ge__(self, other):
        return wrap_bool(T.mk_sle(self._coerce(other), self.term))

    def __eq__(self, other):
        if isinstance(other, bool) or not isinstance(other, (int, SymInt)):
            return NotImplemented
        return wrap_bool(T.mk_eq(self.term, self._coerce(other)))

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return ~result if isinstance(result, SymBool) else not result

    def __hash__(self):
        return hash(self.term)

    def __bool__(self):
        raise SymbolicError(
            "symbolic integer has no concrete truth value; compare it and "
            "branch with the SVM")

    def __repr__(self):
        return f"SymInt({T.to_sexpr(self.term, max_depth=6)})"


# Counter for union construction, read by repro.vm.stats. Kept here so the
# sym layer has no dependency on the VM.
class UnionCounters:
    def __init__(self):
        self.created = 0
        self.cardinality_sum = 0
        self.max_cardinality = 0

    def reset(self):
        self.created = 0
        self.cardinality_sum = 0
        self.max_cardinality = 0

    def record(self, size: int) -> None:
        self.created += 1
        self.cardinality_sum += size
        if size > self.max_cardinality:
            self.max_cardinality = size
        # The single chokepoint for union construction: every Union that
        # exists passed through here, so this is where the bus learns of
        # them (the profiler attributes the event to a host call site).
        if BUS.enabled:
            BUS.instant("vm.union", "vm", cardinality=size)


UNION_COUNTERS = UnionCounters()


class Union:
    """A symbolic union: guarded concrete values with disjoint guards.

    Entries are ``(guard, value)`` pairs where `guard` is a boolean *term*
    and `value` is any non-union SVM value. At most one guard is true in any
    concrete interpretation (the merge function maintains disjointness by
    construction).
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[Tuple[T.Term, object]]):
        flat: List[Tuple[T.Term, object]] = []
        for guard, value in entries:
            if guard is T.FALSE:
                continue
            if isinstance(value, Union):
                for inner_guard, inner_value in value.entries:
                    combined = T.mk_and(guard, inner_guard)
                    if combined is not T.FALSE:
                        flat.append((combined, inner_value))
            else:
                flat.append((guard, value))
        self.entries = tuple(flat)
        UNION_COUNTERS.record(len(self.entries))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def guards(self) -> Tuple[T.Term, ...]:
        return tuple(guard for guard, _ in self.entries)

    def values(self) -> Tuple[object, ...]:
        return tuple(value for _, value in self.entries)

    def map(self, fn: Callable[[object], object]) -> "Union":
        """Apply `fn` under each guard (the essence of rule CO1)."""
        return Union((guard, fn(value)) for guard, value in self.entries)

    def __repr__(self):
        parts = ", ".join(
            f"[{T.to_sexpr(guard, max_depth=3)} {value!r}]"
            for guard, value in self.entries)
        return f"Union({parts})"


class Box:
    """A mutable storage cell, merged by pointer identity (§4.3, ≈Ptr).

    Boxes model Scheme's `set!`-able variables and are the building block
    for mutable vectors. Two boxes merge only if they are the same box;
    their *contents* are merged by µ at every control-flow join.
    """

    __slots__ = ("value", "name")

    _counter = 0

    def __init__(self, value, name: str | None = None):
        self.value = value
        if name is None:
            Box._counter += 1
            name = f"box{Box._counter}"
        self.name = name

    # Raw location protocol used by the VM's write log (key is ignored:
    # a box is a single location).
    def _sym_read(self, key):
        return self.value

    def _sym_write_raw(self, key, value):
        self.value = value

    def __repr__(self):
        return f"Box({self.name}={self.value!r})"


def is_primitive(value) -> bool:
    """True for values merged logically: booleans and integers."""
    return isinstance(value, (bool, SymBool, SymInt)) or \
        (isinstance(value, int) and not isinstance(value, bool))


def is_boolean_value(value) -> bool:
    return isinstance(value, (bool, SymBool))


def is_integer_value(value) -> bool:
    return isinstance(value, SymInt) or \
        (isinstance(value, int) and not isinstance(value, bool))
