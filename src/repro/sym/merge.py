"""The type-driven state-merging function µ of Figure 9.

``merge(cond, u, v)`` combines the values computed by two branches of a
conditional into a single value that equals `u` when `cond` holds and `v`
otherwise. The strategy is the paper's:

- values of the same *primitive* class (booleans, integers) merge
  **logically** into an ``ite`` term;
- immutable lists (Python tuples) of the same length merge **structurally**,
  element by element;
- pointer-like values (mutable boxes, procedures) merge only when they are
  the same object, which soundly tracks aliasing;
- anything else merges into a **symbolic union** of guarded values, with at
  most one member per value class.

``merge_many`` is the n-way generalization used to reassemble the results of
applying a lifted operation to every member of a union (rule CO1 / AP2).

User-defined immutable datatypes can opt into structural merging by
implementing ``__sym_class_key__()`` (a hashable class key: two values merge
structurally iff their keys are equal) and ``__sym_merge__(guard, other)``
(returning the merged value given a guard *term*). The IFCL machine states
use this, mirroring the paper's "direct evaluation and merging rules for
user-defined record types" (§4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt import terms as T
from repro.sym.values import (
    SymInt,
    Union,
    bool_term,
    default_int_width,
    is_boolean_value,
    is_integer_value,
    wrap_bool,
    wrap_int,
)

_ATOM_TYPES = (str, bytes, type(None))

# Merge strategy. "type-driven" is the paper's µ (Fig. 9). "logical" keeps
# the logical merging of primitives (and field-wise merging of records,
# which evaluators rely on for their own state) but disables the structural
# merging of *lists* — every list merge makes a union entry, one per
# incoming path — which models how bounded model checking loses
# concrete-evaluation opportunities on data structures (§3.3). The
# baselines package flips this to quantify what type-driven merging buys.
_STRUCTURAL = True


class merge_strategy:
    """Context manager selecting the merge strategy ("type-driven"/"logical")."""

    def __init__(self, name: str):
        if name not in ("type-driven", "logical"):
            raise ValueError(f"unknown merge strategy {name!r}")
        self.structural = name == "type-driven"
        self._saved: Optional[bool] = None

    def __enter__(self):
        global _STRUCTURAL
        self._saved = _STRUCTURAL
        _STRUCTURAL = self.structural
        return self

    def __exit__(self, exc_type, exc, tb):
        global _STRUCTURAL
        _STRUCTURAL = self._saved


def class_key(value) -> Tuple:
    """The value-class of Figure 9's ≈ relation, as a hashable key."""
    if isinstance(value, Union):
        raise TypeError("unions have no value class; flatten them first")
    if is_boolean_value(value):
        return ("bool",)
    if is_integer_value(value):
        return ("int",)
    if isinstance(value, tuple):
        if not _STRUCTURAL:
            return ("ptr", id(value))
        return ("list", len(value))
    if isinstance(value, _ATOM_TYPES):
        return ("atom", type(value).__name__, value)
    custom = getattr(value, "__sym_class_key__", None)
    if custom is not None:
        return ("record", type(value).__name__, custom())
    # Everything else is pointer-like: boxes, procedures, closures.
    return ("ptr", id(value))


def _int_width(u, v) -> int:
    if isinstance(u, SymInt):
        return u.width
    if isinstance(v, SymInt):
        return v.width
    return default_int_width()


def _merge_same_class(guard: T.Term, u, v):
    """Merge two same-class non-union values under a guard term."""
    if u is v:
        return u
    if is_boolean_value(u):
        return wrap_bool(T.mk_ite(guard, bool_term(u), bool_term(v)))
    if is_integer_value(u):
        width = _int_width(u, v)
        u_term = u.term if isinstance(u, SymInt) else T.bv_const(u, width)
        v_term = v.term if isinstance(v, SymInt) else T.bv_const(v, width)
        return wrap_int(T.mk_ite(guard, u_term, v_term))
    if isinstance(u, tuple):
        return tuple(_merge_guarded(guard, x, y) for x, y in zip(u, v))
    if isinstance(u, _ATOM_TYPES):
        return u  # class keys equal implies the atoms are equal
    custom = getattr(u, "__sym_merge__", None)
    if custom is not None:
        return custom(guard, v)
    return u  # pointer class: keys equal implies identity


def _merge_guarded(guard: T.Term, u, v):
    """µ with the condition already lowered to a boolean term."""
    if guard is T.TRUE:
        return u
    if guard is T.FALSE:
        return v
    if u is v:
        return u
    u_is_union = isinstance(u, Union)
    v_is_union = isinstance(v, Union)
    if not u_is_union and not v_is_union:
        if class_key(u) == class_key(v):
            return _merge_same_class(guard, u, v)
        return Union(((guard, u), (T.mk_not(guard), v)))
    if not u_is_union and v_is_union:
        return _merge_guarded(T.mk_not(guard), v, u)
    if u_is_union and not v_is_union:
        v_key = class_key(v)
        matched = False
        entries: List[Tuple[T.Term, object]] = []
        for entry_guard, entry_value in u.entries:
            if not matched and class_key(entry_value) == v_key:
                # µ's seventh case: fold v into the matching member; the
                # member is taken when guard∧entry_guard, v when ¬guard.
                merged = _merge_same_class(guard, entry_value, v)
                entries.append((T.mk_implies(guard, entry_guard), merged))
                matched = True
            else:
                entries.append((T.mk_and(guard, entry_guard), entry_value))
        if not matched:
            entries.append((T.mk_not(guard), v))
        return Union(entries)
    # Both unions: merge member-wise by class.
    not_guard = T.mk_not(guard)
    v_by_class: Dict[Tuple, Tuple[T.Term, object]] = {}
    for entry_guard, entry_value in v.entries:
        v_by_class.setdefault(class_key(entry_value),
                              (entry_guard, entry_value))
    used = set()
    entries = []
    for entry_guard, entry_value in u.entries:
        key = class_key(entry_value)
        match = v_by_class.get(key)
        if match is not None and key not in used:
            used.add(key)
            other_guard, other_value = match
            combined = T.mk_or(T.mk_and(guard, entry_guard),
                               T.mk_and(not_guard, other_guard))
            entries.append(
                (combined, _merge_same_class(guard, entry_value, other_value)))
        else:
            entries.append((T.mk_and(guard, entry_guard), entry_value))
    for entry_guard, entry_value in v.entries:
        if class_key(entry_value) not in used:
            entries.append((T.mk_and(not_guard, entry_guard), entry_value))
    return Union(entries)


def merge(cond, u, v):
    """Figure 9's µ(b, u, v): `u` when `cond` holds, `v` otherwise.

    `cond` may be a Python bool, a :class:`SymBool`, or a boolean term.
    """
    if isinstance(cond, T.Term):
        guard = cond
    else:
        guard = bool_term(cond)
    return _merge_guarded(guard, u, v)


def _flatten(entries) -> List[Tuple[T.Term, object]]:
    flat: List[Tuple[T.Term, object]] = []
    for guard, value in entries:
        if not isinstance(guard, T.Term):
            guard = bool_term(guard)
        if guard is T.FALSE:
            continue
        if guard is T.TRUE:
            # The guards are pairwise disjoint (merge_many's precondition),
            # so a TRUE guard makes every other entry infeasible: the merge
            # result is exactly this entry's value, with no ite or union.
            if isinstance(value, Union):
                return _flatten(value.entries)
            return [(guard, value)]
        if isinstance(value, Union):
            for inner_guard, inner_value in value.entries:
                combined = T.mk_and(guard, inner_guard)
                if combined is not T.FALSE:
                    flat.append((combined, inner_value))
        else:
            flat.append((guard, value))
    return flat


def _merge_class_members(members: Sequence[Tuple[T.Term, object]]):
    """n-way merge of same-class values; the last member is the default."""
    if len(members) == 1:
        return members[0][1]
    sample = members[0][1]
    if is_boolean_value(sample):
        result = bool_term(members[-1][1])
        for guard, value in reversed(members[:-1]):
            result = T.mk_ite(guard, bool_term(value), result)
        return wrap_bool(result)
    if is_integer_value(sample):
        width = next((v.width for _, v in members if isinstance(v, SymInt)),
                     default_int_width())
        result = _as_int_term(members[-1][1], width)
        for guard, value in reversed(members[:-1]):
            result = T.mk_ite(guard, _as_int_term(value, width), result)
        return wrap_int(result)
    if isinstance(sample, tuple):
        # Element positions may hold mixed-class values (and even unions),
        # so each position goes through the general n-way merge.
        length = len(sample)
        return tuple(
            merge_many([(g, v[i]) for g, v in members])
            for i in range(length))
    custom = getattr(sample, "__sym_merge__", None)
    if custom is not None:
        result = members[-1][1]
        for guard, value in reversed(members[:-1]):
            merge_fn = getattr(value, "__sym_merge__")
            result = merge_fn(guard, result)
        return result
    return sample  # atoms / pointers: all members identical


def _as_int_term(value, width: int) -> T.Term:
    if isinstance(value, SymInt):
        return value.term
    return T.bv_const(value, width)


def merge_many(entries) -> object:
    """Merge guarded values into one value (generalized µ; rules CO1/AP2).

    `entries` is a sequence of ``(guard, value)`` pairs with pairwise
    disjoint guards, at least one of which must hold in any interpretation
    the caller considers feasible (the caller is responsible for asserting
    coverage, as rule CO1 does). Returns a single value: concrete, symbolic
    primitive, or union.
    """
    flat = _flatten(entries)
    if not flat:
        raise ValueError("merge_many requires at least one feasible entry")
    if len(flat) == 1:
        return flat[0][1]
    groups: Dict[Tuple, List[Tuple[T.Term, object]]] = {}
    order: List[Tuple] = []
    for guard, value in flat:
        key = class_key(value)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((guard, value))
    if len(order) == 1:
        return _merge_class_members(groups[order[0]])
    union_entries = []
    for key in order:
        members = groups[key]
        combined_guard = T.mk_or(*(guard for guard, _ in members))
        union_entries.append((combined_guard, _merge_class_members(members)))
    return Union(union_entries)
