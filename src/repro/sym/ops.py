"""Lifted primitive operations on concrete-or-symbolic values.

These are the building blocks of the SVM's lifted builtin library. Each
operation accepts plain Python values and/or symbolic wrappers, folds to a
concrete result when every operand is concrete, and otherwise builds a
term. Union arguments are *not* handled here — union unpacking (rule CO1)
is the VM's job (:mod:`repro.vm.builtins`), keeping this module dependency-
free and easy to test exhaustively.
"""

from __future__ import annotations

from typing import Callable

from repro.smt import terms as T
from repro.sym.values import (
    SymInt,
    Union,
    bool_term,
    default_int_width,
    int_term,
    is_boolean_value,
    is_integer_value,
    wrap_bool,
    wrap_int,
)


def _both_concrete_int(a, b) -> bool:
    return isinstance(a, int) and not isinstance(a, bool) and \
        isinstance(b, int) and not isinstance(b, bool)


def _width_of(a, b) -> int:
    if isinstance(a, SymInt):
        return a.width
    if isinstance(b, SymInt):
        return b.width
    return default_int_width()


def _wrap_signed(value: int, width: int) -> int:
    """Normalize a concrete result into the signed range of `width` bits."""
    return T.to_signed(value & ((1 << width) - 1), width)


def _arith(a, b, concrete: Callable[[int, int], int], mk) -> object:
    if not is_integer_value(a) or not is_integer_value(b):
        raise TypeError(f"expected integers, got {a!r} and {b!r}")
    width = _width_of(a, b)
    if _both_concrete_int(a, b):
        return _wrap_signed(concrete(a, b), width)
    return wrap_int(mk(int_term(a, width), int_term(b, width)))


def add(a, b):
    return _arith(a, b, lambda x, y: x + y, T.mk_add)


def sub(a, b):
    return _arith(a, b, lambda x, y: x - y, T.mk_sub)


def mul(a, b):
    return _arith(a, b, lambda x, y: x * y, T.mk_mul)


def _concrete_sdiv(x: int, y: int) -> int:
    if y == 0:
        raise ZeroDivisionError("division by zero")
    quotient = abs(x) // abs(y)
    return quotient if (x < 0) == (y < 0) else -quotient


def _concrete_srem(x: int, y: int) -> int:
    if y == 0:
        raise ZeroDivisionError("remainder by zero")
    magnitude = abs(x) % abs(y)
    return magnitude if x >= 0 else -magnitude


def div(a, b):
    """Truncating signed division (Scheme's quotient; SMT-LIB bvsdiv)."""
    return _arith(a, b, _concrete_sdiv, T.mk_sdiv)


def rem(a, b):
    """Signed remainder with the dividend's sign (Scheme's remainder)."""
    return _arith(a, b, _concrete_srem, T.mk_srem)


def modulo(a, b):
    """Modulus with the divisor's sign (Scheme's modulo; SMT-LIB bvsmod)."""
    def concrete(x: int, y: int) -> int:
        if y == 0:
            raise ZeroDivisionError("modulo by zero")
        return x % y
    return _arith(a, b, concrete, T.mk_smod)


def neg(a):
    if not is_integer_value(a):
        raise TypeError(f"expected an integer, got {a!r}")
    if isinstance(a, int):
        return _wrap_signed(-a, default_int_width())
    return wrap_int(T.mk_neg(a.term))


def bitand(a, b):
    return _arith(a, b, lambda x, y: x & y, T.mk_bvand)


def bitor(a, b):
    return _arith(a, b, lambda x, y: x | y, T.mk_bvor)


def bitxor(a, b):
    return _arith(a, b, lambda x, y: x ^ y, T.mk_bvxor)


def bitnot(a):
    if not is_integer_value(a):
        raise TypeError(f"expected an integer, got {a!r}")
    if isinstance(a, int):
        return _wrap_signed(~a, default_int_width())
    return wrap_int(T.mk_bvnot(a.term))


def shl(a, b):
    def concrete(x: int, y: int) -> int:
        width = _width_of(a, b)
        return x << y if 0 <= y < width else 0
    return _arith(a, b, concrete, T.mk_shl)


def lshr(a, b):
    """Logical right shift (operates on the unsigned representation)."""
    def concrete(x: int, y: int) -> int:
        width = _width_of(a, b)
        unsigned = x & ((1 << width) - 1)
        return unsigned >> y if 0 <= y < width else 0
    return _arith(a, b, concrete, T.mk_lshr)


def ashr(a, b):
    def concrete(x: int, y: int) -> int:
        width = _width_of(a, b)
        return x >> min(y, width - 1) if y >= 0 else 0
    return _arith(a, b, concrete, T.mk_ashr)


def _compare(a, b, concrete: Callable[[int, int], bool], mk) -> object:
    if not is_integer_value(a) or not is_integer_value(b):
        raise TypeError(f"expected integers, got {a!r} and {b!r}")
    if _both_concrete_int(a, b):
        return concrete(a, b)
    width = _width_of(a, b)
    return wrap_bool(mk(int_term(a, width), int_term(b, width)))


def lt(a, b):
    return _compare(a, b, lambda x, y: x < y, T.mk_slt)


def le(a, b):
    return _compare(a, b, lambda x, y: x <= y, T.mk_sle)


def gt(a, b):
    return lt(b, a)


def ge(a, b):
    return le(b, a)


def num_eq(a, b):
    return _compare(a, b, lambda x, y: x == y, T.mk_eq)


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------

def not_(a):
    if not is_boolean_value(a):
        raise TypeError(f"expected a boolean, got {a!r}")
    if isinstance(a, bool):
        return not a
    return wrap_bool(T.mk_not(a.term))


def and_(*values):
    terms = []
    for value in values:
        if not is_boolean_value(value):
            raise TypeError(f"expected a boolean, got {value!r}")
        if value is False:
            return False
        if value is True:
            continue
        terms.append(value.term)
    if not terms:
        return True
    return wrap_bool(T.mk_and(*terms))


def or_(*values):
    terms = []
    for value in values:
        if not is_boolean_value(value):
            raise TypeError(f"expected a boolean, got {value!r}")
        if value is True:
            return True
        if value is False:
            continue
        terms.append(value.term)
    if not terms:
        return False
    return wrap_bool(T.mk_or(*terms))


def implies(a, b):
    return or_(not_(a), b)


def ite(cond, then, alt):
    """Primitive-valued if-then-else (φ); both branches already evaluated.

    For merging arbitrary values use :func:`repro.sym.merge.merge`; this
    helper exists for code that knows its branches are primitives.
    """
    from repro.sym.merge import merge
    return merge(cond, then, alt)


# ---------------------------------------------------------------------------
# Structural equality and truthiness
# ---------------------------------------------------------------------------

def sym_equal(a, b):
    """Structural ``equal?`` returning a concrete or symbolic boolean.

    Mutable boxes compare by identity (HL excludes `eq?` on immutables so
    list merging stays sound — §4.4); everything else compares structurally,
    producing a formula when symbolic values are involved.
    """
    if isinstance(a, Union):
        return or_(*[and_(wrap_bool(guard), sym_equal(value, b))
                     for guard, value in a.entries])
    if isinstance(b, Union):
        return sym_equal(b, a)
    if is_boolean_value(a) and is_boolean_value(b):
        if isinstance(a, bool) and isinstance(b, bool):
            return a == b
        return wrap_bool(T.mk_iff(bool_term(a), bool_term(b)))
    if is_integer_value(a) and is_integer_value(b):
        return num_eq(a, b)
    if isinstance(a, tuple) and isinstance(b, tuple):
        if len(a) != len(b):
            return False
        return and_(*[sym_equal(x, y) for x, y in zip(a, b)])
    if type(a) is type(b) and isinstance(a, (str, bytes, type(None))):
        return a == b
    return a is b


def truthy(value):
    """Fig. 8's isTrue: Scheme truthiness of any SVM value.

    Booleans are themselves; a union is true iff one of its boolean members
    is true or a non-boolean member is selected; everything else is true.
    """
    if is_boolean_value(value):
        return value if isinstance(value, bool) else value
    if isinstance(value, Union):
        disjuncts = []
        for guard, member in value.entries:
            if is_boolean_value(member):
                disjuncts.append(T.mk_and(guard, bool_term(member)))
            else:
                disjuncts.append(guard)
        return wrap_bool(T.mk_or(*disjuncts))
    return True
