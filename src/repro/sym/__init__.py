"""Symbolic values for the solver-aided host language.

This package implements the paper's value universe (§4.2):

- *primitive* symbolic values — :class:`~repro.sym.values.SymBool` and
  :class:`~repro.sym.values.SymInt` — which wrap boolean/bitvector terms and
  are merged **logically** (with ``ite``),
- **symbolic unions** (:class:`~repro.sym.values.Union`) — sets of guarded
  concrete values with pairwise-disjoint guards, used to merge values of
  different shapes, and
- the type-driven merging function µ of Figure 9
  (:func:`~repro.sym.merge.merge`).

Concrete Python values (``bool``, ``int``, tuples for immutable lists,
strings, …) flow through untouched: every operation folds to a concrete
result when its operands are concrete, which is what lets the SVM strip
away unlifted host constructs.
"""

from repro.sym.values import (
    Box,
    SymBool,
    SymInt,
    Union,
    default_int_width,
    set_default_int_width,
)
from repro.sym.fresh import FreshStream, fresh_bool, fresh_int, reset_fresh_names
from repro.sym.merge import merge, merge_many
from repro.sym import ops

__all__ = [
    "Box", "SymBool", "SymInt", "Union",
    "default_int_width", "set_default_int_width",
    "FreshStream", "fresh_bool", "fresh_int", "reset_fresh_names",
    "merge", "merge_many", "ops",
]
