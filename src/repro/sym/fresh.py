"""Symbolic constant factories: the paper's ``define-symbolic[*]``.

``fresh_bool``/``fresh_int`` create brand-new symbolic constants. A
:class:`FreshStream` models ``define-symbolic*``: every call draws the next
constant from a named stream (``y$0``, ``y$1``, …), while re-using a plain
``fresh_*`` constant with the same name returns the *same* constant — the
``define-symbolic`` behaviour demonstrated in §2.2's static/dynamic example.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.smt import terms as T
from repro.sym.values import SymBool, SymInt, default_int_width

_counters: Dict[str, int] = {}


def reset_fresh_names() -> None:
    """Forget all stream counters (use between independent queries)."""
    _counters.clear()


def _numbered(name: str) -> str:
    index = _counters.get(name, 0)
    _counters[name] = index + 1
    return f"{name}${index}"


def fresh_bool(name: str = "b", numbered: bool = True) -> SymBool:
    """A fresh symbolic boolean constant.

    With ``numbered=False`` the name is used verbatim, so two calls with the
    same name denote the same constant (``define-symbolic``); the default
    draws from a numbered stream (``define-symbolic*``).
    """
    return SymBool(T.bool_var(_numbered(name) if numbered else name))


def fresh_int(name: str = "i", width: Optional[int] = None,
              numbered: bool = True) -> SymInt:
    """A fresh symbolic integer constant of the given (or default) width."""
    return SymInt(T.bv_var(_numbered(name) if numbered else name,
                           width or default_int_width()))


class FreshStream:
    """An explicit ``define-symbolic*`` stream bound to one name."""

    def __init__(self, name: str, width: Optional[int] = None,
                 kind: str = "int"):
        if kind not in ("int", "bool"):
            raise ValueError("kind must be 'int' or 'bool'")
        self.name = name
        self.width = width
        self.kind = kind
        self._index = 0

    def next(self):
        label = f"{self.name}${self._index}"
        self._index += 1
        if self.kind == "bool":
            return SymBool(T.bool_var(label))
        return SymInt(T.bv_var(label, self.width or default_int_width()))

    def __iter__(self):
        return self

    def __next__(self):
        return self.next()
