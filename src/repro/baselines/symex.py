"""Classic path-by-path symbolic execution (§3.2).

The executor runs the *same* thunks as the SVM, but its ``guarded``
override explores one alternative per execution, re-running the thunk with
a recorded decision script and backtracking depth-first — the standard
execution-tree search of Figure 5(b). There is no state merging: program
state stays maximally concrete along each path, and each completed path
yields its own path condition and assertion set, checked with a separate
solver call.

On programs with `n` independent symbolic branches this visits up to 2^n
paths; the benchmarks use it to demonstrate the exponential/polynomial
separation that motivates the SVM (§4.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.sym.values import bool_term
from repro.vm.context import VM
from repro.vm.errors import AssertionFailure


@dataclass
class PathResult:
    """One completed execution path."""

    condition: T.Term
    assertions: List[T.Term]
    value: object
    failed: bool
    decisions: Tuple[bool, ...]


class _Backtrack(Exception):
    """Raised internally when a path script turns out infeasible."""


class _PathVM(VM):
    """A VM that follows a decision script instead of merging."""

    def __init__(self, script: List[bool]):
        super().__init__()
        self.script = script
        self.taken: List[bool] = []

    def guarded(self, alternatives, assert_coverage: bool = False,
                failure_message: str = "all guarded paths failed",
                count_join: bool = True):
        concrete = [(guard if isinstance(guard, T.Term) else bool_term(guard),
                     thunk) for guard, thunk in alternatives]
        feasible = [(g, t) for g, t in concrete
                    if T.mk_and(self.path, g) is not T.FALSE]
        if not feasible:
            raise AssertionFailure(failure_message)
        if len(feasible) == 1:
            guard, thunk = feasible[0]
            self.path = T.mk_and(self.path, guard)
            return thunk()
        # A decision point: binary-split the alternatives per the script.
        index = len(self.taken)
        if index < len(self.script):
            take_first = self.script[index]
        else:
            take_first = True
            self.script.append(True)
        self.taken.append(take_first)
        if take_first:
            guard, thunk = feasible[0]
            self.path = T.mk_and(self.path, guard)
            return thunk()
        # Everything except the first alternative: recurse on the rest.
        first_guard = feasible[0][0]
        self.path = T.mk_and(self.path, T.mk_not(first_guard))
        if len(feasible) == 2:
            guard, thunk = feasible[1]
            self.path = T.mk_and(self.path, guard)
            return thunk()
        return self.guarded(feasible[1:], assert_coverage=False,
                            failure_message=failure_message,
                            count_join=count_join)


class SymbolicExecutor:
    """Depth-first enumeration of a program's execution tree."""

    def __init__(self, check_feasibility: bool = True,
                 max_paths: Optional[int] = None):
        self.check_feasibility = check_feasibility
        self.max_paths = max_paths
        self.paths_explored = 0
        self.solver_calls = 0
        self.solver_seconds = 0.0

    def _feasible(self, condition: T.Term,
                  extra: Sequence[T.Term] = ()) -> Tuple[bool, Optional[SmtSolver]]:
        if condition is T.FALSE:
            return False, None
        solver = SmtSolver()
        solver.add_assertion(condition)
        for term in extra:
            solver.add_assertion(term)
        self.solver_calls += 1
        started = time.perf_counter()
        result = solver.check()
        self.solver_seconds += time.perf_counter() - started
        return result is SmtResult.SAT, solver

    def explore(self, thunk: Callable[[], object]):
        """Yield every execution path of `thunk`, depth first."""
        script: List[bool] = []
        while True:
            if self.max_paths is not None and \
                    self.paths_explored >= self.max_paths:
                return
            vm = _PathVM(list(script))
            with vm:
                failed = False
                value = None
                try:
                    value = thunk()
                except AssertionFailure:
                    failed = True
            self.paths_explored += 1
            yield PathResult(condition=vm.path,
                             assertions=list(vm.assertions),
                             value=value, failed=failed,
                             decisions=tuple(vm.taken))
            # Backtrack: flip the deepest True decision to False.
            script = list(vm.taken)
            while script and not script[-1]:
                script.pop()
            if not script:
                return
            script[-1] = False

    def solve(self, thunk: Callable[[], object]):
        """Angelic execution: search the tree for a successful path.

        Returns ``(model, path)`` for the first feasible path whose
        assertions are all satisfiable (the solve query, answered the way
        a symbolic-execution engine answers it), or ``None``.
        """
        for path in self.explore(thunk):
            if path.failed:
                continue
            goal = [path.condition] + path.assertions
            feasible, solver = self._feasible(T.mk_and(*goal))
            if feasible:
                return solver.model(), path
        return None

    def verify(self, thunk: Callable[[], object]):
        """Search the tree for a path with a violated assertion."""
        for path in self.explore(thunk):
            if path.failed:
                feasible, solver = self._feasible(path.condition)
                if feasible:
                    return solver.model(), path
                continue
            if not path.assertions:
                continue
            violated = T.mk_or(*[T.mk_not(a) for a in path.assertions])
            feasible, solver = self._feasible(
                T.mk_and(path.condition, violated))
            if feasible:
                return solver.model(), path
        return None
