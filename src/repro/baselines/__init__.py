"""Baseline symbolic-encoding strategies (§3 of the paper).

Two comparison points for the SVM's type-driven merging:

- :mod:`repro.baselines.symex` — classic **symbolic execution** (§3.2):
  path-by-path exploration with no state merging. Concrete evaluation is
  maximal, but the number of explored paths — and solver calls — grows
  exponentially with the number of symbolic branches.
- :mod:`repro.baselines.bmc` — **BMC-style merging** (§3.3): states merge
  at every join, but only primitives merge logically; every non-primitive
  merge manufactures a new union entry, modelling how bounded model
  checking turns concrete values symbolic after a few merges and loses
  concrete-evaluation opportunities.

Both baselines run the *same* Python-embedded programs as the SVM, so the
ablation benchmarks (`benchmarks/bench_ablation.py`) compare the three
strategies on identical workloads.
"""

from repro.baselines.symex import PathResult, SymbolicExecutor
from repro.baselines.bmc import bmc_solve, bmc_verify, run_with_logical_merging

__all__ = [
    "PathResult", "SymbolicExecutor",
    "bmc_solve", "bmc_verify", "run_with_logical_merging",
]
