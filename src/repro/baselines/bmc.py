"""BMC-style merging baseline (§3.3).

Bounded model checkers merge states at every join, but the merged values
become opaque symbolic values: "once two concrete values from different
branches are logically merged ... all operations that consume that value
must also be translated to symbolic values and constraints". This baseline
models that loss inside our own evaluator: evaluation proceeds exactly like
the SVM, except the merge strategy is switched to "logical" — primitives
still merge into ``ite`` terms, but lists and records never merge
structurally, so every join adds a union entry per distinct non-primitive
value (one per incoming path). Union cardinalities then grow with the
number of *paths*, not with the number of value shapes — the blow-up that
type-driven merging (Fig. 9) eliminates.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.sym.merge import merge_strategy
from repro.vm.context import VM
from repro.vm.errors import AssertionFailure


def run_with_logical_merging(thunk: Callable[[], object]) -> Tuple[VM, object, bool]:
    """Evaluate `thunk` under a fresh VM with the "logical" merge strategy.

    Returns ``(vm, value, failed)``; the VM carries the assertion store and
    the union statistics to compare against a type-driven run.
    """
    with merge_strategy("logical"), VM() as vm:
        vm.stats.start()
        failed = False
        value = None
        try:
            value = thunk()
        except AssertionFailure:
            failed = True
        finally:
            vm.stats.stop()
        return vm, value, failed


def bmc_solve(thunk: Callable[[], object],
              max_conflicts: Optional[int] = None):
    """The solve query under BMC-style merging. Returns (status, vm)."""
    vm, _, failed = run_with_logical_merging(thunk)
    if failed:
        return "unsat", vm
    solver = SmtSolver(max_conflicts=max_conflicts)
    for assertion in vm.assertions:
        solver.add_assertion(assertion)
    started = time.perf_counter()
    result = solver.check()
    vm.stats.solver_seconds += time.perf_counter() - started
    if result is SmtResult.SAT:
        return "sat", vm
    if result is SmtResult.UNKNOWN:
        return "unknown", vm
    return "unsat", vm


def bmc_verify(thunk: Callable[[], object],
               setup: Optional[Callable[[], object]] = None,
               max_conflicts: Optional[int] = None):
    """The verify query under BMC-style merging. Returns (status, vm)."""
    with merge_strategy("logical"), VM() as vm:
        vm.stats.start()
        failed = False
        mark = 0
        try:
            if setup is not None:
                setup()
            mark = len(vm.assertions)
            thunk()
        except AssertionFailure:
            failed = True
        finally:
            vm.stats.stop()
        if failed:
            return "sat", vm
        assumptions = vm.assertions[:mark]
        targets = vm.assertions[mark:]
        if not targets:
            return "unsat", vm
        solver = SmtSolver(max_conflicts=max_conflicts)
        for assumption in assumptions:
            solver.add_assertion(assumption)
        solver.add_assertion(T.mk_or(*[T.mk_not(t) for t in targets]))
        started = time.perf_counter()
        result = solver.check()
        vm.stats.solver_seconds += time.perf_counter() - started
        if result is SmtResult.SAT:
            return "sat", vm
        if result is SmtResult.UNKNOWN:
            return "unknown", vm
        return "unsat", vm
