"""Bit-blasting: compiling boolean/bitvector terms to CNF.

Every boolean term maps to one SAT literal; every bitvector term maps to a
list of SAT literals, least-significant bit first. Gates are introduced with
Tseitin encodings and cached, so the DAG sharing of the term layer carries
over to the CNF. Arithmetic uses textbook circuits: ripple-carry adders,
shift-and-add multipliers, restoring dividers, and barrel shifters.

Division follows SMT-LIB semantics (``bvudiv x 0 = all-ones``,
``bvurem x 0 = x``, with ``bvsdiv``/``bvsrem``/``bvsmod`` derived from the
unsigned operators on magnitudes), matching the constant folders in
:mod:`repro.smt.terms`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import BUS
from repro.smt import terms as T
from repro.solver.budget import Budget, BudgetExhausted
from repro.solver.sat import SatSolver

# Cache misses between encode-side budget checkpoints. Encoding a term is
# orders of magnitude cheaper than solving it, so a coarse cadence keeps
# the checkpoint invisible on the profile while still bounding how long a
# giant circuit (a wide multiplier, a deep shifter tower) can stall a
# cancelled or deadline-expired query.
_ENCODE_CHECK_INTERVAL = 128


class BitBlaster:
    """Translates terms into clauses of a :class:`SatSolver`."""

    def __init__(self, sat: SatSolver):
        self.sat = sat
        self._true = sat.new_var()
        sat.add_clause([self._true])
        self._bool_memo: Dict[T.Term, int] = {}
        self._bv_memo: Dict[T.Term, List[int]] = {}
        self._gate_cache: Dict[Tuple, int] = {}
        self._bool_vars: Dict[T.Term, int] = {}
        self._bv_vars: Dict[T.Term, List[int]] = {}
        # Encode-cache statistics: a hit is a term whose encoding was
        # reused from the memo table, a miss is a term translated to fresh
        # gates. Terms are interned (repro.smt.terms), so across the
        # lifetime of this blaster every distinct term is a miss exactly
        # once — incremental queries re-encode nothing.
        self.cache_hits = 0
        self.cache_misses = 0
        # Resource governance: encoding checkpoints this budget every
        # _ENCODE_CHECK_INTERVAL cache misses and raises BudgetExhausted
        # when it trips (deadline/cancellation; spend caps are charged by
        # the SAT layer).
        self.budget: Optional[Budget] = None
        self._since_budget_check = 0

    def _budget_checkpoint(self) -> None:
        budget = self.budget
        if budget is None:
            return
        self._since_budget_check += 1
        if self._since_budget_check < _ENCODE_CHECK_INTERVAL:
            return
        self._since_budget_check = 0
        budget.start()
        reason = budget.exceeded()
        if reason is not None:
            if BUS.enabled:
                BUS.instant("sat.budget_trip", "sat", reason=reason,
                            phase="encode")
            raise BudgetExhausted(budget.report(reason, phase="encode"))

    # ------------------------------------------------------------------
    # Literal-level gates (with constant short-circuiting and caching)
    # ------------------------------------------------------------------

    @property
    def true_lit(self) -> int:
        return self._true

    @property
    def false_lit(self) -> int:
        return -self._true

    def _is_true(self, lit: int) -> bool:
        return lit == self._true

    def _is_false(self, lit: int) -> bool:
        return lit == -self._true

    def _and2(self, a: int, b: int) -> int:
        if self._is_false(a) or self._is_false(b) or a == -b:
            return self.false_lit
        if self._is_true(a):
            return b
        if self._is_true(b) or a == b:
            return a
        key = ("and", min(a, b), max(a, b))
        gate = self._gate_cache.get(key)
        if gate is None:
            gate = self.sat.new_var()
            self.sat.add_clause([-gate, a])
            self.sat.add_clause([-gate, b])
            self.sat.add_clause([gate, -a, -b])
            self._gate_cache[key] = gate
        return gate

    def _or2(self, a: int, b: int) -> int:
        return -self._and2(-a, -b)

    def _xor2(self, a: int, b: int) -> int:
        if self._is_false(a):
            return b
        if self._is_false(b):
            return a
        if self._is_true(a):
            return -b
        if self._is_true(b):
            return -a
        if a == b:
            return self.false_lit
        if a == -b:
            return self.true_lit
        key = ("xor", min(a, b), max(a, b))
        gate = self._gate_cache.get(key)
        if gate is None:
            gate = self.sat.new_var()
            self.sat.add_clause([-gate, a, b])
            self.sat.add_clause([-gate, -a, -b])
            self.sat.add_clause([gate, a, -b])
            self.sat.add_clause([gate, -a, b])
            self._gate_cache[key] = gate
        return gate

    def _iff2(self, a: int, b: int) -> int:
        return -self._xor2(a, b)

    def _mux(self, cond: int, then: int, alt: int) -> int:
        """ite over literals."""
        if self._is_true(cond):
            return then
        if self._is_false(cond):
            return alt
        if then == alt:
            return then
        if then == -alt:
            return self._xor2(cond, alt)
        if self._is_true(then):
            return self._or2(cond, alt)
        if self._is_false(then):
            return self._and2(-cond, alt)
        if self._is_true(alt):
            return self._or2(-cond, then)
        if self._is_false(alt):
            return self._and2(cond, then)
        key = ("mux", cond, then, alt)
        gate = self._gate_cache.get(key)
        if gate is None:
            gate = self.sat.new_var()
            self.sat.add_clause([-gate, -cond, then])
            self.sat.add_clause([-gate, cond, alt])
            self.sat.add_clause([gate, -cond, -then])
            self.sat.add_clause([gate, cond, -alt])
            # Redundant but propagation-strengthening clauses.
            self.sat.add_clause([-gate, then, alt])
            self.sat.add_clause([gate, -then, -alt])
            self._gate_cache[key] = gate
        return gate

    def _and_many(self, lits: Sequence[int]) -> int:
        """n-ary conjunction as a single gate (stronger unit propagation
        than a chain of binary gates, and one aux var instead of n-1)."""
        unique = []
        seen = set()
        for lit in lits:
            if self._is_false(lit) or -lit in seen:
                return self.false_lit
            if self._is_true(lit) or lit in seen:
                continue
            seen.add(lit)
            unique.append(lit)
        if not unique:
            return self.true_lit
        if len(unique) == 1:
            return unique[0]
        if len(unique) == 2:
            return self._and2(unique[0], unique[1])
        key = ("andN", tuple(sorted(unique)))
        gate = self._gate_cache.get(key)
        if gate is None:
            gate = self.sat.new_var()
            for lit in unique:
                self.sat.add_clause([-gate, lit])
            self.sat.add_clause([gate] + [-lit for lit in unique])
            self._gate_cache[key] = gate
        return gate

    def _or_many(self, lits: Sequence[int]) -> int:
        return -self._and_many([-lit for lit in lits])

    # ------------------------------------------------------------------
    # Word-level circuits (bit lists are LSB-first)
    # ------------------------------------------------------------------

    def _const_bits(self, value: int, width: int) -> List[int]:
        return [self.true_lit if (value >> i) & 1 else self.false_lit
                for i in range(width)]

    def _full_adder(self, a: int, b: int, carry: int) -> Tuple[int, int]:
        axb = self._xor2(a, b)
        total = self._xor2(axb, carry)
        carry_out = self._or2(self._and2(a, b), self._and2(carry, axb))
        return total, carry_out

    def _add_bits(self, a: List[int], b: List[int],
                  carry: int) -> Tuple[List[int], int]:
        out = []
        for bit_a, bit_b in zip(a, b):
            total, carry = self._full_adder(bit_a, bit_b, carry)
            out.append(total)
        return out, carry

    def _neg_bits(self, a: List[int]) -> List[int]:
        flipped = [-bit for bit in a]
        out, _ = self._add_bits(
            flipped, self._const_bits(1, len(a)), self.false_lit)
        return out

    def _sub_bits(self, a: List[int], b: List[int]) -> List[int]:
        out, _ = self._add_bits(a, [-bit for bit in b], self.true_lit)
        return out

    def _mul_bits(self, a: List[int], b: List[int]) -> List[int]:
        width = len(a)
        acc = self._const_bits(0, width)
        for i in range(width):
            # Partial product: (a << i) masked by b[i].
            row = [self.false_lit] * i + \
                  [self._and2(bit, b[i]) for bit in a[:width - i]]
            acc, _ = self._add_bits(acc, row, self.false_lit)
        return acc

    def _ult_bits(self, a: List[int], b: List[int]) -> int:
        lt = self.false_lit
        for bit_a, bit_b in zip(a, b):  # LSB to MSB
            lt = self._mux(self._iff2(bit_a, bit_b), lt,
                           self._and2(-bit_a, bit_b))
        return lt

    def _slt_bits(self, a: List[int], b: List[int]) -> int:
        sign_a, sign_b = a[-1], b[-1]
        unsigned_lt = self._ult_bits(a[:-1], b[:-1])
        # Same signs: compare magnitudes bit-for-bit (two's complement order
        # within a sign class equals unsigned order of the low bits).
        same = self._mux(self._iff2(sign_a, sign_b), unsigned_lt, sign_a)
        return same

    def _eq_bits(self, a: List[int], b: List[int]) -> int:
        return self._and_many([self._iff2(x, y) for x, y in zip(a, b)])

    def _mux_bits(self, cond: int, then: List[int],
                  alt: List[int]) -> List[int]:
        return [self._mux(cond, t, e) for t, e in zip(then, alt)]

    def _is_zero(self, a: List[int]) -> int:
        return self._and_many([-bit for bit in a])

    def _shift_bits(self, a: List[int], amount: List[int],
                    kind: str) -> List[int]:
        """Barrel shifter; kind is 'shl', 'lshr' or 'ashr'."""
        width = len(a)
        fill = a[-1] if kind == "ashr" else self.false_lit
        out = list(a)
        for j, select in enumerate(amount):
            step = 1 << j
            if step >= width:
                # Shifting by >= width: everything becomes fill.
                out = [self._mux(select, fill, bit) for bit in out]
                continue
            if kind == "shl":
                shifted = [self.false_lit] * step + out[:width - step]
            else:
                shifted = out[step:] + [fill] * step
            out = self._mux_bits(select, shifted, out)
        return out

    def _udivrem_bits(self, a: List[int],
                      b: List[int]) -> Tuple[List[int], List[int]]:
        """Restoring division (ignores the divide-by-zero case; callers fix it)."""
        width = len(a)
        # Remainder register with one extra bit so `2r + a_i >= b` is exact.
        remainder = self._const_bits(0, width + 1)
        b_ext = b + [self.false_lit]
        quotient = [self.false_lit] * width
        for i in range(width - 1, -1, -1):
            shifted = [a[i]] + remainder[:width]
            ge = -self._ult_bits(shifted, b_ext)
            subtracted = self._sub_bits(shifted, b_ext)
            remainder = self._mux_bits(ge, subtracted, shifted)
            quotient[i] = ge
        return quotient, remainder[:width]

    def _abs_bits(self, a: List[int]) -> List[int]:
        return self._mux_bits(a[-1], self._neg_bits(a), a)

    # ------------------------------------------------------------------
    # Term translation
    # ------------------------------------------------------------------

    def lit_of(self, term: T.Term) -> int:
        """SAT literal equisatisfiable with a boolean term."""
        if term.sort is not T.BOOL:
            raise TypeError(f"expected a boolean term, got {term!r}")
        cached = self._bool_memo.get(term)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        self._budget_checkpoint()
        lit = self._translate_bool(term)
        self._bool_memo[term] = lit
        return lit

    def bits_of(self, term: T.Term) -> List[int]:
        """SAT literals (LSB first) for a bitvector term."""
        if term.sort is not T.BV:
            raise TypeError(f"expected a bitvector term, got {term!r}")
        cached = self._bv_memo.get(term)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        self._budget_checkpoint()
        bits = self._translate_bv(term)
        self._bv_memo[term] = bits
        return bits

    def _translate_bool(self, term: T.Term) -> int:
        op = term.op
        if op == T.OP_TRUE:
            return self.true_lit
        if op == T.OP_FALSE:
            return self.false_lit
        if op == T.OP_BOOL_VAR:
            var = self._bool_vars.get(term)
            if var is None:
                var = self.sat.new_var()
                self._bool_vars[term] = var
            return var
        if op == T.OP_NOT:
            return -self.lit_of(term.args[0])
        if op == T.OP_AND:
            return self._and_many([self.lit_of(arg) for arg in term.args])
        if op == T.OP_OR:
            return self._or_many([self.lit_of(arg) for arg in term.args])
        if op == T.OP_XOR:
            return self._xor2(self.lit_of(term.args[0]),
                              self.lit_of(term.args[1]))
        if op == T.OP_ITE:
            return self._mux(self.lit_of(term.args[0]),
                             self.lit_of(term.args[1]),
                             self.lit_of(term.args[2]))
        if op == T.OP_EQ:
            return self._eq_bits(self.bits_of(term.args[0]),
                                 self.bits_of(term.args[1]))
        if op == T.OP_ULT:
            return self._ult_bits(self.bits_of(term.args[0]),
                                  self.bits_of(term.args[1]))
        if op == T.OP_ULE:
            return -self._ult_bits(self.bits_of(term.args[1]),
                                   self.bits_of(term.args[0]))
        if op == T.OP_SLT:
            return self._slt_bits(self.bits_of(term.args[0]),
                                  self.bits_of(term.args[1]))
        if op == T.OP_SLE:
            return -self._slt_bits(self.bits_of(term.args[1]),
                                   self.bits_of(term.args[0]))
        raise ValueError(f"unknown boolean operator {op}")

    def _translate_bv(self, term: T.Term) -> List[int]:
        op = term.op
        if op == T.OP_BV_CONST:
            return self._const_bits(term.const_value(), term.width)
        if op == T.OP_BV_VAR:
            bits = self._bv_vars.get(term)
            if bits is None:
                bits = [self.sat.new_var() for _ in range(term.width)]
                self._bv_vars[term] = bits
            return bits
        if op == T.OP_ITE:
            return self._mux_bits(self.lit_of(term.args[0]),
                                  self.bits_of(term.args[1]),
                                  self.bits_of(term.args[2]))
        if op == T.OP_NEG:
            return self._neg_bits(self.bits_of(term.args[0]))
        if op == T.OP_BVNOT:
            return [-bit for bit in self.bits_of(term.args[0])]
        args = [self.bits_of(arg) for arg in term.args]
        if op == T.OP_ADD:
            # Linear normal form makes additions n-ary.
            out = args[0]
            for operand in args[1:]:
                out, _ = self._add_bits(out, operand, self.false_lit)
            return out
        if op == T.OP_SUB:
            return self._sub_bits(args[0], args[1])
        if op == T.OP_MUL:
            return self._mul_bits(args[0], args[1])
        if op == T.OP_BVAND:
            return [self._and2(x, y) for x, y in zip(args[0], args[1])]
        if op == T.OP_BVOR:
            return [self._or2(x, y) for x, y in zip(args[0], args[1])]
        if op == T.OP_BVXOR:
            return [self._xor2(x, y) for x, y in zip(args[0], args[1])]
        if op == T.OP_SHL:
            return self._shift_bits(args[0], args[1], "shl")
        if op == T.OP_LSHR:
            return self._shift_bits(args[0], args[1], "lshr")
        if op == T.OP_ASHR:
            return self._shift_bits(args[0], args[1], "ashr")
        if op in (T.OP_UDIV, T.OP_UREM):
            quotient, remainder = self._udivrem_bits(args[0], args[1])
            zero_divisor = self._is_zero(args[1])
            if op == T.OP_UDIV:
                ones = self._const_bits((1 << term.width) - 1, term.width)
                return self._mux_bits(zero_divisor, ones, quotient)
            return self._mux_bits(zero_divisor, args[0], remainder)
        if op in (T.OP_SDIV, T.OP_SREM, T.OP_SMOD):
            return self._signed_divrem(term, args[0], args[1])
        raise ValueError(f"unknown bitvector operator {op}")

    def _signed_divrem(self, term: T.Term, a: List[int],
                       b: List[int]) -> List[int]:
        width = term.width
        sign_a, sign_b = a[-1], b[-1]
        mag_a, mag_b = self._abs_bits(a), self._abs_bits(b)
        quotient, remainder = self._udivrem_bits(mag_a, mag_b)
        zero_divisor = self._is_zero(b)
        if term.op == T.OP_SDIV:
            negate = self._xor2(sign_a, sign_b)
            signed_q = self._mux_bits(negate, self._neg_bits(quotient),
                                      quotient)
            # bvsdiv x 0 = 1 if x < 0 else -1 (via bvudiv on magnitudes).
            ones = self._const_bits((1 << width) - 1, width)
            one = self._const_bits(1, width)
            div0 = self._mux_bits(sign_a, one, ones)
            return self._mux_bits(zero_divisor, div0, signed_q)
        if term.op == T.OP_SREM:
            signed_r = self._mux_bits(sign_a, self._neg_bits(remainder),
                                      remainder)
            return self._mux_bits(zero_divisor, a, signed_r)
        # bvsmod: sign follows the divisor.
        # Case analysis per SMT-LIB, with u = bvurem(|a|, |b|):
        #   (sa=0, sb=0) -> u            (sa=1, sb=0) -> t - u
        #   (sa=0, sb=1) -> u + t        (sa=1, sb=1) -> -u
        # and bvsmod _ 0 = a, bvsmod with u = 0 -> 0.
        rem_zero = self._is_zero(remainder)
        neg_rem = self._neg_bits(remainder)
        sub_b, _ = self._add_bits(neg_rem, b, self.false_lit)       # t - u
        add_b, _ = self._add_bits(remainder, b, self.false_lit)     # u + t
        with_sa = self._mux_bits(sign_b, neg_rem, sub_b)
        without_sa = self._mux_bits(sign_b, add_b, remainder)
        result = self._mux_bits(sign_a, with_sa, without_sa)
        result = self._mux_bits(rem_zero, self._const_bits(0, width), result)
        return self._mux_bits(zero_divisor, a, result)

    # ------------------------------------------------------------------
    # Assertions and models
    # ------------------------------------------------------------------

    def assert_term(self, term: T.Term, guard: Optional[int] = None) -> None:
        """Assert a boolean term at the top level.

        Top-level conjunctions split into separate assertions and
        disjunctions become plain clauses, so the solver sees the formula's
        clausal skeleton directly instead of a tower of equivalence gates.

        When `guard` is given, it is a SAT literal appended to every
        emitted top-level clause, making the assertion conditional: the
        term is only enforced while the guard is falsified (the
        activation-literal scheme behind :meth:`SmtSolver.push`). Tseitin
        gate definitions stay unguarded — they are globally valid
        definitions of auxiliary variables, so they can be shared by later
        scopes.

        While tracing, each top-level assertion is an ``smt.encode`` span
        whose end event carries the encode-cache disposition: how many
        subterm lookups hit the memo tables, how many were translated to
        fresh gates, and whether the whole assertion was already cached
        (``cached`` — zero misses).
        """
        bus = BUS
        if not bus.enabled:
            return self._assert_term(term, guard)
        hits_before = self.cache_hits
        misses_before = self.cache_misses
        bus.begin("smt.encode", "smt")
        try:
            return self._assert_term(term, guard)
        finally:
            misses = self.cache_misses - misses_before
            bus.end("smt.encode", "smt",
                    hits=self.cache_hits - hits_before,
                    misses=misses, cached=misses == 0)

    def _assert_term(self, term: T.Term, guard: Optional[int]) -> None:
        if term.op == T.OP_AND:
            for arg in term.args:
                self._assert_term(arg, guard)
            return
        extra = [] if guard is None else [guard]
        if term.op == T.OP_OR:
            self.sat.add_clause(
                [self.lit_of(arg) for arg in term.args] + extra)
            return
        if term.op == T.OP_NOT and term.args[0].op == T.OP_OR:
            for arg in term.args[0].args:
                self._assert_term(T.mk_not(arg), guard)
            return
        self.sat.add_clause([self.lit_of(term)] + extra)

    def variables(self) -> List[T.Term]:
        """All variable terms that have reached the encoder, in first-seen
        order (booleans before bitvectors)."""
        return list(self._bool_vars) + list(self._bv_vars)

    def model_value(self, var_term: T.Term):
        """Value of a variable term in the last satisfying assignment."""
        if var_term.op == T.OP_BOOL_VAR:
            sat_var = self._bool_vars.get(var_term)
            if sat_var is None:
                return False
            return bool(self.sat.model_value(sat_var))
        if var_term.op == T.OP_BV_VAR:
            bits = self._bv_vars.get(var_term)
            if bits is None:
                return 0
            value = 0
            for i, bit in enumerate(bits):
                if self.sat.model_value(bit):
                    value |= 1 << i
            return value
        raise TypeError(f"not a variable term: {var_term!r}")
