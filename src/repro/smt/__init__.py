"""Quantifier-free SMT layer over booleans and fixed-width bitvectors.

This package provides the "solver input language" of the paper: the SVM
compiles lifted computations into a DAG of boolean and bitvector terms
(:mod:`repro.smt.terms`), which are then bit-blasted to CNF
(:mod:`repro.smt.bitblast`) and decided by the CDCL engine in
:mod:`repro.solver`. The :class:`repro.smt.solver.SmtSolver` facade offers
check-sat under assumptions, model extraction, and minimized unsat cores —
the three services the paper's queries (`solve`, `verify`, `debug`,
`synthesize`) need from Z3.
"""

from repro.smt.terms import (
    BOOL,
    BV,
    FALSE,
    TRUE,
    Term,
    bool_const,
    bool_var,
    bv_const,
    bv_var,
    mk_add,
    mk_and,
    mk_ashr,
    mk_bvand,
    mk_bvnot,
    mk_bvor,
    mk_bvxor,
    mk_eq,
    mk_iff,
    mk_implies,
    mk_ite,
    mk_lshr,
    mk_mul,
    mk_neg,
    mk_not,
    mk_or,
    mk_sdiv,
    mk_shl,
    mk_sle,
    mk_slt,
    mk_smod,
    mk_srem,
    mk_sub,
    mk_udiv,
    mk_ule,
    mk_ult,
    mk_urem,
    mk_xor,
    evaluate,
    substitute,
    term_size,
    to_sexpr,
)
from repro.smt.solver import SmtResult, SmtSolver

__all__ = [
    "BOOL", "BV", "FALSE", "TRUE", "Term",
    "bool_const", "bool_var", "bv_const", "bv_var",
    "mk_add", "mk_and", "mk_ashr", "mk_bvand", "mk_bvnot", "mk_bvor",
    "mk_bvxor", "mk_eq", "mk_iff", "mk_implies", "mk_ite", "mk_lshr",
    "mk_mul", "mk_neg", "mk_not", "mk_or", "mk_sdiv", "mk_shl", "mk_sle",
    "mk_slt", "mk_smod", "mk_srem", "mk_sub", "mk_udiv", "mk_ule", "mk_ult",
    "mk_urem", "mk_xor",
    "evaluate", "substitute", "term_size", "to_sexpr",
    "SmtResult", "SmtSolver",
]
