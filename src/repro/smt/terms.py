"""Hash-consed term DAG for quantifier-free boolean/bitvector formulas.

Terms are immutable and globally interned, so structurally equal terms are
the *same object* and common subexpressions are shared — the paper's
"symbolic expressions are represented as DAGs that share common
subexpressions" (§4.3). All constructors simplify aggressively: applied to
concrete operands they constant-fold, which is what lets the SVM keep
concrete computation concrete.

Sorts
-----
- ``BOOL`` — the booleans.
- ``BV`` with a per-term ``width`` — fixed-width bitvectors, used to model
  the paper's finite-precision integers (footnote 2 of the paper). Values
  are stored unsigned, modulo ``2**width``; signed operators interpret them
  in two's complement.
"""

from __future__ import annotations

import gc
import weakref
from typing import Callable, Dict, Iterable, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Sorts and operators
# ---------------------------------------------------------------------------

BOOL = "Bool"
BV = "BV"

# Boolean operators.
OP_TRUE = "true"
OP_FALSE = "false"
OP_BOOL_VAR = "bool-var"
OP_NOT = "not"
OP_AND = "and"
OP_OR = "or"
OP_XOR = "xor"
OP_ITE = "ite"            # boolean- or bitvector-sorted, by result
OP_EQ = "="
OP_ULT = "bvult"
OP_ULE = "bvule"
OP_SLT = "bvslt"
OP_SLE = "bvsle"

# Bitvector operators.
OP_BV_CONST = "bv-const"
OP_BV_VAR = "bv-var"
OP_ADD = "bvadd"
OP_SUB = "bvsub"
OP_MUL = "bvmul"
OP_UDIV = "bvudiv"
OP_UREM = "bvurem"
OP_SDIV = "bvsdiv"
OP_SREM = "bvsrem"
OP_SMOD = "bvsmod"
OP_NEG = "bvneg"
OP_BVAND = "bvand"
OP_BVOR = "bvor"
OP_BVXOR = "bvxor"
OP_BVNOT = "bvnot"
OP_SHL = "bvshl"
OP_LSHR = "bvlshr"
OP_ASHR = "bvashr"


class Term:
    """A node of the interned term DAG. Use the ``mk_*`` constructors."""

    __slots__ = ("op", "args", "payload", "sort", "width", "_hash", "__weakref__")

    def __init__(self, op: str, args: Tuple["Term", ...], payload, sort: str,
                 width: int):
        self.op = op
        self.args = args
        self.payload = payload      # constant value or variable name
        self.sort = sort
        self.width = width          # 0 for booleans
        self._hash = hash((op, args, payload, width))

    def __hash__(self) -> int:
        return self._hash

    # Identity equality: interning guarantees structural equality iff `is`.
    def __eq__(self, other) -> bool:
        return self is other

    def __ne__(self, other) -> bool:
        return self is not other

    @property
    def is_const(self) -> bool:
        return self.op in (OP_TRUE, OP_FALSE, OP_BV_CONST)

    @property
    def is_var(self) -> bool:
        return self.op in (OP_BOOL_VAR, OP_BV_VAR)

    def const_value(self):
        """Python value of a constant term (bool or unsigned int)."""
        if self.op == OP_TRUE:
            return True
        if self.op == OP_FALSE:
            return False
        if self.op == OP_BV_CONST:
            return self.payload
        raise ValueError(f"not a constant: {self!r}")

    def __repr__(self) -> str:
        return to_sexpr(self, max_depth=4)


# Weak-value interning: the table maps a structural key to the one live
# Term with that structure, but does not keep it alive. When the last
# outside reference to a term dies, its entry vanishes (each key tuple
# holds strong references to the term's *args*, so subterm entries only
# follow once every parent entry is gone — the DAG unravels top-down).
# This is what makes it safe for the table to outlive any particular
# query: live terms are never evicted, so structural equality remains
# object identity across query boundaries, and dead terms cost nothing.
_TABLE: "weakref.WeakValueDictionary[Tuple, Term]" = \
    weakref.WeakValueDictionary()


def _intern(op: str, args: Tuple[Term, ...], payload, sort: str,
            width: int) -> Term:
    key = (op, args, payload, width)
    term = _TABLE.get(key)
    if term is None:
        term = Term(op, args, payload, sort, width)
        _TABLE[key] = term
    return term


def reset_terms() -> None:
    """Reclaim interned terms that are no longer referenced.

    Historical note: this used to *clear* the table, which broke the
    interning invariant — a term built before the clear and a structurally
    equal one built after were distinct objects, so identity-based
    equality silently failed across query boundaries. Interning is weak
    now: dead terms leave the table on their own, so all this needs to do
    is run a collection to break any lingering reference cycles. Live
    terms are never evicted.
    """
    gc.collect()


def num_interned_terms() -> int:
    return len(_TABLE)


TRUE = Term(OP_TRUE, (), None, BOOL, 0)
FALSE = Term(OP_FALSE, (), None, BOOL, 0)
_TABLE[(OP_TRUE, (), None, 0)] = TRUE
_TABLE[(OP_FALSE, (), None, 0)] = FALSE


# ---------------------------------------------------------------------------
# Leaf constructors
# ---------------------------------------------------------------------------

def bool_const(value: bool) -> Term:
    return TRUE if value else FALSE


def bool_var(name: str) -> Term:
    return _intern(OP_BOOL_VAR, (), name, BOOL, 0)


def bv_const(value: int, width: int) -> Term:
    if width <= 0:
        raise ValueError("bitvector width must be positive")
    return _intern(OP_BV_CONST, (), value & ((1 << width) - 1), BV, width)


def bv_var(name: str, width: int) -> Term:
    if width <= 0:
        raise ValueError("bitvector width must be positive")
    return _intern(OP_BV_VAR, (), name, BV, width)


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned `width`-bit value in two's complement."""
    sign_bit = 1 << (width - 1)
    return value - (1 << width) if value & sign_bit else value


def _check_bool(*terms: Term) -> None:
    for term in terms:
        if term.sort is not BOOL:
            raise TypeError(f"expected Bool, got {term.sort}: {term!r}")


def _check_bv(*terms: Term) -> int:
    width = terms[0].width
    for term in terms:
        if term.sort is not BV:
            raise TypeError(f"expected BV, got {term.sort}: {term!r}")
        if term.width != width:
            raise TypeError(
                f"width mismatch: {width} vs {term.width} in {term!r}")
    return width


# ---------------------------------------------------------------------------
# Boolean constructors
# ---------------------------------------------------------------------------

def mk_not(a: Term) -> Term:
    _check_bool(a)
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    if a.op == OP_NOT:
        return a.args[0]
    return _intern(OP_NOT, (a,), None, BOOL, 0)


def _nary_bool(op: str, terms: Iterable[Term], unit: Term, zero: Term) -> Term:
    """Build a flattened, deduplicated n-ary and/or."""
    flat: List[Term] = []
    seen = set()
    for term in terms:
        _check_bool(term)
        if term is zero:
            return zero
        if term is unit:
            continue
        if term.op == op:
            children = term.args
        else:
            children = (term,)
        for child in children:
            if child is zero:
                return zero
            if child is unit or id(child) in seen:
                continue
            # Complementary pair: a /\ ~a = false, a \/ ~a = true.
            complement = mk_not(child)
            if id(complement) in seen:
                return zero
            seen.add(id(child))
            flat.append(child)
    if not flat:
        return unit
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=id)
    return _intern(op, tuple(flat), None, BOOL, 0)


def mk_and(*terms: Term) -> Term:
    return _nary_bool(OP_AND, terms, TRUE, FALSE)


def mk_or(*terms: Term) -> Term:
    return _nary_bool(OP_OR, terms, FALSE, TRUE)


def mk_implies(a: Term, b: Term) -> Term:
    return mk_or(mk_not(a), b)


def mk_xor(a: Term, b: Term) -> Term:
    _check_bool(a, b)
    if a is FALSE:
        return b
    if b is FALSE:
        return a
    if a is TRUE:
        return mk_not(b)
    if b is TRUE:
        return mk_not(a)
    if a is b:
        return FALSE
    if mk_not(a) is b:
        return TRUE
    if id(a) > id(b):
        a, b = b, a
    return _intern(OP_XOR, (a, b), None, BOOL, 0)


def mk_iff(a: Term, b: Term) -> Term:
    return mk_not(mk_xor(a, b))


def mk_eq(a: Term, b: Term) -> Term:
    if a.sort is BOOL and b.sort is BOOL:
        return mk_iff(a, b)
    width = _check_bv(a, b)
    if a is b:
        return TRUE
    if a.is_const and b.is_const:
        return bool_const(a.const_value() == b.const_value())
    if id(a) > id(b):
        a, b = b, a
    del width
    return _intern(OP_EQ, (a, b), None, BOOL, 0)


def mk_ite(cond: Term, then: Term, alt: Term) -> Term:
    """If-then-else over booleans or same-width bitvectors (the φ of §4.1)."""
    _check_bool(cond)
    if cond is TRUE:
        return then
    if cond is FALSE:
        return alt
    if then is alt:
        return then
    if then.sort is BOOL:
        _check_bool(then, alt)
        if then is TRUE and alt is FALSE:
            return cond
        if then is FALSE and alt is TRUE:
            return mk_not(cond)
        if then is TRUE:
            return mk_or(cond, alt)
        if then is FALSE:
            return mk_and(mk_not(cond), alt)
        if alt is TRUE:
            return mk_or(mk_not(cond), then)
        if alt is FALSE:
            return mk_and(cond, then)
        return _intern(OP_ITE, (cond, then, alt), None, BOOL, 0)
    width = _check_bv(then, alt)
    if cond.op == OP_NOT:
        return mk_ite(cond.args[0], alt, then)
    # Collapse nested ite on the same condition.
    if then.op == OP_ITE and then.args[0] is cond:
        then = then.args[1]
    if alt.op == OP_ITE and alt.args[0] is cond:
        alt = alt.args[2]
    if then is alt:
        return then
    return _intern(OP_ITE, (cond, then, alt), None, BV, width)


def _mk_compare(op: str, a: Term, b: Term,
                fold: Callable[[int, int, int], bool]) -> Term:
    width = _check_bv(a, b)
    if a.is_const and b.is_const:
        return bool_const(fold(a.const_value(), b.const_value(), width))
    if a is b:
        return bool_const(fold(0, 0, width))
    return _intern(op, (a, b), None, BOOL, 0)


def mk_ult(a: Term, b: Term) -> Term:
    return _mk_compare(OP_ULT, a, b, lambda x, y, w: x < y)


def mk_ule(a: Term, b: Term) -> Term:
    return _mk_compare(OP_ULE, a, b, lambda x, y, w: x <= y)


def mk_slt(a: Term, b: Term) -> Term:
    return _mk_compare(
        OP_SLT, a, b, lambda x, y, w: to_signed(x, w) < to_signed(y, w))


def mk_sle(a: Term, b: Term) -> Term:
    return _mk_compare(
        OP_SLE, a, b, lambda x, y, w: to_signed(x, w) <= to_signed(y, w))


# ---------------------------------------------------------------------------
# Bitvector constructors
# ---------------------------------------------------------------------------

def _mk_bv_binop(op: str, a: Term, b: Term,
                 fold: Callable[[int, int, int], int],
                 commutative: bool = False) -> Term:
    width = _check_bv(a, b)
    if a.is_const and b.is_const:
        return bv_const(fold(a.const_value(), b.const_value(), width), width)
    if commutative and id(a) > id(b):
        a, b = b, a
    return _intern(op, (a, b), None, BV, width)


# Additive terms are kept in a *linear normal form*: a canonical n-ary sum
# `c0 + c1*t1 + ... + cn*tn` over non-additive atoms, with the constant
# first and atoms sorted by identity. Two expressions that are equal as
# linear combinations (e.g. `(a+b)+2c` and `2c+b+a`, or `x+x` and `2x`)
# therefore intern to the SAME term, and equalities between them fold to
# TRUE at construction time — the kind of algebraic normalization a
# production symbolic engine performs before involving the solver.

def _linear_parts(term: Term) -> Tuple[int, Dict[Term, int]]:
    """Decompose a canonical term into (constant, {atom: coefficient})."""
    if term.op == OP_BV_CONST:
        return term.const_value(), {}
    if term.op == OP_ADD:
        constant = 0
        atoms: Dict[Term, int] = {}
        for arg in term.args:
            if arg.op == OP_BV_CONST:
                constant = arg.const_value()
            elif arg.op == OP_MUL and arg.args[0].op == OP_BV_CONST:
                atoms[arg.args[1]] = arg.args[0].const_value()
            else:
                atoms[arg] = 1
        return constant, atoms
    if term.op == OP_MUL and term.args[0].op == OP_BV_CONST:
        return 0, {term.args[1]: term.args[0].const_value()}
    return 0, {term: 1}


def _scale_atom(atom: Term, coeff: int, width: int) -> Term:
    if coeff == 1:
        return atom
    return _intern(OP_MUL, (bv_const(coeff, width), atom), None, BV, width)


def _build_linear(constant: int, atoms: Dict[Term, int], width: int) -> Term:
    mask = (1 << width) - 1
    constant &= mask
    live = [(atom, coeff & mask) for atom, coeff in atoms.items()
            if coeff & mask]
    if not live:
        return bv_const(constant, width)
    if len(live) == 1 and constant == 0:
        atom, coeff = live[0]
        return _scale_atom(atom, coeff, width)
    parts: List[Term] = []
    if constant:
        parts.append(bv_const(constant, width))
    parts.extend(_scale_atom(atom, coeff, width)
                 for atom, coeff in sorted(live, key=lambda ac: id(ac[0])))
    return _intern(OP_ADD, tuple(parts), None, BV, width)


def _combine_linear(a: Term, b: Term, sign: int) -> Term:
    width = a.width
    const_a, atoms_a = _linear_parts(a)
    const_b, atoms_b = _linear_parts(b)
    atoms = dict(atoms_a)
    for atom, coeff in atoms_b.items():
        atoms[atom] = atoms.get(atom, 0) + sign * coeff
    return _build_linear(const_a + sign * const_b, atoms, width)


def mk_add(*terms: Term) -> Term:
    if not terms:
        raise TypeError("mk_add needs at least one operand")
    _check_bv(*terms)
    result = terms[0]
    for term in terms[1:]:
        result = _combine_linear(result, term, 1)
    return result


def mk_sub(a: Term, b: Term) -> Term:
    _check_bv(a, b)
    return _combine_linear(a, b, -1)


def mk_neg(a: Term) -> Term:
    _check_bv(a)
    constant, atoms = _linear_parts(a)
    return _build_linear(-constant, {t: -c for t, c in atoms.items()},
                         a.width)


def mk_mul(a: Term, b: Term) -> Term:
    width = _check_bv(a, b)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            value = x.const_value()
            if value == 0:
                return bv_const(0, width)
            if value == 1:
                return y
            # Distribute the constant over y's linear form.
            constant, atoms = _linear_parts(y)
            return _build_linear(constant * value,
                                 {t: c * value for t, c in atoms.items()},
                                 width)
    return _mk_bv_binop(OP_MUL, a, b, lambda x, y, w: x * y, commutative=True)


def _udiv_fold(x: int, y: int, w: int) -> int:
    # SMT-LIB semantics: division by zero yields all-ones.
    return (1 << w) - 1 if y == 0 else x // y


def _urem_fold(x: int, y: int, w: int) -> int:
    return x if y == 0 else x % y


def _sdiv_fold(x: int, y: int, w: int) -> int:
    sx, sy = to_signed(x, w), to_signed(y, w)
    if sy == 0:
        return 1 if sx < 0 else (1 << w) - 1
    quotient = abs(sx) // abs(sy)
    return quotient if (sx < 0) == (sy < 0) else -quotient


def _srem_fold(x: int, y: int, w: int) -> int:
    # Remainder takes the sign of the dividend (SMT-LIB bvsrem).
    sx, sy = to_signed(x, w), to_signed(y, w)
    if sy == 0:
        return x
    magnitude = abs(sx) % abs(sy)
    return magnitude if sx >= 0 else -magnitude


def _smod_fold(x: int, y: int, w: int) -> int:
    # Modulus takes the sign of the divisor (SMT-LIB bvsmod).
    sx, sy = to_signed(x, w), to_signed(y, w)
    if sy == 0:
        return x
    return sx - sy * (sx // sy) if sx % sy else 0


def mk_udiv(a: Term, b: Term) -> Term:
    return _mk_bv_binop(OP_UDIV, a, b, _udiv_fold)


def mk_urem(a: Term, b: Term) -> Term:
    return _mk_bv_binop(OP_UREM, a, b, _urem_fold)


def mk_sdiv(a: Term, b: Term) -> Term:
    return _mk_bv_binop(OP_SDIV, a, b, _sdiv_fold)


def mk_srem(a: Term, b: Term) -> Term:
    return _mk_bv_binop(OP_SREM, a, b, _srem_fold)


def mk_smod(a: Term, b: Term) -> Term:
    return _mk_bv_binop(OP_SMOD, a, b, _smod_fold)


def mk_bvnot(a: Term) -> Term:
    _check_bv(a)
    if a.is_const:
        return bv_const(~a.const_value(), a.width)
    if a.op == OP_BVNOT:
        return a.args[0]
    return _intern(OP_BVNOT, (a,), None, BV, a.width)


def mk_bvand(a: Term, b: Term) -> Term:
    width = _check_bv(a, b)
    ones = (1 << width) - 1
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.const_value() == 0:
                return bv_const(0, width)
            if x.const_value() == ones:
                return y
    if a is b:
        return a
    return _mk_bv_binop(OP_BVAND, a, b, lambda x, y, w: x & y, commutative=True)


def mk_bvor(a: Term, b: Term) -> Term:
    width = _check_bv(a, b)
    ones = (1 << width) - 1
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.const_value() == 0:
                return y
            if x.const_value() == ones:
                return bv_const(ones, width)
    if a is b:
        return a
    return _mk_bv_binop(OP_BVOR, a, b, lambda x, y, w: x | y, commutative=True)


def mk_bvxor(a: Term, b: Term) -> Term:
    width = _check_bv(a, b)
    if a is b:
        return bv_const(0, width)
    for x, y in ((a, b), (b, a)):
        if x.is_const and x.const_value() == 0:
            return y
    return _mk_bv_binop(OP_BVXOR, a, b, lambda x, y, w: x ^ y, commutative=True)


def _shift_fold(shift: Callable[[int, int, int], int]):
    def fold(x: int, y: int, w: int) -> int:
        return shift(x, y, w)
    return fold


def mk_shl(a: Term, b: Term) -> Term:
    if b.is_const and b.const_value() == 0:
        return a
    return _mk_bv_binop(
        OP_SHL, a, b,
        lambda x, y, w: x << y if y < w else 0)


def mk_lshr(a: Term, b: Term) -> Term:
    if b.is_const and b.const_value() == 0:
        return a
    return _mk_bv_binop(
        OP_LSHR, a, b,
        lambda x, y, w: x >> y if y < w else 0)


def mk_ashr(a: Term, b: Term) -> Term:
    if b.is_const and b.const_value() == 0:
        return a

    def fold(x: int, y: int, w: int) -> int:
        signed = to_signed(x, w)
        return signed >> min(y, w - 1)
    return _mk_bv_binop(OP_ASHR, a, b, fold)


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------

def postorder(term: Term):
    """Iterative post-order traversal yielding each node exactly once."""
    seen = set()
    stack: List[Tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in seen:
            continue
        if expanded:
            seen.add(id(node))
            yield node
        else:
            stack.append((node, True))
            for arg in node.args:
                if id(arg) not in seen:
                    stack.append((arg, False))


def term_size(term: Term) -> int:
    """Number of distinct DAG nodes reachable from `term`."""
    return sum(1 for _ in postorder(term))


def term_vars(term: Term) -> List[Term]:
    """All variable leaves reachable from `term`, in post order."""
    return [node for node in postorder(term) if node.is_var]


_REBUILDERS: Dict[str, Callable] = {}


def _rebuilders() -> Dict[str, Callable]:
    if not _REBUILDERS:
        _REBUILDERS.update({
            OP_NOT: lambda t, args: mk_not(*args),
            OP_AND: lambda t, args: mk_and(*args),
            OP_OR: lambda t, args: mk_or(*args),
            OP_XOR: lambda t, args: mk_xor(*args),
            OP_EQ: lambda t, args: mk_eq(*args),
            OP_ITE: lambda t, args: mk_ite(*args),
            OP_ULT: lambda t, args: mk_ult(*args),
            OP_ULE: lambda t, args: mk_ule(*args),
            OP_SLT: lambda t, args: mk_slt(*args),
            OP_SLE: lambda t, args: mk_sle(*args),
            OP_ADD: lambda t, args: mk_add(*args),
            OP_SUB: lambda t, args: mk_sub(*args),
            OP_MUL: lambda t, args: mk_mul(*args),
            OP_UDIV: lambda t, args: mk_udiv(*args),
            OP_UREM: lambda t, args: mk_urem(*args),
            OP_SDIV: lambda t, args: mk_sdiv(*args),
            OP_SREM: lambda t, args: mk_srem(*args),
            OP_SMOD: lambda t, args: mk_smod(*args),
            OP_NEG: lambda t, args: mk_neg(*args),
            OP_BVAND: lambda t, args: mk_bvand(*args),
            OP_BVOR: lambda t, args: mk_bvor(*args),
            OP_BVXOR: lambda t, args: mk_bvxor(*args),
            OP_BVNOT: lambda t, args: mk_bvnot(*args),
            OP_SHL: lambda t, args: mk_shl(*args),
            OP_LSHR: lambda t, args: mk_lshr(*args),
            OP_ASHR: lambda t, args: mk_ashr(*args),
        })
    return _REBUILDERS


def substitute(term: Term, env: Dict[Term, Term]) -> Term:
    """Replace variables per `env`, re-simplifying bottom-up.

    This is the workhorse of the CEGIS synthesis loop: substituting a
    counterexample model into a formula constant-folds everything that
    depended only on the inputs.
    """
    rebuild = _rebuilders()
    memo: Dict[int, Term] = {}
    for node in postorder(term):
        if node in env:
            replacement = env[node]
            if replacement.sort != node.sort or replacement.width != node.width:
                raise TypeError(f"substitution changes sort of {node!r}")
            memo[id(node)] = replacement
        elif not node.args:
            memo[id(node)] = node
        else:
            new_args = tuple(memo[id(arg)] for arg in node.args)
            if all(new is old for new, old in zip(new_args, node.args)):
                memo[id(node)] = node
            else:
                memo[id(node)] = rebuild[node.op](node, new_args)
    return memo[id(term)]


def evaluate(term: Term, env: Dict[Term, object]):
    """Concretely evaluate `term` under a variable assignment.

    `env` maps variable terms to Python values (bool / unsigned int).
    Unassigned variables default to False / 0 — matching how SAT models
    treat don't-care variables.
    """
    memo: Dict[int, object] = {}
    for node in postorder(term):
        memo[id(node)] = _eval_node(node, env, memo)
    return memo[id(term)]


def _eval_node(node: Term, env, memo):
    op = node.op
    if node.is_var:
        if node in env:
            return env[node]
        return False if node.sort is BOOL else 0
    if node.is_const:
        return node.const_value()
    args = [memo[id(arg)] for arg in node.args]
    width = node.args[0].width if node.args else node.width
    mask = (1 << width) - 1 if width else 0
    if op == OP_NOT:
        return not args[0]
    if op == OP_AND:
        return all(args)
    if op == OP_OR:
        return any(args)
    if op == OP_XOR:
        return args[0] != args[1]
    if op == OP_EQ:
        return args[0] == args[1]
    if op == OP_ITE:
        return args[1] if args[0] else args[2]
    if op == OP_ULT:
        return args[0] < args[1]
    if op == OP_ULE:
        return args[0] <= args[1]
    if op == OP_SLT:
        return to_signed(args[0], width) < to_signed(args[1], width)
    if op == OP_SLE:
        return to_signed(args[0], width) <= to_signed(args[1], width)
    if op == OP_ADD:
        return sum(args) & mask
    if op == OP_SUB:
        return (args[0] - args[1]) & mask
    if op == OP_MUL:
        return (args[0] * args[1]) & mask
    if op == OP_UDIV:
        return _udiv_fold(args[0], args[1], width) & mask
    if op == OP_UREM:
        return _urem_fold(args[0], args[1], width) & mask
    if op == OP_SDIV:
        return _sdiv_fold(args[0], args[1], width) & mask
    if op == OP_SREM:
        return _srem_fold(args[0], args[1], width) & mask
    if op == OP_SMOD:
        return _smod_fold(args[0], args[1], width) & mask
    if op == OP_NEG:
        return (-args[0]) & mask
    if op == OP_BVAND:
        return args[0] & args[1]
    if op == OP_BVOR:
        return args[0] | args[1]
    if op == OP_BVXOR:
        return args[0] ^ args[1]
    if op == OP_BVNOT:
        return (~args[0]) & mask
    if op == OP_SHL:
        return (args[0] << args[1]) & mask if args[1] < width else 0
    if op == OP_LSHR:
        return args[0] >> args[1] if args[1] < width else 0
    if op == OP_ASHR:
        return (to_signed(args[0], width) >> min(args[1], width - 1)) & mask
    raise ValueError(f"cannot evaluate operator {op}")


def to_sexpr(term: Term, max_depth: Optional[int] = None) -> str:
    """Render a term as an SMT-LIB-flavoured s-expression."""
    def render(node: Term, depth: int) -> str:
        if node.op == OP_TRUE:
            return "true"
        if node.op == OP_FALSE:
            return "false"
        if node.op == OP_BV_CONST:
            return f"(_ bv{node.const_value()} {node.width})"
        if node.is_var:
            return str(node.payload)
        if max_depth is not None and depth >= max_depth:
            return "..."
        inner = " ".join(render(arg, depth + 1) for arg in node.args)
        return f"({node.op} {inner})"
    return render(term, 0)
