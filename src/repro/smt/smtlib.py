"""SMT-LIB 2 export of term-level formulas.

The SVM never needs this (it owns its solver), but a production library
should interoperate: `to_smtlib` renders an assertion set as a complete
SMT-LIB 2 script in QF_BV that stock solvers (z3, cvc5, boolector) accept
verbatim. Shared subterms are let-bound so scripts stay linear in DAG
size, mirroring the encoding the bit-blaster consumes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.smt import terms as T

_OP_NAMES = {
    T.OP_NOT: "not", T.OP_AND: "and", T.OP_OR: "or", T.OP_XOR: "xor",
    T.OP_EQ: "=", T.OP_ITE: "ite",
    T.OP_ULT: "bvult", T.OP_ULE: "bvule",
    T.OP_SLT: "bvslt", T.OP_SLE: "bvsle",
    T.OP_ADD: "bvadd", T.OP_SUB: "bvsub", T.OP_MUL: "bvmul",
    T.OP_UDIV: "bvudiv", T.OP_UREM: "bvurem",
    T.OP_SDIV: "bvsdiv", T.OP_SREM: "bvsrem", T.OP_SMOD: "bvsmod",
    T.OP_NEG: "bvneg", T.OP_BVAND: "bvand", T.OP_BVOR: "bvor",
    T.OP_BVXOR: "bvxor", T.OP_BVNOT: "bvnot",
    T.OP_SHL: "bvshl", T.OP_LSHR: "bvlshr", T.OP_ASHR: "bvashr",
}


def _sanitize(name: str) -> str:
    """SMT-LIB simple symbols: quote anything with special characters."""
    if name and all(ch.isalnum() or ch in "_.$@" for ch in name):
        return name
    escaped = name.replace("|", "")
    return f"|{escaped}|"


def declare_sort(term: T.Term) -> str:
    return "Bool" if term.sort is T.BOOL else f"(_ BitVec {term.width})"


def to_smtlib(assertions: Sequence[T.Term], logic: str = "QF_BV",
              check_sat: bool = True, get_model: bool = False) -> str:
    """Render assertions as a complete SMT-LIB 2 script."""
    lines: List[str] = [f"(set-logic {logic})"]

    # Declarations for every variable leaf.
    declared = set()
    for assertion in assertions:
        for node in T.postorder(assertion):
            if node.is_var and node not in declared:
                declared.add(node)
                lines.append(
                    f"(declare-const {_sanitize(str(node.payload))} "
                    f"{declare_sort(node)})")

    # Count references to find shared internal nodes worth let-binding.
    references: Dict[T.Term, int] = {}
    for assertion in assertions:
        seen_here = set()
        stack = [assertion]
        while stack:
            node = stack.pop()
            references[node] = references.get(node, 0) + 1
            if node not in seen_here:
                seen_here.add(node)
                stack.extend(node.args)

    names: Dict[T.Term, str] = {}
    definitions: List[str] = []
    counter = [0]

    def render(node: T.Term) -> str:
        if node in names:
            return names[node]
        if node is T.TRUE:
            return "true"
        if node is T.FALSE:
            return "false"
        if node.op == T.OP_BV_CONST:
            return f"(_ bv{node.const_value()} {node.width})"
        if node.is_var:
            return _sanitize(str(node.payload))
        rendered_args = " ".join(render(arg) for arg in node.args)
        body = f"({_OP_NAMES[node.op]} {rendered_args})"
        if references.get(node, 0) > 1 and node.args:
            counter[0] += 1
            name = f".t{counter[0]}"
            definitions.append(
                f"(define-fun {name} () {declare_sort(node)} {body})")
            names[node] = name
            return name
        return body

    assertion_lines = [f"(assert {render(a)})" for a in assertions]
    lines.extend(definitions)
    lines.extend(assertion_lines)
    if check_sat:
        lines.append("(check-sat)")
    if get_model:
        lines.append("(get-model)")
    return "\n".join(lines) + "\n"
