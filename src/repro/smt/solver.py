"""SMT solver facade: check-sat, models, scopes, and minimized unsat cores.

This is the component the SVM's queries talk to in place of Z3. A
:class:`SmtSolver` owns a single *persistent* SAT instance; assertions are
boolean terms and `check` may additionally be given *assumption* terms. The
solver is **incremental**:

- :meth:`push`/:meth:`pop` open and close assertion scopes. Scoped
  assertions are guarded by per-scope *activation literals* — fresh SAT
  variables assumed true while the scope is open and permanently forced
  false on `pop` — so retracting a scope never discards the SAT solver's
  learned clauses, variable activities, or watch lists.
- Bit-blasting is memoized in the underlying :class:`BitBlaster`: because
  terms are interned (:mod:`repro.smt.terms`), a term encoded by one check
  is a dictionary hit for every later check, even across popped scopes.
- Every `check` records a :class:`CheckStats` delta (conflicts, decisions,
  propagations, learned clauses, encode-cache hits/misses) in
  :attr:`SmtSolver.last_check` and accumulates it in
  :attr:`SmtSolver.cumulative`.

When the result is UNSAT under assumptions, :meth:`unsat_core` reports
which assumptions were used, and :meth:`minimize_core` shrinks that set to
a minimal one by deletion — this implements the paper's
minimal-unsatisfiable-core `debug` query (§2.2). Deletion candidates are
ordered by how rarely they appeared in previously reported cores
(Cache-a-lot-style core reuse), and the pre-call result/model are restored
afterwards so a model obtained before minimization stays retrievable.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import time

from repro.analysis.sanitize import SanitizeStats, sanitize_assertion
from repro.obs.events import BUS
from repro.smt import terms as T
from repro.smt.bitblast import BitBlaster
from repro.solver.budget import Budget, BudgetExhausted, ResourceReport
from repro.solver.certify import (
    CertificationError,
    ProofLog,
    check_model,
    check_proof,
    recheck_unsat,
)
from repro.solver.sat import SatResult, SatSolver


def _certify_default() -> bool:
    """`certify=None` resolves against the REPRO_CERTIFY environment knob."""
    return os.environ.get("REPRO_CERTIFY", "") not in ("", "0")


def _analyze_default() -> bool:
    """`analyze=None` resolves against the REPRO_ANALYZE environment knob."""
    return os.environ.get("REPRO_ANALYZE", "") not in ("", "0")


class SmtResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class CheckStats:
    """Solver-effort counters, either for one `check` or accumulated.

    ``encode_*`` counts cover the encoding work done since the previous
    check (assertions are bit-blasted as they are added, so the cost of
    encoding a formula is attributed to the first check that uses it).
    """

    checks: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned: int = 0
    encode_hits: int = 0
    encode_misses: int = 0
    # Budget consumption: wall-clock spent inside `check` and how many of
    # the covered checks tripped a resource limit (returned UNKNOWN).
    seconds: float = 0.0
    tripped: int = 0
    # How many of the covered checks had their answer independently
    # certified (model check, proof check, or a trivially-false fast path).
    certified: int = 0
    # Sanitizer rewrites applied to assertions covered by this check (the
    # pre-pass runs at add_assertion time, so like the encode counters it
    # is attributed to the first check that uses the formula).
    sanitize_rewrites: int = 0

    def copy(self) -> "CheckStats":
        return CheckStats(self.checks, self.conflicts, self.decisions,
                          self.propagations, self.learned,
                          self.encode_hits, self.encode_misses,
                          self.seconds, self.tripped, self.certified,
                          self.sanitize_rewrites)

    def __sub__(self, other: "CheckStats") -> "CheckStats":
        return CheckStats(
            self.checks - other.checks,
            self.conflicts - other.conflicts,
            self.decisions - other.decisions,
            self.propagations - other.propagations,
            self.learned - other.learned,
            self.encode_hits - other.encode_hits,
            self.encode_misses - other.encode_misses,
            self.seconds - other.seconds,
            self.tripped - other.tripped,
            self.certified - other.certified,
            self.sanitize_rewrites - other.sanitize_rewrites)

    def __iadd__(self, other: "CheckStats") -> "CheckStats":
        self.checks += other.checks
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.learned += other.learned
        self.encode_hits += other.encode_hits
        self.encode_misses += other.encode_misses
        self.seconds += other.seconds
        self.tripped += other.tripped
        self.certified += other.certified
        self.sanitize_rewrites += other.sanitize_rewrites
        return self


class Model:
    """A satisfying interpretation of the symbolic constants.

    Maps variable *terms* to Python values (bool for booleans, unsigned int
    for bitvectors). Variables absent from the encoding default to
    ``False`` / ``0``.
    """

    def __init__(self, bindings: Dict[T.Term, object]):
        self._bindings = dict(bindings)

    def __getitem__(self, var_term: T.Term):
        if var_term in self._bindings:
            return self._bindings[var_term]
        if var_term.sort is T.BOOL:
            return False
        return 0

    def __contains__(self, var_term: T.Term) -> bool:
        return var_term in self._bindings

    def bindings(self) -> Dict[T.Term, object]:
        return dict(self._bindings)

    def evaluate(self, term: T.Term):
        """Evaluate an arbitrary term under this model."""
        return T.evaluate(term, self._bindings)

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{var.payload}={value}" for var, value in
            sorted(self._bindings.items(), key=lambda kv: str(kv[0].payload)))
        return f"Model({entries})"


class _Scope:
    """One push level: its activation literal and the terms it asserted."""

    __slots__ = ("act", "assertions", "has_false")

    def __init__(self, act: int):
        self.act = act                       # external SAT literal, > 0
        self.assertions: List[T.Term] = []
        self.has_false = False               # scope asserted constant FALSE


class SmtSolver:
    """Incremental satisfiability checks for boolean/bitvector formulas."""

    def __init__(self, max_conflicts: Optional[int] = None,
                 budget: Optional[Budget] = None,
                 certify: Optional[bool] = None,
                 analyze: Optional[bool] = None):
        self.sat = SatSolver()
        self.sat.max_conflicts = max_conflicts
        # Trust-but-verify mode: with `certify` (or REPRO_CERTIFY=1), the
        # SAT layer logs a DRUP proof and every answer is independently
        # re-checked — SAT models clause-by-clause and term-by-term, UNSAT
        # answers by reverse unit propagation over the proof. The proof
        # must be enabled *before* the bit-blaster exists: its constructor
        # already emits the constant-true unit clause, which the checker
        # needs among the inputs.
        self.certify = _certify_default() if certify is None else bool(certify)
        self.proof: Optional[ProofLog] = (
            self.sat.enable_proof() if self.certify else None)
        self.last_cert: Optional[str] = None
        # Pre-solver static analysis: with `analyze` (or REPRO_ANALYZE=1),
        # every asserted formula runs through the abstract-interpretation
        # sanitizer and the *rewritten* term is what gets bit-blasted. The
        # original terms stay in `assertions()`, so SAT-answer
        # certification re-evaluates the pre-rewrite formulas — an unsound
        # rewrite surfaces as a CertificationError, not a wrong answer.
        self.analyze = _analyze_default() if analyze is None else bool(analyze)
        self.sanitize_stats = SanitizeStats()
        self.blaster = BitBlaster(self.sat)
        self._assertions: List[T.Term] = []   # base (unscoped) assertions
        self._base_false = False              # base asserted constant FALSE
        self._scopes: List[_Scope] = []
        self._assumption_lits: Dict[T.Term, int] = {}
        self._last_core: List[T.Term] = []
        self._last_result: Optional[SmtResult] = None
        self._last_assumption_terms: List[T.Term] = []
        self._declared: Dict[T.Term, None] = {}
        # Statistics. The mark advances at the end of every check, so
        # encoding done while asserting between checks is attributed to
        # the next check that uses it.
        self.last_check: CheckStats = CheckStats()
        self.cumulative: CheckStats = CheckStats()
        self._mark: CheckStats = self._stats_mark()
        self._core_counts: Dict[T.Term, int] = {}
        # Resource governance. `last_report` describes the most recent
        # UNKNOWN (why the solver gave up, what it spent); an encode-phase
        # trip poisons the instance — the formula is only partially
        # encoded, so every later check answers UNKNOWN.
        self.budget: Optional[Budget] = None
        self.last_report: Optional[ResourceReport] = None
        self._encode_report: Optional[ResourceReport] = None
        self.set_budget(budget)

    def set_budget(self, budget: Optional[Budget]) -> None:
        """Install (or clear) the budget charged by encoding and search.

        Swappable between checks — CEGIS points both of its solvers at a
        fresh per-iteration child budget each round.
        """
        self.budget = budget
        self.sat.budget = budget
        self.blaster.budget = budget

    # ------------------------------------------------------------------
    # Assertions and scopes
    # ------------------------------------------------------------------

    def add_assertion(self, term: T.Term) -> None:
        """Assert a boolean term in the current scope.

        Base-level assertions are permanent; assertions made after a
        :meth:`push` are retracted by the matching :meth:`pop`.
        """
        if term.sort is not T.BOOL:
            raise TypeError(f"assertions must be boolean: {term!r}")
        encoded = self._sanitized(term)
        # A *syntactically* false assertion keeps the zero-work fast path
        # unconditionally. A sanitizer-proved false does too, except in
        # certify mode, where the constant is encoded instead so the UNSAT
        # answer is backed by a checkable DRUP proof rather than the
        # analysis' word.
        is_false = term is T.FALSE or (encoded is T.FALSE and not self.certify)
        if self._scopes:
            scope = self._scopes[-1]
            scope.assertions.append(term)
            scope.has_false = scope.has_false or is_false
            self._encode(encoded, guard=-scope.act)
        else:
            self._assertions.append(term)
            self._base_false = self._base_false or is_false
            self._encode(encoded)

    def _sanitized(self, term: T.Term) -> T.Term:
        """The term to encode: the sanitizer's rewrite when analysis is on."""
        if not self.analyze or term.is_const:
            return term
        return sanitize_assertion(term, certify=self.certify,
                                  stats=self.sanitize_stats)

    def _encode(self, term: T.Term, guard: Optional[int] = None) -> None:
        """Bit-blast one assertion, downgrading encode-budget trips.

        A trip mid-encoding leaves the SAT instance with a *partial*
        formula, so instead of letting :class:`BudgetExhausted` escape the
        solver records the report and poisons itself: every subsequent
        :meth:`check` returns UNKNOWN carrying that report. Callers keep
        the exception-free `check` contract either way.
        """
        if self._encode_report is not None:
            return  # already poisoned; do not waste more encode work
        try:
            self.blaster.assert_term(term, guard=guard)
        except BudgetExhausted as exhausted:
            self._encode_report = exhausted.report

    def add_assertions(self, terms: Iterable[T.Term]) -> None:
        for term in terms:
            self.add_assertion(term)

    def push(self) -> None:
        """Open a new assertion scope.

        Implemented with an activation literal: a fresh SAT variable guards
        every clause the scope asserts and is passed as an assumption to
        each `check` while the scope is open. The persistent SAT instance
        keeps its learned clauses, activities, and watches across scopes.
        """
        self._scopes.append(_Scope(self.sat.new_var()))

    def pop(self) -> None:
        """Retract the innermost scope's assertions.

        The scope's activation literal is permanently forced false, which
        satisfies (and thereby disables) every clause it guarded — nothing
        is deleted, so clauses learned while the scope was open remain
        valid and continue to prune later searches.
        """
        if not self._scopes:
            raise RuntimeError("pop() without a matching push()")
        scope = self._scopes.pop()
        self.sat.add_clause([-scope.act])

    @property
    def num_scopes(self) -> int:
        return len(self._scopes)

    def assertions(self) -> List[T.Term]:
        """All currently active assertions, outermost first."""
        active = list(self._assertions)
        for scope in self._scopes:
            active.extend(scope.assertions)
        return active

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def _assumption_lit(self, term: T.Term) -> int:
        lit = self._assumption_lits.get(term)
        if lit is None:
            lit = self.blaster.lit_of(term)
            self._assumption_lits[term] = lit
        return lit

    def _stats_mark(self) -> CheckStats:
        sat, blaster = self.sat, self.blaster
        return CheckStats(0, sat.num_conflicts, sat.num_decisions,
                          sat.num_propagations, sat.num_learned,
                          blaster.cache_hits, blaster.cache_misses,
                          sanitize_rewrites=self.sanitize_stats.rewrites)

    def _record_check(self, seconds: float = 0.0,
                      tripped: bool = False,
                      certified: bool = False) -> CheckStats:
        now = self._stats_mark()
        delta = now - self._mark
        delta.checks = 1
        delta.seconds = seconds
        delta.tripped = 1 if tripped else 0
        delta.certified = 1 if certified else 0
        self._mark = now
        self.last_check = delta
        self.cumulative += delta
        return delta

    def _finish(self, result: SmtResult,
                core: Sequence[T.Term] = ()) -> SmtResult:
        self._last_result = result
        self._last_core = list(core)
        for term in self._last_core:
            self._core_counts[term] = self._core_counts.get(term, 0) + 1
        return result

    def check(self, assumptions: Sequence[T.Term] = ()) -> SmtResult:
        """Decide satisfiability of the active assertions plus assumptions.

        On UNSAT, :meth:`unsat_core` names the *assumptions* involved in
        the conflict. Assertions (scoped or not) never appear in the core;
        in particular, when the assertions alone are unsatisfiable the core
        is empty — no subset of the assumptions is to blame.

        On UNKNOWN — a tripped :class:`~repro.solver.budget.Budget`, a
        cancelled token, or the legacy ``max_conflicts`` cap —
        :attr:`last_report` carries the :class:`ResourceReport` naming the
        limit and the spend. The :class:`CheckStats` delta is recorded in
        a ``finally`` block, so accounting survives a check that raises
        mid-solve (cancellation via exception, interrupts, encoder bugs).
        """
        self._last_core = []
        self._last_result = None   # a check that raises reports "error"
        self._last_assumption_terms = [t for t in assumptions
                                       if t is not T.TRUE]
        self.last_report = None
        self.last_cert = None
        started = time.perf_counter()
        tripped = False
        # `traced` is latched at entry so the begin/end pair stays balanced
        # even if a sink subscribes or detaches mid-check.
        traced = BUS.enabled
        if traced:
            BUS.begin("smt.check", "smt", assumptions=len(assumptions),
                      scopes=len(self._scopes))
        try:
            # A budget trip during encoding means the SAT instance holds
            # only part of the formula: UNKNOWN is the only sound answer.
            if self._encode_report is not None:
                tripped = True
                self.last_report = self._encode_report
                return self._finish(SmtResult.UNKNOWN)
            # Fast path: a constant-false assertion makes the problem UNSAT
            # regardless of the assumptions, so the core of assumptions is [].
            if self._base_false or any(s.has_false for s in self._scopes):
                # Nothing to certify: UNSAT is syntactically immediate.
                if self.certify:
                    self.last_cert = "trivial"
                return self._finish(SmtResult.UNSAT)
            lits = []
            lit_to_term: Dict[int, T.Term] = {}
            try:
                for term in assumptions:
                    if term is T.TRUE:
                        continue
                    if term is T.FALSE:
                        if self.certify:
                            self.last_cert = "trivial"
                        return self._finish(SmtResult.UNSAT, [term])
                    lit = self._assumption_lit(term)
                    lits.append(lit)
                    lit_to_term[lit] = term
            except BudgetExhausted as exhausted:
                # Assumption terms are encoded on first use; a trip here is
                # an encode-phase trip like any other.
                tripped = True
                self._encode_report = exhausted.report
                self.last_report = exhausted.report
                return self._finish(SmtResult.UNKNOWN)
            # Activation literals of open scopes are standing assumptions.
            act_lits = [scope.act for scope in self._scopes]
            result = self.sat.solve(act_lits + lits)
            if result is SatResult.SAT:
                if self.certify:
                    self._certify_sat(act_lits + lits)
                return self._finish(SmtResult.SAT)
            if result is SatResult.UNKNOWN:
                tripped = True
                self.last_report = self._search_report(started)
                return self._finish(SmtResult.UNKNOWN)
            core_lits = self.sat.unsat_core()
            if self.certify:
                self._certify_unsat(core_lits)
            # Activation literals are implementation detail, not assumptions:
            # lit_to_term filters them out of the reported core.
            core = [lit_to_term[lit] for lit in core_lits
                    if lit in lit_to_term]
            return self._finish(SmtResult.UNSAT, core)
        finally:
            delta = self._record_check(time.perf_counter() - started, tripped,
                                       certified=self.last_cert is not None)
            if traced:
                result = self._last_result
                BUS.end("smt.check", "smt",
                        result=result.value if result is not None else "error",
                        checks=delta.checks,
                        conflicts=delta.conflicts,
                        decisions=delta.decisions,
                        propagations=delta.propagations,
                        learned=delta.learned,
                        encode_hits=delta.encode_hits,
                        encode_misses=delta.encode_misses,
                        seconds=delta.seconds,
                        tripped=delta.tripped,
                        certified=delta.certified,
                        sanitize_rewrites=delta.sanitize_rewrites)

    def _search_report(self, started: float) -> ResourceReport:
        """Describe a search-phase UNKNOWN (budget trip or conflict cap)."""
        reason = self.sat.interrupt_reason
        if self.budget is not None and reason is not None:
            return self.budget.report(reason, phase="search")
        # Legacy max_conflicts cap: report this check's own spend.
        delta = self._stats_mark() - self._mark
        return ResourceReport(
            reason=reason or "conflicts", phase="search",
            elapsed_seconds=time.perf_counter() - started,
            conflicts=delta.conflicts,
            propagations=delta.propagations,
            learned=delta.learned,
            limits={"max_conflicts": self.sat.max_conflicts})

    # ------------------------------------------------------------------
    # Certification (trust-but-verify)
    # ------------------------------------------------------------------

    def _certify_sat(self, assumption_lits: Sequence[int]) -> None:
        """Certify a SAT answer at both the CNF and the term level.

        The CNF check re-evaluates every input clause of the proof log
        under the SAT model; the term-level check re-evaluates the original
        (pre-bit-blast) assertions and assumption terms under the extracted
        variable bindings. Both must pass — the second catches encoder bugs
        the first cannot see, because a mis-encoded CNF is still genuinely
        satisfied by its own model.
        """
        traced = BUS.enabled
        if traced:
            BUS.begin("cert.model", "cert")
        ok = False
        try:
            check_model(self.proof, self.sat.model(), assumption_lits)
            bindings = {var: self.blaster.model_value(var)
                        for var in self.blaster.variables()}
            self._certify_terms(bindings)
            self.last_cert = "model"
            ok = True
        finally:
            if traced:
                BUS.end("cert.model", "cert", ok=ok)

    def _certify_terms(self, bindings: Dict[T.Term, object]) -> None:
        """Re-evaluate active assertions + last assumptions under bindings."""
        targets = self.assertions() + self._last_assumption_terms
        for term in targets:
            env = dict(bindings)
            for var in T.term_vars(term):
                if var not in env:
                    env[var] = False if var.sort is T.BOOL else 0
            if T.evaluate(term, env) is not True:
                raise CertificationError(
                    "model", f"assertion evaluates false under the model: "
                             f"{T.to_sexpr(term, max_depth=4)}")

    def _certify_unsat(self, core_lits: Sequence[int]) -> None:
        """Certify an UNSAT answer by replaying the DRUP proof.

        Every learned clause must pass reverse unit propagation, and
        propagating the final core literals (open-scope activation literals
        plus failed assumptions) over the accumulated clause database must
        yield a conflict.
        """
        traced = BUS.enabled
        if traced:
            BUS.begin("cert.proof", "cert", steps=len(self.proof.steps))
        ok = False
        try:
            check_proof(self.proof, core=core_lits)
            self.last_cert = "proof"
            ok = True
        finally:
            if traced:
                BUS.end("cert.proof", "cert", ok=ok,
                        core=len(core_lits))

    def certify_model(self, bindings: Optional[Dict[T.Term, object]] = None
                      ) -> None:
        """Re-evaluate the active assertions under a model's bindings.

        With no argument, certifies the model of the last SAT answer
        (useful after an uncertified check); with explicit bindings,
        certifies those instead — the fault-injection harness uses this to
        prove that corrupted models are rejected. Raises
        :class:`CertificationError` on any assertion that does not
        evaluate to true.
        """
        if bindings is None:
            bindings = self.model().bindings()
        self._certify_terms(dict(bindings))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def declare(self, *variables: T.Term) -> None:
        """Register variables that must appear in every model.

        A variable that never reaches a CNF clause (asserted nowhere, or
        only under simplified-away subterms) has no SAT counterpart, so a
        bare :meth:`model` would omit it. Declared variables always get a
        defined value (``False`` / ``0`` when unconstrained).
        """
        for var in variables:
            if not var.is_var:
                raise TypeError(f"declare() expects variable terms: {var!r}")
            self._declared[var] = None

    def model(self, variables: Iterable[T.Term] = ()) -> Model:
        """Extract the satisfying assignment for the given variables.

        With no explicit variable list, the model covers every variable
        that reached the bit-blaster, every :meth:`declare`-d variable, and
        every variable of the active assertions — so a variable the
        encoder simplified away (or that was never constrained at all)
        still gets a defined value instead of being silently absent.
        """
        if self._last_result is not SmtResult.SAT:
            raise RuntimeError("model() requires a previous SAT result")
        bindings: Dict[T.Term, object] = {}
        targets = list(variables)
        if not targets:
            seen: Dict[T.Term, None] = {}
            for var in self.blaster.variables():
                seen.setdefault(var, None)
            for var in self._declared:
                seen.setdefault(var, None)
            for term in self.assertions():
                for var in T.term_vars(term):
                    seen.setdefault(var, None)
            targets = list(seen)
        for var in targets:
            bindings[var] = self.blaster.model_value(var)
        return Model(bindings)

    def unsat_core(self) -> List[T.Term]:
        """Assumption terms involved in the last UNSAT answer."""
        return list(self._last_core)

    def minimize_core(self, core: Optional[Sequence[T.Term]] = None) -> List[T.Term]:
        """Deletion-minimize an unsat core of assumptions.

        The result is *minimal*: dropping any single element makes the
        remaining assumptions satisfiable together with the assertions.
        Candidates that appeared rarely in previously reported cores are
        tried for deletion first — across the repeated `check` calls of an
        iterative query, the refutation usually keeps hinging on the same
        few assumptions, so the rarely-blamed ones are the likely-redundant
        ones (the core-reuse heuristic of Cache-a-lot).

        The solver's result/model state is restored afterwards: a model
        obtained from a SAT check before minimization is still retrievable.

        Minimization is *anytime* under a budget: each deletion probe is a
        `check`, and when one answers UNKNOWN (budget tripped mid-probe)
        the loop stops and returns the smallest core established so far —
        still a correct unsat core, just not necessarily minimal.
        :attr:`last_report` says why minimization stopped early.

        In certify mode the minimized core is re-proved before it is
        returned: a *fresh* one-shot solver receives the proof log's input
        clauses, solves under the returned core (plus open-scope
        activation literals), and its own UNSAT proof is RUP-checked. A
        minimizer bug that over-shrinks the core raises
        :class:`CertificationError` instead of reporting a non-core.
        """
        current = list(self._last_core if core is None else core)
        saved_result = self._last_result
        saved_core = list(self._last_core)
        saved_model = self.sat.model_snapshot()
        current.sort(key=lambda t: self._core_counts.get(t, 0))
        i = 0
        while i < len(current):
            trial = current[:i] + current[i + 1:]
            result = self.check(trial)
            if result is SmtResult.UNKNOWN:
                break
            if result is SmtResult.UNSAT:
                # The i-th element is redundant; the new core is `trial`'s.
                refined = self.unsat_core()
                current = [t for t in trial if t in set(refined)] or trial
            else:
                i += 1
        self._last_result = saved_result
        self._last_core = saved_core
        self.sat.restore_model(saved_model)
        if self.certify:
            self._certify_core(current)
        return current

    def _certify_core(self, core: Sequence[T.Term]) -> None:
        """Postcondition of :meth:`minimize_core`: re-prove the core unsat."""
        lits = [scope.act for scope in self._scopes]
        lits += [self._assumption_lit(term) for term in core]
        traced = BUS.enabled
        if traced:
            BUS.begin("cert.core", "cert", size=len(core))
        ok = False
        try:
            recheck_unsat(self.proof.input_clauses(), lits)
            ok = True
        finally:
            if traced:
                BUS.end("cert.core", "cert", ok=ok)
