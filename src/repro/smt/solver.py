"""SMT solver facade: check-sat, models, and minimized unsat cores.

This is the component the SVM's queries talk to in place of Z3. A
:class:`SmtSolver` owns a fresh SAT instance; assertions are boolean terms
and `check` may additionally be given *assumption* terms. When the result is
UNSAT under assumptions, :meth:`unsat_core` reports which assumptions were
used, and :meth:`minimize_core` shrinks that set to a minimal one by
deletion — this implements the paper's minimal-unsatisfiable-core `debug`
query (§2.2).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence

from repro.smt import terms as T
from repro.smt.bitblast import BitBlaster
from repro.solver.sat import SatResult, SatSolver


class SmtResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class Model:
    """A satisfying interpretation of the symbolic constants.

    Maps variable *terms* to Python values (bool for booleans, unsigned int
    for bitvectors). Variables absent from the encoding default to
    ``False`` / ``0``.
    """

    def __init__(self, bindings: Dict[T.Term, object]):
        self._bindings = dict(bindings)

    def __getitem__(self, var_term: T.Term):
        if var_term in self._bindings:
            return self._bindings[var_term]
        if var_term.sort is T.BOOL:
            return False
        return 0

    def __contains__(self, var_term: T.Term) -> bool:
        return var_term in self._bindings

    def bindings(self) -> Dict[T.Term, object]:
        return dict(self._bindings)

    def evaluate(self, term: T.Term):
        """Evaluate an arbitrary term under this model."""
        return T.evaluate(term, self._bindings)

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{var.payload}={value}" for var, value in
            sorted(self._bindings.items(), key=lambda kv: str(kv[0].payload)))
        return f"Model({entries})"


class SmtSolver:
    """One-shot satisfiability checks for boolean/bitvector formulas."""

    def __init__(self, max_conflicts: Optional[int] = None):
        self.sat = SatSolver()
        self.sat.max_conflicts = max_conflicts
        self.blaster = BitBlaster(self.sat)
        self._assertions: List[T.Term] = []
        self._assumption_lits: Dict[T.Term, int] = {}
        self._last_core: List[T.Term] = []
        self._last_result: Optional[SmtResult] = None

    # ------------------------------------------------------------------

    def add_assertion(self, term: T.Term) -> None:
        """Permanently assert a boolean term."""
        if term.sort is not T.BOOL:
            raise TypeError(f"assertions must be boolean: {term!r}")
        self._assertions.append(term)
        self.blaster.assert_term(term)

    def add_assertions(self, terms: Iterable[T.Term]) -> None:
        for term in terms:
            self.add_assertion(term)

    def _assumption_lit(self, term: T.Term) -> int:
        lit = self._assumption_lits.get(term)
        if lit is None:
            lit = self.blaster.lit_of(term)
            self._assumption_lits[term] = lit
        return lit

    def check(self, assumptions: Sequence[T.Term] = ()) -> SmtResult:
        """Decide satisfiability of the assertions plus assumptions."""
        self._last_core = []
        # Fast path: a constant-false assertion or assumption.
        if any(term is T.FALSE for term in self._assertions):
            self._last_result = SmtResult.UNSAT
            self._last_core = [t for t in assumptions]
            return SmtResult.UNSAT
        lits = []
        lit_to_term: Dict[int, T.Term] = {}
        for term in assumptions:
            if term is T.TRUE:
                continue
            if term is T.FALSE:
                self._last_core = [term]
                self._last_result = SmtResult.UNSAT
                return SmtResult.UNSAT
            lit = self._assumption_lit(term)
            lits.append(lit)
            lit_to_term[lit] = term
        result = self.sat.solve(lits)
        if result is SatResult.SAT:
            self._last_result = SmtResult.SAT
            return SmtResult.SAT
        if result is SatResult.UNKNOWN:
            self._last_result = SmtResult.UNKNOWN
            return SmtResult.UNKNOWN
        core_lits = self.sat.unsat_core()
        self._last_core = [lit_to_term[lit] for lit in core_lits
                           if lit in lit_to_term]
        self._last_result = SmtResult.UNSAT
        return SmtResult.UNSAT

    # ------------------------------------------------------------------

    def model(self, variables: Iterable[T.Term] = ()) -> Model:
        """Extract the satisfying assignment for the given variables.

        With no explicit variable list, all variables that reached the
        bit-blaster are reported.
        """
        if self._last_result is not SmtResult.SAT:
            raise RuntimeError("model() requires a previous SAT result")
        bindings: Dict[T.Term, object] = {}
        targets = list(variables)
        if not targets:
            targets = list(self.blaster._bool_vars) + list(self.blaster._bv_vars)
        for var in targets:
            bindings[var] = self.blaster.model_value(var)
        return Model(bindings)

    def unsat_core(self) -> List[T.Term]:
        """Assumption terms involved in the last UNSAT answer."""
        return list(self._last_core)

    def minimize_core(self, core: Optional[Sequence[T.Term]] = None) -> List[T.Term]:
        """Deletion-minimize an unsat core of assumptions.

        The result is *minimal*: dropping any single element makes the
        remaining assumptions satisfiable together with the assertions.
        """
        current = list(self._last_core if core is None else core)
        i = 0
        while i < len(current):
            trial = current[:i] + current[i + 1:]
            if self.check(trial) is SmtResult.UNSAT:
                # The i-th element is redundant; the new core is `trial`'s.
                refined = self.unsat_core()
                current = [t for t in trial if t in set(refined)] or trial
            else:
                i += 1
        # Leave solver state consistent with the minimized core.
        self.check(current)
        return current
