"""The lightweight symbolic virtual machine (§4 of the paper).

The SVM executes host programs on symbolic inputs, merging program states
at every control-flow join with the type-driven strategy of Figure 9, and
collecting assertions into a store that the queries in :mod:`repro.queries`
hand to the solver.

Public surface:

- :class:`VM`, :func:`current` — the evaluation context ⟨σ, π, α⟩;
- :func:`assert_`, :func:`branch` — ambient assertion and lifted ``if``;
- :mod:`repro.vm.builtins` — the lifted builtin library (lists, predicates,
  application);
- :mod:`repro.vm.mutable` — boxes and vectors with join-merged effects;
- :mod:`repro.vm.reflection` — ``for_all`` and union introspection.
"""

from repro.vm.context import VM, assert_, branch, current
from repro.vm.errors import AssertionFailure, SvmError, TypeFailure, UnliftedError
from repro.vm.mutable import Vector, box_get, box_set, make_box
from repro.vm.reflection import for_all, lift, union_contents, union_size
from repro.vm.stats import EvalStats
from repro.vm import builtins

__all__ = [
    "VM", "assert_", "branch", "current",
    "AssertionFailure", "SvmError", "TypeFailure", "UnliftedError",
    "Vector", "box_get", "box_set", "make_box",
    "for_all", "lift", "union_contents", "union_size",
    "EvalStats", "builtins",
]
