"""The SVM's lifted builtin library.

These are the built-in procedures of the HL language (Fig. 7) lifted to
operate on symbolic values: list operations, arithmetic, comparisons, type
predicates and structural equality. Immutable lists are Python tuples.

Union arguments are handled the way rule CO1 prescribes: the operation is
applied to each concrete member of the union, members of the wrong dynamic
type contribute an infeasibility constraint instead of a value, the
disjunction of the surviving guards is asserted on the current path, and
the guarded results are reassembled into a single value with
:func:`repro.sym.merge.merge_many`.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.smt import terms as T
from repro.sym import ops
from repro.sym.merge import merge_many
from repro.sym.values import (
    Box,
    SymInt,
    Union,
    is_boolean_value,
    is_integer_value,
    wrap_bool,
)
from repro.vm import context
from repro.vm.errors import AssertionFailure, TypeFailure
from repro.vm.mutable import Vector


def union_apply(fn: Callable, *args, count_join: bool = False):
    """Apply `fn` after unpacking any union arguments (rule CO1).

    With several union arguments the cartesian product of their members is
    explored; guards multiply out and remain pairwise disjoint. `fn` may
    raise :class:`TypeFailure`/:class:`AssertionFailure` for ill-typed
    members, which excludes those paths instead of failing the evaluation.
    """
    if not any(isinstance(arg, Union) for arg in args):
        return fn(*args)
    combos: List[Tuple[T.Term, tuple]] = [(T.TRUE, ())]
    for arg in args:
        if isinstance(arg, Union):
            combos = [
                (T.mk_and(guard, entry_guard), values + (entry_value,))
                for guard, values in combos
                for entry_guard, entry_value in arg.entries
                if T.mk_and(guard, entry_guard) is not T.FALSE
            ]
        else:
            combos = [(guard, values + (arg,)) for guard, values in combos]
    alternatives = [
        (guard, (lambda vals=values: fn(*vals)))
        for guard, values in combos
    ]
    vm = context.current()
    return vm.guarded(alternatives, assert_coverage=True,
                      failure_message=f"no member of the union fits {fn.__name__}",
                      count_join=count_join)


def _expect_list(value) -> tuple:
    if isinstance(value, tuple):
        return value
    raise TypeFailure(f"expected a list, got {value!r}")


def _expect_nonempty(value) -> tuple:
    lst = _expect_list(value)
    if not lst:
        raise AssertionFailure("expected a non-empty list")
    return lst


# ---------------------------------------------------------------------------
# Pairs and lists
# ---------------------------------------------------------------------------

def cons(value, rest):
    def apply(value, rest):
        return (value,) + _expect_list(rest)
    return union_apply(apply, value, rest)


def car(value):
    return union_apply(lambda lst: _expect_nonempty(lst)[0], value)


def cdr(value):
    return union_apply(lambda lst: _expect_nonempty(lst)[1:], value)


def length(value):
    return union_apply(lambda lst: len(_expect_list(lst)), value)


def is_null(value):
    if isinstance(value, Union):
        guards = [guard for guard, member in value.entries
                  if isinstance(member, tuple) and not member]
        return wrap_bool(T.mk_or(*guards)) if guards else False
    return isinstance(value, tuple) and not value


def is_pair(value):
    if isinstance(value, Union):
        guards = [guard for guard, member in value.entries
                  if isinstance(member, tuple) and member]
        return wrap_bool(T.mk_or(*guards)) if guards else False
    return isinstance(value, tuple) and bool(value)


def list_ref(lst, index):
    """(list-ref lst k): symbolic indices select among the elements."""
    def apply(lst, index):
        concrete = _expect_list(lst)
        if isinstance(index, bool) or \
                not isinstance(index, (int, SymInt)):
            raise TypeFailure(f"list index must be an integer: {index!r}")
        if isinstance(index, int):
            if not 0 <= index < len(concrete):
                raise AssertionFailure(
                    f"list index {index} out of range [0, {len(concrete)})")
            return concrete[index]
        vm = context.current()
        if not concrete:
            raise AssertionFailure("list-ref on an empty list")
        in_bounds = ops.and_(ops.ge(index, 0), ops.lt(index, len(concrete)))
        vm.assert_(in_bounds, "list index out of range")
        entries = [(T.mk_eq(index.term, _index_term(index, i)), element)
                   for i, element in enumerate(concrete)]
        return merge_many(entries)
    return union_apply(apply, lst, index)


def _index_term(index: SymInt, i: int) -> T.Term:
    return T.bv_const(i, index.width)


def append2(a, b):
    def apply(a, b):
        return _expect_list(a) + _expect_list(b)
    return union_apply(apply, a, b)


def append(*lists):
    result: object = ()
    for lst in lists:
        result = append2(result, lst)
    return result


def reverse(value):
    return union_apply(lambda lst: tuple(reversed(_expect_list(lst))), value)


def take(value, count):
    """(take lst n): the first n elements; n may be symbolic."""
    def apply(lst, count):
        concrete = _expect_list(lst)
        if isinstance(count, bool) or not isinstance(count, (int, SymInt)):
            raise TypeFailure(f"take count must be an integer: {count!r}")
        if isinstance(count, int):
            if not 0 <= count <= len(concrete):
                raise AssertionFailure(
                    f"take count {count} out of range [0, {len(concrete)}]")
            return concrete[:count]
        vm = context.current()
        in_range = ops.and_(ops.ge(count, 0), ops.le(count, len(concrete)))
        vm.assert_(in_range, "take count out of range")
        entries = [(T.mk_eq(count.term, _index_term(count, n)), concrete[:n])
                   for n in range(len(concrete) + 1)]
        return merge_many(entries)
    return union_apply(apply, value, count)


def drop(value, count):
    def apply(lst, count):
        concrete = _expect_list(lst)
        if isinstance(count, int) and not isinstance(count, bool):
            if not 0 <= count <= len(concrete):
                raise AssertionFailure(
                    f"drop count {count} out of range [0, {len(concrete)}]")
            return concrete[count:]
        if not isinstance(count, SymInt):
            raise TypeFailure(f"drop count must be an integer: {count!r}")
        vm = context.current()
        in_range = ops.and_(ops.ge(count, 0), ops.le(count, len(concrete)))
        vm.assert_(in_range, "drop count out of range")
        entries = [(T.mk_eq(count.term, _index_term(count, n)), concrete[n:])
                   for n in range(len(concrete) + 1)]
        return merge_many(entries)
    return union_apply(apply, value, count)


def list_map(fn, value):
    """(map fn lst) over the concrete spine of a (union of) list(s)."""
    return union_apply(
        lambda lst: tuple(apply_value(fn, element)
                          for element in _expect_list(lst)),
        value)


def list_foldl(fn, init, value):
    def apply(lst):
        accumulator = init
        for element in _expect_list(lst):
            accumulator = apply_value(fn, element, accumulator)
        return accumulator
    return union_apply(apply, value)


# ---------------------------------------------------------------------------
# Type predicates (Fig. 7's union?, number?, boolean?, procedure?, list?)
# ---------------------------------------------------------------------------

def _union_type_guards(value: Union, predicate) -> object:
    guards = [guard for guard, member in value.entries if predicate(member)]
    if not guards:
        return False
    if len(guards) == len(value.entries):
        return wrap_bool(T.mk_or(*guards))
    return wrap_bool(T.mk_or(*guards))


def is_boolean(value):
    if isinstance(value, Union):
        return _union_type_guards(value, is_boolean_value)
    return is_boolean_value(value)


def is_number(value):
    if isinstance(value, Union):
        return _union_type_guards(value, is_integer_value)
    return is_integer_value(value)


def is_list(value):
    if isinstance(value, Union):
        return _union_type_guards(value, lambda v: isinstance(v, tuple))
    return isinstance(value, tuple)


def is_procedure(value):
    if isinstance(value, Union):
        return _union_type_guards(value, callable)
    return callable(value)


def is_union(value):
    return isinstance(value, Union)


def is_vector(value):
    if isinstance(value, Union):
        return _union_type_guards(value, lambda v: isinstance(v, Vector))
    return isinstance(value, Vector)


def is_box(value):
    if isinstance(value, Union):
        return _union_type_guards(value, lambda v: isinstance(v, Box))
    return isinstance(value, Box)


def equal(a, b):
    """Structural equal? (symbolic-aware); see §4.4 on why eq? is absent."""
    return ops.sym_equal(a, b)


# ---------------------------------------------------------------------------
# Procedure application (rule AP2 for symbolic procedure values)
# ---------------------------------------------------------------------------

def apply_value(proc, *args):
    """Apply a (possibly union-of-)procedure value to arguments.

    A union of *procedures* is applied member-wise with merged results and
    effects — the paper's analogue of dynamically dispatched calls in
    bounded model checkers for OO languages (rule AP2). Union *arguments*
    flow into the procedure untouched: whether to unpack them is each
    operation's own decision (lifted builtins do; reflective operations
    like ``evaluate`` and ``union-contents`` must not).
    """
    if not isinstance(proc, Union):
        if not callable(proc):
            raise TypeFailure(f"not a procedure: {proc!r}")
        return proc(*args)
    def apply(member):
        if not callable(member):
            raise TypeFailure(f"not a procedure: {member!r}")
        return member(*args)
    # AP2 rewrites to an if-expression, so this *is* a control-flow join.
    return union_apply(apply, proc, count_join=True)
