"""A symbolic profiler: attributing joins and unions to call sites.

The paper's Table 4 aggregates evaluation statistics per benchmark; when a
query is slow, an SDSL author wants to know *which part of the program*
created the joins and the unions. (Rosette later grew exactly this tool —
symbolic profiling; here it is a natural extension of the stats layer.)

Usage::

    from repro.vm.profiler import SymbolicProfiler

    with SymbolicProfiler() as profiler:
        outcome = solve(program)
    print(profiler.report())

The profiler is an :data:`repro.obs.events.BUS` subscriber: the VM, the
union constructor, and the SMT facade publish ``vm.join``/``vm.union``/
``smt.check`` events from first-class hook points, and because delivery
is synchronous the profiler can sample the Python call stack at the
moment each event fires and aggregate by the innermost host-program
frame. No methods are patched, so any number of profilers can be active
at once, nested or interleaved, and exiting one never disturbs another.
Overhead is a stack walk per event, so keep it out of production runs.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.events import BUS, END, Event, INSTANT


@dataclass
class SiteStats:
    """Aggregated events for one source location (function)."""

    joins: int = 0
    unions: int = 0
    union_cardinality: int = 0
    # Solver effort attributed to this site (checks issued while the site
    # was the innermost non-internal frame).
    checks: int = 0
    conflicts: int = 0
    solver_seconds: float = 0.0
    budget_trips: int = 0

    def merged_with(self, other: "SiteStats") -> "SiteStats":
        return SiteStats(self.joins + other.joins,
                         self.unions + other.unions,
                         self.union_cardinality + other.union_cardinality,
                         self.checks + other.checks,
                         self.conflicts + other.conflicts,
                         self.solver_seconds + other.solver_seconds,
                         self.budget_trips + other.budget_trips)


def _caller_site(skip_prefixes: Tuple[str, ...]) -> str:
    """The innermost stack frame outside the SVM's own machinery."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not any(marker in filename for marker in skip_prefixes):
            return f"{frame.f_code.co_name} ({filename.rsplit('/', 1)[-1]}:" \
                   f"{frame.f_lineno})"
        frame = frame.f_back
    return "<toplevel>"


_INTERNAL = ("repro/vm/context.py", "repro/vm/builtins.py",
             "repro/sym/merge.py", "repro/sym/values.py",
             "repro/vm/profiler.py", "repro/smt/solver.py",
             "repro/smt/bitblast.py", "repro/solver/sat.py",
             "repro/obs/", "repro/vm/stats.py",
             "repro/queries/queries.py", "repro/queries/debug.py")


class SymbolicProfiler:
    """Collects per-site join/union/solver statistics while subscribed."""

    def __init__(self):
        self.sites: Dict[str, SiteStats] = {}
        self._unsubscribe: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------

    def __enter__(self) -> "SymbolicProfiler":
        if self._unsubscribe is None:
            self._unsubscribe = BUS.subscribe(self._on_event)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def _on_event(self, event: Event) -> None:
        if event.name == "vm.join" and event.ph == INSTANT:
            self._site(_caller_site(_INTERNAL)).joins += 1
        elif event.name == "vm.union" and event.ph == INSTANT:
            stats = self._site(_caller_site(_INTERNAL))
            stats.unions += 1
            stats.union_cardinality += (event.args or {}).get("cardinality", 0)
        elif event.name == "smt.check" and event.ph == END:
            args = event.args or {}
            stats = self._site(_caller_site(_INTERNAL))
            stats.checks += args.get("checks", 1)
            stats.conflicts += args.get("conflicts", 0)
            stats.budget_trips += args.get("tripped", 0)
            stats.solver_seconds += args.get("seconds", 0.0)

    # ------------------------------------------------------------------

    def _site(self, name: str) -> SiteStats:
        stats = self.sites.get(name)
        if stats is None:
            stats = SiteStats()
            self.sites[name] = stats
        return stats

    # ------------------------------------------------------------------

    def top_sites(self, limit: int = 10) -> List[Tuple[str, SiteStats]]:
        ranked = sorted(self.sites.items(),
                        key=lambda kv: (kv[1].joins + kv[1].unions
                                        + kv[1].checks),
                        reverse=True)
        return ranked[:limit]

    def report(self, limit: int = 10) -> str:
        lines = [f"{'site':50s} {'joins':>7s} {'unions':>7s} {'card':>7s} "
                 f"{'checks':>7s} {'confl':>7s} {'sol_sec':>8s} {'trips':>6s}"]
        for site, stats in self.top_sites(limit):
            lines.append(f"{site[:50]:50s} {stats.joins:7d} "
                         f"{stats.unions:7d} {stats.union_cardinality:7d} "
                         f"{stats.checks:7d} {stats.conflicts:7d} "
                         f"{stats.solver_seconds:8.3f} {stats.budget_trips:6d}")
        return "\n".join(lines)
