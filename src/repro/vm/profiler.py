"""A symbolic profiler: attributing joins and unions to call sites.

The paper's Table 4 aggregates evaluation statistics per benchmark; when a
query is slow, an SDSL author wants to know *which part of the program*
created the joins and the unions. (Rosette later grew exactly this tool —
symbolic profiling; here it is a natural extension of the stats layer.)

Usage::

    from repro.vm.profiler import SymbolicProfiler

    with SymbolicProfiler() as profiler:
        outcome = solve(program)
    print(profiler.report())

The profiler samples the Python call stack at every control-flow join and
at every union construction, and aggregates by function. Overhead is a
stack walk per event, so keep it out of production runs.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sym.values import UNION_COUNTERS
from repro.vm import context


@dataclass
class SiteStats:
    """Aggregated events for one source location (function)."""

    joins: int = 0
    unions: int = 0
    union_cardinality: int = 0
    # Solver effort attributed to this site (checks issued while the site
    # was the innermost non-internal frame).
    checks: int = 0
    conflicts: int = 0
    solver_seconds: float = 0.0
    budget_trips: int = 0

    def merged_with(self, other: "SiteStats") -> "SiteStats":
        return SiteStats(self.joins + other.joins,
                         self.unions + other.unions,
                         self.union_cardinality + other.union_cardinality,
                         self.checks + other.checks,
                         self.conflicts + other.conflicts,
                         self.solver_seconds + other.solver_seconds,
                         self.budget_trips + other.budget_trips)


def _caller_site(skip_prefixes: Tuple[str, ...]) -> str:
    """The innermost stack frame outside the SVM's own machinery."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not any(marker in filename for marker in skip_prefixes):
            return f"{frame.f_code.co_name} ({filename.rsplit('/', 1)[-1]}:" \
                   f"{frame.f_lineno})"
        frame = frame.f_back
    return "<toplevel>"


_INTERNAL = ("repro/vm/context.py", "repro/vm/builtins.py",
             "repro/sym/merge.py", "repro/sym/values.py",
             "repro/vm/profiler.py", "repro/smt/solver.py",
             "repro/queries/queries.py", "repro/queries/debug.py")


class SymbolicProfiler:
    """Collects per-site join/union statistics while active."""

    _active: List["SymbolicProfiler"] = []

    def __init__(self):
        self.sites: Dict[str, SiteStats] = {}
        self._original_guarded = None
        self._original_record = None

    # ------------------------------------------------------------------

    def __enter__(self) -> "SymbolicProfiler":
        SymbolicProfiler._active.append(self)
        if len(SymbolicProfiler._active) == 1:
            self._install()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        popped = SymbolicProfiler._active.pop()
        assert popped is self
        if not SymbolicProfiler._active:
            self._uninstall()

    def _install(self) -> None:
        vm_class = context.VM
        original_guarded = vm_class.guarded
        SymbolicProfiler._saved_guarded = original_guarded

        def profiled_guarded(vm_self, alternatives, assert_coverage=False,
                             failure_message="all guarded paths failed",
                             count_join=True):
            joins_before = vm_self.stats.joins
            result = original_guarded(
                vm_self, alternatives, assert_coverage=assert_coverage,
                failure_message=failure_message, count_join=count_join)
            if vm_self.stats.joins > joins_before:
                site = _caller_site(_INTERNAL)
                for profiler in SymbolicProfiler._active:
                    profiler._record_join(site)
            return result

        vm_class.guarded = profiled_guarded

        original_record = UNION_COUNTERS.record
        SymbolicProfiler._saved_record = original_record

        def profiled_record(size: int) -> None:
            original_record(size)
            site = _caller_site(_INTERNAL)
            for profiler in SymbolicProfiler._active:
                profiler._record_union(site, size)

        UNION_COUNTERS.record = profiled_record

        # Imported lazily: the profiler lives in the VM layer, which the
        # SMT layer must stay importable without.
        from repro.smt.solver import SmtSolver

        original_check = SmtSolver.check
        SymbolicProfiler._saved_check = original_check

        def profiled_check(solver_self, assumptions=()):
            started = time.perf_counter()
            try:
                return original_check(solver_self, assumptions)
            finally:
                elapsed = time.perf_counter() - started
                delta = solver_self.last_check
                site = _caller_site(_INTERNAL)
                for profiler in SymbolicProfiler._active:
                    profiler._record_check(site, delta, elapsed)

        SmtSolver.check = profiled_check

    def _uninstall(self) -> None:
        from repro.smt.solver import SmtSolver

        context.VM.guarded = SymbolicProfiler._saved_guarded
        UNION_COUNTERS.record = SymbolicProfiler._saved_record
        SmtSolver.check = SymbolicProfiler._saved_check

    # ------------------------------------------------------------------

    def _site(self, name: str) -> SiteStats:
        stats = self.sites.get(name)
        if stats is None:
            stats = SiteStats()
            self.sites[name] = stats
        return stats

    def _record_join(self, site: str) -> None:
        self._site(site).joins += 1

    def _record_union(self, site: str, size: int) -> None:
        stats = self._site(site)
        stats.unions += 1
        stats.union_cardinality += size

    def _record_check(self, site: str, delta, elapsed: float) -> None:
        stats = self._site(site)
        stats.checks += 1
        stats.conflicts += getattr(delta, "conflicts", 0)
        stats.budget_trips += getattr(delta, "tripped", 0)
        stats.solver_seconds += elapsed

    # ------------------------------------------------------------------

    def top_sites(self, limit: int = 10) -> List[Tuple[str, SiteStats]]:
        ranked = sorted(self.sites.items(),
                        key=lambda kv: (kv[1].joins + kv[1].unions
                                        + kv[1].checks),
                        reverse=True)
        return ranked[:limit]

    def report(self, limit: int = 10) -> str:
        lines = [f"{'site':50s} {'joins':>7s} {'unions':>7s} {'card':>7s} "
                 f"{'checks':>7s} {'confl':>7s} {'sol_sec':>8s} {'trips':>6s}"]
        for site, stats in self.top_sites(limit):
            lines.append(f"{site[:50]:50s} {stats.joins:7d} "
                         f"{stats.unions:7d} {stats.union_cardinality:7d} "
                         f"{stats.checks:7d} {stats.conflicts:7d} "
                         f"{stats.solver_seconds:8.3f} {stats.budget_trips:6d}")
        return "\n".join(lines)
