"""Mutable storage under symbolic evaluation: boxes and vectors.

Mutable locations are merged by *pointer* (Fig. 9's ≈Ptr): two distinct
boxes or vectors never merge into one, which soundly tracks aliasing. Their
**contents** are merged by the VM at control-flow joins via the write log
(see :meth:`repro.vm.context.VM.guarded`).

Vectors additionally support symbolic indices:

- a *read* at a symbolic index asserts the bounds check and merges all
  elements selected by the index (a CO1-style lifted operation);
- a *write* at a symbolic index conditionally updates every cell —
  ``cells[i] = µ(idx = i, value, cells[i])`` — the classic symbolic array
  update.

These mirror the paper's note that the prototype implements "direct
evaluation and merging rules for (im)mutable vectors" (§4.2).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sym import ops
from repro.sym.merge import merge, merge_many
from repro.sym.values import Box, SymInt, Union, bool_term
from repro.vm import context
from repro.vm.errors import AssertionFailure, TypeFailure


def make_box(value, name: str | None = None) -> Box:
    return Box(value, name)


def box_get(box: Box):
    return box.value


def box_set(box: Box, value) -> None:
    """Write a box, logging the old value for join-time merging."""
    context.current().log_write(box, None, box.value)
    box.value = value


class Vector:
    """A fixed-length mutable vector of SVM values."""

    __slots__ = ("cells", "name")

    _counter = 0

    def __init__(self, contents: Iterable, name: str | None = None):
        self.cells: List = list(contents)
        if name is None:
            Vector._counter += 1
            name = f"vec{Vector._counter}"
        self.name = name

    @classmethod
    def filled(cls, length: int, value=0, name: str | None = None) -> "Vector":
        return cls([value] * length, name)

    def __len__(self) -> int:
        return len(self.cells)

    # Raw location protocol used by the VM's write log.
    def _sym_read(self, key):
        return self.cells[key]

    def _sym_write_raw(self, key, value):
        self.cells[key] = value

    # ------------------------------------------------------------------

    def ref(self, index):
        """vector-ref with a concrete or symbolic index."""
        index = _normalize_index(index)
        if isinstance(index, int):
            if not 0 <= index < len(self.cells):
                raise AssertionFailure(
                    f"vector index {index} out of range [0, {len(self.cells)})")
            return self.cells[index]
        vm = context.current()
        in_bounds = ops.and_(ops.ge(index, 0), ops.lt(index, len(self.cells)))
        vm.assert_(in_bounds, "vector index out of range")
        entries = [(bool_term(ops.num_eq(index, i)), cell)
                   for i, cell in enumerate(self.cells)]
        return merge_many(entries)

    def set(self, index, value) -> None:
        """vector-set! with a concrete or symbolic index."""
        index = _normalize_index(index)
        vm = context.current()
        if isinstance(index, int):
            if not 0 <= index < len(self.cells):
                raise AssertionFailure(
                    f"vector index {index} out of range [0, {len(self.cells)})")
            vm.log_write(self, index, self.cells[index])
            self.cells[index] = value
            return
        in_bounds = ops.and_(ops.ge(index, 0), ops.lt(index, len(self.cells)))
        vm.assert_(in_bounds, "vector index out of range")
        for i in range(len(self.cells)):
            vm.log_write(self, i, self.cells[i])
            self.cells[i] = merge(ops.num_eq(index, i), value, self.cells[i])

    def snapshot(self) -> tuple:
        """The current contents as an immutable list."""
        return tuple(self.cells)

    def __repr__(self):
        return f"Vector({self.name}, {self.cells!r})"


def _normalize_index(index):
    """Accept int / SymInt / union-of-ints as a vector index."""
    if isinstance(index, bool):
        raise TypeFailure("vector index must be an integer")
    if isinstance(index, (int, SymInt)):
        return index
    if isinstance(index, Union):
        # An index union must be all-integer; merge it into one SymInt.
        for _, member in index.entries:
            if isinstance(member, bool) or not isinstance(member, (int, SymInt)):
                raise TypeFailure("vector index must be an integer")
        return merge_many(list(index.entries))
    raise TypeFailure(f"vector index must be an integer, got {index!r}")
