"""Evaluation statistics: the measurements behind Table 4 and Figure 10.

The paper instruments the SVM to report, per benchmark, the number of
control-flow joins, the number of symbolic unions created, the sum of their
cardinalities, the maximum cardinality, and evaluation/solving times. This
module holds those counters; union counts are sourced from the counter
embedded in :mod:`repro.sym.values` so that unions created outside an active
VM are also visible.

Queries additionally thread per-check *solver* statistics through here (see
:meth:`EvalStats.record_check`): SAT conflicts/decisions/propagations,
clauses learned, and bit-blasting encode-cache hits/misses. These are the
measurements that make incremental-solving wins visible — an iterative
query that reuses its solver shows encode-cache hits instead of repeated
misses, and falling per-check conflict counts as learned clauses accumulate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.sym.values import UNION_COUNTERS


@dataclass
class EvalStats:
    """Counters gathered during one symbolic evaluation."""

    joins: int = 0
    unions_created: int = 0
    union_cardinality_sum: int = 0
    max_union_cardinality: int = 0
    svm_seconds: float = 0.0
    solver_seconds: float = 0.0
    # Solver-effort counters, accumulated from CheckStats deltas
    # (repro.smt.solver) by record_check.
    solver_checks: int = 0
    solver_conflicts: int = 0
    solver_decisions: int = 0
    solver_propagations: int = 0
    solver_learned: int = 0
    encode_cache_hits: int = 0
    encode_cache_misses: int = 0
    budget_trips: int = 0
    certified_checks: int = 0
    sanitize_rewrites: int = 0
    _union_base: tuple = field(default=(0, 0), repr=False)
    _max_base: int = field(default=0, repr=False)
    _start: float = field(default=0.0, repr=False)

    def start(self) -> None:
        self._union_base = (UNION_COUNTERS.created,
                            UNION_COUNTERS.cardinality_sum)
        # The global max is windowed: save the surrounding evaluation's
        # peak and zero the counter so this window measures only its own
        # unions. stop() restores the combined peak, so nested/interleaved
        # evaluations (a query run from inside another evaluation) do not
        # clobber the outer window's `max` column.
        self._max_base = UNION_COUNTERS.max_cardinality
        UNION_COUNTERS.max_cardinality = 0
        self._start = time.perf_counter()

    def stop(self) -> None:
        self.svm_seconds += time.perf_counter() - self._start
        base_created, base_sum = self._union_base
        self.unions_created += UNION_COUNTERS.created - base_created
        self.union_cardinality_sum += \
            UNION_COUNTERS.cardinality_sum - base_sum
        observed = UNION_COUNTERS.max_cardinality
        self.max_union_cardinality = max(self.max_union_cardinality, observed)
        UNION_COUNTERS.max_cardinality = max(self._max_base, observed)

    def record_check(self, check) -> None:
        """Accumulate a CheckStats-shaped delta from a solver check.

        `check` is any object with the counter attributes of
        :class:`repro.smt.solver.CheckStats` (duck-typed to keep this
        module below the SMT layer in the import graph).
        """
        self.solver_checks += check.checks
        self.solver_conflicts += check.conflicts
        self.solver_decisions += check.decisions
        self.solver_propagations += check.propagations
        self.solver_learned += check.learned
        self.encode_cache_hits += check.encode_hits
        self.encode_cache_misses += check.encode_misses
        # `tripped` arrived with resource budgets and `certified` with the
        # certification layer; older CheckStats-shaped objects may carry
        # neither.
        self.budget_trips += getattr(check, "tripped", 0)
        self.certified_checks += getattr(check, "certified", 0)
        self.sanitize_rewrites += getattr(check, "sanitize_rewrites", 0)

    def check_listener(self, event) -> None:
        """An event-bus sink accumulating ``smt.check`` span deltas.

        Queries subscribe this bound method around each solver check, so
        the counters flow through the same emission path as every other
        consumer (tracers, the profiler, metrics) instead of a private
        side channel. Other events are ignored.
        """
        if event.name != "smt.check" or event.ph != "E":
            return
        args = event.args or {}
        self.solver_checks += args.get("checks", 0)
        self.solver_conflicts += args.get("conflicts", 0)
        self.solver_decisions += args.get("decisions", 0)
        self.solver_propagations += args.get("propagations", 0)
        self.solver_learned += args.get("learned", 0)
        self.encode_cache_hits += args.get("encode_hits", 0)
        self.encode_cache_misses += args.get("encode_misses", 0)
        self.budget_trips += args.get("tripped", 0)
        self.certified_checks += args.get("certified", 0)
        self.sanitize_rewrites += args.get("sanitize_rewrites", 0)

    def row(self) -> dict:
        """A Table 4-shaped row."""
        return {
            "joins": self.joins,
            "count": self.unions_created,
            "sum": self.union_cardinality_sum,
            "max": self.max_union_cardinality,
            "svm_sec": self.svm_seconds,
            "solver_sec": self.solver_seconds,
        }

    def solver_row(self) -> dict:
        """Per-query solver-effort summary (incremental-solving telemetry)."""
        return {
            "checks": self.solver_checks,
            "conflicts": self.solver_conflicts,
            "decisions": self.solver_decisions,
            "propagations": self.solver_propagations,
            "learned": self.solver_learned,
            "encode_hits": self.encode_cache_hits,
            "encode_misses": self.encode_cache_misses,
            "budget_trips": self.budget_trips,
            "certified_checks": self.certified_checks,
            "sanitize_rewrites": self.sanitize_rewrites,
        }
