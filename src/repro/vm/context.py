"""The symbolic virtual machine's evaluation context.

A :class:`VM` carries the paper's program state ⟨σ, π, α⟩ (Fig. 8):

- π, the **path condition** — a boolean term recording the branch decisions
  taken to reach the current point;
- α, the **assertion store** — boolean terms collected by ``assert`` (rule
  AS2) and by the dynamic type guards of lifted operations (rule CO1);
- σ is the host heap itself: mutable locations are :class:`~repro.sym.values.Box`
  and :class:`~repro.vm.mutable.Vector` objects, and the VM tracks writes to
  them in a log so that both branches of a conditional can run against the
  same heap and have their effects merged afterwards (rule IF1).

The central operation is :meth:`VM.guarded`, the n-way guarded evaluator.
``branch`` (two-way ``if``), union-procedure application (rule AP2) and
symbolic reflection (``for_all``) are all thin wrappers over it.

A module-level *current VM* makes the context implicit for SDSL code, like
Rosette's ambient assertion store; queries install a fresh VM for the
duration of the evaluation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import BUS
from repro.smt import terms as T
from repro.sym import ops
from repro.sym.merge import merge_many
from repro.sym.values import bool_term
from repro.vm.errors import AssertionFailure
from repro.vm.stats import EvalStats

_vm_stack: List["VM"] = []


def current() -> "VM":
    """The innermost active VM; a fresh ambient one if none is active."""
    if not _vm_stack:
        _vm_stack.append(VM())
    return _vm_stack[-1]


class VM:
    """One symbolic evaluation: path condition, assertions, write log."""

    def __init__(self):
        self.path: T.Term = T.TRUE
        self.assertions: List[T.Term] = []
        self.stats = EvalStats()
        # Write log: maps a location key to (container, key, saved value).
        # A stack of frames; each guarded alternative pushes a frame.
        self._log_frames: List[Dict[Tuple[int, object],
                                    Tuple[object, object, object]]] = []

    # ------------------------------------------------------------------
    # Context management
    # ------------------------------------------------------------------

    def __enter__(self) -> "VM":
        _vm_stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        popped = _vm_stack.pop()
        assert popped is self, "mismatched VM context nesting"

    # ------------------------------------------------------------------
    # Assertions (rules AS1/AS2)
    # ------------------------------------------------------------------

    def assert_(self, value, message: str = "assertion failed") -> None:
        """Assert a value on the current path.

        A concretely false assertion on a definite path (π = true) raises
        :class:`AssertionFailure`; otherwise ``π ⇒ value`` joins the
        assertion store.
        """
        truth = ops.truthy(value)
        term = bool_term(truth) if not isinstance(truth, bool) else \
            (T.TRUE if truth else T.FALSE)
        guarded = T.mk_implies(self.path, term)
        if guarded is T.FALSE:
            raise AssertionFailure(message)
        if guarded is not T.TRUE:
            self.assertions.append(guarded)

    def assert_term(self, term: T.Term, message: str = "assertion failed") -> None:
        """Assert a raw boolean term (used by lifted builtins, rule CO1)."""
        guarded = T.mk_implies(self.path, term)
        if guarded is T.FALSE:
            raise AssertionFailure(message)
        if guarded is not T.TRUE:
            self.assertions.append(guarded)

    # ------------------------------------------------------------------
    # Mutation log
    # ------------------------------------------------------------------

    def log_write(self, container, key, old_value) -> None:
        """Record the first write to a location within the current frame."""
        if not self._log_frames:
            return
        frame = self._log_frames[-1]
        loc = (id(container), key)
        if loc not in frame:
            frame[loc] = (container, key, old_value)

    def _push_frame(self) -> None:
        self._log_frames.append({})

    def _pop_frame(self) -> Dict[Tuple[int, object],
                                 Tuple[object, object, object]]:
        return self._log_frames.pop()

    @staticmethod
    def _read_loc(container, key):
        return container._sym_read(key)

    @staticmethod
    def _write_loc(container, key, value):
        container._sym_write_raw(key, value)

    # ------------------------------------------------------------------
    # Guarded evaluation (rules IF1 / AP2 and symbolic reflection)
    # ------------------------------------------------------------------

    def guarded(self, alternatives: Sequence[Tuple[object, Callable[[], object]]],
                assert_coverage: bool = False,
                failure_message: str = "all guarded paths failed",
                count_join: bool = True):
        """Evaluate guarded thunks against the same state and merge.

        `alternatives` is a sequence of ``(guard, thunk)`` pairs with
        pairwise-disjoint guards. Each feasible thunk runs with the path
        condition extended by its guard; heap writes are rolled back in
        between and merged at the end (the state merge of rule IF1). A
        thunk that raises :class:`AssertionFailure` contributes the
        constraint that its path is infeasible instead of a value.

        With ``assert_coverage`` the disjunction of the guards is asserted
        on the current path (the `bu` constraint of rule CO1).
        """
        saved_path = self.path
        feasible: List[Tuple[T.Term, Callable[[], object]]] = []
        for guard_value, thunk in alternatives:
            guard = guard_value if isinstance(guard_value, T.Term) \
                else bool_term(guard_value)
            extended = T.mk_and(saved_path, guard)
            if extended is not T.FALSE:
                feasible.append((guard, thunk))
        if assert_coverage and feasible:
            self.assert_term(T.mk_or(*(g for g, _ in feasible)),
                             failure_message)
        if not feasible:
            raise AssertionFailure(failure_message)
        if len(feasible) == 1:
            guard, thunk = feasible[0]
            self.path = T.mk_and(saved_path, guard)
            try:
                return thunk()
            finally:
                self.path = saved_path
        # A genuine control-flow join.
        if count_join:
            self.stats.joins += 1
            if BUS.enabled:
                BUS.instant("vm.join", "vm", cardinality=len(feasible))
        results: List[Tuple[T.Term, object]] = []
        write_sets: List[Tuple[T.Term, Dict[Tuple[int, object], object]]] = []
        pre_values: Dict[Tuple[int, object], Tuple[object, object, object]] = {}
        for guard, thunk in feasible:
            self.path = T.mk_and(saved_path, guard)
            self._push_frame()
            failed = False
            try:
                value = thunk()
            except AssertionFailure:
                failed = True
                value = None
            finally:
                frame = self._pop_frame()
                # Capture post-state and roll back to the pre-state.
                writes: Dict[Tuple[int, object], object] = {}
                for loc, (container, key, old) in frame.items():
                    writes[loc] = self._read_loc(container, key)
                    self._write_loc(container, key, old)
                    if loc not in pre_values:
                        pre_values[loc] = (container, key, old)
                    # Propagate the save point to the enclosing frame.
                    self.log_write(container, key, old)
                self.path = saved_path
            if failed:
                self.assert_term(T.mk_not(guard), "infeasible path")
            else:
                results.append((guard, value))
                write_sets.append((guard, writes))
        if not results:
            raise AssertionFailure(failure_message)
        # Merge heap effects location by location.
        if pre_values and BUS.enabled:
            BUS.instant("vm.merge", "vm", locations=len(pre_values))
        for loc, (container, key, pre) in pre_values.items():
            entries: List[Tuple[T.Term, object]] = []
            covered = []
            for guard, writes in write_sets:
                if loc in writes:
                    entries.append((guard, writes[loc]))
                    covered.append(guard)
            uncovered = T.mk_not(T.mk_or(*covered))
            if uncovered is not T.FALSE:
                entries.append((uncovered, pre))
            self._write_loc(container, key, merge_many(entries))
        return merge_many(results)

    def branch(self, cond, then: Callable[[], object],
               alt: Optional[Callable[[], object]] = None):
        """The lifted ``if`` (rule IF1). `then`/`alt` are thunks."""
        truth = ops.truthy(cond)
        if isinstance(truth, bool):  # concrete condition: no join
            if truth:
                return then()
            return alt() if alt is not None else None
        guard = bool_term(truth)
        alternatives = [(guard, then)]
        alternatives.append((T.mk_not(guard),
                             alt if alt is not None else (lambda: None)))
        return self.guarded(alternatives)


# ---------------------------------------------------------------------------
# Module-level conveniences bound to the current VM
# ---------------------------------------------------------------------------

def assert_(value, message: str = "assertion failed") -> None:
    current().assert_(value, message)


def branch(cond, then: Callable[[], object],
           alt: Optional[Callable[[], object]] = None):
    return current().branch(cond, then, alt)
