"""Symbolic reflection (§2.3, §4.7): lifting unlifted host constructs.

``for_all(value, fn)`` is the paper's ``for/all`` macro: it disassembles a
symbolic union into its concrete components, applies an arbitrary host
(Python) function to each, and reassembles the results into a single value.
This lets SDSL designers lift operations — regular-expression matching,
string manipulation, whole external libraries — in a few lines, without
touching the SVM.

The module also exposes union introspection (`union_contents`,
`union_size`), which the paper notes is "useful for controlling the SVM's
finitization behavior" (§4.7): recursive SDSL interpreters can assert a
bound on the cardinality of a union to stop unwinding.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.sym.values import Union, wrap_bool
from repro.vm.builtins import union_apply


def for_all(value, fn: Callable[[object], object]):
    """Apply `fn` to each concrete component of `value` and merge.

    For non-union values this is a plain call: concrete evaluation is the
    common fast path. For unions, each member is evaluated under its guard
    (effects included) and the guarded results are merged; members on which
    `fn` fails are excluded by an infeasibility constraint.
    """
    return union_apply(fn, value)


def lift(fn: Callable) -> Callable:
    """Decorator form of :func:`for_all` for single-argument functions.

    ::

        @lift
        def regex_match(s):           # written for concrete strings
            return re.match(...) is not None

        regex_match(symbolic_union_of_strings)  # now works
    """
    def lifted(*args):
        return union_apply(fn, *args)
    lifted.__name__ = getattr(fn, "__name__", "lifted")
    lifted.__doc__ = fn.__doc__
    return lifted


def union_size(value) -> int:
    """Cardinality of a union (1 for any non-union value)."""
    return len(value.entries) if isinstance(value, Union) else 1


def union_contents(value) -> List[Tuple[object, object]]:
    """The (guard, value) pairs of a union; [(True, value)] otherwise.

    Guards are returned as booleans/:class:`SymBool` so reflective code can
    reason about them with ordinary symbolic operations.
    """
    if isinstance(value, Union):
        return [(wrap_bool(guard), member) for guard, member in value.entries]
    return [(True, value)]


def union_guards(value) -> List[object]:
    return [guard for guard, _ in union_contents(value)]


def union_values(value) -> List[object]:
    return [member for _, member in union_contents(value)]
