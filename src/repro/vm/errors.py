"""Failure conditions of symbolic evaluation (the ⊥ of Figure 8)."""

from __future__ import annotations


class SvmError(Exception):
    """Base class for all SVM-raised errors."""


class AssertionFailure(SvmError):
    """An assertion that fails on the current path (rule AS1).

    When raised under a non-trivial path condition, the enclosing
    :meth:`repro.vm.context.VM.guarded` call converts it into a constraint
    excluding the path; when it escapes to the top level the whole
    evaluation is a definite failure.
    """

    def __init__(self, message: str = "assertion failed"):
        super().__init__(message)


class TypeFailure(AssertionFailure):
    """A dynamic type error, treated as an assertion failure (rule CO1)."""


class UnliftedError(SvmError):
    """A symbolic value reached a construct with no lifted semantics.

    The fix is usually symbolic reflection (:func:`repro.vm.reflection.for_all`).
    """
