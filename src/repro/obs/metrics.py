"""Metrics: counters, gauges, and histograms over bus events.

A :class:`MetricsRegistry` is a named collection of instruments whose
:meth:`~MetricsRegistry.snapshot` is a plain, deterministically-ordered
dict — suitable for embedding in benchmark JSON rows and for golden-file
assertions. :class:`BusMetrics` is a ready-made
:class:`~repro.obs.events.EventBus` sink that aggregates the standard
event taxonomy into a registry: solver checks by result, conflict and
propagation totals, encode-cache hits/misses (and the derived hit rate),
restarts, budget trips, VM joins/unions with cardinality histograms.

This is the "Cache-a-lot" style view: effectiveness over time rather
than end-of-run sums — subscribe, run, snapshot, compare.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.obs.events import BUS, END, Event, EventBus, INSTANT


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A last-write-wins measurement."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self):
        return self.value


class Histogram:
    """Power-of-two bucketed distribution of non-negative observations.

    Bucket ``2^k`` counts observations with ``2^(k-1) < v <= 2^k``
    (bucket ``0`` counts zeros and ``1`` counts ones), which is plenty of
    resolution for cardinalities and conflict counts while keeping the
    snapshot small and deterministic.
    """

    __slots__ = ("count", "total", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.max = 0
        self.buckets: Dict[int, int] = {}

    def observe(self, value) -> None:
        value = int(value)
        if value < 0:
            value = 0
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        bucket = 0
        if value > 0:
            bucket = 1
            while bucket < value:
                bucket <<= 1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.total,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else 0.0,
            "buckets": {str(k): self.buckets[k]
                        for k in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Get-or-create instruments by name; deterministic snapshots."""

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {factory.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, object]:
        """All instruments, sorted by name; values are plain JSON types."""
        return {name: self._instruments[name].snapshot()
                for name in sorted(self._instruments)}


class BusMetrics:
    """An event-bus sink that aggregates the standard taxonomy.

    Usage::

        metrics = BusMetrics()
        with metrics.subscribed():
            outcome = solve(program)
        row["metrics"] = metrics.snapshot()
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 bus: Optional[EventBus] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.bus = bus if bus is not None else BUS

    # The sink protocol: BusMetrics is itself a callable sink.
    def __call__(self, event: Event) -> None:
        name, ph, args = event.name, event.ph, event.args or {}
        reg = self.registry
        if name == "smt.check" and ph == END:
            reg.counter("smt.checks").inc()
            reg.counter(f"smt.result.{args.get('result', '?')}").inc()
            reg.counter("smt.conflicts").inc(args.get("conflicts", 0))
            reg.counter("smt.decisions").inc(args.get("decisions", 0))
            reg.counter("smt.propagations").inc(args.get("propagations", 0))
            reg.counter("smt.learned").inc(args.get("learned", 0))
            reg.counter("smt.encode_hits").inc(args.get("encode_hits", 0))
            reg.counter("smt.encode_misses").inc(args.get("encode_misses", 0))
            reg.counter("smt.budget_trips").inc(args.get("tripped", 0))
            reg.counter("smt.certified").inc(args.get("certified", 0))
            reg.histogram("smt.check_conflicts").observe(
                args.get("conflicts", 0))
            reg.histogram("smt.check_ms").observe(
                round(args.get("seconds", 0.0) * 1000))
        elif name in ("cert.model", "cert.proof", "cert.core") and ph == END:
            reg.counter(f"{name}.checks").inc()
            if not args.get("ok", False):
                reg.counter(f"{name}.rejected").inc()
        elif name == "smt.encode" and ph == END:
            reg.counter("encode.spans").inc()
            reg.counter("encode.hits").inc(args.get("hits", 0))
            reg.counter("encode.misses").inc(args.get("misses", 0))
        elif name == "vm.join" and ph == INSTANT:
            reg.counter("vm.joins").inc()
            reg.histogram("vm.join_cardinality").observe(
                args.get("cardinality", 0))
        elif name == "vm.union" and ph == INSTANT:
            reg.counter("vm.unions").inc()
            reg.histogram("vm.union_cardinality").observe(
                args.get("cardinality", 0))
        elif name == "vm.merge" and ph == INSTANT:
            reg.counter("vm.merges").inc()
        elif name == "sat.restart" and ph == INSTANT:
            reg.counter("sat.restarts").inc()
        elif name == "sat.budget_trip" and ph == INSTANT:
            reg.counter("sat.budget_trips").inc()
            reg.counter(
                f"sat.budget_trip.{args.get('reason', '?')}").inc()
        elif name == "cegis.iteration" and ph == END:
            reg.counter("cegis.iterations").inc()
            reg.counter(
                f"cegis.outcome.{args.get('outcome', '?')}").inc()
        elif name == "analysis.sanitize":
            if ph == END:
                reg.counter("analysis.sanitize.passes").inc()
                reg.counter("analysis.sanitize.rewrites").inc(
                    args.get("rewrites", 0))
                reg.counter("analysis.sanitize.guards_decided").inc(
                    args.get("guards_decided", 0))
                reg.counter("analysis.sanitize.certified").inc(
                    args.get("certified", 0))
            elif ph == INSTANT and args.get("proved_false"):
                # proved-true/false verdicts land after the span closes;
                # the proved-false one is an instant of its own.
                reg.counter("analysis.sanitize.proved_false").inc()
        elif name == "analysis.race" and ph == INSTANT:
            reg.counter("analysis.race.launches").inc()
            reg.counter("analysis.race.pairs").inc(args.get("pairs", 0))
            reg.counter("analysis.race.discharged").inc(
                args.get("discharged", 0))
            reg.counter("analysis.race.residual").inc(
                args.get("residual", 0))
        elif name == "analysis.lint" and ph == END:
            reg.counter("analysis.lint.runs").inc()
            reg.counter("analysis.lint.files").inc(args.get("files", 0))
            reg.counter("analysis.lint.diagnostics").inc(
                args.get("diagnostics", 0))

    def subscribed(self):
        """Context manager: receive events for the dynamic extent."""
        return _Subscription(self.bus, self)

    def snapshot(self) -> Dict[str, object]:
        """Registry snapshot plus the derived headline rates."""
        reg = self.registry
        checks = reg.counter("smt.checks").value
        hits = reg.counter("smt.encode_hits").value
        misses = reg.counter("smt.encode_misses").value
        encoded = hits + misses
        reg.gauge("derived.encode_cache_hit_rate").set(
            (hits / encoded) if encoded else 0.0)
        reg.gauge("derived.conflicts_per_check").set(
            (reg.counter("smt.conflicts").value / checks) if checks else 0.0)
        return reg.snapshot()


class _Subscription:
    """Subscribe a sink on enter, detach on exit."""

    def __init__(self, bus: EventBus, sink):
        self._bus = bus
        self._sink = sink
        self._unsubscribe: Optional[Callable[[], None]] = None

    def __enter__(self):
        self._unsubscribe = self._bus.subscribe(self._sink)
        return self._sink

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
