"""The structured event bus: typed, timestamped telemetry for the stack.

Every layer of the SVM — the CDCL core, the bit-blaster, the SMT facade,
the VM's guarded evaluator, and the queries — carries first-class hook
points that publish :class:`Event` records to a process-wide
:data:`BUS`. Consumers subscribe plain callables (sinks) and receive
events synchronously, at the site that produced them, which is what lets
the symbolic profiler attribute events to host call sites by walking the
stack at delivery time.

Design constraints:

- **Zero dependencies.** This module imports only the standard library
  and nothing from ``repro``, so every layer (including the SAT core at
  the bottom of the import graph) may import it.
- **Disabled is free.** When no sink is subscribed, ``BUS.enabled`` is
  ``False`` and every instrumentation site reduces to a single attribute
  check — no event objects are allocated, no timestamps taken. Tier-1
  timings are unaffected by the instrumentation being present.
- **Spans are stack-shaped.** ``begin``/``end`` events follow call
  structure, so a single thread's event stream has strict LIFO nesting;
  sinks and the Chrome trace-event exporter rely on it.

Event taxonomy (name — category — payload):

========================  ====  ==============================================
``query.solve`` (span)    query  ``status``
``query.verify`` (span)   query  ``status``
``query.synthesize``      query  ``status``
``query.debug`` (span)    query  ``status``
``cegis.iteration``       query  ``iteration``, ``examples``; end: ``outcome``
``smt.check`` (span)      smt    ``assumptions``, ``scopes``; end: ``result``
                                 plus the full CheckStats delta
``smt.encode`` (span)     smt    end: ``hits``, ``misses``, ``cached``
``cert.model`` (span)     cert   end: ``ok`` (SAT-answer certification)
``cert.proof`` (span)     cert   ``steps``; end: ``ok``, ``core``
``cert.core`` (span)      cert   ``size``; end: ``ok`` (minimized-core
                                 re-proof)
``sat.solve`` (span)      sat    ``assumptions``; end: ``result``,
                                 ``conflicts``, ``reason``
``sat.restart``           sat    ``restarts``, ``conflicts``, ``limit``
``sat.conflicts``         sat    ``conflicts``, ``learned`` (milestone)
``sat.budget_trip``       sat    ``reason``, ``phase``
``vm.join``               vm     ``cardinality`` (feasible alternatives)
``vm.merge``              vm     ``locations`` (merged heap locations)
``vm.union``              vm     ``cardinality``
``analysis.sanitize``     analysis  span: ``nodes``; end: SanitizeStats
                                 delta + ``changed``; instant:
                                 ``proved_false``, ``term``
``analysis.race``         analysis  ``pairs``, ``discharged``,
                                 ``overlaps``, ``residual`` (per launch)
``analysis.lint``         analysis  span: ``files``; end:
                                 ``diagnostics`` + per-severity counts
========================  ====  ==============================================
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

#: Span/instant markers, matching the Chrome trace-event ``ph`` field.
BEGIN = "B"
END = "E"
INSTANT = "i"


class Event:
    """One telemetry record: a span boundary or an instant."""

    __slots__ = ("name", "cat", "ph", "ts_us", "args")

    def __init__(self, name: str, cat: str, ph: str, ts_us: float,
                 args: Optional[Dict[str, object]]):
        self.name = name
        self.cat = cat
        self.ph = ph          # BEGIN | END | INSTANT
        self.ts_us = ts_us    # microseconds since the bus epoch
        self.args = args      # payload dict, or None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (the JSONL trace row shape)."""
        return {"name": self.name, "cat": self.cat, "ph": self.ph,
                "ts_us": self.ts_us, "args": self.args or {}}

    def __repr__(self) -> str:
        return (f"Event({self.name!r}, {self.cat!r}, {self.ph!r}, "
                f"ts_us={self.ts_us:.1f}, args={self.args!r})")


Sink = Callable[[Event], None]


class EventBus:
    """In-process fan-out of events to subscribed sinks.

    Instrumentation sites guard emission with the :attr:`enabled` flag::

        bus = BUS
        if bus.enabled:
            bus.instant("vm.union", "vm", cardinality=3)

    ``enabled`` is maintained by ``subscribe``/``unsubscribe`` — it is
    True exactly while at least one sink is attached. Delivery is
    synchronous and in subscription order; a sink that raises aborts the
    operation that emitted the event (sinks are trusted in-process code,
    not plugins).
    """

    def __init__(self):
        self.enabled = False
        self._sinks: List[Sink] = []
        self._epoch = time.perf_counter()

    # -- subscription --------------------------------------------------

    def subscribe(self, sink: Sink) -> Callable[[], None]:
        """Attach a sink; returns an idempotent unsubscribe closure."""
        self._sinks.append(sink)
        self.enabled = True

        done = False

        def unsubscribe() -> None:
            nonlocal done
            if done:
                return
            done = True
            self.unsubscribe(sink)

        return unsubscribe

    def unsubscribe(self, sink: Sink) -> None:
        """Detach one occurrence of `sink` (no-op if absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        self.enabled = bool(self._sinks)

    @property
    def sinks(self) -> List[Sink]:
        return list(self._sinks)

    # -- emission ------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since the bus epoch (monotonic)."""
        return (time.perf_counter() - self._epoch) * 1e6

    def emit(self, event: Event) -> None:
        for sink in self._sinks:
            sink(event)

    def begin(self, name: str, cat: str, **args) -> None:
        """Open a span. Must be paired with :meth:`end`, LIFO-nested."""
        self.emit(Event(name, cat, BEGIN, self.now_us(), args or None))

    def end(self, name: str, cat: str, **args) -> None:
        """Close the innermost open span named `name`."""
        self.emit(Event(name, cat, END, self.now_us(), args or None))

    def instant(self, name: str, cat: str, **args) -> None:
        """Emit a point-in-time event."""
        self.emit(Event(name, cat, INSTANT, self.now_us(), args or None))


#: The process-wide bus every instrumentation site publishes to.
BUS = EventBus()
