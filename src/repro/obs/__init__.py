"""``repro.obs`` — the unified tracing & metrics layer.

One event bus (:mod:`repro.obs.events`), a metrics registry over it
(:mod:`repro.obs.metrics`), and pluggable sinks
(:mod:`repro.obs.sinks`). Queries and SDSL drivers accept a ``trace=``
argument handled by :func:`tracing`; setting the ``REPRO_TRACE``
environment variable to a file path captures a JSONL trace from any
unmodified program::

    REPRO_TRACE=trace.jsonl python examples/quickstart.py
    python -c "from repro.obs import jsonl_to_chrome; \\
               jsonl_to_chrome('trace.jsonl', 'trace.json')"
    # load trace.json in chrome://tracing or https://ui.perfetto.dev

``trace=`` accepts a path (a JSONL trace is written there), any callable
sink (e.g. :class:`~repro.obs.sinks.ChromeTraceSink`,
:class:`~repro.obs.metrics.BusMetrics`), or ``None`` (no explicit sink;
the environment fallback still applies).
"""

from __future__ import annotations

import atexit
import json
import os
from contextlib import contextmanager
from typing import List, Optional

from repro.obs.events import BEGIN, BUS, END, Event, EventBus, INSTANT
from repro.obs.metrics import BusMetrics, MetricsRegistry
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlTraceWriter,
    MemorySink,
    SummarySink,
    jsonl_to_chrome,
)

__all__ = [
    "BUS", "Event", "EventBus", "BEGIN", "END", "INSTANT",
    "BusMetrics", "MetricsRegistry",
    "ChromeTraceSink", "JsonlTraceWriter", "MemorySink", "SummarySink",
    "jsonl_to_chrome", "tracing", "reset_env_sink",
    "load_jsonl_trace", "check_trace_invariants",
]

#: Environment variable naming a JSONL trace path for zero-code capture.
TRACE_ENV_VAR = "REPRO_TRACE"

_env_writer: Optional[JsonlTraceWriter] = None
_env_path: Optional[str] = None
_env_unsubscribe = None


def _ensure_env_sink() -> None:
    """Install (once) the process-global writer named by ``REPRO_TRACE``.

    The writer stays subscribed for the rest of the process so that a
    multi-query program lands in a single trace file; it is closed at
    interpreter exit. Changing the variable between queries re-targets
    the writer.
    """
    global _env_writer, _env_path, _env_unsubscribe
    path = os.environ.get(TRACE_ENV_VAR)
    if not path:
        return
    if _env_writer is not None and _env_path == path:
        return
    reset_env_sink()
    _env_writer = JsonlTraceWriter(path)
    _env_path = path
    _env_unsubscribe = BUS.subscribe(_env_writer)


def reset_env_sink() -> None:
    """Close and detach the ``REPRO_TRACE`` writer (test isolation)."""
    global _env_writer, _env_path, _env_unsubscribe
    if _env_unsubscribe is not None:
        _env_unsubscribe()
        _env_unsubscribe = None
    if _env_writer is not None:
        _env_writer.close()
        _env_writer = None
    _env_path = None


atexit.register(reset_env_sink)


@contextmanager
def tracing(trace=None):
    """Activate tracing for the dynamic extent of the ``with`` block.

    - ``trace`` is a path (str/PathLike): a :class:`JsonlTraceWriter` is
      opened there, subscribed, and closed on exit.
    - ``trace`` is a callable sink: subscribed for the block, left open
      on exit (the caller owns it).
    - ``trace`` is ``None``: no sink of its own, but the ``REPRO_TRACE``
      environment fallback is (idempotently) installed — this is what
      makes every query traceable with zero code changes.

    Yields the active sink (or ``None``).
    """
    if trace is None:
        _ensure_env_sink()
        yield _env_writer
        return
    if callable(trace):
        unsubscribe = BUS.subscribe(trace)
        try:
            yield trace
        finally:
            unsubscribe()
        return
    writer = JsonlTraceWriter(trace)
    unsubscribe = BUS.subscribe(writer)
    try:
        yield writer
    finally:
        unsubscribe()
        writer.close()


# ---------------------------------------------------------------------------
# Trace validation (shared by tests and the CI smoke job)
# ---------------------------------------------------------------------------

def load_jsonl_trace(path) -> List[dict]:
    """Parse a JSONL trace file into a list of row dicts."""
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def check_trace_invariants(rows: List[dict]) -> None:
    """Assert the structural invariants of a single-threaded trace.

    - every row has ``name``/``cat``/``ph``/``ts_us``/``args``;
    - timestamps are monotonically non-decreasing;
    - ``B``/``E`` events nest with LIFO discipline and matching names,
      and the trace closes every span it opens.

    Raises ``AssertionError`` naming the offending row otherwise.
    """
    last_ts = float("-inf")
    stack: List[str] = []
    for index, row in enumerate(rows):
        for key in ("name", "cat", "ph", "ts_us", "args"):
            assert key in row, f"row {index} missing {key!r}: {row}"
        assert row["ph"] in (BEGIN, END, INSTANT), \
            f"row {index} has bad ph {row['ph']!r}"
        assert row["ts_us"] >= last_ts, \
            f"row {index} timestamp went backwards: {row['ts_us']} < {last_ts}"
        last_ts = row["ts_us"]
        if row["ph"] == BEGIN:
            stack.append(row["name"])
        elif row["ph"] == END:
            assert stack, f"row {index} ends {row['name']!r} with no open span"
            opened = stack.pop()
            assert opened == row["name"], \
                (f"row {index} ends {row['name']!r} but innermost open "
                 f"span is {opened!r}")
    assert not stack, f"trace left spans open: {stack}"
