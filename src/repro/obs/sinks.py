"""Trace sinks: JSONL writer, Chrome trace-event exporter, summaries.

A sink is any callable taking an :class:`~repro.obs.events.Event`. The
writers here are the pluggable back-ends behind ``trace=`` arguments and
the ``REPRO_TRACE`` environment variable:

- :class:`JsonlTraceWriter` — one JSON object per line, append-order =
  emission order. The stable interchange format; cheap to write, easy to
  grep, and convertible offline.
- :class:`ChromeTraceSink` / :func:`jsonl_to_chrome` — the Chrome
  trace-event format (the JSON array ``chrome://tracing`` and Perfetto
  load directly): ``ph``/``ts``/``pid``/``tid`` on every event.
- :class:`SummarySink` — an in-memory hierarchical aggregation of spans
  (by nesting path) rendered as an indented text report.
- :class:`MemorySink` — a plain list accumulator for tests.
"""

from __future__ import annotations

import io
import json
import os
from typing import Dict, List, Optional, Union

from repro.obs.events import BEGIN, END, Event, INSTANT


class MemorySink:
    """Collects events in a list (testing / ad-hoc inspection)."""

    def __init__(self):
        self.events: List[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()


class JsonlTraceWriter:
    """Writes each event as one JSON line to a file (or file-like).

    Lines are flushed as they are written: a trace of a crashed or
    budget-killed run is still readable up to the failure point, which is
    exactly when a trace is most wanted.
    """

    def __init__(self, target: Union[str, os.PathLike, io.TextIOBase]):
        if hasattr(target, "write"):
            self._file = target
            self._owns_file = False
        else:
            self._file = open(target, "w", encoding="utf-8")
            self._owns_file = True
        self.events_written = 0

    def __call__(self, event: Event) -> None:
        self._file.write(json.dumps(event.to_dict(),
                                    separators=(",", ":")) + "\n")
        self._file.flush()
        self.events_written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()


def _chrome_event(row: Dict[str, object], pid: int, tid: int) -> dict:
    """One JSONL row → one Chrome trace-event object."""
    out = {
        "name": row["name"],
        "cat": row["cat"],
        "ph": row["ph"],
        "ts": row["ts_us"],
        "pid": pid,
        "tid": tid,
        "args": row.get("args") or {},
    }
    if out["ph"] == INSTANT:
        out["s"] = "t"  # thread-scoped instant marker
    return out


class ChromeTraceSink:
    """Accumulates events; :meth:`write` emits a Chrome trace-event file."""

    def __init__(self, pid: Optional[int] = None, tid: int = 1):
        self.pid = pid if pid is not None else os.getpid()
        self.tid = tid
        self._rows: List[dict] = []

    def __call__(self, event: Event) -> None:
        self._rows.append(event.to_dict())

    def trace_events(self) -> List[dict]:
        return [_chrome_event(row, self.pid, self.tid) for row in self._rows]

    def write(self, path: Union[str, os.PathLike]) -> None:
        payload = {"traceEvents": self.trace_events(),
                   "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")


def jsonl_to_chrome(jsonl_path: Union[str, os.PathLike],
                    chrome_path: Union[str, os.PathLike],
                    pid: int = 1, tid: int = 1) -> int:
    """Convert a JSONL trace file to a Chrome trace-event file.

    Returns the number of events converted. The source process is gone by
    conversion time, so ``pid``/``tid`` are synthetic constants — Perfetto
    only uses them to group events onto tracks.
    """
    events: List[dict] = []
    with open(jsonl_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(_chrome_event(json.loads(line), pid, tid))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(chrome_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return len(events)


class _SummaryNode:
    __slots__ = ("name", "count", "total_us", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_us = 0.0
        self.children: Dict[str, "_SummaryNode"] = {}

    def child(self, name: str) -> "_SummaryNode":
        node = self.children.get(name)
        if node is None:
            node = _SummaryNode(name)
            self.children[name] = node
        return node


class SummarySink:
    """Aggregates spans by nesting path into a human-readable tree.

    Instants are counted as zero-duration leaves under the innermost open
    span. Durations are *inclusive* (a parent's total includes its
    children), matching how the flame view in Perfetto reads.
    """

    def __init__(self):
        self._root = _SummaryNode("<trace>")
        # (node, begin_ts) per open span.
        self._stack: List[tuple] = []

    def __call__(self, event: Event) -> None:
        if event.ph == BEGIN:
            parent = self._stack[-1][0] if self._stack else self._root
            self._stack.append((parent.child(event.name), event.ts_us))
        elif event.ph == END:
            if not self._stack:
                return  # unbalanced END: tolerate partial traces
            node, begin_ts = self._stack.pop()
            node.count += 1
            node.total_us += event.ts_us - begin_ts
        else:
            parent = self._stack[-1][0] if self._stack else self._root
            leaf = parent.child(event.name)
            leaf.count += 1

    def report(self) -> str:
        lines = [f"{'span':44s} {'count':>8s} {'total_ms':>10s}"]

        def render(node: _SummaryNode, depth: int) -> None:
            for name in sorted(node.children):
                child = node.children[name]
                label = ("  " * depth + name)[:44]
                lines.append(f"{label:44s} {child.count:8d} "
                             f"{child.total_us / 1000:10.2f}")
                render(child, depth + 1)

        render(self._root, 0)
        return "\n".join(lines)
