"""Seeded fault injection: prove the certifiers actually certify.

A certification layer that never rejects anything is indistinguishable
from one that works. This module *injects* faults — into proofs, models,
cores, and the bit-blaster — and asserts that the matching certifier
rejects every one of them. All mutation choices are driven by a seeded
:class:`random.Random`, so a failing fault class replays deterministically
from its seed.

Fault taxonomy (``FAULT_CLASSES``):

``flip-learned-literal``
    Negate one literal of a learned clause in a genuine UNSAT proof.
``drop-learned-clause``
    Remove one learned-clause step from a genuine UNSAT proof.
``inject-foreign-clause``
    Splice a non-consequence clause (a unit over a fresh variable) into
    the proof as if the solver had learned it.
``truncate-proof``
    Strip every learned clause, leaving only the inputs — the shape of a
    solver that claims UNSAT without having done the work.
``corrupt-model-bit``
    Flip one variable of a genuine SAT model.
``truncate-core``
    Drop one element of a *minimal* unsat core, making the remainder
    satisfiable.
``corrupt-term-model``
    Corrupt one bit of an extracted SMT-level model value — visible only
    to the term-level certifier, not the CNF one.
``sabotage-encoder``
    Mis-encode one XOR gate in the bit-blaster (wrong output polarity), a
    fault the CNF model check *cannot* see (the model genuinely satisfies
    the corrupted clauses) but the term-level re-evaluation catches.
``corrupt-sanitizer``
    Corrupt one abstract transfer function of the formula sanitizer
    (:mod:`repro.analysis`), making it claim a spurious singleton; the
    certify-mode cross-check must reject the resulting rewrite.

Two fault classes (``flip-learned-literal``, ``drop-learned-clause``)
mutate a *redundant* proof position in unlucky cases — a flipped or
dropped clause the rest of the proof never needed — which is not a fault
at all (the proof still proves UNSAT). For those, the harness scans
candidate positions in seeded order and reports the first mutation the
checker rejects; every class must produce a caught fault or the harness
itself fails.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.smt import terms as T
from repro.smt.bitblast import BitBlaster
from repro.smt.solver import SmtResult, SmtSolver
from repro.solver.certify import (
    STEP_LEARN,
    CertificationError,
    ProofLog,
    check_model,
    check_proof,
    recheck_unsat,
)
from repro.solver.sat import SatResult, SatSolver

FAULT_CLASSES = (
    "flip-learned-literal",
    "drop-learned-clause",
    "inject-foreign-clause",
    "truncate-proof",
    "corrupt-model-bit",
    "truncate-core",
    "corrupt-term-model",
    "sabotage-encoder",
    "corrupt-sanitizer",
)


@dataclass
class FaultOutcome:
    """One injected fault and how (whether) a certifier rejected it."""

    fault: str
    caught: bool
    detail: str

    def row(self) -> dict:
        return {"fault": self.fault, "caught": self.caught,
                "detail": self.detail}


# ---------------------------------------------------------------------------
# Crafted instances (small, deterministic, with known structure)
# ---------------------------------------------------------------------------

def _pigeonhole_solver() -> Tuple[SatSolver, ProofLog]:
    """PHP(4, 3): UNSAT, not unit-propagation-trivial, learns clauses."""
    solver = SatSolver()
    proof = solver.enable_proof()
    pigeons, holes = 4, 3
    var = {(p, h): solver.new_var()
           for p in range(pigeons) for h in range(holes)}
    for p in range(pigeons):
        solver.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return solver, proof


def _unsat_proof() -> ProofLog:
    solver, proof = _pigeonhole_solver()
    result = solver.solve()
    assert result is SatResult.UNSAT, "chaos instance must be UNSAT"
    # Sanity: the genuine proof certifies (no false rejections).
    check_proof(proof)
    return proof


def _forced_chain() -> Tuple[SatSolver, ProofLog, int]:
    """A chain x1, x1→x2, …: SAT with every variable forced true."""
    solver = SatSolver()
    proof = solver.enable_proof()
    n = 12
    variables = [solver.new_var() for _ in range(n)]
    solver.add_clause([variables[0]])
    for a, b in zip(variables, variables[1:]):
        solver.add_clause([-a, b])
    result = solver.solve()
    assert result is SatResult.SAT
    check_model(proof, solver.model())
    return solver, proof, n


def _minimal_core() -> Tuple[SmtSolver, List[T.Term]]:
    """An SMT instance whose minimized core is exactly two assumptions."""
    solver = SmtSolver(certify=True)
    a = T.bool_var("chaos_a")
    b = T.bool_var("chaos_b")
    pad = [T.bool_var(f"chaos_pad{i}") for i in range(3)]
    solver.add_assertion(T.mk_or(T.mk_not(a), T.mk_not(b)))
    result = solver.check([a, b] + pad)
    assert result is SmtResult.UNSAT
    core = solver.minimize_core()
    assert len(core) == 2
    return solver, core


# ---------------------------------------------------------------------------
# Fault injectors
# ---------------------------------------------------------------------------

def _scan_for_caught(candidates: List[int], rng: random.Random,
                     mutate: Callable[[int], None],
                     describe: Callable[[int], str]) -> FaultOutcome:
    """Apply `mutate` at candidate positions in seeded order until the
    certifier rejects one; a class where no candidate is caught is a
    certification hole and reported as uncaught."""
    order = list(candidates)
    rng.shuffle(order)
    for position in order:
        try:
            mutate(position)
        except CertificationError as rejected:
            return FaultOutcome(fault="", caught=True,
                                detail=f"{describe(position)}: {rejected}")
    return FaultOutcome(fault="", caught=False,
                        detail=f"no rejected mutation among "
                               f"{len(order)} candidate position(s)")


def _fault_flip_learned_literal(rng: random.Random) -> FaultOutcome:
    proof = _unsat_proof()
    learned = [i for i, (kind, _) in enumerate(proof.steps)
               if kind == STEP_LEARN]

    def mutate(step: int) -> None:
        kind, lits = proof.steps[step]
        which = rng.randrange(len(lits))
        mutated = list(lits)
        mutated[which] = -mutated[which]
        steps = list(proof.steps)
        steps[step] = (kind, tuple(mutated))
        check_proof(ProofLog(steps))

    return _scan_for_caught(learned, rng, mutate,
                            lambda step: f"flipped a literal of step {step}")


def _fault_drop_learned_clause(rng: random.Random) -> FaultOutcome:
    proof = _unsat_proof()
    learned = [i for i, (kind, _) in enumerate(proof.steps)
               if kind == STEP_LEARN]

    def mutate(step: int) -> None:
        steps = [s for i, s in enumerate(proof.steps) if i != step]
        check_proof(ProofLog(steps))

    return _scan_for_caught(learned, rng, mutate,
                            lambda step: f"dropped learned step {step}")


def _fault_inject_foreign_clause(rng: random.Random) -> FaultOutcome:
    proof = _unsat_proof()
    fresh = 1 + max(abs(lit) for _, lits in proof.steps for lit in lits)
    sign = rng.choice([1, -1])
    steps = list(proof.steps)
    # After the inputs, before any learning: claim a unit over a variable
    # no clause constrains — unit propagation cannot derive it.
    first_learn = next(i for i, (kind, _) in enumerate(steps)
                       if kind == STEP_LEARN)
    steps.insert(first_learn, (STEP_LEARN, (sign * fresh,)))
    try:
        check_proof(ProofLog(steps))
    except CertificationError as rejected:
        return FaultOutcome("inject-foreign-clause", True, str(rejected))
    return FaultOutcome("inject-foreign-clause", False,
                        "foreign unit clause accepted as RUP")


def _fault_truncate_proof(rng: random.Random) -> FaultOutcome:
    proof = _unsat_proof()
    steps = [s for s in proof.steps if s[0] != STEP_LEARN]
    try:
        check_proof(ProofLog(steps))
    except CertificationError as rejected:
        return FaultOutcome("truncate-proof", True, str(rejected))
    return FaultOutcome("truncate-proof", False,
                        "inputs alone accepted as an UNSAT proof")


def _fault_corrupt_model_bit(rng: random.Random) -> FaultOutcome:
    _, proof, n = _forced_chain()
    solver_model = {var: True for var in range(1, n + 1)}
    flipped = rng.randint(1, n)
    solver_model[flipped] = False
    try:
        check_model(proof, solver_model)
    except CertificationError as rejected:
        return FaultOutcome("corrupt-model-bit", True,
                            f"flipped variable {flipped}: {rejected}")
    return FaultOutcome("corrupt-model-bit", False,
                        f"model with flipped variable {flipped} accepted")


def _fault_truncate_core(rng: random.Random) -> FaultOutcome:
    solver, core = _minimal_core()
    dropped = rng.randrange(len(core))
    truncated = [term for i, term in enumerate(core) if i != dropped]
    lits = [solver._assumption_lit(term) for term in truncated]
    try:
        check_proof(solver.proof, core=lits)
    except CertificationError as rup_rejected:
        # Both certifiers should agree; the fresh re-prove is the one the
        # minimize_core postcondition uses, so exercise it too.
        try:
            recheck_unsat(solver.proof.input_clauses(), lits)
        except CertificationError as rejected:
            return FaultOutcome("truncate-core", True,
                                f"{rup_rejected}; re-prove: {rejected}")
        return FaultOutcome("truncate-core", False,
                            "RUP rejected the truncated core but the "
                            "fresh re-prove accepted it")
    return FaultOutcome("truncate-core", False,
                        "truncated core accepted by the RUP final check")


def _fault_corrupt_term_model(rng: random.Random) -> FaultOutcome:
    solver = SmtSolver(certify=True)
    x = T.bv_var("chaos_x", 8)
    solver.add_assertion(T.mk_eq(x, T.bv_const(0x5A, 8)))
    result = solver.check()
    assert result is SmtResult.SAT
    bindings = solver.model().bindings()
    bit = rng.randrange(8)
    bindings[x] = bindings[x] ^ (1 << bit)
    try:
        solver.certify_model(bindings)
    except CertificationError as rejected:
        return FaultOutcome("corrupt-term-model", True,
                            f"corrupted bit {bit} of x: {rejected}")
    return FaultOutcome("corrupt-term-model", False,
                        f"model with corrupted bit {bit} accepted")


class _SabotagedBitBlaster(BitBlaster):
    """A bit-blaster that mis-encodes its `target`-th fresh XOR gate.

    The wrong-polarity output is a *consistent* CNF — a model of the
    corrupted clauses exists and satisfies them — so only re-evaluating
    the original terms under the extracted model can expose the bug.
    """

    def __init__(self, sat: SatSolver, target: int):
        super().__init__(sat)
        self._xor_gates = 0
        self._target = target

    def _xor2(self, a: int, b: int) -> int:
        fresh = not (("xor", min(a, b), max(a, b)) in self._gate_cache)
        gate = super()._xor2(a, b)
        if fresh and abs(gate) != self._true:
            self._xor_gates += 1
            if self._xor_gates == self._target:
                return -gate
        return gate


def _fault_sabotage_encoder(rng: random.Random) -> FaultOutcome:
    # The adder circuit for x + 1 == 3 builds one XOR tower per bit; a
    # wrong-polarity XOR output makes the solver satisfy the wrong
    # equation. Scan sabotage targets in seeded order: the certified
    # check() must reject the extracted model (term-level) or prove the
    # corrupted CNF unsatisfiable where the original is not.
    targets = list(range(1, 9))
    rng.shuffle(targets)
    for target in targets:
        solver = SmtSolver(certify=True)
        solver.blaster = _SabotagedBitBlaster(solver.sat, target)
        x = T.bv_var("chaos_sab_x", 4)
        solver.add_assertion(
            T.mk_eq(T.mk_add(x, T.bv_const(1, 4)), T.bv_const(3, 4)))
        try:
            result = solver.check()
        except CertificationError as rejected:
            return FaultOutcome("sabotage-encoder", True,
                                f"xor gate {target}: {rejected}")
        if result is not SmtResult.SAT:
            # The sabotage flipped the instance to UNSAT: the *answer*
            # changed, which the term-level certifier cannot observe
            # without a model — treat as uncaught and keep scanning.
            continue
    return FaultOutcome("sabotage-encoder", False,
                        "no sabotaged encoding was rejected")


def _fault_corrupt_sanitizer(rng: random.Random) -> FaultOutcome:
    from repro.analysis.domains import chaos_wrong_transfer
    from repro.analysis.sanitize import sanitize

    # Satisfiable *and* falsifiable, so a spurious TRUE/FALSE verdict is
    # wrong somewhere; every op below appears once.
    x = T.bv_var("chaos_san_x", 4)
    y = T.bv_var("chaos_san_y", 4)
    phi = T.mk_eq(
        T.mk_add(T.mk_mul(x, y),
                 T.mk_bvand(x, T.mk_bvor(y, T.bv_const(3, 4)))),
        T.mk_bvxor(x, y))
    present = sorted({node.op for node in T.postorder(phi)
                      if not (node.is_const or node.is_var)})
    rng.shuffle(present)
    for op in present:
        with chaos_wrong_transfer(op):
            if sanitize(phi) is phi:
                # The corrupted transfer produced no rewrite to catch.
                continue
            try:
                sanitize(phi, certify=True)
            except CertificationError as rejected:
                return FaultOutcome("corrupt-sanitizer", True,
                                    f"corrupted {op} transfer: {rejected}")
    return FaultOutcome("corrupt-sanitizer", False,
                        "no corrupted transfer function was rejected")


_INJECTORS: Dict[str, Callable[[random.Random], FaultOutcome]] = {
    "flip-learned-literal": _fault_flip_learned_literal,
    "drop-learned-clause": _fault_drop_learned_clause,
    "inject-foreign-clause": _fault_inject_foreign_clause,
    "truncate-proof": _fault_truncate_proof,
    "corrupt-model-bit": _fault_corrupt_model_bit,
    "truncate-core": _fault_truncate_core,
    "corrupt-term-model": _fault_corrupt_term_model,
    "sabotage-encoder": _fault_sabotage_encoder,
    "corrupt-sanitizer": _fault_corrupt_sanitizer,
}


def inject(fault: str, seed: int = 0) -> FaultOutcome:
    """Inject one fault class; the outcome says whether it was caught."""
    if fault not in _INJECTORS:
        raise ValueError(f"unknown fault class {fault!r}; "
                         f"choose from {FAULT_CLASSES}")
    # Seeding with a string is deterministic across processes (random.seed
    # hashes str/bytes with sha512), unlike hash() of a str.
    outcome = _INJECTORS[fault](random.Random(f"{seed}:{fault}"))
    outcome.fault = fault
    return outcome


def run_chaos(seed: int = 0,
              faults: Optional[Tuple[str, ...]] = None) -> List[FaultOutcome]:
    """Run every fault class (or the given subset) under one seed."""
    return [inject(fault, seed=seed) for fault in (faults or FAULT_CLASSES)]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: run the full sweep for one or more seeds, exit 1 on a miss.

    ``python -m repro.solver.chaos [seed ...]`` — defaults to seed 0.
    """
    import sys
    seeds = [int(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    missed = 0
    for seed in seeds or [0]:
        print(f"seed {seed}:")
        for outcome in run_chaos(seed=seed):
            status = "caught" if outcome.caught else "MISSED"
            print(f"  {outcome.fault:<24} {status}")
            missed += not outcome.caught
    return 1 if missed else 0


if __name__ == "__main__":
    raise SystemExit(main())
