"""CNF formula container and DIMACS serialization.

Literals follow the DIMACS convention: variables are positive integers
``1..n``; a literal is ``+v`` (positive) or ``-v`` (negated). Clause lists
are plain Python lists of such ints, which keeps the hot solver loops free
of object overhead.
"""

from __future__ import annotations

from typing import Iterable, List


class CNF:
    """A conjunction of clauses over integer-numbered variables."""

    def __init__(self, num_vars: int = 0):
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause, growing the variable count if needed."""
        clause = list(lits)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            var = abs(lit)
            if var > self.num_vars:
                self.num_vars = var
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"


def to_dimacs(cnf: CNF) -> str:
    """Render a :class:`CNF` in DIMACS ``cnf`` format."""
    lines = [f"p cnf {cnf.num_vars} {len(cnf.clauses)}"]
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS ``cnf`` text into a :class:`CNF`."""
    cnf = CNF()
    declared_vars = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            continue
        lits = [int(tok) for tok in line.split()]
        if lits and lits[-1] == 0:
            lits = lits[:-1]
        if lits:
            cnf.add_clause(lits)
    if declared_vars is not None:
        cnf.num_vars = max(cnf.num_vars, declared_vars)
    return cnf
