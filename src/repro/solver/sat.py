"""A CDCL SAT solver.

The implementation follows the MiniSat architecture: two-watched-literal
propagation, first-UIP clause learning with recursive clause minimization,
VSIDS variable activities with phase saving, Luby restarts, and activity-based
learned-clause deletion. Solving under *assumptions* is supported, and when
the instance is unsatisfiable under assumptions the solver reports the subset
of assumptions used in the final conflict (an unsat core).

Variables are integers ``1..n`` externally (DIMACS convention) and literals
are signed ints. Internally literals are encoded as ``2*v`` (positive) and
``2*v + 1`` (negative) over zero-based variables, so negation is ``lit ^ 1``.

With :meth:`SatSolver.enable_proof` the solver additionally emits a DRUP
proof (original, learned, and deleted clauses) into a
:class:`~repro.solver.certify.ProofLog`, which the independent checker in
:mod:`repro.solver.certify` replays to certify UNSAT answers and against
which SAT models are evaluated clause-by-clause. Logging off costs one
attribute check per conflict; logging on costs one tuple per step.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.events import BUS
from repro.solver.budget import Budget
from repro.solver.certify import ProofLog

# Cadence of `sat.conflicts` milestone events while tracing: one instant
# every _CONFLICT_MILESTONE conflicts (power of two — the check is a mask).
_CONFLICT_MILESTONE = 1024


class SatResult(enum.Enum):
    """Outcome of a :meth:`SatSolver.solve` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class _Clause:
    """A disjunction of internal literals; the first two are watched."""

    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: List[int], learnt: bool):
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence.

    Follows the MiniSat formulation: find the finite subsequence containing
    index i and the position within it.
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x = x % size
    return 1 << seq


_UNASSIGNED = -1


class SatSolver:
    """Conflict-driven clause-learning SAT solver.

    Typical use::

        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        assert solver.solve() is SatResult.SAT
        assert solver.model_value(b) is True
    """

    def __init__(self):
        self._num_vars = 0
        # Per-variable state.
        self._assigns: List[int] = []      # _UNASSIGNED / 0 (false) / 1 (true)
        self._level: List[int] = []        # decision level of assignment
        self._reason: List[Optional[_Clause]] = []
        self._activity: List[float] = []
        self._polarity: List[int] = []     # saved phase: 0 false, 1 true
        self._seen: List[int] = []         # scratch for conflict analysis
        # Per-literal state (internal encoding).
        self._watches: List[List[_Clause]] = []
        # Trail.
        self._trail: List[int] = []        # internal literals, in order
        self._trail_lim: List[int] = []    # trail index at each decision level
        self._qhead = 0
        # Clause database.
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        # Heuristics.
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._order: List[int] = []        # lazy max-activity queue (heap)
        self._order_pos: Dict[int, int] = {}
        # Results.
        self._ok = True                    # False once a toplevel conflict
        self._model: Optional[List[int]] = None
        self._conflict_core: List[int] = []
        # Statistics.
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self.num_learned = 0
        self.max_conflicts: Optional[int] = None
        # Resource governance: when set, the search charges this budget
        # and returns UNKNOWN as soon as it trips; `interrupt_reason`
        # then names the limit (see repro.solver.budget).
        self.budget: Optional[Budget] = None
        self.interrupt_reason: Optional[str] = None
        # Certification: when a ProofLog is installed every original,
        # learned, and deleted clause is recorded so UNSAT answers can be
        # replayed by the independent RUP checker (repro.solver.certify).
        self.proof: Optional[ProofLog] = None

    def enable_proof(self, proof: Optional[ProofLog] = None) -> ProofLog:
        """Start DRUP proof logging; returns the (possibly given) log.

        Must be called before any clause is added: a proof that is missing
        input clauses would make the checker reject valid answers.
        """
        if self._clauses or self._learnts or self._trail or not self._ok:
            raise RuntimeError(
                "enable_proof() must be called on a solver with no clauses")
        self.proof = proof if proof is not None else ProofLog()
        return self.proof

    @property
    def num_clauses(self) -> int:
        """Stored problem clauses (excludes learnts and absorbed units)."""
        return len(self._clauses)

    @property
    def num_learnt_clauses(self) -> int:
        return len(self._learnts)

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its external (1-based) index."""
        self._num_vars += 1
        self._assigns.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(0)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        var = self._num_vars - 1
        self._heap_insert(var)
        return self._num_vars

    def _ensure_vars(self, ext_lits: Iterable[int]) -> None:
        top = max((abs(lit) for lit in ext_lits), default=0)
        while self._num_vars < top:
            self.new_var()

    @staticmethod
    def _to_internal(ext_lit: int) -> int:
        if ext_lit > 0:
            return (ext_lit - 1) << 1
        return ((-ext_lit - 1) << 1) | 1

    @staticmethod
    def _to_external(int_lit: int) -> int:
        var = (int_lit >> 1) + 1
        return -var if int_lit & 1 else var

    def add_clause(self, ext_lits: Sequence[int]) -> bool:
        """Add a clause of external literals.

        Returns False if the solver is already in a toplevel-conflict state
        or the clause is trivially unsatisfiable at level 0.
        """
        if self.proof is not None:
            self.proof.input(ext_lits)
        if not self._ok:
            return False
        self._ensure_vars(ext_lits)
        lits = [self._to_internal(lit) for lit in ext_lits]
        # Remove duplicates; drop tautologies.
        lits = sorted(set(lits))
        out: List[int] = []
        for lit in lits:
            if lit ^ 1 in out:
                return True  # tautology: x | ~x
            value = self._lit_value(lit)
            if value == 1 and self._level[lit >> 1] == 0:
                return True  # already satisfied at toplevel
            if value == 0 and self._level[lit >> 1] == 0:
                continue     # already falsified at toplevel: drop literal
            out.append(lit)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if self._decision_level() != 0:
                raise RuntimeError("unit clauses must be added at level 0")
            if not self._enqueue(out[0], None):
                self._ok = False
                return False
            self._ok = self._propagate() is None
            return self._ok
        clause = _Clause(out, learnt=False)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    # ------------------------------------------------------------------
    # Core machinery
    # ------------------------------------------------------------------

    def _lit_value(self, lit: int) -> int:
        """Value of an internal literal: 0/1 or _UNASSIGNED."""
        assign = self._assigns[lit >> 1]
        if assign == _UNASSIGNED:
            return _UNASSIGNED
        return assign ^ (lit & 1)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _attach(self, clause: _Clause) -> None:
        self._watches[clause.lits[0] ^ 1].append(clause)
        self._watches[clause.lits[1] ^ 1].append(clause)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        value = self._lit_value(lit)
        if value != _UNASSIGNED:
            return value == 1
        var = lit >> 1
        self._assigns[var] = 1 - (lit & 1)
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None.

        This is the solver's hot loop: instance attributes are cached in
        locals and the unit-assignment path of ``_enqueue`` is inlined.
        """
        watches = self._watches
        assigns = self._assigns
        levels = self._level
        reasons = self._reason
        trail = self._trail
        decision_level = len(self._trail_lim)
        qhead = self._qhead
        processed = 0
        try:
            while qhead < len(trail):
                lit = trail[qhead]
                qhead += 1
                processed += 1
                false_lit = lit ^ 1
                watchlist = watches[lit]
                new_watchlist: List[_Clause] = []
                append_watch = new_watchlist.append
                i = 0
                n = len(watchlist)
                while i < n:
                    clause = watchlist[i]
                    i += 1
                    lits = clause.lits
                    # Normalize: make sure the false literal is lits[1].
                    if lits[0] == false_lit:
                        lits[0] = lits[1]
                        lits[1] = false_lit
                    first = lits[0]
                    # If the other watch is true, the clause is satisfied.
                    value0 = assigns[first >> 1]
                    if value0 >= 0 and (value0 ^ (first & 1)) == 1:
                        append_watch(clause)
                        continue
                    # Look for a new literal to watch.
                    found = False
                    for k in range(2, len(lits)):
                        other = lits[k]
                        other_value = assigns[other >> 1]
                        if other_value < 0 or \
                                (other_value ^ (other & 1)) == 1:
                            lits[1] = other
                            lits[k] = false_lit
                            watches[other ^ 1].append(clause)
                            found = True
                            break
                    if found:
                        continue
                    # Clause is unit or conflicting under lits[0].
                    append_watch(clause)
                    if value0 >= 0:  # lits[0] is false: conflict
                        new_watchlist.extend(watchlist[i:])
                        watches[lit] = new_watchlist
                        qhead = len(trail)
                        return clause
                    # Inlined _enqueue of an unassigned literal.
                    var = first >> 1
                    assigns[var] = 1 - (first & 1)
                    levels[var] = decision_level
                    reasons[var] = clause
                    trail.append(first)
                watches[lit] = new_watchlist
            return None
        finally:
            self._qhead = qhead
            self.num_propagations += processed
            if self.budget is not None and processed:
                self.budget.charge_propagations(processed)

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _analyze(self, confl: _Clause) -> tuple[List[int], int]:
        """First-UIP analysis; returns (learnt clause, backtrack level)."""
        seen = self._seen
        learnt: List[int] = [0]  # placeholder for the asserting literal
        counter = 0
        lit = -1
        index = len(self._trail) - 1
        clause: Optional[_Clause] = confl
        while True:
            assert clause is not None
            if clause.learnt:
                self._bump_clause(clause)
            start = 0 if lit == -1 else 1
            for k in range(start, len(clause.lits)):
                q = clause.lits[k]
                var = q >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if self._level[var] == self._decision_level():
                        counter += 1
                    else:
                        learnt.append(q)
            # Select the next trail literal to expand.
            while not seen[self._trail[index] >> 1]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = lit >> 1
            clause = self._reason[var]
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            # Put the conflicting side of `lit` at position 0 of its reason
            # clause when expanding (reason clauses store it first already).
        learnt[0] = lit ^ 1

        # Clause minimization: drop literals implied by the rest.
        abstract_levels = 0
        for q in learnt[1:]:
            abstract_levels |= 1 << (self._level[q >> 1] & 31)
        self._min_clear: List[int] = []
        minimized = [learnt[0]]
        for q in learnt[1:]:
            if self._reason[q >> 1] is None or not self._lit_redundant(q, abstract_levels):
                minimized.append(q)
        for var in self._min_clear:
            seen[var] = 0
        for q in learnt:
            seen[q >> 1] = 0
        learnt = minimized

        # Compute backtrack level: second-highest level in the clause.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for k in range(2, len(learnt)):
                if self._level[learnt[k] >> 1] > self._level[learnt[max_i] >> 1]:
                    max_i = k
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = self._level[learnt[1] >> 1]
        return learnt, bt_level

    def _lit_redundant(self, lit: int, abstract_levels: int) -> bool:
        """True if `lit` is implied by other literals in the learnt clause."""
        seen = self._seen
        stack = [lit]
        top = len(self._min_clear)
        while stack:
            p = stack.pop()
            reason = self._reason[p >> 1]
            assert reason is not None
            for q in reason.lits[1:]:
                var = q >> 1
                if seen[var] or self._level[var] == 0:
                    continue
                if self._reason[var] is None or \
                        not ((1 << (self._level[var] & 31)) & abstract_levels):
                    for cleared in self._min_clear[top:]:
                        seen[cleared] = 0
                    del self._min_clear[top:]
                    return False
                seen[var] = 1
                self._min_clear.append(var)
                stack.append(q)
        # Marks set here persist so later redundancy checks can reuse them;
        # the caller clears everything recorded in _min_clear afterwards.
        return True

    def _analyze_final(self, lit: int) -> List[int]:
        """Compute the assumptions responsible for the failing assumption `lit`.

        Called when assumption `lit` is found already falsified: walks the
        implication graph of ``~lit`` back to assumption decisions. Returns
        the unsat core as external literals, phrased as the assumptions were
        given (including `lit` itself).
        """
        core = [self._to_external(lit)]
        if self._decision_level() == 0:
            return core
        seen = self._seen
        seen[lit >> 1] = 1
        for index in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            trail_lit = self._trail[index]
            var = trail_lit >> 1
            if not seen[var]:
                continue
            reason = self._reason[var]
            if reason is None:
                # A decision in the assumption prefix: part of the core.
                if trail_lit != lit:
                    core.append(self._to_external(trail_lit))
            else:
                for q in reason.lits[1:]:
                    if self._level[q >> 1] > 0:
                        seen[q >> 1] = 1
            seen[var] = 0
        seen[lit >> 1] = 0
        return core

    # ------------------------------------------------------------------
    # Activity heap
    # ------------------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for i in range(self._num_vars):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100
        if var in self._order_pos:
            self._heap_up(self._order_pos[var])

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for learnt in self._learnts:
                learnt.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _heap_insert(self, var: int) -> None:
        if var in self._order_pos:
            return
        self._order.append(var)
        pos = len(self._order) - 1
        self._order_pos[var] = pos
        self._heap_up(pos)

    def _heap_up(self, pos: int) -> None:
        order, order_pos, activity = self._order, self._order_pos, self._activity
        var = order[pos]
        act = activity[var]
        while pos > 0:
            parent = (pos - 1) >> 1
            pvar = order[parent]
            if activity[pvar] >= act:
                break
            order[pos] = pvar
            order_pos[pvar] = pos
            pos = parent
        order[pos] = var
        order_pos[var] = pos

    def _heap_down(self, pos: int) -> None:
        order, order_pos, activity = self._order, self._order_pos, self._activity
        size = len(order)
        var = order[pos]
        act = activity[var]
        while True:
            left = 2 * pos + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and activity[order[right]] > activity[order[left]]:
                best = right
            bvar = order[best]
            if activity[bvar] <= act:
                break
            order[pos] = bvar
            order_pos[bvar] = pos
            pos = best
        order[pos] = var
        order_pos[var] = pos

    def _heap_pop(self) -> Optional[int]:
        order, order_pos = self._order, self._order_pos
        while order:
            top = order[0]
            last = order.pop()
            del order_pos[top]
            if order:
                order[0] = last
                order_pos[last] = 0
                self._heap_down(0)
            if self._assigns[top] == _UNASSIGNED:
                return top
        return None

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for index in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[index]
            var = lit >> 1
            self._polarity[var] = self._assigns[var]
            self._assigns[var] = _UNASSIGNED
            self._reason[var] = None
            self._heap_insert(var)
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _reduce_db(self) -> None:
        """Drop the less active half of the learned clauses."""
        self._learnts.sort(key=lambda c: c.activity)
        keep_from = len(self._learnts) // 2
        locked = set()
        for var in range(self._num_vars):
            reason = self._reason[var]
            if reason is not None and reason.learnt:
                locked.add(id(reason))
        kept: List[_Clause] = []
        for i, clause in enumerate(self._learnts):
            if i >= keep_from or id(clause) in locked or len(clause.lits) == 2:
                kept.append(clause)
            else:
                self._detach(clause)
                if self.proof is not None:
                    self.proof.delete(
                        [self._to_external(lit) for lit in clause.lits])
        self._learnts = kept

    def _detach(self, clause: _Clause) -> None:
        for watch_lit in (clause.lits[0] ^ 1, clause.lits[1] ^ 1):
            watchlist = self._watches[watch_lit]
            for i, other in enumerate(watchlist):
                if other is clause:
                    watchlist[i] = watchlist[-1]
                    watchlist.pop()
                    break

    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Solve under the given external assumption literals.

        Returns UNKNOWN — never hangs — when :attr:`budget` trips or the
        legacy :attr:`max_conflicts` cap is reached; :attr:`interrupt_reason`
        records which budget limit was responsible.
        """
        bus = BUS
        if not bus.enabled:
            return self._solve(assumptions)
        bus.begin("sat.solve", "sat", assumptions=len(assumptions))
        conflicts_before = self.num_conflicts
        result = None
        try:
            result = self._solve(assumptions)
            return result
        finally:
            bus.end("sat.solve", "sat",
                    result=result.value if result is not None else "error",
                    conflicts=self.num_conflicts - conflicts_before,
                    reason=self.interrupt_reason)

    def _solve(self, assumptions: Sequence[int]) -> SatResult:
        self._model = None
        self._conflict_core = []
        self.interrupt_reason = None
        if not self._ok:
            return SatResult.UNSAT
        if self.budget is not None:
            self.budget.start()
            reason = self.budget.exceeded()
            if reason is not None:
                self.interrupt_reason = reason
                if BUS.enabled:
                    BUS.instant("sat.budget_trip", "sat", reason=reason,
                                phase="search")
                return SatResult.UNKNOWN
        self._ensure_vars(assumptions)
        internal_assumptions = [self._to_internal(lit) for lit in assumptions]

        max_learnts = max(1000, len(self._clauses) // 3)
        restart_index = 0
        conflicts_at_start = self.num_conflicts

        while True:
            restart_index += 1
            restart_limit = 100 * _luby(restart_index)
            if restart_index > 1 and BUS.enabled:
                BUS.instant("sat.restart", "sat",
                            restarts=restart_index - 1,
                            conflicts=self.num_conflicts - conflicts_at_start,
                            limit=restart_limit)
            status = self._search(internal_assumptions, restart_limit,
                                  max_learnts)
            if status is not None:
                self._cancel_until(0)
                return status
            if self.max_conflicts is not None and \
                    self.num_conflicts - conflicts_at_start >= self.max_conflicts:
                self._cancel_until(0)
                return SatResult.UNKNOWN
            max_learnts = int(max_learnts * 1.1)
            self._cancel_until(0)

    def _search(self, assumptions: List[int], restart_limit: int,
                max_learnts: int) -> Optional[SatResult]:
        budget = self.budget
        conflicts = 0
        while True:
            confl = self._propagate()
            if confl is not None:
                self.num_conflicts += 1
                conflicts += 1
                if BUS.enabled and \
                        self.num_conflicts % _CONFLICT_MILESTONE == 0:
                    BUS.instant("sat.conflicts", "sat",
                                conflicts=self.num_conflicts,
                                learned=self.num_learned)
                if self._decision_level() == 0:
                    self._ok = False
                    return SatResult.UNSAT
                if budget is not None:
                    # Charge before analysis so a tripped budget skips the
                    # (possibly large) learning work for this conflict.
                    budget.charge_conflict()
                    reason = budget.exceeded()
                    if reason is not None:
                        self.interrupt_reason = reason
                        if BUS.enabled:
                            BUS.instant("sat.budget_trip", "sat",
                                        reason=reason, phase="search")
                        return SatResult.UNKNOWN
                learnt, bt_level = self._analyze(confl)
                self.num_learned += 1
                if self.proof is not None:
                    self.proof.learn(
                        [self._to_external(lit) for lit in learnt])
                if budget is not None:
                    budget.charge_learned()
                # Never backtrack past still-valid assumption decisions:
                # re-deciding them is handled below, so plain backjump works.
                self._cancel_until(bt_level)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._ok = False
                        return SatResult.UNSAT
                else:
                    clause = _Clause(learnt, learnt=True)
                    self._learnts.append(clause)
                    self._attach(clause)
                    self._bump_clause(clause)
                    self._enqueue(learnt[0], clause)
                self._var_inc *= self._var_decay
                self._cla_inc *= self._cla_decay
                continue

            if conflicts >= restart_limit:
                return None  # restart
            if self.max_conflicts is not None and conflicts >= self.max_conflicts:
                return None
            if budget is not None:
                # Decision-loop checkpoint: catches deadline expiry and
                # cancellation on propagation-heavy runs with few conflicts.
                reason = budget.exceeded()
                if reason is not None:
                    self.interrupt_reason = reason
                    if BUS.enabled:
                        BUS.instant("sat.budget_trip", "sat",
                                    reason=reason, phase="search")
                    return SatResult.UNKNOWN
            if len(self._learnts) >= max_learnts + len(self._trail):
                self._reduce_db()

            # Decide: assumptions first, then VSIDS.
            level = self._decision_level()
            if level < len(assumptions):
                lit = assumptions[level]
                value = self._lit_value(lit)
                if value == 1:
                    # Already implied: open an empty decision level for it.
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == 0:
                    self._conflict_core = self._analyze_final(lit)
                    return SatResult.UNSAT
                self.num_decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                continue

            var = self._heap_pop()
            if var is None:
                self._model = list(self._assigns)
                return SatResult.SAT
            self.num_decisions += 1
            lit = (var << 1) | (1 - self._polarity[var])
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def model_value(self, ext_var: int) -> Optional[bool]:
        """Truth value of a variable in the last satisfying assignment."""
        if self._model is None:
            return None
        value = self._model[ext_var - 1]
        if value == _UNASSIGNED:
            return None
        return bool(value)

    def model(self) -> Dict[int, bool]:
        """The last satisfying assignment as a dict (unassigned vars True)."""
        return {
            var + 1: (value == 1)
            for var, value in enumerate(self._model or [])
        }

    def model_snapshot(self) -> Optional[List[int]]:
        """An opaque handle to the current satisfying assignment (or None).

        ``solve`` replaces — never mutates — the stored model, so the handle
        stays valid across later calls and can be given back to
        :meth:`restore_model` to make earlier model values retrievable again.
        """
        return self._model

    def restore_model(self, snapshot: Optional[List[int]]) -> None:
        """Reinstate a satisfying assignment saved by :meth:`model_snapshot`."""
        self._model = snapshot

    def unsat_core(self) -> List[int]:
        """Assumption literals involved in the last final conflict.

        Meaningful only after :meth:`solve` returned UNSAT under non-empty
        assumptions; empty if the problem is unsatisfiable regardless of
        assumptions.
        """
        return list(self._conflict_core)
