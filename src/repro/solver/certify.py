"""Trust-but-verify: DRUP proofs and independent result certification.

The CDCL solver and the bit-blaster above it are written from scratch, so
every answer the reproduction produces ultimately rests on unreviewed
search code. This module makes those answers *certifiable*:

- :class:`ProofLog` is a DRUP-style proof trace. The solver records every
  original clause (``i``), every learned clause (``a``), and every
  deleted learned clause (``d``) as it runs; the log is an in-memory list
  of steps and serializes to JSONL or standard DRUP text.
- :func:`check_proof` is an independent *reverse unit propagation* (RUP)
  checker: it replays the proof against its own two-watched-literal
  propagator — sharing no code with the solver's search — verifying that
  each learned clause is RUP with respect to the clause database at the
  time it was learned, and that the claimed conclusion (the empty clause,
  or a conflict under a claimed unsat core of assumptions) follows.
- :func:`check_model` is an independent CNF evaluator: a claimed SAT
  model must satisfy every original clause, clause by clause, plus every
  assumption literal.
- :func:`recheck_unsat` re-proves a claimed unsat core from scratch: a
  fresh one-shot solver gets the original clauses and the core as
  assumptions, must answer UNSAT, and its own proof is checked too.

All certifiers raise :class:`CertificationError` on rejection — a failed
certification means a solver or encoder bug (or an injected fault; see
:mod:`repro.solver.chaos`), never a property of the user's formula.

This module deliberately imports nothing from the solving stack at import
time, so the SAT core can depend on :class:`ProofLog` without a cycle.

Checker soundness notes:

- Deleted clauses that are the *reason* for a root-level assignment are
  kept (the drat-trim rule): removing them could retract a derived unit
  and unsoundly accept later steps.
- Tautological clauses are logged but never indexed — they are satisfied
  under every assignment, so they can neither aid propagation nor be
  falsified by a model.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Proof step kinds.
STEP_INPUT = "i"
STEP_LEARN = "a"
STEP_DELETE = "d"

_UNASSIGNED = -1


class CertificationError(Exception):
    """An independent checker rejected a solver answer.

    Carries which certifier fired (``kind``: ``"proof"``, ``"model"``,
    ``"core"``) and a human-readable reason. Reaching this exception on a
    genuine run means the solving stack produced a wrong or unsupported
    answer; it is also the signal the chaos harness asserts on.
    """

    def __init__(self, kind: str, reason: str):
        super().__init__(f"certification failed [{kind}]: {reason}")
        self.kind = kind
        self.reason = reason


class ProofLog:
    """An in-memory DRUP proof: input, learned, and deleted clauses.

    Steps are ``(kind, lits)`` tuples with external DIMACS-style literals.
    Appending is the only hot-path operation — the solver logs a learned
    clause with one tuple allocation — so the log stays cheap enough to
    leave on for whole query sweeps.
    """

    __slots__ = ("steps",)

    def __init__(self, steps: Optional[List[Tuple[str, Tuple[int, ...]]]] = None):
        self.steps: List[Tuple[str, Tuple[int, ...]]] = \
            list(steps) if steps is not None else []

    # -- recording -----------------------------------------------------

    def input(self, lits: Iterable[int]) -> None:
        self.steps.append((STEP_INPUT, tuple(lits)))

    def learn(self, lits: Iterable[int]) -> None:
        self.steps.append((STEP_LEARN, tuple(lits)))

    def delete(self, lits: Iterable[int]) -> None:
        self.steps.append((STEP_DELETE, tuple(lits)))

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def input_clauses(self) -> List[Tuple[int, ...]]:
        """The original formula: every ``i`` step, in order."""
        return [lits for kind, lits in self.steps if kind == STEP_INPUT]

    def counts(self) -> Dict[str, int]:
        out = {STEP_INPUT: 0, STEP_LEARN: 0, STEP_DELETE: 0}
        for kind, _ in self.steps:
            out[kind] += 1
        return out

    # -- serialization -------------------------------------------------

    def to_jsonl(self, path) -> None:
        """One ``{"op": kind, "lits": [...]}`` object per line."""
        with open(path, "w", encoding="utf-8") as handle:
            for kind, lits in self.steps:
                handle.write(json.dumps({"op": kind, "lits": list(lits)}))
                handle.write("\n")

    @classmethod
    def from_jsonl(cls, path) -> "ProofLog":
        steps: List[Tuple[str, Tuple[int, ...]]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                steps.append((row["op"], tuple(row["lits"])))
        return cls(steps)

    def to_drup(self) -> str:
        """Standard DRUP text: learned and deleted clauses only
        (original clauses live in the DIMACS file, not the proof)."""
        lines = []
        for kind, lits in self.steps:
            if kind == STEP_LEARN:
                lines.append(" ".join(map(str, lits)) + " 0")
            elif kind == STEP_DELETE:
                lines.append("d " + " ".join(map(str, lits)) + " 0")
        return "\n".join(lines) + ("\n" if lines else "")


class _CClause:
    """A checker-side clause (external signed literals, deduplicated)."""

    __slots__ = ("lits",)

    def __init__(self, lits: Tuple[int, ...]):
        self.lits = list(lits)


class RupChecker:
    """Reverse-unit-propagation proof replay, independent of the solver.

    Maintains its own clause database, watch lists, and a persistent
    *root* assignment (the fixpoint of unit propagation over the clauses
    added so far). :meth:`check_rup` and :meth:`check_conflict` make
    temporary assumptions on top of the root state and undo them.

    The implementation intentionally shares nothing with
    :class:`repro.solver.sat.SatSolver` beyond the two-watched-literal
    idea — no conflict analysis, no heuristics, no backjumping — so a bug
    in the search cannot hide in its own certifier.
    """

    def __init__(self):
        self._assign: List[int] = [_UNASSIGNED]   # 1-indexed by variable
        # watches[l] = clauses currently watching literal l (their lits[0]
        # or lits[1] is l); examined when l becomes false.
        self._watches: Dict[int, List[_CClause]] = {}
        self._trail: List[int] = []
        self._by_key: Dict[Tuple[int, ...], List[_CClause]] = {}
        self._root_reasons: set = set()           # id() of root-reason clauses
        self._at_root = False                     # recording root reasons?
        #: True once the empty clause is derivable at root level.
        self.contradiction = False

    # -- assignment plumbing -------------------------------------------

    def _ensure_var(self, var: int) -> None:
        while len(self._assign) <= var:
            self._assign.append(_UNASSIGNED)

    def _value(self, lit: int) -> int:
        assign = self._assign[abs(lit)]
        if assign == _UNASSIGNED:
            return _UNASSIGNED
        return assign if lit > 0 else 1 - assign

    def _set(self, lit: int) -> None:
        self._assign[abs(lit)] = 1 if lit > 0 else 0
        self._trail.append(lit)

    @staticmethod
    def _key(lits: Iterable[int]) -> Tuple[int, ...]:
        return tuple(sorted(set(lits)))

    # -- clause database -----------------------------------------------

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a clause and propagate any unit consequence at root.

        Root assignments are permanent (the checker never retracts them;
        temporary assumptions are layered on top and undone), so a clause
        satisfied or unit at root needs no movable watches.
        """
        unique = self._key(lits)
        for lit in unique:
            self._ensure_var(abs(lit))
        if any(-lit in unique for lit in unique):
            return  # tautology: inert under every assignment
        clause = _CClause(unique)
        self._by_key.setdefault(unique, []).append(clause)
        nonfalse = [lit for lit in clause.lits if self._value(lit) != 0]
        if any(self._value(lit) == 1 for lit in nonfalse):
            return  # permanently satisfied at root
        if not nonfalse:
            self.contradiction = True
            return
        if len(nonfalse) == 1:
            # Unit at root: extend the permanent assignment.
            start = len(self._trail)
            self._set(nonfalse[0])
            self._root_reasons.add(id(clause))
            self._at_root = True
            try:
                if self._propagate_from(start) is not None:
                    self.contradiction = True
            finally:
                self._at_root = False
            return
        # Two non-false literals exist: put them first and watch them.
        ordered = nonfalse[:2] + [lit for lit in clause.lits
                                  if lit not in nonfalse[:2]]
        clause.lits = ordered
        self._watches.setdefault(ordered[0], []).append(clause)
        self._watches.setdefault(ordered[1], []).append(clause)

    def delete_clause(self, lits: Sequence[int]) -> None:
        """Remove one copy of a clause (drat-trim reason-guard applied)."""
        key = self._key(lits)
        bucket = self._by_key.get(key)
        if not bucket:
            return  # unknown deletion target: ignore (tautology or dup)
        clause = bucket[-1]
        if id(clause) in self._root_reasons:
            return  # the clause forced a root literal: keep it sound
        bucket.pop()
        if not bucket:
            del self._by_key[key]
        for watched in clause.lits[:2]:
            watchlist = self._watches.get(watched)
            if watchlist and clause in watchlist:
                watchlist.remove(clause)

    # -- propagation ---------------------------------------------------

    def _propagate_from(self, start: int) -> Optional[_CClause]:
        """Unit propagation over trail literals from index `start` on;
        returns the first falsified clause, or None at fixpoint."""
        trail = self._trail
        watches = self._watches
        qhead = start
        while qhead < len(trail):
            false_lit = -trail[qhead]
            qhead += 1
            watchlist = watches.get(false_lit)
            if not watchlist:
                continue
            kept: List[_CClause] = []
            i = 0
            n = len(watchlist)
            while i < n:
                clause = watchlist[i]
                i += 1
                lits = clause.lits
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], false_lit
                first = lits[0]
                if self._value(first) == 1:
                    kept.append(clause)    # satisfied via the other watch
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], false_lit
                        watches.setdefault(lits[1], []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if self._value(first) == 0:
                    kept.extend(watchlist[i:])
                    watches[false_lit] = kept
                    return clause          # all literals false: conflict
                self._set(first)           # unit
                if self._at_root:
                    self._root_reasons.add(id(clause))
            watches[false_lit] = kept
        return None

    # -- checks --------------------------------------------------------

    def _assume_and_propagate(self, lits: Sequence[int]) -> bool:
        """Push `lits` on top of the root state; True iff a conflict arises.

        Always undoes back to the root assignment before returning.
        """
        if self.contradiction:
            return True
        start = len(self._trail)
        conflict = False
        try:
            for lit in lits:
                self._ensure_var(abs(lit))
                value = self._value(lit)
                if value == 0:
                    conflict = True
                    break
                if value == _UNASSIGNED:
                    self._set(lit)
            if not conflict:
                conflict = self._propagate_from(start) is not None
            return conflict
        finally:
            while len(self._trail) > start:
                self._assign[abs(self._trail.pop())] = _UNASSIGNED

    def check_rup(self, lits: Sequence[int]) -> bool:
        """Is the clause a reverse-unit-propagation consequence?"""
        return self._assume_and_propagate([-lit for lit in self._key(lits)])

    def check_conflict(self, assumptions: Sequence[int] = ()) -> bool:
        """Does asserting `assumptions` yield a conflict by propagation?"""
        return self._assume_and_propagate(list(assumptions))


def check_proof(proof: ProofLog, core: Sequence[int] = ()) -> Dict[str, int]:
    """Validate an UNSAT answer against its DRUP proof.

    Replays `proof`: every learned clause must be RUP w.r.t. the clause
    database at its point in the trace (inputs plus surviving learned
    clauses), and the conclusion — a conflict under the claimed `core` of
    assumption literals, or the empty clause when `core` is empty — must
    follow by unit propagation from the final database.

    Returns replay statistics; raises :class:`CertificationError` on the
    first invalid step.
    """
    checker = RupChecker()
    checked = 0
    for index, (kind, lits) in enumerate(proof.steps):
        if kind == STEP_INPUT:
            checker.add_clause(lits)
        elif kind == STEP_LEARN:
            if not checker.contradiction and not checker.check_rup(lits):
                raise CertificationError(
                    "proof",
                    f"step {index}: learned clause {list(lits)} is not a "
                    "reverse-unit-propagation consequence")
            checker.add_clause(lits)
            checked += 1
        elif kind == STEP_DELETE:
            checker.delete_clause(lits)
        else:
            raise CertificationError("proof",
                                     f"step {index}: unknown kind {kind!r}")
    if not checker.check_conflict(core):
        claim = (f"assumption core {list(core)}" if core
                 else "the empty clause")
        raise CertificationError(
            "proof", f"conclusion unsupported: propagation under {claim} "
            "does not conflict")
    return {"steps": len(proof.steps), "rup_checked": checked,
            "core": len(core)}


def check_model(proof: ProofLog, model: Dict[int, bool],
                assumptions: Sequence[int] = ()) -> Dict[str, int]:
    """Validate a SAT answer: the model must satisfy every input clause.

    `model` maps external variables to booleans (missing variables count
    as False, matching :meth:`repro.solver.sat.SatSolver.model`); every
    `assumptions` literal must additionally hold. This is a pure CNF
    evaluation — no solver state is consulted.
    """
    def _true(lit: int) -> bool:
        value = model.get(abs(lit), False)
        return value if lit > 0 else not value

    for lit in assumptions:
        if not _true(lit):
            raise CertificationError(
                "model", f"assumption literal {lit} is false in the model")
    clauses = 0
    # Hot loop: certify-on overhead is dominated by this scan (every
    # input clause, every check), so the literal test is inlined rather
    # than routed through `_true`.
    get = model.get
    for kind, lits in proof.steps:
        if kind != STEP_INPUT:
            continue
        clauses += 1
        for lit in lits:
            if get(lit, False) if lit > 0 else not get(-lit, False):
                break
        else:
            raise CertificationError(
                "model", f"input clause {list(lits)} is falsified")
    return {"clauses": clauses, "assumptions": len(assumptions)}


def recheck_unsat(clauses: Iterable[Sequence[int]],
                  assumptions: Sequence[int] = ()) -> Dict[str, int]:
    """Re-prove unsatisfiability from scratch with a fresh one-shot solver.

    Used to certify *cores* (failed-assumption sets and
    ``minimize_core`` outputs): the original `clauses` plus the core
    `assumptions` are handed to a brand-new :class:`SatSolver` with proof
    logging on; it must answer UNSAT, and its proof is then independently
    checked. A SAT answer means the claimed core is not actually a core.
    """
    from repro.solver.sat import SatResult, SatSolver  # local: avoid cycle

    solver = SatSolver()
    proof = solver.enable_proof()
    for clause in clauses:
        solver.add_clause(list(clause))
    result = solver.solve(list(assumptions))
    if result is SatResult.SAT:
        raise CertificationError(
            "core", f"claimed core {list(assumptions)} is satisfiable "
            "with the original clauses")
    if result is not SatResult.UNSAT:
        raise CertificationError(
            "core", f"re-proving the core returned {result.value!r}")
    stats = check_proof(proof, core=list(assumptions))
    stats["conflicts"] = solver.num_conflicts
    return stats
