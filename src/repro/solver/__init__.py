"""Boolean satisfiability substrate.

A from-scratch CDCL SAT solver with:

- two-watched-literal unit propagation,
- first-UIP conflict-driven clause learning,
- VSIDS-style variable activity with phase saving,
- Luby restarts and learned-clause database reduction,
- solving under assumptions with final-conflict unsat cores,
- deletion-based core minimization.

The paper uses Z3; this package is the drop-in satisfiability engine that
the bitvector layer (:mod:`repro.smt`) bit-blasts into.
"""

from repro.solver.cnf import CNF, parse_dimacs, to_dimacs
from repro.solver.sat import SatSolver, SatResult

__all__ = ["CNF", "SatSolver", "SatResult", "parse_dimacs", "to_dimacs"]
