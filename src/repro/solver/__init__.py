"""Boolean satisfiability substrate.

A from-scratch CDCL SAT solver with:

- two-watched-literal unit propagation,
- first-UIP conflict-driven clause learning,
- VSIDS-style variable activity with phase saving,
- Luby restarts and learned-clause database reduction,
- solving under assumptions with final-conflict unsat cores,
- deletion-based core minimization,
- cooperative resource budgets and cancellation (:mod:`repro.solver.budget`),
- DRUP proof logging with an independent reverse-unit-propagation checker
  and model/core certifiers (:mod:`repro.solver.certify`), exercised by a
  seeded fault-injection harness (:mod:`repro.solver.chaos`).

The paper uses Z3; this package is the drop-in satisfiability engine that
the bitvector layer (:mod:`repro.smt`) bit-blasts into.
"""

from repro.solver.budget import (
    Budget,
    BudgetExhausted,
    CancellationToken,
    ResourceReport,
)
from repro.solver.certify import (
    CertificationError,
    ProofLog,
    RupChecker,
    check_model,
    check_proof,
    recheck_unsat,
)
from repro.solver.cnf import CNF, parse_dimacs, to_dimacs
from repro.solver.sat import SatSolver, SatResult

__all__ = [
    "Budget", "BudgetExhausted", "CancellationToken", "ResourceReport",
    "CertificationError", "ProofLog", "RupChecker",
    "check_model", "check_proof", "recheck_unsat",
    "CNF", "SatSolver", "SatResult", "parse_dimacs", "to_dimacs",
]
