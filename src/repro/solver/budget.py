"""Resource governance for the solving stack: budgets and cancellation.

SAT runtime is notoriously unpredictable, and a query that hangs on an
adversarial formula hangs the whole process. This module provides the
cooperative *resource governor* threaded through every solving layer:

- :class:`Budget` bundles the limits one query is allowed to spend — a
  wall-clock deadline, a conflict cap, a propagation cap, and a
  learned-clause ceiling (the memory proxy of a CDCL solver) — plus an
  optional :class:`CancellationToken` for external cancellation.
- The :class:`~repro.solver.sat.SatSolver` charges the budget inside its
  conflict/decision loops; the :class:`~repro.smt.bitblast.BitBlaster`
  checks it while encoding (a big multiplier can be expensive before the
  first conflict ever happens). Both give up *cooperatively*: the SAT
  search returns ``UNKNOWN``, the encoder raises :class:`BudgetExhausted`.
- When a limit trips, :class:`ResourceReport` says which limit it was and
  what was spent, so an ``UNKNOWN`` answer is observable rather than a
  shrug. Reports surface on :attr:`repro.smt.solver.SmtSolver.last_report`
  and :attr:`repro.queries.outcome.QueryOutcome.report`.

Budgets *chain*: ``Budget(conflicts=100, parent=total)`` charges both
itself and ``total`` and trips when either is exceeded. This is how CEGIS
enforces a per-iteration budget inside a whole-query budget.

All charging is in-band and deterministic except the deadline, so tests
pin UNKNOWN paths with conflict caps and production callers use ``ms``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Reasons a budget can trip (ResourceReport.reason).
REASON_CANCELLED = "cancelled"
REASON_DEADLINE = "deadline"
REASON_CONFLICTS = "conflicts"
REASON_PROPAGATIONS = "propagations"
REASON_LEARNED = "learned"


class CancellationToken:
    """A cooperative cancellation flag shared with the issuing caller.

    The owner calls :meth:`cancel` (e.g. from a signal handler or another
    thread — setting a bool is atomic under the GIL); every budget holding
    the token then trips with reason ``"cancelled"`` at its next
    checkpoint.
    """

    __slots__ = ("_cancelled",)

    def __init__(self):
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "live"
        return f"CancellationToken({state})"


@dataclass
class ResourceReport:
    """What a tripped budget was doing when it gave up.

    ``reason`` is one of the ``REASON_*`` constants; ``phase`` says which
    layer noticed (``"encode"`` for bit-blasting, ``"search"`` for the SAT
    loop). The spend counters are the budget's cumulative consumption — for
    a chained budget, the *child's* numbers (the limit that tripped).
    """

    reason: str
    phase: str
    elapsed_seconds: float
    conflicts: int
    propagations: int
    learned: int
    limits: Dict[str, object] = field(default_factory=dict)

    def row(self) -> dict:
        """A flat machine-readable rendering (benchmark JSON rows)."""
        return {
            "reason": self.reason,
            "phase": self.phase,
            "elapsed_seconds": self.elapsed_seconds,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
            "learned": self.learned,
            "limits": dict(self.limits),
        }


class BudgetExhausted(Exception):
    """Raised by encoding-side checkpoints when their budget trips.

    The SAT search never raises this — it returns ``SatResult.UNKNOWN`` so
    partially-learned state survives. Encoding has no partial result worth
    keeping, so it unwinds with the report attached.
    """

    def __init__(self, report: ResourceReport):
        super().__init__(f"budget exhausted: {report.reason} "
                         f"({report.phase} phase)")
        self.report = report


class Budget:
    """A chargeable bundle of resource limits for one query (or check).

    Any subset of the limits may be set; an all-``None`` budget never
    trips on spend but still honours its token and parent. The clock
    starts at the first :meth:`start` call (re-entrant: later calls are
    no-ops), so a budget created up front only starts paying for wall
    time once solving begins.

    ``parent`` chains budgets: charges cascade upward, and
    :meth:`exceeded` consults the whole chain. Use :meth:`child` for a
    scoped sub-budget (CEGIS iterations, per-check caps inside a query
    deadline).
    """

    __slots__ = ("max_ms", "max_conflicts", "max_propagations",
                 "max_learned", "token", "parent",
                 "spent_conflicts", "spent_propagations", "spent_learned",
                 "_t0", "_deadline")

    def __init__(self, ms: Optional[float] = None,
                 conflicts: Optional[int] = None,
                 propagations: Optional[int] = None,
                 learned: Optional[int] = None,
                 token: Optional[CancellationToken] = None,
                 parent: Optional["Budget"] = None):
        self.max_ms = ms
        self.max_conflicts = conflicts
        self.max_propagations = propagations
        self.max_learned = learned
        self.token = token
        self.parent = parent
        self.spent_conflicts = 0
        self.spent_propagations = 0
        self.spent_learned = 0
        self._t0: Optional[float] = None
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def child(self, ms: Optional[float] = None,
              conflicts: Optional[int] = None,
              propagations: Optional[int] = None,
              learned: Optional[int] = None) -> "Budget":
        """A fresh sub-budget charging into this one (shares the token)."""
        return Budget(ms=ms, conflicts=conflicts, propagations=propagations,
                      learned=learned, token=self.token, parent=self)

    # ------------------------------------------------------------------
    # Lifecycle and charging
    # ------------------------------------------------------------------

    def start(self) -> "Budget":
        """Start the wall clock (idempotent); chains to the parent."""
        if self._t0 is None:
            self._t0 = time.perf_counter()
            if self.max_ms is not None:
                self._deadline = self._t0 + self.max_ms / 1000.0
        if self.parent is not None:
            self.parent.start()
        return self

    def elapsed_seconds(self) -> float:
        if self._t0 is None:
            return 0.0
        return time.perf_counter() - self._t0

    def charge_conflict(self) -> None:
        budget: Optional[Budget] = self
        while budget is not None:
            budget.spent_conflicts += 1
            budget = budget.parent

    def charge_propagations(self, count: int) -> None:
        budget: Optional[Budget] = self
        while budget is not None:
            budget.spent_propagations += count
            budget = budget.parent

    def charge_learned(self) -> None:
        budget: Optional[Budget] = self
        while budget is not None:
            budget.spent_learned += 1
            budget = budget.parent

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def exceeded(self) -> Optional[str]:
        """The reason this budget (or an ancestor) is out, else None.

        Spend caps allow exactly their value: ``Budget(conflicts=N)``
        admits N conflicts and trips on the (N+1)-th, so ``conflicts=0``
        trips at the first conflict — the deterministic lever the
        UNKNOWN-path tests use.
        """
        budget: Optional[Budget] = self
        while budget is not None:
            token = budget.token
            if token is not None and token.cancelled:
                return REASON_CANCELLED
            if budget.max_conflicts is not None and \
                    budget.spent_conflicts > budget.max_conflicts:
                return REASON_CONFLICTS
            if budget.max_propagations is not None and \
                    budget.spent_propagations > budget.max_propagations:
                return REASON_PROPAGATIONS
            if budget.max_learned is not None and \
                    budget.spent_learned > budget.max_learned:
                return REASON_LEARNED
            if budget._deadline is not None and \
                    time.perf_counter() > budget._deadline:
                return REASON_DEADLINE
            budget = budget.parent
        return None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def limits(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        if self.max_ms is not None:
            out["ms"] = self.max_ms
        if self.max_conflicts is not None:
            out["conflicts"] = self.max_conflicts
        if self.max_propagations is not None:
            out["propagations"] = self.max_propagations
        if self.max_learned is not None:
            out["learned"] = self.max_learned
        if self.parent is not None:
            out["parent"] = self.parent.limits()
        return out

    def report(self, reason: str, phase: str) -> ResourceReport:
        """A :class:`ResourceReport` for the given trip reason."""
        return ResourceReport(
            reason=reason, phase=phase,
            elapsed_seconds=self.elapsed_seconds(),
            conflicts=self.spent_conflicts,
            propagations=self.spent_propagations,
            learned=self.spent_learned,
            limits=self.limits())

    def __repr__(self) -> str:
        parts = [f"{key}={value}" for key, value in self.limits().items()
                 if key != "parent"]
        spent = (f"spent: {self.spent_conflicts}c/"
                 f"{self.spent_propagations}p/{self.spent_learned}l")
        chained = ", chained" if self.parent is not None else ""
        return f"Budget({', '.join(parts)}; {spent}{chained})"
