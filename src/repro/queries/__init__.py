"""Solver-aided queries: solve, verify, synthesize, debug (§2.2).

These are the four first-class constructs a solver-aided host language
exposes. All of them consume the assertion store produced by evaluating a
thunk under the SVM and differ only in the formula they hand to the solver
(rule SQ1 and its variants, §4.3).
"""

from repro.queries.outcome import Model, QueryOutcome
from repro.queries.queries import solve, synthesize, verify
from repro.queries.debug import DebugSession, debug, relax
from repro.solver.budget import Budget, CancellationToken, ResourceReport

__all__ = [
    "Model", "QueryOutcome",
    "solve", "synthesize", "verify",
    "DebugSession", "debug", "relax",
    "Budget", "CancellationToken", "ResourceReport",
]
