"""The debug query: minimal-unsatisfiable-core fault localization (§2.2).

The paper's ``(debug [predicate] expr)`` asks: which expressions of the
given dynamic type are *collectively responsible* for an assertion failure?
The encoding (following Bug-Assist [20] and the paper): every evaluated
expression whose value satisfies the predicate is made *relaxable* — its
value v is replaced by ``ite(sel, v, fresh)`` for a fresh selector ``sel``
and an unconstrained fresh constant. Keeping a selector true means "this
expression behaves as written". The failing assertions plus all selectors
are unsatisfiable; a minimal unsat core over the selectors names a minimal
set of expressions that cannot all be kept — the paper's minimal core, any
member of which can be altered to repair the program.

Instrumentation happens through :func:`relax`, which the HL interpreter
calls on every evaluated expression (carrying the source form as the
label); Python-embedded SDSL code can call it explicitly.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

from repro.obs import tracing
from repro.obs.events import BUS
from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.solver.budget import Budget
from repro.sym.values import (
    SymInt,
    bool_term,
    default_int_width,
    is_boolean_value,
    is_integer_value,
    wrap_bool,
    wrap_int,
)
from repro.vm.context import VM
from repro.vm.errors import AssertionFailure
from repro.queries.outcome import QueryOutcome

_sessions: List["DebugSession"] = []


class DebugSession:
    """Collects relaxation selectors during an instrumented evaluation."""

    def __init__(self, predicate: Callable[[object], bool]):
        self.predicate = predicate
        self.relaxations: List[Tuple[object, T.Term]] = []  # (label, selector)

    def __enter__(self):
        _sessions.append(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        popped = _sessions.pop()
        assert popped is self

    def make_relaxed(self, value, label):
        index = len(self.relaxations)
        selector = T.bool_var(f"sel!{index}")
        self.relaxations.append((label, selector))
        if is_boolean_value(value):
            fresh = T.bool_var(f"angel!{index}")
            return wrap_bool(T.mk_ite(selector, bool_term(value), fresh))
        width = value.width if isinstance(value, SymInt) else default_int_width()
        fresh = T.bv_var(f"angel!{index}", width)
        original = value.term if isinstance(value, SymInt) \
            else T.bv_const(value, width)
        return wrap_int(T.mk_ite(selector, original, fresh))


def relax(value, label):
    """Make `value` relaxable in the active debug session, if any.

    Outside a debug session — or when the value does not satisfy the
    session's predicate, or is not a primitive — the value is returned
    unchanged, so instrumentation points cost nothing in normal runs.
    """
    if not _sessions:
        return value
    session = _sessions[-1]
    if not (is_boolean_value(value) or is_integer_value(value)):
        return value
    if not session.predicate(value):
        return value
    return session.make_relaxed(value, label)


def debug(thunk: Callable[[], object],
          predicate: Optional[Callable[[object], bool]] = None,
          max_conflicts: Optional[int] = None,
          budget: Optional[Budget] = None,
          trace=None,
          certify: Optional[bool] = None,
          analyze: Optional[bool] = None) -> QueryOutcome:
    """Localize the failure of `thunk` to a minimal core of expressions.

    Returns a ``sat`` outcome whose ``core`` lists the labels of a minimal
    set of relaxed expressions responsible for the failure; ``unsat`` means
    the thunk does not actually fail (nothing to debug).

    `budget` bounds the whole query. Core minimization is *anytime*: if
    the budget trips mid-minimization, the outcome is still ``sat`` with
    the smallest core proven so far, plus the trip's ``report`` and a
    message noting the core may not be minimal. Only an exhaustion during
    the *initial* check yields ``unknown``. `trace` attaches an
    observability sink exactly as in :func:`repro.queries.queries.solve`,
    and `certify` likewise enables trust-but-verify mode — in this query
    it additionally re-proves the minimized core unsat on a fresh solver
    before the core is reported. `analyze` enables the pre-solver
    sanitizer as in :func:`repro.queries.queries.solve`.
    """
    from repro.queries.queries import _query_span
    with tracing(trace), _query_span("query.debug") as span:
        span.outcome = outcome = _debug(thunk, predicate, max_conflicts,
                                        budget, certify, analyze)
        return outcome


def _debug(thunk, predicate, max_conflicts, budget,
           certify=None, analyze=None) -> QueryOutcome:
    if predicate is None:
        predicate = lambda value: True  # relax every primitive
    with VM() as vm, DebugSession(predicate) as session:
        vm.stats.start()
        try:
            thunk()
            definite_failure = False
        except AssertionFailure:
            definite_failure = True
        finally:
            vm.stats.stop()
        if definite_failure:
            return QueryOutcome(
                "unknown", stats=vm.stats,
                message="failure is independent of any relaxable expression")
        solver = SmtSolver(max_conflicts=max_conflicts, budget=budget,
                           certify=certify, analyze=analyze)
        for assertion in vm.assertions:
            solver.add_assertion(assertion)
        selectors = [selector for _, selector in session.relaxations]
        label_of = {selector: label for label, selector in session.relaxations}
        # Solver effort flows in through the event bus: each check emits
        # one `smt.check` span whose end event carries the CheckStats
        # delta, and the stats listener accumulates them — the same
        # emission path that feeds tracers, metrics, and the profiler.
        started = time.perf_counter()
        unsubscribe = BUS.subscribe(vm.stats.check_listener)
        try:
            result = solver.check(selectors)
        finally:
            unsubscribe()
            vm.stats.solver_seconds += time.perf_counter() - started
        if result is SmtResult.SAT:
            return QueryOutcome("unsat", stats=vm.stats,
                                message="no assertion failure to debug")
        if result is SmtResult.UNKNOWN:
            report = solver.last_report
            message = ""
            if report is not None:
                message = (f"budget exhausted: {report.reason}"
                           f" ({report.phase} phase)")
            return QueryOutcome("unknown", stats=vm.stats,
                                message=message, report=report)
        # Deletion minimization runs many checks on the same persistent
        # solver; the listener stays subscribed for the whole section and
        # sums their per-check deltas (equal to the cumulative delta).
        # minimize_core is anytime: on budget exhaustion it returns the
        # smallest core established so far and leaves the trip report in
        # solver.last_report.
        started = time.perf_counter()
        unsubscribe = BUS.subscribe(vm.stats.check_listener)
        try:
            core = solver.minimize_core()
        finally:
            unsubscribe()
            vm.stats.solver_seconds += time.perf_counter() - started
        labels = [label_of[selector] for selector in core
                  if selector in label_of]
        outcome = QueryOutcome("sat", core=labels, stats=vm.stats)
        if solver.last_report is not None:
            outcome.report = solver.last_report
            outcome.message = ("core minimization stopped early "
                               f"({solver.last_report.reason}); "
                               "core is unsat but may not be minimal")
        return outcome
