"""Query results: first-class models and outcomes (§2.2).

The paper stresses that interpretations (models) and cores are *first-class
values* that programs can manipulate; :class:`Model` here plays that role.
``model.evaluate(value)`` maps any SVM value — symbolic primitives, lists,
unions, boxes, vectors — to the concrete value it denotes under the model,
which is the paper's ``evaluate`` utility.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.smt import terms as T
from repro.smt.solver import Model as SmtModel
from repro.solver.budget import ResourceReport
from repro.sym.values import Box, SymBool, SymInt, Union
from repro.vm.mutable import Vector
from repro.vm.stats import EvalStats


class Model:
    """A solver interpretation of the symbolic constants, as SVM values."""

    def __init__(self, smt_model: SmtModel):
        self._smt = smt_model

    def __contains__(self, value) -> bool:
        if isinstance(value, (SymBool, SymInt)):
            return value.term in self._smt
        return False

    def evaluate(self, value):
        """Concretize an SVM value under this model."""
        if isinstance(value, SymBool):
            return bool(self._smt.evaluate(value.term))
        if isinstance(value, SymInt):
            return T.to_signed(self._smt.evaluate(value.term), value.width)
        if isinstance(value, tuple):
            return tuple(self.evaluate(element) for element in value)
        if isinstance(value, Union):
            for guard, member in value.entries:
                if self._smt.evaluate(guard):
                    return self.evaluate(member)
            # No guard holds: the union is unreachable under this model;
            # return the last member's value as an arbitrary representative.
            return self.evaluate(value.entries[-1][1])
        if isinstance(value, Box):
            return self.evaluate(value.value)
        if isinstance(value, Vector):
            return [self.evaluate(cell) for cell in value.cells]
        return value

    def bindings(self) -> Dict[T.Term, object]:
        return self._smt.bindings()

    def __repr__(self) -> str:
        return f"Model({self._smt.bindings()})"


class QueryOutcome:
    """The result of a solver-aided query.

    An ``unknown`` outcome is never a silent shrug: :attr:`report` holds
    the :class:`~repro.solver.budget.ResourceReport` saying which resource
    limit tripped and what was spent. Anytime queries (CEGIS, debug's core
    minimization) may pair ``unknown``/early-stop with a best-effort
    :attr:`model` or :attr:`core` — the best answer found before the
    budget ran out.
    """

    def __init__(self, status: str, model: Optional[Model] = None,
                 core: Optional[List] = None,
                 stats: Optional[EvalStats] = None,
                 message: str = "",
                 report: Optional[ResourceReport] = None):
        if status not in ("sat", "unsat", "unknown"):
            raise ValueError(f"bad status {status!r}")
        self.status = status
        self.model = model
        self.core = core or []
        self.stats = stats or EvalStats()
        self.message = message
        self.report = report

    def __bool__(self) -> bool:
        return self.status == "sat"

    def __repr__(self) -> str:
        extra = f", {self.message}" if self.message else ""
        return f"QueryOutcome({self.status}{extra})"
