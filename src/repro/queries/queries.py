"""The solver-aided queries: solve, verify, and synthesize (§2.2, rule SQ1).

Each query evaluates a Python thunk under a fresh :class:`repro.vm.context.VM`.
The thunk builds symbolic values, branches through ``vm.branch``/lifted
builtins, and calls ``vm.assert_``; evaluation leaves behind the assertion
store α, and the query then asks the solver:

- ``solve``   — ∃ inputs. ⋀α          (angelic execution)
- ``verify``  — ∃ inputs. ⋁_{a∈α} ¬a   (find a counterexample)
- ``synthesize`` — ∃ holes. ∀ inputs. ⋀α, decided by CEGIS with
  formula-level substitution of counterexamples (no re-execution needed).

Queries return a :class:`~repro.queries.outcome.QueryOutcome` carrying the
model (or counterexample), the evaluation statistics (Table 4's columns),
and solver timing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterable, List, Optional, Sequence

from repro.obs import tracing
from repro.obs.events import BUS
from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.solver.budget import Budget
from repro.sym.values import SymBool, SymInt
from repro.vm.context import VM
from repro.vm.errors import AssertionFailure
from repro.queries.outcome import Model, QueryOutcome


def _run(thunk: Callable[[], object], vm: VM):
    """Evaluate the thunk under `vm`, returning (definitely_failed, value)."""
    vm.stats.start()
    try:
        value = thunk()
        return False, value
    except AssertionFailure:
        return True, None
    finally:
        vm.stats.stop()


def _check(solver: SmtSolver, vm: VM,
           assumptions: Sequence[T.Term] = ()) -> SmtResult:
    # The query's EvalStats listens on the event bus for the duration of
    # the check: SmtSolver.check publishes one `smt.check` span whose end
    # event carries the CheckStats delta, and that single emission path
    # feeds the stats here, the profiler, and any subscribed trace sinks
    # alike. try/finally: a check that raises mid-solve (cancellation
    # delivered as an exception, KeyboardInterrupt, encoder errors) must
    # still record its partial effort — SmtSolver.check emits the end
    # event from its own finally block, so the delta is never stale.
    started = time.perf_counter()
    unsubscribe = BUS.subscribe(vm.stats.check_listener)
    try:
        return solver.check(assumptions)
    finally:
        unsubscribe()
        vm.stats.solver_seconds += time.perf_counter() - started


@contextmanager
def _query_span(name: str):
    """A query-level span; set `outcome` on the yielded carrier to label
    the end event with the query's status."""
    traced = BUS.enabled
    carrier = _OutcomeCarrier()
    if traced:
        BUS.begin(name, "query")
    try:
        yield carrier
    finally:
        if traced:
            outcome = carrier.outcome
            BUS.end(name, "query",
                    status=outcome.status if outcome is not None else "error")


class _OutcomeCarrier:
    __slots__ = ("outcome",)

    def __init__(self):
        self.outcome: Optional[QueryOutcome] = None


def _unknown(vm: VM, solver: SmtSolver, message: str = "") -> QueryOutcome:
    """An UNKNOWN outcome carrying the solver's resource report."""
    report = solver.last_report
    if not message and report is not None:
        message = f"budget exhausted: {report.reason} ({report.phase} phase)"
    return QueryOutcome("unknown", stats=vm.stats, message=message,
                        report=report)


def solve(thunk: Callable[[], object],
          max_conflicts: Optional[int] = None,
          budget: Optional[Budget] = None,
          trace=None,
          certify: Optional[bool] = None,
          analyze: Optional[bool] = None) -> QueryOutcome:
    """Find an interpretation under which the thunk's assertions all hold.

    `budget` bounds the whole query (encoding and solving); on exhaustion
    the outcome is ``unknown`` with a populated ``report``.

    `trace` attaches an observability sink for the query's duration: a
    path writes JSONL trace events there, a callable is subscribed to the
    event bus directly, and ``None`` defers to the ``REPRO_TRACE``
    environment variable (no-op when unset).

    `certify` turns on trust-but-verify mode for the query's solver: a
    DRUP proof is logged and every answer is independently re-checked
    (see :mod:`repro.solver.certify`). ``None`` defers to the
    ``REPRO_CERTIFY`` environment variable.

    `analyze` turns on the pre-solver static-analysis sanitizer
    (:mod:`repro.analysis`): each asserted formula is rewritten through
    abstract interpretation before bit-blasting. ``None`` defers to the
    ``REPRO_ANALYZE`` environment variable.
    """
    with tracing(trace), _query_span("query.solve") as span:
        span.outcome = outcome = _solve(thunk, max_conflicts, budget,
                                        certify, analyze)
        return outcome


def _solve(thunk, max_conflicts, budget, certify, analyze) -> QueryOutcome:
    with VM() as vm:
        failed, _ = _run(thunk, vm)
        if failed:
            return QueryOutcome("unsat", stats=vm.stats,
                                message="execution fails on every path")
        solver = SmtSolver(max_conflicts=max_conflicts, budget=budget,
                           certify=certify, analyze=analyze)
        for assertion in vm.assertions:
            solver.add_assertion(assertion)
        result = _check(solver, vm)
        if result is SmtResult.SAT:
            return QueryOutcome("sat", model=Model(solver.model()),
                                stats=vm.stats)
        if result is SmtResult.UNKNOWN:
            return _unknown(vm, solver)
        return QueryOutcome("unsat", stats=vm.stats)


def verify(thunk: Callable[[], object],
           setup: Optional[Callable[[], object]] = None,
           max_conflicts: Optional[int] = None,
           budget: Optional[Budget] = None,
           trace=None,
           certify: Optional[bool] = None,
           analyze: Optional[bool] = None) -> QueryOutcome:
    """Find a counterexample: an interpretation violating some assertion.

    Assertions made by `setup` (and, in Rosette, any assertions made before
    the ``verify`` call) are *assumptions* — preconditions the inputs must
    satisfy; assertions made by `thunk` are the verification targets. A
    `sat` outcome means the property FAILS (the model is the
    counterexample); `unsat` means the assertions hold for every input —
    the paper's "no counterexample found". `trace`, `certify`, and
    `analyze` are as in :func:`solve`.
    """
    with tracing(trace), _query_span("query.verify") as span:
        span.outcome = outcome = _verify(thunk, setup, max_conflicts,
                                         budget, certify, analyze)
        return outcome


def _verify(thunk, setup, max_conflicts, budget, certify,
            analyze) -> QueryOutcome:
    with VM() as vm:
        if setup is not None:
            setup_failed, _ = _run(setup, vm)
            if setup_failed:
                return QueryOutcome("unsat", stats=vm.stats,
                                    message="preconditions are unsatisfiable")
        assumptions = list(vm.assertions)
        mark = len(assumptions)
        failed, _ = _run(thunk, vm)
        if failed:
            # Execution fails unconditionally: every input is a witness.
            return QueryOutcome("sat", model=Model(_empty_model()),
                                stats=vm.stats,
                                message="definite assertion failure")
        targets = vm.assertions[mark:]
        if not targets:
            return QueryOutcome("unsat", stats=vm.stats,
                                message="no assertions reachable")
        solver = SmtSolver(max_conflicts=max_conflicts, budget=budget,
                           certify=certify, analyze=analyze)
        for assumption in assumptions:
            solver.add_assertion(assumption)
        solver.add_assertion(T.mk_or(*[T.mk_not(a) for a in targets]))
        result = _check(solver, vm)
        if result is SmtResult.SAT:
            return QueryOutcome("sat", model=Model(solver.model()),
                                stats=vm.stats)
        if result is SmtResult.UNKNOWN:
            return _unknown(vm, solver)
        return QueryOutcome("unsat", stats=vm.stats)


def _empty_model():
    from repro.smt.solver import Model as SmtModel
    return SmtModel({})


def _input_terms(inputs: Iterable) -> List[T.Term]:
    terms = []
    for value in inputs:
        if isinstance(value, (SymBool, SymInt)):
            terms.append(value.term)
        elif isinstance(value, T.Term):
            terms.append(value)
        else:
            raise TypeError(
                f"synthesis inputs must be symbolic constants: {value!r}")
    return terms


def cegis(goal: T.Term, input_terms: Sequence[T.Term], vm: VM,
          max_iterations: int = 64,
          max_conflicts: Optional[int] = None,
          budget: Optional[Budget] = None,
          iteration_budget: Optional[dict] = None,
          certify: Optional[bool] = None,
          analyze: Optional[bool] = None) -> QueryOutcome:
    """Counterexample-guided inductive synthesis of ∃holes ∀inputs. goal.

    Counterexamples are *substituted* into the goal formula — the term
    layer re-simplifies bottom-up, so each example formula is typically
    much smaller than the symbolic goal and no program re-execution is
    needed.

    Both sides of the loop solve *incrementally* on persistent solvers:

    - The guess solver accumulates one assertion per counterexample; each
      new example is bit-blasted once and the SAT solver's learned clauses
      about the hole variables carry over to every later guess.
    - The check solver tests each candidate inside a ``push``/``pop``
      scope, so candidate constraints retract without discarding the
      shared Tseitin gates or clauses learned while refuting earlier
      candidates. Terms shared between iterations (the interned term DAG
      guarantees structural sharing) hit the encode cache instead of
      being re-blasted.

    Resource governance: `budget` caps the *whole* CEGIS run (both
    solvers charge the same budget), while `iteration_budget` — a dict of
    :class:`Budget` keyword arguments like ``{"conflicts": 10_000}`` — is
    re-minted as a child budget each iteration, so one pathological guess
    or check cannot consume the entire allowance. CEGIS is an *anytime*
    query: on exhaustion it returns ``unknown`` carrying the last
    candidate that satisfied all examples so far as a best-effort model.
    """
    inputs = set(input_terms)
    hole_terms = [var for var in T.term_vars(goal) if var not in inputs]
    examples: List[dict] = [{var: _default_value(var) for var in inputs}]
    guess_solver = SmtSolver(max_conflicts=max_conflicts, budget=budget,
                             certify=certify, analyze=analyze)
    check_solver = SmtSolver(max_conflicts=max_conflicts, budget=budget,
                             certify=certify, analyze=analyze)

    def _exhausted(solver: SmtSolver, phase: str) -> QueryOutcome:
        outcome = _unknown(vm, solver)
        outcome.message = (
            f"cegis stopped in the {phase} phase of iteration {iterations}"
            + (f": {outcome.message}" if outcome.message else ""))
        if best_candidate is not None:
            outcome.model = Model(best_candidate)
            outcome.message += (
                f"; best candidate satisfies {best_examples} example(s)")
        return outcome

    best_candidate = None
    best_examples = 0
    examples_asserted = 0
    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        traced = BUS.enabled
        if traced:
            BUS.begin("cegis.iteration", "query",
                      iteration=iterations, examples=len(examples))
        iteration_outcome = "unknown"
        try:
            if iteration_budget is not None:
                scoped = Budget(parent=budget, **iteration_budget)
                guess_solver.set_budget(scoped)
                check_solver.set_budget(scoped)
            # Guess: find hole values consistent with all examples so far.
            # Only examples discovered since the last guess need encoding.
            while examples_asserted < len(examples):
                example = examples[examples_asserted]
                examples_asserted += 1
                bound = T.substitute(goal, {
                    var: _const_for(var, value)
                    for var, value in example.items()})
                guess_solver.add_assertion(bound)
            guess_result = _check(guess_solver, vm)
            if guess_result is SmtResult.UNKNOWN:
                return _exhausted(guess_solver, "guess")
            if guess_result is not SmtResult.SAT:
                iteration_outcome = "no-candidate"
                return QueryOutcome(
                    "unsat", stats=vm.stats,
                    message=f"no candidate after {len(examples)} example(s)")
            candidate = guess_solver.model(hole_terms)
            best_candidate = candidate
            best_examples = len(examples)

            # Check: does the candidate work for every input? The candidate
            # binding lives in a scope so the next iteration can retract it.
            checked = T.substitute(goal, {
                var: _const_for(var, candidate[var]) for var in hole_terms})
            check_solver.push()
            try:
                check_solver.add_assertion(T.mk_not(checked))
                check_result = _check(check_solver, vm)
                if check_result is SmtResult.SAT:
                    counterexample = check_solver.model(list(inputs))
            finally:
                check_solver.pop()
            if check_result is SmtResult.UNKNOWN:
                return _exhausted(check_solver, "check")
            if check_result is not SmtResult.SAT:
                iteration_outcome = "converged"
                outcome = QueryOutcome("sat", model=Model(candidate),
                                       stats=vm.stats)
                outcome.message = \
                    f"cegis converged in {iterations} iteration(s)"
                return outcome
            iteration_outcome = "counterexample"
            examples.append({var: counterexample[var] for var in inputs})
        finally:
            if traced:
                BUS.end("cegis.iteration", "query", outcome=iteration_outcome)
    outcome = QueryOutcome(
        "unknown", stats=vm.stats,
        message=f"cegis hit the {max_iterations}-iteration cap")
    if best_candidate is not None:
        outcome.model = Model(best_candidate)
    return outcome


def synthesize(inputs: Sequence, thunk: Callable[[], object],
               setup: Optional[Callable[[], object]] = None,
               max_iterations: int = 64,
               max_conflicts: Optional[int] = None,
               budget: Optional[Budget] = None,
               iteration_budget: Optional[dict] = None,
               trace=None,
               certify: Optional[bool] = None,
               analyze: Optional[bool] = None) -> QueryOutcome:
    """CEGIS synthesis: make the assertions hold for *all* `inputs`.

    `inputs` are the universally quantified symbolic constants (the paper's
    ``(synthesize [input] expr)`` form); every other symbolic constant in
    the assertions is an existentially quantified hole. Assertions made by
    `setup` are input preconditions: the goal is ∀inputs. pre ⇒ post.
    See :func:`cegis` for the `budget`/`iteration_budget` semantics and
    :func:`solve` for `trace`, `certify`, and `analyze`.
    """
    with tracing(trace), _query_span("query.synthesize") as span:
        span.outcome = outcome = _synthesize(
            inputs, thunk, setup, max_iterations, max_conflicts, budget,
            iteration_budget, certify, analyze)
        return outcome


def _synthesize(inputs, thunk, setup, max_iterations, max_conflicts,
                budget, iteration_budget, certify, analyze) -> QueryOutcome:
    with VM() as vm:
        if setup is not None:
            setup_failed, _ = _run(setup, vm)
            if setup_failed:
                return QueryOutcome("unsat", stats=vm.stats,
                                    message="preconditions are unsatisfiable")
        assumptions = list(vm.assertions)
        mark = len(assumptions)
        failed, _ = _run(thunk, vm)
        if failed:
            return QueryOutcome("unsat", stats=vm.stats,
                                message="execution fails on every path")
        targets = vm.assertions[mark:]
        pre = T.mk_and(*assumptions) if assumptions else T.TRUE
        post = T.mk_and(*targets) if targets else T.TRUE
        goal = T.mk_implies(pre, post)
        return cegis(goal, _input_terms(inputs), vm,
                     max_iterations=max_iterations,
                     max_conflicts=max_conflicts,
                     budget=budget,
                     iteration_budget=iteration_budget,
                     certify=certify,
                     analyze=analyze)


def _default_value(var: T.Term):
    return False if var.sort is T.BOOL else 0


def _const_for(var: T.Term, value) -> T.Term:
    if var.sort is T.BOOL:
        return T.TRUE if value else T.FALSE
    return T.bv_const(int(value), var.width)
