"""Synthetic website generator matched to the paper's Table 2 shapes.

The paper's WEBSYNTH benchmarks scrape three real pages; their reported
query bounds are the page's *shape* statistics — the number of tree nodes,
the tree depth, and the number of XPath tokens — because those are what
determine the size of the symbolic evaluation. This module deterministically
generates trees with prescribed shape, plants a column of data records at a
fixed tag path (so a correct XPath exists), and records four of them as the
user-supplied examples.

``SITE_SPECS`` carries both the paper's shape numbers and a scaled-down
default used by the tests (the benchmarks accept a ``scale``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.sdsl.websynth.tree import HtmlNode


@dataclass(frozen=True)
class SiteSpec:
    """Shape statistics of one benchmark page (Table 2)."""

    name: str
    nodes: int          # of tree nodes
    depth: int          # tree depth
    tokens: int         # of XPath tokens
    paper_nodes: int
    paper_depth: int
    paper_tokens: int


# The paper's Table 2: iTunes 1104/10/150, IMDb 2152/20/359, AlAnon 2002/22/161.
SITE_SPECS: Tuple[SiteSpec, ...] = (
    SiteSpec("iTunes", nodes=1104, depth=10, tokens=150,
             paper_nodes=1104, paper_depth=10, paper_tokens=150),
    SiteSpec("IMDb", nodes=2152, depth=20, tokens=359,
             paper_nodes=2152, paper_depth=20, paper_tokens=359),
    SiteSpec("AlAnon", nodes=2002, depth=22, tokens=161,
             paper_nodes=2002, paper_depth=22, paper_tokens=161),
)


def _scaled(spec: SiteSpec, scale: float) -> SiteSpec:
    if scale >= 1.0:
        return spec
    return SiteSpec(
        spec.name,
        nodes=max(16, int(spec.nodes * scale)),
        depth=max(4, int(spec.depth * max(scale * 2, 0.3))),
        tokens=max(8, int(spec.tokens * scale)),
        paper_nodes=spec.paper_nodes, paper_depth=spec.paper_depth,
        paper_tokens=spec.paper_tokens)


def generate_site(spec: SiteSpec, scale: float = 1.0,
                  examples: int = 4, seed: int = 7):
    """Build a synthetic page for `spec`.

    Returns ``(root, data_path, example_texts)`` where `data_path` is the
    tag path (root-exclusive) at which data records live — the ground
    truth the synthesizer should rediscover — and `example_texts` are the
    texts of `examples` of the records.
    """
    spec = _scaled(spec, scale)
    rng = random.Random(seed)
    tags = [f"t{index}" for index in range(spec.tokens)]

    # The data column: a distinctive path of depth-1 tags under the root.
    data_path = [tags[rng.randrange(len(tags))] for _ in range(spec.depth - 1)]

    # The record container: nested single chain following data_path, whose
    # last level holds the records (one leaf per record).
    record_count = max(examples * 2, 8)
    records = tuple(
        HtmlNode(data_path[-1], text=f"datum-{index}")
        for index in range(record_count))
    column = records
    for tag in reversed(data_path[:-1]):
        column = (HtmlNode(tag, children=column),)
    data_subtree = column[0]

    budget = spec.nodes - _size(data_subtree) - 1

    # Random filler around the data column, respecting the depth budget.
    def build_filler(levels_left: int) -> HtmlNode:
        nonlocal budget
        tag = tags[rng.randrange(len(tags))]
        children: List[HtmlNode] = []
        while budget > 0 and levels_left > 1 and \
                len(children) < 4 and rng.random() < 0.7:
            budget -= 1
            children.append(build_filler(levels_left - 1))
        if not children and rng.random() < 0.4:
            return HtmlNode(tag, text=f"noise-{rng.randrange(10_000)}")
        return HtmlNode(tag, children=tuple(children))

    siblings: List[HtmlNode] = [data_subtree]
    while budget > 0:
        budget -= 1
        siblings.insert(rng.randrange(len(siblings) + 1),
                        build_filler(spec.depth - 1))
    root = HtmlNode("root", children=tuple(siblings))
    example_texts = [f"datum-{index}" for index in range(examples)]
    return root, data_path, example_texts


def _size(node: HtmlNode) -> int:
    return 1 + sum(_size(child) for child in node.children)
