"""The WEBSYNTH synthesis query: examples in, XPath out.

Following §5.1: the synthesizer asserts that a recursive XPath interpreter,
traversing the input tree along a symbolic XPath, reaches every example
datum — then asks ``solve`` for an interpretation of the XPath tokens. The
search space is t^d candidate XPaths (t tokens, depth d), but the SVM's
encoding is a conjunction of per-example reachability formulas over the
concrete tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.queries import Budget, ResourceReport, solve
from repro.vm import assert_
from repro.vm.stats import EvalStats
from repro.sdsl.websynth.tree import HtmlNode
from repro.sdsl.websynth.xpath import (
    SymbolicXPath,
    token_vocabulary,
    xpath_selects,
)


@dataclass
class WebSynthResult:
    """Outcome of one XPath synthesis query."""

    status: str                       # "sat" | "unsat" | "unknown"
    xpath: Optional[Tuple[str, ...]] = None
    stats: EvalStats = field(default_factory=EvalStats)
    report: Optional[ResourceReport] = None


def synthesize_xpath(root: HtmlNode, examples: Sequence[str],
                     length: Optional[int] = None,
                     max_conflicts: Optional[int] = None,
                     budget: Optional[Budget] = None,
                     trace=None,
                     certify: Optional[bool] = None) -> WebSynthResult:
    """Synthesize an XPath selecting every example text of `root`.

    `length` defaults to the depth of the example nodes (the synthetic
    sites plant all records at one depth); the tree's own depth is the
    natural upper bound noted in the paper. `budget` bounds the query; on
    exhaustion the result is ``unknown`` with the trip's ``report``.
    `trace` (a JSONL path or a callable) attaches an observability sink
    for the query, and `certify` enables trust-but-verify solving, both
    as in :func:`repro.queries.queries.solve`.
    """
    if length is None:
        length = _example_depth(root, examples[0])
        if length is None:
            return WebSynthResult(status="unsat")
    vocabulary = token_vocabulary(root)
    holder: dict = {}

    def program():
        xpath = SymbolicXPath(vocabulary, length)
        holder["xpath"] = xpath
        xpath.assume_well_formed()
        for example in examples:
            reached = xpath_selects(root, xpath, 0, example)
            assert_(reached, f"XPath must reach {example!r}")

    outcome = solve(program, max_conflicts=max_conflicts, budget=budget,
                    trace=trace, certify=certify)
    if outcome.status == "sat":
        return WebSynthResult(status="sat",
                              xpath=holder["xpath"].decode(outcome.model),
                              stats=outcome.stats)
    return WebSynthResult(status=outcome.status, stats=outcome.stats,
                          report=outcome.report)


def _example_depth(root: HtmlNode, text: str) -> Optional[int]:
    """Depth (in edges) of the node holding `text`."""
    def search(node: HtmlNode, depth: int) -> Optional[int]:
        if node.text == text:
            return depth
        for child in node.children:
            found = search(child, depth + 1)
            if found is not None:
                return found
        return None
    return search(root, 0)
