"""HTML document trees for WEBSYNTH.

A deliberately small DOM: every node has a tag, an optional text payload
(only at leaves, where scraped data lives), and a tuple of children. Trees
are immutable and always concrete — only the XPath being synthesized is
symbolic, which is why the WEBSYNTH rows of Table 4 report zero unions.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple


class HtmlNode:
    """One element of an HTML tree."""

    __slots__ = ("tag", "text", "children")

    def __init__(self, tag: str, children: Tuple["HtmlNode", ...] = (),
                 text: Optional[str] = None):
        self.tag = tag
        self.children = tuple(children)
        self.text = text

    def walk(self) -> Iterator["HtmlNode"]:
        """All nodes in document order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def texts(self) -> Iterator[str]:
        for node in self.walk():
            if node.text is not None:
                yield node.text

    def __repr__(self) -> str:
        label = f"{self.tag}"
        if self.text is not None:
            label += f"={self.text!r}"
        return f"<{label} ({len(self.children)} children)>"


def tree_size(root: HtmlNode) -> int:
    return sum(1 for _ in root.walk())


def tree_depth(root: HtmlNode) -> int:
    if not root.children:
        return 1
    return 1 + max(tree_depth(child) for child in root.children)


def render_html(root: HtmlNode, indent: int = 0) -> str:
    """Pretty-print the tree as pseudo-HTML (docs and examples)."""
    pad = "  " * indent
    if root.text is not None and not root.children:
        return f"{pad}<{root.tag}>{root.text}</{root.tag}>"
    lines = [f"{pad}<{root.tag}>"]
    for child in root.children:
        lines.append(render_html(child, indent + 1))
    lines.append(f"{pad}</{root.tag}>")
    return "\n".join(lines)
