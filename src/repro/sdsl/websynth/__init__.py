"""WEBSYNTH — example-based web scraping by XPath synthesis (§5.1).

Given an HTML tree and a few examples of the data to be scraped, WEBSYNTH
synthesizes an XPath expression that retrieves the data. The synthesizer
checks that every example datum is reached when a recursive XPath
interpreter traverses the tree according to a *symbolic* XPath — a list of
symbolic token indices. The interpreter is self-finitizing with respect to
the tree: recursion unwinds exactly as deep as the (concrete) tree.

The paper scrapes three real sites (iTunes, IMDb, AlAnon). Real pages are
unavailable offline, so :mod:`repro.sdsl.websynth.sites` generates
synthetic trees matching the paper's reported shape statistics (Table 2:
node count, depth, XPath token count) — the quantities that determine the
query's cost.
"""

from repro.sdsl.websynth.tree import HtmlNode, tree_depth, tree_size
from repro.sdsl.websynth.xpath import (
    SymbolicXPath,
    concrete_matches,
    xpath_selects,
)
from repro.sdsl.websynth.sites import SiteSpec, SITE_SPECS, generate_site
from repro.sdsl.websynth.synth import WebSynthResult, synthesize_xpath

__all__ = [
    "HtmlNode", "tree_depth", "tree_size",
    "SymbolicXPath", "concrete_matches", "xpath_selects",
    "SiteSpec", "SITE_SPECS", "generate_site",
    "WebSynthResult", "synthesize_xpath",
]
