"""The WEBSYNTH XPath model and its symbolic interpreter.

An XPath here is a sequence of tag tokens: ``("html", "body", "div",
"span")`` selects the text of every ``span`` reached along that tag path
from the root. The *symbolic* XPath of a synthesis query replaces each
token with a symbolic index into the page's token vocabulary.

The interpreter branches (through the SVM) on each token/tag comparison as
it recursively descends the concrete tree — so evaluation visits every
node once per path position, producing the large join counts and *zero*
unions of the paper's WEBSYNTH rows in Table 4 (the only merged values are
the boolean "reached" flags, which are primitives).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sym import fresh_int, ops
from repro.sym.values import SymInt
from repro.vm import assert_, context
from repro.sdsl.websynth.tree import HtmlNode


def token_vocabulary(root: HtmlNode) -> Tuple[str, ...]:
    """All distinct tags of a page, in first-seen order — the XPath tokens."""
    seen: Dict[str, None] = {}
    for node in root.walk():
        seen.setdefault(node.tag, None)
    return tuple(seen)


class SymbolicXPath:
    """A length-k XPath whose tokens are symbolic vocabulary indices."""

    def __init__(self, vocabulary: Sequence[str], length: int):
        self.vocabulary = tuple(vocabulary)
        self.tokens: List[SymInt] = [fresh_int(f"tok{i}")
                                     for i in range(length)]

    def assume_well_formed(self) -> None:
        """Every token indexes into the vocabulary (the preconditions)."""
        for token in self.tokens:
            assert_(ops.and_(ops.ge(token, 0),
                             ops.lt(token, len(self.vocabulary))),
                    "XPath token out of vocabulary")

    def __len__(self) -> int:
        return len(self.tokens)

    def decode(self, model) -> Tuple[str, ...]:
        return tuple(self.vocabulary[model.evaluate(token)]
                     for token in self.tokens)


def xpath_selects(node: HtmlNode, xpath: SymbolicXPath, position: int,
                  target_text: str):
    """Does the symbolic XPath, at `position`, reach `target_text` below `node`?

    Recursive descent over the concrete tree: self-finitizing, per §4.6 —
    the tree's shape bounds the unwinding, no explicit loop bound needed.
    """
    if position == len(xpath):
        return node.text == target_text
    vm = context.current()
    token = xpath.tokens[position]
    vocabulary_index = {tag: i for i, tag in enumerate(xpath.vocabulary)}
    reached = False
    for child in node.children:
        child_matches = ops.num_eq(token, vocabulary_index[child.tag])
        below = vm.branch(
            child_matches,
            lambda child=child: xpath_selects(child, xpath, position + 1,
                                              target_text),
            lambda: False)
        reached = ops.or_(ops.truthy(reached), ops.truthy(below))
    return reached


def concrete_matches(node: HtmlNode, path: Sequence[str]) -> List[str]:
    """Run a concrete XPath, returning every selected text (for checking)."""
    if not path:
        return [node.text] if node.text is not None else []
    out: List[str] = []
    for child in node.children:
        if child.tag == path[0]:
            out.extend(concrete_matches(child, path[1:]))
    return out
