"""Case-study solver-aided DSLs (§5 of the paper).

Four guest languages hosted on the SVM:

- :mod:`repro.sdsl.automata` — the §2 running example: a declarative
  finite-automata language built with a ``syntax-rules`` macro, with
  angelic execution, debugging, verification, and sketch-based synthesis;
- :mod:`repro.sdsl.synthcl` — SYNTHCL, an imperative language for
  solver-aided development of OpenCL-style data-parallel kernels;
- :mod:`repro.sdsl.websynth` — WEBSYNTH, example-based web scraping by
  XPath synthesis over HTML trees;
- :mod:`repro.sdsl.ifcl` — IFCL, executable semantics of secure
  information-flow stack machines, verified against non-interference.
"""
