"""The ten buggy IFC semantics variants (Table 3: B1–B4, J1–J2, CR1–CR4).

Each variant re-implements one rule of the correct machine with a missing
or wrong label operation, following the bug catalogue of Hritcu et al.,
*Testing Noninterference, Quickly*. Every variant violates end-to-end
non-interference, which the bounded verifier of
:mod:`repro.sdsl.ifcl.verify` demonstrates by finding a counterexample —
the paper's confirmation "that they are buggy with respect to the desired
security property" (§5.1).
"""

from __future__ import annotations

from typing import Dict

from repro.sym import ops
from repro.sdsl.ifcl.machine import (
    BASIC_OPS,
    CR_OPS,
    JUMP_OPS,
    Semantics,
)


class B1AddNoJoin(Semantics):
    """Add takes the first operand's label instead of the join."""

    name = "B1"

    def __init__(self):
        super().__init__(BASIC_OPS)

    def add_label(self, label_a, label_b):
        return label_b  # drops the taint of the top operand


class B2PushLow(Semantics):
    """Push labels every immediate low, laundering secret constants."""

    name = "B2"

    def __init__(self):
        super().__init__(BASIC_OPS)

    def rule_push(self, state, imm_value, imm_label):
        return super().rule_push(state, imm_value, False)


class B3LoadNoTaint(Semantics):
    """Load drops the memory cell's label: a secret stored high can be
    laundered by reading it back (needs a Store+Load round trip, so its
    minimal attack is longer than B2/B4's)."""

    name = "B3"

    def __init__(self):
        super().__init__(BASIC_OPS)

    def load_label(self, cell_label, addr_label):
        return addr_label


class B4StoreNoNSU(Semantics):
    """Store misses the no-sensitive-upgrade check: writing through a
    secret pointer moves the high label to a secret-dependent cell."""

    name = "B4"

    def __init__(self):
        super().__init__(BASIC_OPS)

    def store_allowed(self, addr_label, pc_label, old_label):
        return True


class J1JumpNoPcTaint(Semantics):
    """Jump does not raise the pc label when jumping on secret targets."""

    name = "J1"

    def __init__(self):
        super().__init__(JUMP_OPS)

    def jump_pc_label(self, target_label, pc_label):
        return pc_label  # the secret target never taints the pc


class J2StoreNoPcTaint(Semantics):
    """Store ignores the pc label (both in the written label and in the
    no-sensitive-upgrade check): secret control flow leaks via memory."""

    name = "J2"

    def __init__(self):
        super().__init__(JUMP_OPS)

    def store_label(self, value_label, addr_label, pc_label, old_label):
        return ops.or_(value_label, addr_label)

    def store_allowed(self, addr_label, pc_label, old_label):
        return ops.implies(addr_label, old_label)


class CR1CallNoPcTaint(Semantics):
    """Call does not raise the pc label for secret call targets."""

    name = "CR1"

    def __init__(self):
        super().__init__(CR_OPS)

    def call_pc_label(self, target_label, pc_label):
        return pc_label


class CR2ReturnKeepsPcLabel(Semantics):
    """Return fails to restore the saved pc label (stays tainted forever —
    which is 'safe' — but combined with the frame label being dropped at
    Call time, secret control flow escapes)."""

    name = "CR2"

    def __init__(self):
        super().__init__(CR_OPS)

    def call_frame_label(self, pc_label):
        return False  # frames forget the saved pc label

    def return_pc_label(self, frame_label, pc_label):
        return frame_label


class CR3ReturnClearsPcLabel(Semantics):
    """Return clears the pc label outright instead of restoring it."""

    name = "CR3"

    def __init__(self):
        super().__init__(CR_OPS)

    def return_pc_label(self, frame_label, pc_label):
        return False


class CR4StoreNoPcTaint(Semantics):
    """Store ignores the pc label in the call/return machine (the classic
    implicit-flow leak: a store inside a secret-dependent call)."""

    name = "CR4"

    def __init__(self):
        super().__init__(CR_OPS)

    def store_label(self, value_label, addr_label, pc_label, old_label):
        return ops.or_(value_label, addr_label)

    def store_allowed(self, addr_label, pc_label, old_label):
        return ops.implies(addr_label, old_label)


BUGGY_MACHINES: Dict[str, Semantics] = {
    "B1": B1AddNoJoin(),
    "B2": B2PushLow(),
    "B3": B3LoadNoTaint(),
    "B4": B4StoreNoNSU(),
    "J1": J1JumpNoPcTaint(),
    "J2": J2StoreNoPcTaint(),
    "CR1": CR1CallNoPcTaint(),
    "CR2": CR2ReturnKeepsPcLabel(),
    "CR3": CR3ReturnClearsPcLabel(),
    "CR4": CR4StoreNoPcTaint(),
}

CORRECT_MACHINES: Dict[str, Semantics] = {
    "basic": Semantics(BASIC_OPS),
    "jump": Semantics(JUMP_OPS),
    "cr": Semantics(CR_OPS),
}
