"""IFC stack machines: state, instruction set, and step semantics.

The design follows Hritcu et al. (ICFP 2013): a machine has a program
counter (with a security label, for the jump/call machines), a stack of
labeled integers, and a small data memory of labeled integers. Security
labels form the two-point lattice {⊥ (low), ⊤ (high)}, represented as
booleans (True = high); the lattice join is boolean or.

Machine states are immutable records that opt into the SVM's *type-driven
structural merging* via ``__sym_merge__`` (§4.2's "user-defined record
types"): two states merge field by field, so the stack — a list that grows
and shrinks — produces exactly the symbolic unions of different-length
lists that the paper calls out in its discussion of the IFCL results
(§5.3).

The step semantics is a :class:`Semantics` object whose per-instruction
rules are ordinary methods; the buggy variants of
:mod:`repro.sdsl.ifcl.bugs` override single rules, mirroring how the bugs
in *Testing Noninterference, Quickly* are one-rule mutations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.smt import terms as T
from repro.sym import ops
from repro.sym.merge import merge
from repro.vm import builtins as B
from repro.vm import context

# Opcodes. A machine family supports a prefix of this list.
NOOP, PUSH, POP, LOAD, STORE, ADD, HALT, JUMP, CALL, RETURN = range(10)

OPCODES: Dict[int, str] = {
    NOOP: "Noop", PUSH: "Push", POP: "Pop", LOAD: "Load", STORE: "Store",
    ADD: "Add", HALT: "Halt", JUMP: "Jump", CALL: "Call", RETURN: "Return",
}

# Instruction sets of the three machine families (Table 3: 7 / 8 / 9).
BASIC_OPS: Tuple[int, ...] = (NOOP, PUSH, POP, LOAD, STORE, ADD, HALT)
JUMP_OPS: Tuple[int, ...] = BASIC_OPS + (JUMP,)
CR_OPS: Tuple[int, ...] = BASIC_OPS + (CALL, RETURN)

# Stack entry tags: plain data values vs. call-return frames.
DATA = "data"
FRAME = "frame"

MEM_SIZE = 2  # as in the paper: "machine memory is limited to 2 cells"


def entry(value, label) -> tuple:
    """A data stack entry: a labeled integer."""
    return (DATA, value, label)


def frame(return_pc, label) -> tuple:
    """A call frame carrying the return address and the saved pc label."""
    return (FRAME, return_pc, label)


class MachineState:
    """An immutable machine state with field-wise symbolic merging."""

    __slots__ = ("pc", "pc_lab", "stack", "mem", "halted", "crashed")

    def __init__(self, pc, pc_lab, stack, mem, halted, crashed):
        self.pc = pc
        self.pc_lab = pc_lab
        self.stack = stack
        self.mem = mem
        self.halted = halted
        self.crashed = crashed

    @classmethod
    def initial(cls, mem: Sequence[tuple]) -> "MachineState":
        return cls(pc=0, pc_lab=False, stack=(), mem=tuple(mem),
                   halted=False, crashed=False)

    def replace(self, **fields) -> "MachineState":
        values = {slot: getattr(self, slot) for slot in self.__slots__}
        values.update(fields)
        return MachineState(**values)

    # Type-driven merging protocol (Fig. 9, record extension).
    def __sym_class_key__(self):
        return ("ifcl-state",)

    def __sym_merge__(self, guard: T.Term, other: "MachineState"):
        return MachineState(
            pc=merge(guard, self.pc, other.pc),
            pc_lab=merge(guard, self.pc_lab, other.pc_lab),
            stack=merge(guard, self.stack, other.stack),
            mem=merge(guard, self.mem, other.mem),
            halted=merge(guard, self.halted, other.halted),
            crashed=merge(guard, self.crashed, other.crashed))

    def __repr__(self):
        return (f"MachineState(pc={self.pc!r}, halted={self.halted!r}, "
                f"crashed={self.crashed!r}, stack={self.stack!r}, "
                f"mem={self.mem!r})")


def _switch(scrutinee, cases: List[Tuple[int, object]], default):
    """Dispatch on an integer scrutinee: nested lifted ifs (joins!)."""
    vm = context.current()
    def chain(index: int):
        if index == len(cases):
            return default()
        code, thunk = cases[index]
        return vm.branch(ops.num_eq(scrutinee, code),
                         thunk,
                         lambda: chain(index + 1))
    return chain(0)


class Semantics:
    """The correct IFC semantics; buggy variants override single rules.

    `opcodes` selects the machine family (BASIC_OPS / JUMP_OPS / CR_OPS).
    """

    name = "correct"

    def __init__(self, opcodes: Tuple[int, ...] = BASIC_OPS):
        self.opcodes = opcodes

    # -- stack helpers --------------------------------------------------

    def _crash(self, state: MachineState) -> MachineState:
        return state.replace(crashed=True)

    def _pop(self, state: MachineState, consumer):
        """Pop one entry; crash on underflow. `consumer(entry, rest)`."""
        vm = context.current()
        return vm.branch(
            B.is_null(state.stack),
            lambda: self._crash(state),
            lambda: consumer(B.car(state.stack), B.cdr(state.stack)))

    def _mem_read(self, state: MachineState, address, on_value):
        """Read a labeled memory cell; crash on a bad address.

        Memory is accessed through ``union_apply`` so the semantics also
        runs under merge strategies that turn the memory tuple into a
        union (the BMC-style ablation baseline).
        """
        vm = context.current()
        def chain(index: int):
            if index == MEM_SIZE:
                return self._crash(state)
            return vm.branch(
                ops.num_eq(address, index),
                lambda: B.union_apply(lambda mem: on_value(mem[index]),
                                      state.mem),
                lambda: chain(index + 1))
        return chain(0)

    def _mem_write(self, state: MachineState, address, cell,
                   then) -> MachineState:
        vm = context.current()
        def chain(index: int):
            if index == MEM_SIZE:
                return self._crash(state)
            def write():
                return B.union_apply(
                    lambda mem: then(mem[:index] + (cell,)
                                     + mem[index + 1:]),
                    state.mem)
            return vm.branch(ops.num_eq(address, index), write,
                             lambda: chain(index + 1))
        return chain(0)

    @staticmethod
    def _data(stack_entry, on_data, otherwise):
        """Case-split a stack entry: data value vs. call frame."""
        vm = context.current()
        return vm.branch(B.equal(B.car(stack_entry), DATA),
                         lambda: on_data(B.list_ref(stack_entry, 1),
                                         B.list_ref(stack_entry, 2)),
                         otherwise)

    # -- instruction rules (the correct machine) ------------------------

    def rule_noop(self, state, imm_value, imm_label):
        return state.replace(pc=ops.add(state.pc, 1))

    def rule_push(self, state, imm_value, imm_label):
        return state.replace(
            pc=ops.add(state.pc, 1),
            stack=B.cons(entry(imm_value, imm_label), state.stack))

    def rule_pop(self, state, imm_value, imm_label):
        return self._pop(state, lambda top, rest: state.replace(
            pc=ops.add(state.pc, 1), stack=rest))

    def load_label(self, cell_label, addr_label):
        """The label of a Load result (the B3 bug targets this join)."""
        return ops.or_(cell_label, addr_label)

    def rule_load(self, state, imm_value, imm_label):
        def with_addr(top, rest):
            return self._data(
                top,
                lambda address, addr_label: self._mem_read(
                    state, address,
                    lambda cell: state.replace(
                        pc=ops.add(state.pc, 1),
                        stack=B.cons(entry(cell[0],
                                           self.load_label(cell[1],
                                                           addr_label)),
                                     rest))),
                lambda: self._crash(state))
        return self._pop(state, with_addr)

    def store_label(self, value_label, addr_label, pc_label, old_label):
        """The label written to memory by Store (the rule bugs target)."""
        return ops.or_(ops.or_(value_label, addr_label), pc_label)

    def store_allowed(self, addr_label, pc_label, old_label):
        """The *no-sensitive-upgrade* check (Hritcu et al.): storing through
        a high pointer, or under a high pc, into a low cell would let the
        set of labeled cells depend on a secret — the correct machine
        crashes instead."""
        return ops.implies(ops.or_(addr_label, pc_label), old_label)

    def rule_store(self, state, imm_value, imm_label):
        vm = context.current()
        def with_addr(top, rest):
            def with_value(second, rest2):
                def do_store(address, addr_label, value, value_label, old):
                    return vm.branch(
                        self.store_allowed(addr_label, state.pc_lab, old[1]),
                        lambda: self._mem_write(
                            state, address,
                            (value, self.store_label(
                                value_label, addr_label,
                                state.pc_lab, old[1])),
                            lambda new_mem: state.replace(
                                pc=ops.add(state.pc, 1),
                                stack=rest2, mem=new_mem)),
                        lambda: self._crash(state))
                return self._data(
                    top,
                    lambda address, addr_label: self._data(
                        second,
                        lambda value, value_label: self._mem_read(
                            state, address,
                            lambda old: do_store(address, addr_label,
                                                 value, value_label, old)),
                        lambda: self._crash(state)),
                    lambda: self._crash(state))
            return self._pop(state.replace(stack=rest), with_value)
        return self._pop(state, with_addr)

    def add_label(self, label_a, label_b):
        """The label of an Add result (B-family bugs target this join)."""
        return ops.or_(label_a, label_b)

    def rule_add(self, state, imm_value, imm_label):
        def with_a(top, rest):
            def with_b(second, rest2):
                return self._data(
                    top,
                    lambda a, la: self._data(
                        second,
                        lambda b, lb: state.replace(
                            pc=ops.add(state.pc, 1),
                            stack=B.cons(
                                entry(ops.add(a, b), self.add_label(la, lb)),
                                rest2)),
                        lambda: self._crash(state)),
                    lambda: self._crash(state))
            return self._pop(state.replace(stack=rest), with_b)
        return self._pop(state, with_a)

    def rule_halt(self, state, imm_value, imm_label):
        return state.replace(halted=True)

    def jump_pc_label(self, target_label, pc_label):
        """The pc label after a jump (J-family bugs target this)."""
        return ops.or_(target_label, pc_label)

    def rule_jump(self, state, imm_value, imm_label):
        def with_target(top, rest):
            return self._data(
                top,
                lambda target, target_label: state.replace(
                    pc=target,
                    pc_lab=self.jump_pc_label(target_label, state.pc_lab),
                    stack=rest),
                lambda: self._crash(state))
        return self._pop(state, with_target)

    def call_frame_label(self, pc_label):
        """The label stored in a call frame (CR bugs target this)."""
        return pc_label

    def call_pc_label(self, target_label, pc_label):
        return ops.or_(target_label, pc_label)

    def rule_call(self, state, imm_value, imm_label):
        def with_target(top, rest):
            return self._data(
                top,
                lambda target, target_label: state.replace(
                    pc=target,
                    pc_lab=self.call_pc_label(target_label, state.pc_lab),
                    stack=B.cons(
                        frame(ops.add(state.pc, 1),
                              self.call_frame_label(state.pc_lab)),
                        rest)),
                lambda: self._crash(state))
        return self._pop(state, with_target)

    def return_pc_label(self, frame_label, pc_label):
        """The pc label after Return (correct: restore the saved label)."""
        return frame_label

    def rule_return(self, state, imm_value, imm_label):
        def with_top(top, rest):
            vm = context.current()
            return vm.branch(
                B.equal(B.car(top), FRAME),
                lambda: state.replace(
                    pc=B.list_ref(top, 1),
                    pc_lab=self.return_pc_label(B.list_ref(top, 2),
                                                state.pc_lab),
                    stack=rest),
                lambda: self._crash(state))
        return self._pop(state, with_top)

    # -- the step function ----------------------------------------------

    _RULES = {
        NOOP: "rule_noop", PUSH: "rule_push", POP: "rule_pop",
        LOAD: "rule_load", STORE: "rule_store", ADD: "rule_add",
        HALT: "rule_halt", JUMP: "rule_jump", CALL: "rule_call",
        RETURN: "rule_return",
    }

    def dispatch(self, state: MachineState, opcode, imm_value,
                 imm_label) -> MachineState:
        cases = [
            (code, (lambda code=code: getattr(self, self._RULES[code])(
                state, imm_value, imm_label)))
            for code in self.opcodes
        ]
        return _switch(opcode, cases, lambda: self._crash(state))

    def step(self, state: MachineState, program) -> MachineState:
        """One machine step: fetch (pc may be symbolic) and dispatch.

        `program` is a sequence of (opcode, imm_value, imm_label) triples.
        Halted or crashed machines do not move.
        """
        vm = context.current()
        def active():
            def at(index: int):
                if index == len(program):
                    # Falling off the end of the program is a normal halt;
                    # a pc strictly beyond it (a wild jump) is a crash.
                    return vm.branch(
                        ops.num_eq(state.pc, len(program)),
                        lambda: state.replace(halted=True),
                        lambda: self._crash(state))
                opcode, imm_value, imm_label = program[index]
                return vm.branch(ops.num_eq(state.pc, index),
                                 lambda: self.dispatch(
                                     state, opcode, imm_value, imm_label),
                                 lambda: at(index + 1))
            return at(0)
        return vm.branch(ops.or_(ops.truthy(state.halted),
                                 ops.truthy(state.crashed)),
                         lambda: state, active)

    def run(self, state: MachineState, program, steps: int) -> MachineState:
        for _ in range(steps):
            state = self.step(state, program)
        return state
