"""Bounded EENI verification for IFCL machines.

End-to-end non-interference (EENI): two runs of the same machine on
*indistinguishable* inputs that both halt must end in indistinguishable
observable states. Following Hritcu et al., secrets enter through Push
immediates labeled high: the two runs execute the same instruction
sequence, but immediates labeled ⊤ may differ between the runs; the
observable state is the data memory, where low-labeled cells must agree.

The verifier (the paper's Table 3 workload) makes the whole instruction
sequence symbolic — each of the k instructions has a symbolic opcode, two
symbolic immediates (one per run) and a symbolic label — and asks the
``verify`` query for an instantiation where both runs halt within k steps
yet the final memories are distinguishable. For a correct machine the
query is UNSAT up to the bound; for each buggy variant it yields a
counterexample attack program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.queries import Budget, ResourceReport, verify
from repro.sym import fresh_bool, fresh_int, ops
from repro.sym.values import SymBool, SymInt
from repro.vm import assert_
from repro.vm.stats import EvalStats
from repro.sdsl.ifcl.machine import (
    MEM_SIZE,
    OPCODES,
    MachineState,
    Semantics,
)


class SymbolicProgram:
    """A length-k symbolic instruction sequence shared by two runs."""

    def __init__(self, semantics: Semantics, length: int):
        self.semantics = semantics
        self.length = length
        self.opcodes: List[SymInt] = []
        self.values_a: List[SymInt] = []
        self.values_b: List[SymInt] = []
        self.labels: List[SymBool] = []
        for index in range(length):
            self.opcodes.append(fresh_int(f"op{index}"))
            self.values_a.append(fresh_int(f"va{index}"))
            self.values_b.append(fresh_int(f"vb{index}"))
            self.labels.append(fresh_bool(f"lab{index}"))

    def assume_well_formed(self) -> None:
        """Opcode range + input indistinguishability (the preconditions)."""
        for index in range(self.length):
            in_range = False
            for code in self.semantics.opcodes:
                in_range = ops.or_(in_range,
                                   ops.num_eq(self.opcodes[index], code))
            assert_(in_range, f"opcode {index} out of the instruction set")
            # Low immediates must agree across the two runs.
            assert_(ops.implies(
                ops.not_(self.labels[index]),
                ops.num_eq(self.values_a[index], self.values_b[index])),
                f"instruction {index}: low immediates must agree")

    def instructions(self, run: str) -> Tuple[tuple, ...]:
        values = self.values_a if run == "a" else self.values_b
        return tuple(
            (self.opcodes[i], values[i], self.labels[i])
            for i in range(self.length))

    def decode(self, model) -> List[str]:
        """Render a counterexample program from a model."""
        out = []
        for i in range(self.length):
            opcode = model.evaluate(self.opcodes[i])
            mnemonic = OPCODES.get(opcode, f"op{opcode}")
            value_a = model.evaluate(self.values_a[i])
            value_b = model.evaluate(self.values_b[i])
            label = "H" if model.evaluate(self.labels[i]) else "L"
            out.append(f"{mnemonic} {value_a}|{value_b}@{label}")
        return out


def _iff(a, b):
    return ops.or_(ops.and_(a, b), ops.and_(ops.not_(a), ops.not_(b)))


def _indistinguishable_memories(mem_a, mem_b):
    """Low-equivalence of the two observable memories.

    Cells must carry equal labels, and low cells must hold equal values;
    high cells may differ (the attacker cannot observe them). Lifted over
    unions so it also runs under the BMC-style merge-strategy ablation.
    """
    from repro.vm import builtins as B

    def concrete(mem_a, mem_b):
        same = True
        for cell_a, cell_b in zip(mem_a, mem_b):
            value_a, label_a = cell_a
            value_b, label_b = cell_b
            labels_equal = _iff(label_a, label_b)
            low_values_equal = ops.implies(
                ops.not_(ops.or_(label_a, label_b)),
                ops.num_eq(value_a, value_b))
            same = ops.and_(same, ops.and_(labels_equal, low_values_equal))
        return same

    return B.union_apply(concrete, mem_a, mem_b)


@dataclass
class EENIResult:
    """Outcome of a bounded EENI check."""

    machine: str
    length: int
    status: str                    # "secure" | "insecure" | "unknown"
    counterexample: Optional[List[str]] = None
    stats: EvalStats = field(default_factory=EvalStats)
    report: Optional[ResourceReport] = None

    @property
    def is_secure(self) -> bool:
        return self.status == "secure"


def eeni_thunks(semantics: Semantics, length: int):
    """Build (setup, check) thunks for a bounded EENI verify query.

    Returns ``(setup, check, program)``; run them under a query (setup
    asserts the preconditions, check runs both machines and asserts EENI).
    """
    program = SymbolicProgram(semantics, length)

    def setup():
        program.assume_well_formed()

    def check():
        initial = tuple((0, False) for _ in range(MEM_SIZE))
        state_a = MachineState.initial(initial)
        state_b = MachineState.initial(initial)
        # length+1 steps: the extra step lets a run that executed all k
        # instructions take the "fell off the end" transition to halted.
        state_a = semantics.run(state_a, program.instructions("a"), length + 1)
        state_b = semantics.run(state_b, program.instructions("b"), length + 1)
        both_halt = ops.and_(ops.truthy(state_a.halted),
                             ops.truthy(state_b.halted))
        secure = ops.implies(
            both_halt, _indistinguishable_memories(state_a.mem, state_b.mem))
        assert_(secure, "end-to-end non-interference")

    return setup, check, program


def eeni_check(semantics: Semantics, length: int,
               max_conflicts: Optional[int] = None,
               budget: Optional[Budget] = None,
               trace=None,
               certify: Optional[bool] = None) -> EENIResult:
    """Run the bounded EENI verifier for one machine and bound.

    `budget` bounds the query; a trip yields ``unknown`` (neither secure
    nor insecure) with the :class:`~repro.queries.ResourceReport` attached.
    `trace` (a JSONL path or a callable) attaches an observability sink
    for the query, and `certify` enables trust-but-verify solving, both
    as in :func:`repro.queries.queries.verify`.
    """
    setup, check, program = eeni_thunks(semantics, length)
    outcome = verify(check, setup=setup, max_conflicts=max_conflicts,
                     budget=budget, trace=trace, certify=certify)
    if outcome.status == "sat":
        return EENIResult(machine=semantics.name, length=length,
                          status="insecure",
                          counterexample=program.decode(outcome.model),
                          stats=outcome.stats)
    if outcome.status == "unsat":
        return EENIResult(machine=semantics.name, length=length,
                          status="secure", stats=outcome.stats)
    return EENIResult(machine=semantics.name, length=length,
                      status="unknown", stats=outcome.stats,
                      report=outcome.report)
