"""IFCL — a functional SDSL for executable semantics of IFC stack machines.

The paper's third case study (§5.1): abstract stack-and-pointer machines
that track dynamic information flow with security labels, re-implementing
the machines of Hritcu et al., *Testing Noninterference, Quickly* (ICFP
2013). A machine is "secure" if it enjoys end-to-end non-interference
(EENI): indistinguishable initial states that both halt end in
indistinguishable final states.

The SDSL provides:

- :mod:`repro.sdsl.ifcl.machine` — machine states (immutable records with
  type-driven merging), the instruction set, and the step semantics,
  parameterized so variants can override individual rules;
- :mod:`repro.sdsl.ifcl.bugs` — the ten buggy semantics variants
  (B1–B4 for the basic machine, J1–J2 for jumps, CR1–CR4 for
  call/return), each violating EENI;
- :mod:`repro.sdsl.ifcl.verify` — the bounded EENI verifier: a symbolic
  instruction sequence drives two machine runs whose high data may differ,
  and the solver searches for distinguishable final memories.
"""

from repro.sdsl.ifcl.machine import (
    BASIC_OPS,
    CR_OPS,
    JUMP_OPS,
    MachineState,
    Semantics,
    OPCODES,
)
from repro.sdsl.ifcl.bugs import BUGGY_MACHINES, CORRECT_MACHINES
from repro.sdsl.ifcl.verify import (
    EENIResult,
    SymbolicProgram,
    eeni_check,
    eeni_thunks,
)
from repro.sdsl.ifcl.replay import (
    DecodedInstruction,
    ReplayResult,
    check_attack,
    decode_attack,
    replay_attack,
)

__all__ = [
    "BASIC_OPS", "CR_OPS", "JUMP_OPS", "MachineState", "Semantics",
    "OPCODES", "BUGGY_MACHINES", "CORRECT_MACHINES",
    "EENIResult", "SymbolicProgram", "eeni_check", "eeni_thunks",
    "DecodedInstruction", "ReplayResult", "check_attack", "decode_attack",
    "replay_attack",
]
