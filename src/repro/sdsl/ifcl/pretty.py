"""Human-readable rendering of IFCL programs and machine states.

Used by the examples and handy when debugging semantics: labels render as
``@L``/``@H``, stack entries distinguish data from call frames, and
symbolic fields fall back to their term representation.
"""

from __future__ import annotations

from typing import Sequence

from repro.sym.values import SymBool, SymInt, Union
from repro.sdsl.ifcl.machine import DATA, FRAME, OPCODES, MachineState


def _label(value) -> str:
    if value is True:
        return "H"
    if value is False:
        return "L"
    return f"?{value!r}"


def _value(value) -> str:
    if isinstance(value, (SymInt, SymBool)):
        return repr(value)
    return str(value)


def render_cell(cell) -> str:
    """A labeled value: ``3@L``."""
    if isinstance(cell, Union):
        return repr(cell)
    value, label = cell
    return f"{_value(value)}@{_label(label)}"


def render_stack_entry(entry) -> str:
    if isinstance(entry, Union):
        return repr(entry)
    tag = entry[0]
    if tag == DATA or isinstance(tag, Union):
        return render_cell((entry[1], entry[2]))
    if tag == FRAME:
        return f"ret({_value(entry[1])})@{_label(entry[2])}"
    return repr(entry)


def render_state(state: MachineState) -> str:
    """A one-line summary of a machine state."""
    if isinstance(state.stack, Union):
        stack = repr(state.stack)
    else:
        stack = "[" + ", ".join(render_stack_entry(entry)
                                for entry in state.stack) + "]"
    if isinstance(state.mem, Union):
        memory = repr(state.mem)
    else:
        memory = "[" + ", ".join(render_cell(cell)
                                 for cell in state.mem) + "]"
    status = "halted" if state.halted is True else \
        ("crashed" if state.crashed is True else "running")
    return (f"pc={_value(state.pc)}@{_label(state.pc_lab)} {status} "
            f"stack={stack} mem={memory}")


def render_program(instructions: Sequence) -> str:
    """A concrete program, one instruction per line."""
    lines = []
    for index, (opcode, value, label) in enumerate(instructions):
        mnemonic = OPCODES.get(opcode, f"op{opcode}") \
            if isinstance(opcode, int) else repr(opcode)
        lines.append(f"  {index}: {mnemonic} {_value(value)}@{_label(label)}")
    return "\n".join(lines)
