"""Concrete replay of synthesized attacks.

The EENI verifier returns a *symbolic* counterexample. Replay closes the
loop: it decodes the model into a concrete program pair, executes both
runs with the ordinary (concrete) machine semantics — no solver, no
symbolic values — and checks that the final memories really are
distinguishable. This is the strongest possible validation of the whole
pipeline: SVM encoding, bit-blasting, SAT solving, and model decoding all
have to be right for a replay to succeed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.vm.context import VM
from repro.sdsl.ifcl.machine import MEM_SIZE, OPCODES, MachineState, Semantics
from repro.sdsl.ifcl.verify import SymbolicProgram


@dataclass
class DecodedInstruction:
    """One instruction of a decoded attack: shared opcode/label, per-run
    immediates."""

    opcode: int
    value_a: int
    value_b: int
    high: bool

    def render(self) -> str:
        mnemonic = OPCODES.get(self.opcode, f"op{self.opcode}")
        label = "H" if self.high else "L"
        return f"{mnemonic} {self.value_a}|{self.value_b}@{label}"


def decode_attack(program: SymbolicProgram, model) -> List[DecodedInstruction]:
    """Decode a counterexample model into structured instructions."""
    out = []
    for i in range(program.length):
        out.append(DecodedInstruction(
            opcode=model.evaluate(program.opcodes[i]),
            value_a=model.evaluate(program.values_a[i]),
            value_b=model.evaluate(program.values_b[i]),
            high=bool(model.evaluate(program.labels[i]))))
    return out


@dataclass
class ReplayResult:
    """Concrete outcomes of the two runs of a decoded attack."""

    halted_a: bool
    halted_b: bool
    mem_a: Tuple
    mem_b: Tuple
    distinguishable: bool

    def render(self) -> str:
        return (f"run A: halted={self.halted_a} mem={self.mem_a}\n"
                f"run B: halted={self.halted_b} mem={self.mem_b}\n"
                f"distinguishable: {self.distinguishable}")


def _run_concrete(semantics: Semantics,
                  instructions: Sequence[Tuple[int, int, bool]]):
    state = MachineState.initial(tuple((0, False) for _ in range(MEM_SIZE)))
    with VM():
        final = semantics.run(state, tuple(instructions),
                              len(instructions) + 1)
    return final


def _memories_distinguishable(mem_a, mem_b) -> bool:
    for (value_a, label_a), (value_b, label_b) in zip(mem_a, mem_b):
        if bool(label_a) != bool(label_b):
            return True
        if not label_a and value_a != value_b:
            return True
    return False


def replay_attack(semantics: Semantics,
                  attack: Sequence[DecodedInstruction]) -> ReplayResult:
    """Execute both runs of an attack concretely.

    The attack must be well-formed (low immediates equal across runs);
    the result reports whether the concrete final memories violate
    low-equivalence — i.e. whether the synthesized attack really works.
    """
    for instruction in attack:
        if not instruction.high and \
                instruction.value_a != instruction.value_b:
            raise ValueError(
                f"ill-formed attack: low immediates differ in "
                f"{instruction.render()}")
    run_a = [(ins.opcode, ins.value_a, ins.high) for ins in attack]
    run_b = [(ins.opcode, ins.value_b, ins.high) for ins in attack]
    final_a = _run_concrete(semantics, run_a)
    final_b = _run_concrete(semantics, run_b)
    halted_a = bool(final_a.halted) and not bool(final_a.crashed)
    halted_b = bool(final_b.halted) and not bool(final_b.crashed)
    distinguishable = halted_a and halted_b and \
        _memories_distinguishable(final_a.mem, final_b.mem)
    return ReplayResult(halted_a=halted_a, halted_b=halted_b,
                        mem_a=tuple(final_a.mem), mem_b=tuple(final_b.mem),
                        distinguishable=distinguishable)


def check_attack(semantics: Semantics, length: int,
                 max_conflicts: Optional[int] = None,
                 budget=None,
                 certify: Optional[bool] = None) -> Optional[ReplayResult]:
    """Find an attack with the verifier and validate it by concrete replay.

    Returns the replay result (with ``distinguishable=True`` if everything
    is consistent), or None when the machine is secure at this bound (or
    the `budget` ran out before the verifier could decide). `certify`
    enables trust-but-verify solving for the underlying verify query.
    """
    from repro.queries import verify
    from repro.sdsl.ifcl.verify import eeni_thunks

    setup, check, program = eeni_thunks(semantics, length)
    outcome = verify(check, setup=setup, max_conflicts=max_conflicts,
                     budget=budget, certify=certify)
    if outcome.status != "sat":
        return None
    attack = decode_attack(program, outcome.model)
    return replay_attack(semantics, attack)
