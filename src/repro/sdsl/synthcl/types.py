"""OpenCL-style scalar and short-vector types for SYNTHCL.

Vectors (``int2``/``int4``/…) are immutable fixed-length tuples of scalar
values wrapped in :class:`IntVec`; operations are lane-wise. Under the SVM
a vector of symbolic scalars is just a concrete tuple whose elements are
terms — structural merging (Fig. 9) keeps vectors concrete across joins,
which is why the SYNTHCL verification benchmarks run with zero unions.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.sym import ops


class IntVec:
    """A fixed-width vector of (possibly symbolic) integers."""

    __slots__ = ("lanes",)

    def __init__(self, lanes: Iterable):
        self.lanes = tuple(lanes)

    @property
    def width(self) -> int:
        return len(self.lanes)

    def __iter__(self):
        return iter(self.lanes)

    def __len__(self) -> int:
        return len(self.lanes)

    def __getitem__(self, index: int):
        return self.lanes[index]

    def _zip(self, other, fn: Callable):
        other_lanes = other.lanes if isinstance(other, IntVec) \
            else (other,) * len(self.lanes)
        if len(other_lanes) != len(self.lanes):
            raise ValueError("vector width mismatch")
        return IntVec(fn(a, b) for a, b in zip(self.lanes, other_lanes))

    def __add__(self, other):
        return self._zip(other, ops.add)

    def __sub__(self, other):
        return self._zip(other, ops.sub)

    def __mul__(self, other):
        return self._zip(other, ops.mul)

    # Type-driven merging: vectors of equal width merge lane-wise.
    def __sym_class_key__(self):
        return ("intvec", len(self.lanes))

    def __sym_merge__(self, guard, other: "IntVec"):
        from repro.sym.merge import merge
        return IntVec(merge(guard, a, b)
                      for a, b in zip(self.lanes, other.lanes))

    def reduce_add(self):
        """Horizontal sum of the lanes (OpenCL's dot-product building block)."""
        total = self.lanes[0]
        for lane in self.lanes[1:]:
            total = ops.add(total, lane)
        return total

    def __repr__(self):
        return f"int{len(self.lanes)}{self.lanes!r}"


def int4(a, b, c, d) -> IntVec:
    return IntVec((a, b, c, d))


def vec_add(a: IntVec, b: IntVec) -> IntVec:
    return a + b


def vec_mul(a: IntVec, b: IntVec) -> IntVec:
    return a * b
