"""An abstract model of the OpenCL runtime for SYNTHCL.

The model distinguishes *host* memory from (global) *device* memory
(buffers), runs kernels over an NDRange of work-items, and — as the paper
describes — "emits assertions to ensure that no two kernel instances ever
perform a conflicting memory access" (§5.1). Kernel instances execute
sequentially in the model (the memory-safety assertions are what make the
parallel semantics sound), each with its own global id.

Buffers are mutable :class:`~repro.vm.mutable.Vector` storage, so kernel
writes merge correctly at SVM joins, and symbolic indices turn into
conditional writes over every cell.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.sym import ops
from repro.vm import assert_
from repro.vm.errors import AssertionFailure
from repro.vm.mutable import Vector


class KernelRace(AssertionFailure):
    """Raised when a definite conflicting access is detected at launch."""


class Buffer:
    """A global-memory buffer of (possibly symbolic) integers."""

    def __init__(self, name: str, contents: Sequence):
        self.name = name
        self.storage = Vector(list(contents), name=name)

    def __len__(self) -> int:
        return len(self.storage)

    def read(self, index):
        return self.storage.ref(index)

    def write(self, index, value) -> None:
        self.storage.set(index, value)

    def snapshot(self) -> tuple:
        return self.storage.snapshot()

    def __repr__(self):
        return f"Buffer({self.name}, {len(self.storage)})"


class WorkItemContext:
    """Execution context of one kernel instance."""

    def __init__(self, runtime: "CLRuntime", global_id: int):
        self.runtime = runtime
        self.global_id = global_id
        # Access log: (buffer name, index value, is_write)
        self.accesses: List[Tuple[str, object, bool]] = []

    def get_global_id(self, dim: int = 0) -> int:
        if dim != 0:
            raise ValueError("the model supports 1-D NDRanges; linearize ids")
        return self.global_id

    def read(self, buffer: Buffer, index):
        self.accesses.append((buffer.name, index, False))
        return buffer.read(index)

    def write(self, buffer: Buffer, index, value) -> None:
        self.accesses.append((buffer.name, index, True))
        buffer.write(index, value)


class CLRuntime:
    """Host-side runtime: buffer management and kernel launches."""

    def __init__(self, check_races: bool = True):
        self.check_races = check_races
        self.buffers: Dict[str, Buffer] = {}

    def buffer(self, name: str, contents: Sequence) -> Buffer:
        buf = Buffer(name, contents)
        self.buffers[name] = buf
        return buf

    def launch(self, kernel: Callable, global_size: int) -> None:
        """Run `kernel(item)` for every work item in the NDRange.

        After all instances run, the runtime asserts that no write by one
        instance conflicts with a read or write of the same buffer cell by
        another instance — the implicit memory-safety obligations that the
        SYNTHCL verifier checks and the synthesizer enforces.
        """
        if global_size <= 0:
            raise ValueError("global_size must be positive")
        items = [WorkItemContext(self, gid) for gid in range(global_size)]
        for item in items:
            kernel(item)
        if self.check_races:
            self._assert_race_free(items)

    def _assert_race_free(self, items: Sequence[WorkItemContext]) -> None:
        for i, item_a in enumerate(items):
            writes_a = [(buf, idx) for buf, idx, is_write in item_a.accesses
                        if is_write]
            if not writes_a:
                continue
            for item_b in items[i + 1:]:
                for buf_a, idx_a in writes_a:
                    for buf_b, idx_b, _ in item_b.accesses:
                        if buf_a != buf_b:
                            continue
                        distinct = ops.not_(ops.num_eq(idx_a, idx_b))
                        assert_(distinct,
                                f"conflicting access to {buf_a} by work "
                                f"items {item_a.global_id} and "
                                f"{item_b.global_id}")
