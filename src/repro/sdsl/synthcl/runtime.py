"""An abstract model of the OpenCL runtime for SYNTHCL.

The model distinguishes *host* memory from (global) *device* memory
(buffers), runs kernels over an NDRange of work-items, and — as the paper
describes — "emits assertions to ensure that no two kernel instances ever
perform a conflicting memory access" (§5.1). Kernel instances execute
sequentially in the model (the memory-safety assertions are what make the
parallel semantics sound), each with its own global id.

Buffers are mutable :class:`~repro.vm.mutable.Vector` storage, so kernel
writes merge correctly at SVM joins, and symbolic indices turn into
conditional writes over every cell.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.races import RaceReport, classify_launch
from repro.vm import assert_
from repro.vm.errors import AssertionFailure
from repro.vm.mutable import Vector

#: Race-checking modes for :class:`CLRuntime`.
#:
#: - ``"off"``      — no checking at all (trusted kernels only).
#: - ``"assert"``   — static pre-detection, then *fail fast*: a pair the
#:   analysis proves overlapping raises :class:`KernelRace` at launch.
#: - ``"symbolic"`` — static pre-detection, then every non-discharged
#:   pair (including definite overlaps) becomes a path-guarded
#:   assertion, so hole-dependent races are *modeled* for the solver —
#:   a verify query finds the racy input, a synthesize query rules the
#:   racy candidate out — rather than aborting host execution.
RACE_MODES = ("off", "assert", "symbolic")


class KernelRace(AssertionFailure):
    """Raised when a definite conflicting access is detected at launch."""


class Buffer:
    """A global-memory buffer of (possibly symbolic) integers."""

    def __init__(self, name: str, contents: Sequence):
        self.name = name
        self.storage = Vector(list(contents), name=name)

    def __len__(self) -> int:
        return len(self.storage)

    def read(self, index):
        return self.storage.ref(index)

    def write(self, index, value) -> None:
        self.storage.set(index, value)

    def snapshot(self) -> tuple:
        return self.storage.snapshot()

    def __repr__(self):
        return f"Buffer({self.name}, {len(self.storage)})"


class WorkItemContext:
    """Execution context of one kernel instance."""

    def __init__(self, runtime: "CLRuntime", global_id: int):
        self.runtime = runtime
        self.global_id = global_id
        # Access log: (buffer name, index value, is_write)
        self.accesses: List[Tuple[str, object, bool]] = []

    def get_global_id(self, dim: int = 0) -> int:
        if dim != 0:
            raise ValueError("the model supports 1-D NDRanges; linearize ids")
        return self.global_id

    def read(self, buffer: Buffer, index):
        self.accesses.append((buffer.name, index, False))
        return buffer.read(index)

    def write(self, buffer: Buffer, index, value) -> None:
        self.accesses.append((buffer.name, index, True))
        buffer.write(index, value)


class CLRuntime:
    """Host-side runtime: buffer management and kernel launches."""

    def __init__(self, check_races: bool = True,
                 race_mode: Optional[str] = None):
        # `race_mode` is the explicit knob; the legacy `check_races`
        # boolean maps onto it (True → "assert", False → "off") when no
        # mode is given.
        if race_mode is None:
            race_mode = "assert" if check_races else "off"
        if race_mode not in RACE_MODES:
            raise ValueError(
                f"race_mode must be one of {RACE_MODES}, got {race_mode!r}")
        self.race_mode = race_mode
        self.check_races = race_mode != "off"
        self.buffers: Dict[str, Buffer] = {}
        #: Static race classifications, one :class:`RaceReport` per launch.
        self.race_reports: List[RaceReport] = []

    def buffer(self, name: str, contents: Sequence) -> Buffer:
        buf = Buffer(name, contents)
        self.buffers[name] = buf
        return buf

    def launch(self, kernel: Callable, global_size: int) -> None:
        """Run `kernel(item)` for every work item in the NDRange.

        After all instances run, the runtime checks that no write by one
        instance conflicts with a read or write of the same buffer cell by
        another instance — the implicit memory-safety obligations that the
        SYNTHCL verifier checks and the synthesizer enforces. The static
        pre-detector (:mod:`repro.analysis.races`) discharges the provably
        disjoint pairs first; only the residue reaches the solver. See
        :data:`RACE_MODES` for how definite overlaps are reported.
        """
        if global_size <= 0:
            raise ValueError("global_size must be positive")
        items = [WorkItemContext(self, gid) for gid in range(global_size)]
        for item in items:
            kernel(item)
        if self.race_mode != "off":
            self._check_races(items)

    def _check_races(self, items: Sequence[WorkItemContext]) -> None:
        report, residual = classify_launch(items)
        self.race_reports.append(report)
        overlap = report.first_overlap()
        if overlap is not None and self.race_mode == "assert":
            raise KernelRace(
                f"conflicting access to {overlap.buffer} by work items "
                f"{overlap.item_a} and {overlap.item_b} "
                f"(proven statically: {overlap.reason})")
        if overlap is not None:
            # Symbolic mode: a definite overlap becomes an unconditional
            # failed obligation on this path, like any other assert.
            assert_(False,
                    f"conflicting access to {overlap.buffer} by work items "
                    f"{overlap.item_a} and {overlap.item_b}")
        for check, distinct in residual:
            assert_(distinct,
                    f"conflicting access to {check.buffer} by work "
                    f"items {check.item_a} and {check.item_b}")
