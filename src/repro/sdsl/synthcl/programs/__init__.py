"""The three SYNTHCL benchmark programs of §5.1.

Each module provides a sequential reference implementation, a series of
data-parallel refinements (the paper derived 12 implementations across the
three programs by stepwise refinement), and sketches for the synthesis
queries. The verification harnesses check each refinement against the
reference on all symbolic inputs within the query bounds of Table 1.
"""

from repro.sdsl.synthcl.programs import fwt, mm, sobel

__all__ = ["fwt", "mm", "sobel"]
