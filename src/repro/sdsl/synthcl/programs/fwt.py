"""Fast Walsh Transform (FWT) on arrays of 2^k numbers.

The classic in-place butterfly network: ``lg n`` stages, each combining
pairs ``(a, b) → (a + b, a - b)`` at stride 2^stage.

- :func:`fwt_reference` — sequential host implementation;
- :func:`fwt_parallel_v1` — one kernel launch per stage, one work item per
  butterfly (the paper's FWT1);
- :func:`fwt_parallel_v2` — fused: each work item processes its pair
  through a register-resident two-stage block when possible (FWT2);
- :func:`fwt_sketch` — butterfly with the combine operations as holes
  (FWT1s/FWT2s): the synthesizer rediscovers the (+, −) butterfly.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.sym import ops
from repro.sdsl.synthcl.runtime import CLRuntime, WorkItemContext
from repro.sdsl.synthcl.sketch import choice


def fwt_reference(data: Sequence) -> Tuple:
    """Sequential Walsh-Hadamard transform (size must be a power of two)."""
    values = list(data)
    size = len(values)
    if size & (size - 1):
        raise ValueError("FWT requires a power-of-two input size")
    stride = 1
    while stride < size:
        for start in range(0, size, stride * 2):
            for offset in range(stride):
                i = start + offset
                j = i + stride
                a, b = values[i], values[j]
                values[i] = ops.add(a, b)
                values[j] = ops.sub(a, b)
        stride *= 2
    return tuple(values)


def _butterfly_launch(data: Sequence, combine) -> Tuple:
    """One kernel launch per stage; `combine(a, b) -> (top, bottom)`."""
    size = len(data)
    if size & (size - 1):
        raise ValueError("FWT requires a power-of-two input size")
    runtime = CLRuntime()
    buf = runtime.buffer("data", data)
    stride = 1
    while stride < size:
        def kernel(item: WorkItemContext, stride=stride):
            gid = item.get_global_id()
            block, offset = divmod(gid, stride)
            i = block * stride * 2 + offset
            j = i + stride
            a = item.read(buf, i)
            b = item.read(buf, j)
            top, bottom = combine(a, b)
            item.write(buf, i, top)
            item.write(buf, j, bottom)
        runtime.launch(kernel, size // 2)
        stride *= 2
    return buf.snapshot()


def fwt_parallel_v1(data: Sequence) -> Tuple:
    return _butterfly_launch(
        data, lambda a, b: (ops.add(a, b), ops.sub(a, b)))


def fwt_parallel_v2(data: Sequence) -> Tuple:
    """Fused: pairs of stages processed in registers (fewer launches)."""
    size = len(data)
    if size & (size - 1):
        raise ValueError("FWT requires a power-of-two input size")
    if size < 4:
        return fwt_parallel_v1(data)
    runtime = CLRuntime()
    buf = runtime.buffer("data", data)
    stride = 1
    while stride < size:
        if stride * 2 < size:
            # Fused double stage: each work item owns 4 elements.
            def kernel(item: WorkItemContext, stride=stride):
                gid = item.get_global_id()
                block, offset = divmod(gid, stride)
                base = block * stride * 4 + offset
                i0, i1 = base, base + stride
                i2, i3 = base + 2 * stride, base + 3 * stride
                a = item.read(buf, i0)
                b = item.read(buf, i1)
                c = item.read(buf, i2)
                d = item.read(buf, i3)
                # Stage 1 within the block.
                a, b = ops.add(a, b), ops.sub(a, b)
                c, d = ops.add(c, d), ops.sub(c, d)
                # Stage 2 across the halves.
                item.write(buf, i0, ops.add(a, c))
                item.write(buf, i1, ops.add(b, d))
                item.write(buf, i2, ops.sub(a, c))
                item.write(buf, i3, ops.sub(b, d))
            runtime.launch(kernel, size // 4)
            stride *= 4
        else:
            def kernel(item: WorkItemContext, stride=stride):
                gid = item.get_global_id()
                block, offset = divmod(gid, stride)
                i = block * stride * 2 + offset
                j = i + stride
                a = item.read(buf, i)
                b = item.read(buf, j)
                item.write(buf, i, ops.add(a, b))
                item.write(buf, j, ops.sub(a, b))
            runtime.launch(kernel, size // 2)
            stride *= 2
    return buf.snapshot()


def fwt_sketch(data: Sequence) -> Tuple:
    """Butterfly with holes: each output picks among {a+b, a−b, b−a, a, b}.

    The two operation holes are created once and shared by every butterfly
    site (like the paper's ``choose``, whose define-symbolic selectors make
    each occurrence pick the same expression every time it is evaluated),
    so the synthesizer recovers a single uniform (a+b, a−b) butterfly.
    """
    from repro.vm import builtins as B

    operations = [
        lambda a, b: ops.add(a, b),
        lambda a, b: ops.sub(a, b),
        lambda a, b: ops.sub(b, a),
        lambda a, b: a,
        lambda a, b: b,
    ]
    # One union-of-procedures hole per butterfly output, shared by every
    # butterfly site (rule AP2 applies each member under its guard).
    top_op = choice(operations, "fwt_top")
    bottom_op = choice(operations, "fwt_bot")

    def combine(a, b):
        return (B.apply_value(top_op, a, b), B.apply_value(bottom_op, a, b))

    return _butterfly_launch(data, combine)
