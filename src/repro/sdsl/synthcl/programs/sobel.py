"""Sobel Filter (SF): edge detection on a w×h image with 4 color channels.

The image is a flat array of w*h*4 integers (one integer per color
component, as in the paper). The filter computes, per pixel and channel,
``|Gx| + |Gy|`` of the 3×3 Sobel operator with replicate-at-edge boundary
handling.

Refinement chain (the paper derives seven SF implementations; SF6/SF7
process only interior pixels and therefore require w,h ≥ 3 — which is why
Table 1 gives them different bounds):

- :func:`sobel_reference` — sequential host loop;
- v1 — one work item per pixel (computes all 4 channels);
- v2 — one work item per (pixel, channel);
- v3 — v1 with hoisted neighbor indices;
- v4 — unrolled taps, zero-coefficient reads elided;
- v5 — strength-reduced gradient (shifts instead of multiplies);
- v6 — interior-only kernel plus a host border pass (needs w,h ≥ 3);
- v7 — interior-only and channel-vectorized with ``int4`` (needs w,h ≥ 3);
- :func:`sobel_sketch` — v1 with the Sobel coefficients as holes (SF3s/SF7s).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.sym import ops
from repro.vm import branch
from repro.sdsl.synthcl.runtime import CLRuntime, WorkItemContext
from repro.sdsl.synthcl.sketch import choice
from repro.sdsl.synthcl.types import IntVec

CHANNELS = 4

GX = ((-1, 0, 1), (-2, 0, 2), (-1, 0, 1))
GY = ((-1, -2, -1), (0, 0, 0), (1, 2, 1))


def _iabs(value):
    return branch(ops.lt(value, 0), lambda: ops.neg(value), lambda: value)


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


def _pixel(image: Sequence, w: int, h: int, x: int, y: int, c: int):
    """Replicate-at-edge pixel fetch (concrete coordinates)."""
    x = _clamp(x, 0, w - 1)
    y = _clamp(y, 0, h - 1)
    return image[(y * w + x) * CHANNELS + c]


def _gradient_at(image, w, h, x, y, c, gx=GX, gy=GY):
    grad_x = 0
    grad_y = 0
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            value = _pixel(image, w, h, x + dx, y + dy, c)
            cx = gx[dy + 1][dx + 1]
            cy = gy[dy + 1][dx + 1]
            if cx:
                grad_x = ops.add(grad_x, ops.mul(value, cx))
            if cy:
                grad_y = ops.add(grad_y, ops.mul(value, cy))
    return ops.add(_iabs(grad_x), _iabs(grad_y))


def sobel_reference(image: Sequence, w: int, h: int) -> Tuple:
    out = []
    for y in range(h):
        for x in range(w):
            for c in range(CHANNELS):
                out.append(_gradient_at(image, w, h, x, y, c))
    return tuple(out)


def _launch_full(image, w, h, kernel_body) -> Tuple:
    runtime = CLRuntime()
    src = runtime.buffer("src", image)
    dst = runtime.buffer("dst", [0] * (w * h * CHANNELS))
    runtime.launch(lambda item: kernel_body(item, src, dst), w * h)
    return dst.snapshot()


def sobel_v1(image: Sequence, w: int, h: int) -> Tuple:
    """One work item per pixel; scalar channels."""
    def body(item: WorkItemContext, src, dst):
        gid = item.get_global_id()
        y, x = divmod(gid, w)
        for c in range(CHANNELS):
            grad_x = 0
            grad_y = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    px = _clamp(x + dx, 0, w - 1)
                    py = _clamp(y + dy, 0, h - 1)
                    value = item.read(src, (py * w + px) * CHANNELS + c)
                    if GX[dy + 1][dx + 1]:
                        grad_x = ops.add(grad_x,
                                         ops.mul(value, GX[dy + 1][dx + 1]))
                    if GY[dy + 1][dx + 1]:
                        grad_y = ops.add(grad_y,
                                         ops.mul(value, GY[dy + 1][dx + 1]))
            item.write(dst, gid * CHANNELS + c,
                       ops.add(_iabs(grad_x), _iabs(grad_y)))
    return _launch_full(image, w, h, body)


def sobel_v2(image: Sequence, w: int, h: int) -> Tuple:
    """One work item per (pixel, channel)."""
    runtime = CLRuntime()
    src = runtime.buffer("src", image)
    dst = runtime.buffer("dst", [0] * (w * h * CHANNELS))

    def kernel(item: WorkItemContext):
        gid = item.get_global_id()
        pixel, c = divmod(gid, CHANNELS)
        y, x = divmod(pixel, w)
        grad_x = 0
        grad_y = 0
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                px = _clamp(x + dx, 0, w - 1)
                py = _clamp(y + dy, 0, h - 1)
                value = item.read(src, (py * w + px) * CHANNELS + c)
                if GX[dy + 1][dx + 1]:
                    grad_x = ops.add(grad_x, ops.mul(value, GX[dy + 1][dx + 1]))
                if GY[dy + 1][dx + 1]:
                    grad_y = ops.add(grad_y, ops.mul(value, GY[dy + 1][dx + 1]))
        item.write(dst, gid, ops.add(_iabs(grad_x), _iabs(grad_y)))

    runtime.launch(kernel, w * h * CHANNELS)
    return dst.snapshot()


def sobel_v3(image: Sequence, w: int, h: int) -> Tuple:
    """v1 with neighbor offsets hoisted out of the channel loop."""
    def body(item: WorkItemContext, src, dst):
        gid = item.get_global_id()
        y, x = divmod(gid, w)
        offsets = {}
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                px = _clamp(x + dx, 0, w - 1)
                py = _clamp(y + dy, 0, h - 1)
                offsets[(dx, dy)] = (py * w + px) * CHANNELS
        for c in range(CHANNELS):
            grad_x = 0
            grad_y = 0
            for (dx, dy), base in offsets.items():
                value = item.read(src, base + c)
                if GX[dy + 1][dx + 1]:
                    grad_x = ops.add(grad_x, ops.mul(value, GX[dy + 1][dx + 1]))
                if GY[dy + 1][dx + 1]:
                    grad_y = ops.add(grad_y, ops.mul(value, GY[dy + 1][dx + 1]))
            item.write(dst, gid * CHANNELS + c,
                       ops.add(_iabs(grad_x), _iabs(grad_y)))
    return _launch_full(image, w, h, body)


def sobel_v4(image: Sequence, w: int, h: int) -> Tuple:
    """Fully unrolled taps: the six non-zero reads per gradient, explicit."""
    def body(item: WorkItemContext, src, dst):
        gid = item.get_global_id()
        y, x = divmod(gid, w)
        def fetch(dx, dy, c):
            px = _clamp(x + dx, 0, w - 1)
            py = _clamp(y + dy, 0, h - 1)
            return item.read(src, (py * w + px) * CHANNELS + c)
        for c in range(CHANNELS):
            nw, n_, ne = fetch(-1, -1, c), fetch(0, -1, c), fetch(1, -1, c)
            w_, e_ = fetch(-1, 0, c), fetch(1, 0, c)
            sw, s_, se = fetch(-1, 1, c), fetch(0, 1, c), fetch(1, 1, c)
            grad_x = ops.sub(
                ops.add(ops.add(ne, se), ops.mul(e_, 2)),
                ops.add(ops.add(nw, sw), ops.mul(w_, 2)))
            grad_y = ops.sub(
                ops.add(ops.add(sw, se), ops.mul(s_, 2)),
                ops.add(ops.add(nw, ne), ops.mul(n_, 2)))
            item.write(dst, gid * CHANNELS + c,
                       ops.add(_iabs(grad_x), _iabs(grad_y)))
    return _launch_full(image, w, h, body)


def sobel_v5(image: Sequence, w: int, h: int) -> Tuple:
    """v4 with the ×2 strength-reduced to an addition."""
    def body(item: WorkItemContext, src, dst):
        gid = item.get_global_id()
        y, x = divmod(gid, w)
        def fetch(dx, dy, c):
            px = _clamp(x + dx, 0, w - 1)
            py = _clamp(y + dy, 0, h - 1)
            return item.read(src, (py * w + px) * CHANNELS + c)
        for c in range(CHANNELS):
            nw, n_, ne = fetch(-1, -1, c), fetch(0, -1, c), fetch(1, -1, c)
            w_, e_ = fetch(-1, 0, c), fetch(1, 0, c)
            sw, s_, se = fetch(-1, 1, c), fetch(0, 1, c), fetch(1, 1, c)
            grad_x = ops.sub(ops.add(ops.add(ne, se), ops.add(e_, e_)),
                             ops.add(ops.add(nw, sw), ops.add(w_, w_)))
            grad_y = ops.sub(ops.add(ops.add(sw, se), ops.add(s_, s_)),
                             ops.add(ops.add(nw, ne), ops.add(n_, n_)))
            item.write(dst, gid * CHANNELS + c,
                       ops.add(_iabs(grad_x), _iabs(grad_y)))
    return _launch_full(image, w, h, body)


def _interior_kernel(item: WorkItemContext, src, dst, w: int, h: int) -> None:
    """Interior pixels only: no clamping (valid because 1 ≤ x,y < dim-1)."""
    gid = item.get_global_id()
    inner_w = w - 2
    iy, ix = divmod(gid, inner_w)
    x, y = ix + 1, iy + 1
    for c in range(CHANNELS):
        def fetch(dx, dy):
            return item.read(src, ((y + dy) * w + (x + dx)) * CHANNELS + c)
        nw, n_, ne = fetch(-1, -1), fetch(0, -1), fetch(1, -1)
        w_, e_ = fetch(-1, 0), fetch(1, 0)
        sw, s_, se = fetch(-1, 1), fetch(0, 1), fetch(1, 1)
        grad_x = ops.sub(ops.add(ops.add(ne, se), ops.mul(e_, 2)),
                         ops.add(ops.add(nw, sw), ops.mul(w_, 2)))
        grad_y = ops.sub(ops.add(ops.add(sw, se), ops.mul(s_, 2)),
                         ops.add(ops.add(nw, ne), ops.mul(n_, 2)))
        item.write(dst, (y * w + x) * CHANNELS + c,
                   ops.add(_iabs(grad_x), _iabs(grad_y)))


def _border_pass(image, w: int, h: int, out: list) -> None:
    """Host-side pass computing the border pixels (for v6/v7)."""
    for y in range(h):
        for x in range(w):
            if 0 < x < w - 1 and 0 < y < h - 1:
                continue
            for c in range(CHANNELS):
                out[(y * w + x) * CHANNELS + c] = \
                    _gradient_at(image, w, h, x, y, c)


def sobel_v6(image: Sequence, w: int, h: int) -> Tuple:
    """Interior-only NDRange + host border pass. Requires w, h ≥ 3."""
    if w < 3 or h < 3:
        raise ValueError("sobel_v6 requires w, h >= 3")
    runtime = CLRuntime()
    src = runtime.buffer("src", image)
    dst = runtime.buffer("dst", [0] * (w * h * CHANNELS))
    runtime.launch(lambda item: _interior_kernel(item, src, dst, w, h),
                   (w - 2) * (h - 2))
    out = list(dst.snapshot())
    _border_pass(image, w, h, out)
    return tuple(out)


def sobel_v7(image: Sequence, w: int, h: int) -> Tuple:
    """Interior-only and channel-vectorized (int4). Requires w, h ≥ 3."""
    if w < 3 or h < 3:
        raise ValueError("sobel_v7 requires w, h >= 3")
    runtime = CLRuntime()
    src = runtime.buffer("src", image)
    dst = runtime.buffer("dst", [0] * (w * h * CHANNELS))

    def kernel(item: WorkItemContext):
        gid = item.get_global_id()
        inner_w = w - 2
        iy, ix = divmod(gid, inner_w)
        x, y = ix + 1, iy + 1
        def fetch4(dx, dy) -> IntVec:
            base = ((y + dy) * w + (x + dx)) * CHANNELS
            return IntVec(item.read(src, base + c) for c in range(CHANNELS))
        nw, n_, ne = fetch4(-1, -1), fetch4(0, -1), fetch4(1, -1)
        w_, e_ = fetch4(-1, 0), fetch4(1, 0)
        sw, s_, se = fetch4(-1, 1), fetch4(0, 1), fetch4(1, 1)
        grad_x = (ne + se + e_ * 2) - (nw + sw + w_ * 2)
        grad_y = (sw + se + s_ * 2) - (nw + ne + n_ * 2)
        base = (y * w + x) * CHANNELS
        for c in range(CHANNELS):
            item.write(dst, base + c,
                       ops.add(_iabs(grad_x[c]), _iabs(grad_y[c])))

    runtime.launch(kernel, (w - 2) * (h - 2))
    out = list(dst.snapshot())
    _border_pass(image, w, h, out)
    return tuple(out)


def sobel_sketch(image: Sequence, w: int, h: int) -> Tuple:
    """v1 with the non-zero Sobel column weights as holes (SF3s/SF7s).

    The synthesizer must rediscover the (1, 2, 1) smoothing weights from
    equivalence with the reference filter. The holes range over weighting
    *closures* (like the MM/FWT sketches), so the sketch exercises
    union-of-procedure application (rule AP2) — the union-heavy synthesis
    evaluation the paper reports.
    """
    from repro.vm import builtins as B

    weightings = [lambda v: v, lambda v: ops.mul(v, 2),
                  lambda v: ops.mul(v, 3)]
    side_fn = choice(weightings, "side")       # correct: identity (×1)
    center_fn = choice(weightings, "center")   # correct: ×2

    def weight_side(value):
        return B.apply_value(side_fn, value)

    def weight_center(value):
        return B.apply_value(center_fn, value)

    def body(item: WorkItemContext, src, dst):
        gid = item.get_global_id()
        y, x = divmod(gid, w)
        def fetch(dx, dy, c):
            px = _clamp(x + dx, 0, w - 1)
            py = _clamp(y + dy, 0, h - 1)
            return item.read(src, (py * w + px) * CHANNELS + c)
        for c in range(CHANNELS):
            nw, n_, ne = fetch(-1, -1, c), fetch(0, -1, c), fetch(1, -1, c)
            w_, e_ = fetch(-1, 0, c), fetch(1, 0, c)
            sw, s_, se = fetch(-1, 1, c), fetch(0, 1, c), fetch(1, 1, c)
            grad_x = ops.sub(
                ops.add(ops.add(weight_side(ne),
                                weight_side(se)),
                        weight_center(e_)),
                ops.add(ops.add(weight_side(nw),
                                weight_side(sw)),
                        weight_center(w_)))
            grad_y = ops.sub(
                ops.add(ops.add(weight_side(sw),
                                weight_side(se)),
                        weight_center(s_)),
                ops.add(ops.add(weight_side(nw),
                                weight_side(ne)),
                        weight_center(n_)))
            item.write(dst, gid * CHANNELS + c,
                       ops.add(_iabs(grad_x), _iabs(grad_y)))
    return _launch_full(image, w, h, body)


SOBEL_VERSIONS: Dict[int, Callable] = {
    1: sobel_v1, 2: sobel_v2, 3: sobel_v3, 4: sobel_v4, 5: sobel_v5,
    6: sobel_v6, 7: sobel_v7,
}
