"""Matrix Multiplication (MM): dot product of n×p and p×m matrices.

Matrices are one-dimensional arrays in row-major order, as in the AMD APP
SDK benchmark the paper starts from. Refinements:

- :func:`mm_reference` — the sequential host implementation;
- :func:`mm_parallel_v1` — first refinement: one work item per output
  element, scalar accumulation (the paper's MM1);
- :func:`mm_parallel_v2` — second refinement: vectorized accumulation in
  lane-`V` chunks with a scalar tail (the paper's MM2);
- :func:`mm_sketch` — the MM2 kernel with its index arithmetic replaced by
  ``choice`` holes (the MM2s synthesis query).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.sym import ops
from repro.sdsl.synthcl.runtime import CLRuntime, WorkItemContext
from repro.sdsl.synthcl.sketch import choice
from repro.sdsl.synthcl.types import IntVec

VECTOR_WIDTH = 2


def mm_reference(a: Sequence, b: Sequence, n: int, p: int, m: int) -> Tuple:
    """Sequential row-major matrix product."""
    out = []
    for row in range(n):
        for col in range(m):
            total = 0
            for k in range(p):
                total = ops.add(total, ops.mul(a[row * p + k], b[k * m + col]))
            out.append(total)
    return tuple(out)


def mm_parallel_v1(a: Sequence, b: Sequence, n: int, p: int, m: int) -> Tuple:
    """One work item per output element; scalar accumulation."""
    runtime = CLRuntime()
    buf_a = runtime.buffer("A", a)
    buf_b = runtime.buffer("B", b)
    buf_c = runtime.buffer("C", [0] * (n * m))

    def kernel(item: WorkItemContext):
        gid = item.get_global_id()
        row, col = divmod(gid, m)
        total = 0
        for k in range(p):
            total = ops.add(total, ops.mul(item.read(buf_a, row * p + k),
                                           item.read(buf_b, k * m + col)))
        item.write(buf_c, gid, total)

    runtime.launch(kernel, n * m)
    return buf_c.snapshot()


def mm_parallel_v2(a: Sequence, b: Sequence, n: int, p: int, m: int) -> Tuple:
    """Vectorized accumulation: lane-V partial sums, then a horizontal add."""
    runtime = CLRuntime()
    buf_a = runtime.buffer("A", a)
    buf_b = runtime.buffer("B", b)
    buf_c = runtime.buffer("C", [0] * (n * m))
    vec_chunks = p // VECTOR_WIDTH

    def kernel(item: WorkItemContext):
        gid = item.get_global_id()
        row, col = divmod(gid, m)
        acc = IntVec((0,) * VECTOR_WIDTH)
        for chunk in range(vec_chunks):
            base = chunk * VECTOR_WIDTH
            lhs = IntVec(item.read(buf_a, row * p + base + lane)
                         for lane in range(VECTOR_WIDTH))
            rhs = IntVec(item.read(buf_b, (base + lane) * m + col)
                         for lane in range(VECTOR_WIDTH))
            acc = acc + lhs * rhs
        total = acc.reduce_add()
        for k in range(vec_chunks * VECTOR_WIDTH, p):  # scalar tail
            total = ops.add(total, ops.mul(item.read(buf_a, row * p + k),
                                           item.read(buf_b, k * m + col)))
        item.write(buf_c, gid, total)

    runtime.launch(kernel, n * m)
    return buf_c.snapshot()


def mm_sketch(a: Sequence, b: Sequence, n: int, p: int, m: int) -> Tuple:
    """MM2 with holes in the index arithmetic (the MM2s query).

    The correct strides (``row * p + k`` into A and ``k * m + col`` into B)
    are replaced by choices among the plausible dimension constants; the
    synthesizer must recover the row-major access pattern.
    """
    # Hole-dependent accesses make the race obligations symbolic; in
    # "symbolic" mode they are *modeled* — folded into the path condition
    # for the synthesizer — instead of silently skipped. (For this sketch
    # the only writes land at each item's own concrete gid, so the static
    # pre-detector discharges every pair without a single solver check;
    # the holes sit in read indices, which race with no write.)
    runtime = CLRuntime(race_mode="symbolic")
    buf_a = runtime.buffer("A", a)
    buf_b = runtime.buffer("B", b)
    buf_c = runtime.buffer("C", [0] * (n * m))
    # The holes range over candidate *index expressions* (closures), so the
    # sketch value is a symbolic union of procedures applied per access —
    # the union-heavy evaluation the paper reports for synthesis queries.
    index_a_fn = choice([
        lambda row, col, k: row * p + k,
        lambda row, col, k: k * p + row,
        lambda row, col, k: row * m + k,
    ], "indexA")
    index_b_fn = choice([
        lambda row, col, k: k * m + col,
        lambda row, col, k: col * m + k,
        lambda row, col, k: k * p + col,
    ], "indexB")
    from repro.vm import builtins as B

    def kernel(item: WorkItemContext):
        gid = item.get_global_id()
        row, col = divmod(gid, m)
        total = 0
        for k in range(p):
            index_a = B.apply_value(index_a_fn, row, col, k)
            index_b = B.apply_value(index_b_fn, row, col, k)
            total = ops.add(total, ops.mul(item.read(buf_a, index_a),
                                           item.read(buf_b, index_b)))
        item.write(buf_c, gid, total)

    runtime.launch(kernel, n * m)
    return buf_c.snapshot()
