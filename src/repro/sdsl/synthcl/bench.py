"""The SYNTHCL benchmark suite: Table 1's MM/SF/FWT queries.

Each benchmark id from the paper (``MM1v`` … ``FWT2s``) maps to a query
thunk plus its input-length bounds. The paper's bounds (32-bit numbers,
dimensions up to 16, images up to 9×9, arrays up to 2^6) target Z3 on a
2.13 GHz machine; the defaults here are scaled for a pure-Python solver
and recorded next to the paper's (see EXPERIMENTS.md). Pass a different
``bounds`` to sweep larger sizes.

A *verification* benchmark checks a refinement against the reference on
every symbolic input within bounds (expect ``unsat`` = refinement correct);
a *synthesis* benchmark fills a sketch's holes by CEGIS (expect ``sat``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import tracing
from repro.queries import Budget, QueryOutcome, synthesize, verify
from repro.sym import fresh_int, ops
from repro.sym.values import SymInt
from repro.vm import assert_
from repro.sdsl.synthcl.programs import fwt, mm, sobel


def _symbolic_array(name: str, length: int) -> Tuple[SymInt, ...]:
    return tuple(fresh_int(name) for _ in range(length))


def _assert_equal_arrays(expected: Sequence, actual: Sequence) -> None:
    if len(expected) != len(actual):
        raise AssertionError(
            f"shape mismatch: {len(expected)} vs {len(actual)} elements")
    for index, (want, got) in enumerate(zip(expected, actual)):
        assert_(ops.num_eq(want, got), f"output element {index} differs")


@dataclass
class SynthClBenchmark:
    """One Table 1 benchmark: id, kind, query thunk factory, and bounds."""

    name: str
    kind: str                      # "verify" | "synthesize"
    bounds: Tuple                  # scaled default bounds
    paper_bounds: str              # the paper's bound description
    run: Callable[..., QueryOutcome] = field(repr=False, default=None)


# ---------------------------------------------------------------------------
# MM
# ---------------------------------------------------------------------------

def _mm_verify(version: int, dims: Sequence[Tuple[int, int, int]],
               budget: Optional[Budget] = None,
               certify: Optional[bool] = None) -> QueryOutcome:
    implementation = {1: mm.mm_parallel_v1, 2: mm.mm_parallel_v2}[version]
    last: Optional[QueryOutcome] = None
    for n, p, m in dims:
        def thunk(n=n, p=p, m=m):
            a = _symbolic_array("a", n * p)
            b = _symbolic_array("b", p * m)
            _assert_equal_arrays(mm.mm_reference(a, b, n, p, m),
                                 implementation(a, b, n, p, m))
        outcome = verify(thunk, budget=budget, certify=certify)
        last = _merge_outcomes(last, outcome)
        if outcome.status != "unsat":
            return last  # counterexample or exhausted budget: stop early
    return last


def _mm_synthesize(dims: Sequence[Tuple[int, int, int]],
                   budget: Optional[Budget] = None,
                   certify: Optional[bool] = None) -> QueryOutcome:
    n, p, m = dims[0]
    inputs: List = []

    def thunk():
        a = _symbolic_array("a", n * p)
        b = _symbolic_array("b", p * m)
        inputs.extend(a + b)
        _assert_equal_arrays(mm.mm_reference(a, b, n, p, m),
                             mm.mm_sketch(a, b, n, p, m))
    return synthesize(_LazyInputs(inputs), thunk, budget=budget,
                      certify=certify)


class _LazyInputs:
    """Input list resolved only after the thunk has populated it."""

    def __init__(self, backing: List):
        self._backing = backing

    def __iter__(self):
        return iter(self._backing)


# ---------------------------------------------------------------------------
# SF
# ---------------------------------------------------------------------------

def _sf_verify(version: int, sizes: Sequence[Tuple[int, int]],
               budget: Optional[Budget] = None,
               certify: Optional[bool] = None) -> QueryOutcome:
    implementation = sobel.SOBEL_VERSIONS[version]
    last: Optional[QueryOutcome] = None
    for w, h in sizes:
        def thunk(w=w, h=h):
            image = _symbolic_array("px", w * h * sobel.CHANNELS)
            _assert_equal_arrays(sobel.sobel_reference(image, w, h),
                                 implementation(image, w, h))
        outcome = verify(thunk, budget=budget, certify=certify)
        last = _merge_outcomes(last, outcome)
        if outcome.status != "unsat":
            return last
    return last


def _sf_synthesize(sizes: Sequence[Tuple[int, int]],
                   budget: Optional[Budget] = None,
                   certify: Optional[bool] = None) -> QueryOutcome:
    w, h = sizes[0]
    inputs: List = []

    def thunk():
        image = _symbolic_array("px", w * h * sobel.CHANNELS)
        inputs.extend(image)
        _assert_equal_arrays(sobel.sobel_reference(image, w, h),
                             sobel.sobel_sketch(image, w, h))
    return synthesize(_LazyInputs(inputs), thunk, budget=budget,
                      certify=certify)


# ---------------------------------------------------------------------------
# FWT
# ---------------------------------------------------------------------------

def _fwt_verify(version: int, exponents: Sequence[int],
                budget: Optional[Budget] = None,
                certify: Optional[bool] = None) -> QueryOutcome:
    implementation = {1: fwt.fwt_parallel_v1, 2: fwt.fwt_parallel_v2}[version]
    last: Optional[QueryOutcome] = None
    for k in exponents:
        def thunk(k=k):
            data = _symbolic_array("x", 1 << k)
            _assert_equal_arrays(fwt.fwt_reference(data),
                                 implementation(data))
        outcome = verify(thunk, budget=budget, certify=certify)
        last = _merge_outcomes(last, outcome)
        if outcome.status != "unsat":
            return last
    return last


def _fwt_synthesize(exponents: Sequence[int],
                    budget: Optional[Budget] = None,
                    certify: Optional[bool] = None) -> QueryOutcome:
    k = exponents[0]
    inputs: List = []

    def thunk():
        data = _symbolic_array("x", 1 << k)
        inputs.extend(data)
        _assert_equal_arrays(fwt.fwt_reference(data), fwt.fwt_sketch(data))
    return synthesize(_LazyInputs(inputs), thunk, budget=budget,
                      certify=certify)


def _merge_outcomes(accumulated: Optional[QueryOutcome],
                    outcome: QueryOutcome) -> QueryOutcome:
    if accumulated is None:
        return outcome
    outcome.stats.joins += accumulated.stats.joins
    outcome.stats.unions_created += accumulated.stats.unions_created
    outcome.stats.union_cardinality_sum += \
        accumulated.stats.union_cardinality_sum
    outcome.stats.max_union_cardinality = max(
        outcome.stats.max_union_cardinality,
        accumulated.stats.max_union_cardinality)
    outcome.stats.svm_seconds += accumulated.stats.svm_seconds
    outcome.stats.solver_seconds += accumulated.stats.solver_seconds
    outcome.stats.solver_checks += accumulated.stats.solver_checks
    outcome.stats.solver_conflicts += accumulated.stats.solver_conflicts
    outcome.stats.solver_decisions += accumulated.stats.solver_decisions
    outcome.stats.solver_propagations += accumulated.stats.solver_propagations
    outcome.stats.solver_learned += accumulated.stats.solver_learned
    outcome.stats.encode_cache_hits += accumulated.stats.encode_cache_hits
    outcome.stats.encode_cache_misses += accumulated.stats.encode_cache_misses
    outcome.stats.budget_trips += accumulated.stats.budget_trips
    outcome.stats.certified_checks += accumulated.stats.certified_checks
    return outcome


# ---------------------------------------------------------------------------
# The Table 1 registry (scaled bounds; paper bounds in the docstring column)
# ---------------------------------------------------------------------------

_MM_DIMS = [(n, p, m) for n in (2, 3) for p in (2, 3) for m in (2, 3)]
_SF_SIZES = [(w, h) for w in (1, 2, 3) for h in (1, 2, 3)]
_SF_INTERIOR = [(3, 3), (3, 4), (4, 3)]
_FWT_EXPONENTS = [0, 1, 2, 3]

SYNTHCL_BENCHMARKS: Dict[str, SynthClBenchmark] = {}


def _register(name: str, kind: str, bounds, paper_bounds: str, run) -> None:
    SYNTHCL_BENCHMARKS[name] = SynthClBenchmark(
        name=name, kind=kind, bounds=tuple(bounds),
        paper_bounds=paper_bounds, run=run)


_register("MM1v", "verify", _MM_DIMS,
          "n,p,m ∈ {4,8,12,16}, 32-bit",
          lambda bounds, budget=None, certify=None:
              _mm_verify(1, bounds, budget, certify))
_register("MM2v", "verify", _MM_DIMS,
          "n,p,m ∈ {4,8,12,16}, 32-bit",
          lambda bounds, budget=None, certify=None:
              _mm_verify(2, bounds, budget, certify))
_register("MM2s", "synthesize", [(2, 3, 2)],
          "n,p,m ∈ {8}, 8-bit",
          lambda bounds, budget=None, certify=None:
              _mm_synthesize(bounds, budget, certify))
for _v in (1, 2, 3, 4, 5):
    _register(f"SF{_v}v", "verify", _SF_SIZES,
              "w,h ∈ {1..9}, 32-bit",
              lambda bounds, budget=None, certify=None, _v=_v:
                  _sf_verify(_v, bounds, budget, certify))
for _v in (6, 7):
    _register(f"SF{_v}v", "verify", _SF_INTERIOR,
              "w,h ∈ {3..9}, 32-bit",
              lambda bounds, budget=None, certify=None, _v=_v:
                  _sf_verify(_v, bounds, budget, certify))
_register("SF3s", "synthesize", [(2, 2)],
          "w,h ∈ {1..4}, 8-bit",
          lambda bounds, budget=None, certify=None:
              _sf_synthesize(bounds, budget, certify))
_register("SF7s", "synthesize", [(3, 3)],
          "w,h ∈ {4}, 8-bit",
          lambda bounds, budget=None, certify=None:
              _sf_synthesize(bounds, budget, certify))
_register("FWT1v", "verify", _FWT_EXPONENTS,
          "2^k, k ∈ {0..6}, 32-bit",
          lambda bounds, budget=None, certify=None:
              _fwt_verify(1, bounds, budget, certify))
_register("FWT2v", "verify", _FWT_EXPONENTS,
          "2^k, k ∈ {0..6}, 32-bit",
          lambda bounds, budget=None, certify=None:
              _fwt_verify(2, bounds, budget, certify))
_register("FWT1s", "synthesize", [3],
          "2^k, k ∈ {3}, 8-bit",
          lambda bounds, budget=None, certify=None:
              _fwt_synthesize(bounds, budget, certify))
_register("FWT2s", "synthesize", [2],
          "2^k, k ∈ {3}, 8-bit",
          lambda bounds, budget=None, certify=None:
              _fwt_synthesize(bounds, budget, certify))


def run_benchmark(name: str, bounds=None,
                  budget: Optional[Budget] = None,
                  trace=None,
                  certify: Optional[bool] = None) -> QueryOutcome:
    """Run one Table 1 benchmark; returns its QueryOutcome with stats.

    `budget` caps the whole benchmark: verification sweeps share it across
    every bound in the sweep (and stop at the first unknown), and synthesis
    benchmarks hand it to CEGIS. On exhaustion the outcome is ``unknown``
    with a :class:`~repro.queries.ResourceReport`.

    `trace` attaches an observability sink (a JSONL path or a callable)
    for the whole benchmark: the sink is subscribed here, at driver level,
    so a verification sweep's many queries land in one trace instead of
    each query reopening (and truncating) the file.

    `certify` enables trust-but-verify mode on every solver the benchmark
    creates (DRUP proof + model/core certification; see
    :mod:`repro.solver.certify`); ``None`` defers to ``REPRO_CERTIFY``.
    """
    benchmark = SYNTHCL_BENCHMARKS[name]
    with tracing(trace):
        return benchmark.run(
            bounds if bounds is not None else benchmark.bounds,
            budget=budget, certify=certify)
