"""SYNTHCL — an imperative SDSL for solver-aided OpenCL development (§5.1).

SYNTHCL supports stepwise refinement of a sequential reference
implementation into a vectorized data-parallel implementation. The SDSL
provides:

- :mod:`repro.sdsl.synthcl.types` — OpenCL-style scalar and short-vector
  values (``int4`` etc.) with lane-wise operations;
- :mod:`repro.sdsl.synthcl.runtime` — an abstract model of the OpenCL
  runtime: host/device buffers, NDRange kernel launches, work-item ids,
  and the implicit assertions that "no two kernel instances ever perform a
  conflicting memory access";
- :mod:`repro.sdsl.synthcl.programs` — the three benchmarks (Matrix
  Multiplication, Sobel Filter, Fast Walsh Transform), each as a reference
  implementation plus data-parallel and vectorized refinements, with
  sketches for the synthesis queries;
- :mod:`repro.sdsl.synthcl.bench` — the Table 1 benchmark definitions
  (MM1v … FWT2s) with their query bounds.

Floats are modeled as fixed-width integers: the evaluation's subject is the
SVM (joins, unions, concrete evaluation of memory operations), which is
representation-independent; see DESIGN.md.
"""

from repro.sdsl.synthcl.types import IntVec, int4, vec_add, vec_mul
from repro.sdsl.synthcl.runtime import Buffer, CLRuntime, KernelRace
from repro.sdsl.synthcl.bench import (
    SYNTHCL_BENCHMARKS,
    SynthClBenchmark,
    run_benchmark,
)

__all__ = [
    "IntVec", "int4", "vec_add", "vec_mul",
    "Buffer", "CLRuntime", "KernelRace",
    "SYNTHCL_BENCHMARKS", "SynthClBenchmark", "run_benchmark",
]
