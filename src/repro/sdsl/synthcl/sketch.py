"""Sketching constructs for SYNTHCL (the ``??``/``choose`` of Sketch [37]).

``choice`` picks one of a fixed set of expressions using fresh symbolic
selector booleans (the same construction as the host language's ``choose``
macro, §2.2); ``hole`` is an unconstrained symbolic constant. Both produce
values whose defining symbolic constants are *holes* for the CEGIS
synthesizer: anything not listed as a query input is existentially
quantified.
"""

from __future__ import annotations

from typing import Sequence

from repro.sym import fresh_bool, fresh_int
from repro.sym.merge import merge


def hole(name: str = "hole"):
    """An integer hole: the synthesizer picks its value."""
    return fresh_int(name)


def choice(options: Sequence, name: str = "choice"):
    """A hole ranging over the given (already evaluated) options.

    Implemented exactly like the paper's ``choose``: n-1 fresh booleans
    select among n options via merging, so the result is a single symbolic
    value (or a union if options have mixed shapes).
    """
    options = list(options)
    if not options:
        raise ValueError("choice requires at least one option")
    result = options[-1]
    for option in reversed(options[:-1]):
        result = merge(fresh_bool(name), option, result)
    return result
