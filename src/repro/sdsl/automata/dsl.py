"""The automata SDSL: HL sources and a Python driver.

The HL sources reproduce Figures 1–4 of the paper: the ``automaton``
macro (with the accepting-states fix discussed in §2.2 — the published
Figure 2 returns ``true`` on the empty stream, which the debug query
localizes), symbolic word generators built on ``define-symbolic*``, and
the regexp specification lifted with symbolic reflection.

:class:`AutomataSession` wraps an HL interpreter with these definitions
loaded and offers one method per §2 interaction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.lang import Interpreter
from repro.vm.context import VM

#: Figure 2 with the accepting-state fix: a state accepts the empty word
#: iff it has no outgoing transitions (the repair suggested in §2.2).
AUTOMATON_MACRO = """
(define-syntax automaton
  (syntax-rules (: ->)
    [(_ init-state [state : (label -> target) ...] ...)
     (letrec ([state
               (lambda (stream)
                 (cond
                   [(empty? stream) (empty? '(label ...))]
                   [else
                    (case (first stream)
                      [(label) (target (rest stream))] ...
                      [else false])]))] ...)
       init-state)]))
"""

#: Figure 2 exactly as published: every state accepts the empty word.
BUGGY_AUTOMATON_MACRO = """
(define-syntax automaton
  (syntax-rules (: ->)
    [(_ init-state [state : (label -> target) ...] ...)
     (letrec ([state
               (lambda (stream)
                 (cond
                   [(empty? stream) true]
                   [else
                    (case (first stream)
                      [(label) (target (rest stream))] ...
                      [else false])]))] ...)
       init-state)]))
"""

#: Word generators (§2.2) and the reflective regexp spec (§2.3).
#: `word` is the paper's code verbatim: for/list over a length, drawing a
#: fresh symbolic index per element via define-symbolic*.
PRELUDE = """
(define (word k alphabet)
  (for/list ([i k])
    (begin (define-symbolic* idx number?)
           (list-ref alphabet idx))))
(define (word* k alphabet)
  (begin (define-symbolic* n number?)
         (take (word k alphabet) n)))
(define (word->string w)
  (apply string-append (map symbol->string w)))
(define (spec regex w)
  (regexp-match? regex (word->string w)))
(define reject (lambda (stream) false))
"""


class AutomataSession:
    """An HL interpreter pre-loaded with the automata SDSL."""

    def __init__(self, buggy: bool = False, int_width: int = 8):
        self.interp = Interpreter(int_width=int_width)
        self._vm = VM()
        self._vm.__enter__()
        macro = BUGGY_AUTOMATON_MACRO if buggy else AUTOMATON_MACRO
        self.interp.run(macro + PRELUDE)

    def close(self) -> None:
        self._vm.__exit__(None, None, None)

    def __enter__(self) -> "AutomataSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------

    def define(self, source: str) -> None:
        """Evaluate additional HL definitions (e.g. an automaton)."""
        self.interp.run(source)

    def accepts(self, automaton: str, word: Sequence[str]) -> bool:
        """Run an automaton on a concrete word."""
        literal = " ".join(word)
        return self.interp.run(f"({automaton} '({literal}))")[0]

    def find_accepted_word(self, automaton: str, max_length: int,
                           alphabet: Sequence[str]) -> Optional[Tuple[str, ...]]:
        """Angelic execution: a word the automaton accepts, if any."""
        letters = " ".join(alphabet)
        result = self.interp.run(f"""
            (let ([w (word* {max_length} '({letters}))])
              (let ([m (solve (assert ({automaton} w)))])
                (if (sat? m) (evaluate w m) false)))
        """)[0]
        return result if result is not False else None

    def verify_against_regex(self, automaton: str, regex: str,
                             max_length: int,
                             alphabet: Sequence[str]) -> Optional[Tuple[str, ...]]:
        """Bounded verification against a regexp spec; None if it holds."""
        letters = " ".join(alphabet)
        result = self.interp.run(f"""
            (let ([w (word* {max_length} '({letters}))])
              (let ([cex (verify (assert (equal? (spec "{regex}" w)
                                                 ({automaton} w))))])
                (if (sat? cex) (evaluate w cex) false)))
        """)[0]
        return result if result is not False else None

    def debug_empty_word(self, automaton: str) -> List[str]:
        """The §2.2 debug query: why does the automaton accept '()?"""
        core = self.interp.run(
            f"(debug [boolean?] (assert (not ({automaton} '()))))")[0]
        return list(core)

    def synthesize_against_regex(self, sketch_name: str, regex: str,
                                 max_length: int,
                                 alphabet: Sequence[str]):
        """Complete a sketch (uses `choose` holes) against a regexp spec.

        Returns the ((site chosen) ...) pairs of ``generate-forms``, or
        None when the sketch cannot be completed.
        """
        letters = " ".join(alphabet)
        result = self.interp.run(f"""
            (let ([w (word* {max_length} '({letters}))])
              (let ([m (synthesize [w]
                         (assert (equal? (spec "{regex}" w)
                                         ({sketch_name} w))))])
                (if (sat? m) (generate-forms m) false)))
        """)[0]
        return result if result is not False else None
