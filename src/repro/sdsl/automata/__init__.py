"""The §2 automata SDSL, packaged for reuse.

Exposes the paper's running example as a library: the ``automaton``
syntax-rules macro, symbolic word generators, the regexp spec (lifted via
symbolic reflection), and high-level helpers that run the four solver-aided
interactions — angelic execution, debugging, verification, and sketch
synthesis — over any automaton description.
"""

from repro.sdsl.automata.dsl import (
    AUTOMATON_MACRO,
    BUGGY_AUTOMATON_MACRO,
    PRELUDE,
    AutomataSession,
)

__all__ = ["AUTOMATON_MACRO", "BUGGY_AUTOMATON_MACRO", "PRELUDE",
           "AutomataSession"]
