"""An interactive REPL for the HL solver-aided language.

Run with ``python -m repro.lang.repl``. One SVM and one interpreter live
for the whole session, so definitions, symbolic constants, and assertions
accumulate across inputs — `(solve ...)` sees everything asserted so far,
exactly like the paper's interactive transcripts in §2.

Commands: ``,quit`` exits, ``,reset`` starts a fresh session, ``,asserts``
prints the current assertion store, ``,width N`` restarts with N-bit
integers.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.interp import Interpreter, LangError
from repro.lang.reader import ParseError
from repro.smt.terms import to_sexpr
from repro.vm.context import VM
from repro.vm.errors import SvmError


class Repl:
    """A read-eval-print session over one persistent VM."""

    def __init__(self, int_width: int = 8):
        self.int_width = int_width
        self._start()

    def _start(self) -> None:
        self.vm = VM()
        self.vm.__enter__()
        self.interp = Interpreter(int_width=self.int_width)

    def _stop(self) -> None:
        self.vm.__exit__(None, None, None)

    def reset(self) -> None:
        self._stop()
        self._start()

    def eval_line(self, line: str) -> Optional[str]:
        """Evaluate one input line; returns the text to print (or None)."""
        stripped = line.strip()
        if not stripped:
            return None
        if stripped == ",quit":
            raise EOFError
        if stripped == ",reset":
            self.reset()
            return "session reset"
        if stripped == ",asserts":
            if not self.vm.assertions:
                return "assertion store is empty"
            return "\n".join(to_sexpr(a, max_depth=8)
                             for a in self.vm.assertions)
        if stripped.startswith(",width"):
            try:
                self.int_width = int(stripped.split()[1])
            except (IndexError, ValueError):
                return "usage: ,width N"
            self.reset()
            return f"restarted with {self.int_width}-bit integers"
        try:
            results = self.interp.run(line)
        except (ParseError, LangError, SvmError) as error:
            return f"error: {error}"
        shown = [repr(value) for value in results if value is not None]
        return "\n".join(shown) if shown else None


def main() -> None:
    print(f"HL repl — a solver-aided host language "
          f"({Repl().__class__.__module__})")
    print("commands: ,quit ,reset ,asserts ,width N")
    repl = Repl()
    while True:
        try:
            line = input("hl> ")
        except (EOFError, KeyboardInterrupt):
            print()
            break
        try:
            output = repl.eval_line(line)
        except EOFError:
            break
        if output is not None:
            print(output)


if __name__ == "__main__":
    main()
