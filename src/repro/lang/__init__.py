"""HL — the core solver-aided host language of §4.2 (Figs. 7 and 8).

HL is core Scheme with mutation, extended with symbolic values, assertions
and solver-aided queries, interpreted directly on the SVM. The layer also
provides the metaprogramming facility the paper leans on for SDSL
embedding: a ``syntax-rules`` pattern-macro expander with ellipsis
patterns (§2.1), which is enough to host the automata SDSL of the paper's
running example.

Typical use::

    from repro.lang import run_program

    results = run_program('''
        (define-symbolic x number?)
        (assert (> x 3))
        (solve (assert (< x 6)))
    ''')
"""

from repro.lang.reader import ParseError, Symbol, read, read_all
from repro.lang.expander import MacroError, MacroExpander
from repro.lang.interp import (
    Closure,
    Interpreter,
    LangError,
    run_program,
    run_program_with_stats,
)

__all__ = [
    "ParseError", "Symbol", "read", "read_all",
    "MacroError", "MacroExpander",
    "Closure", "Interpreter", "LangError",
    "run_program", "run_program_with_stats",
]
