"""A ``syntax-rules`` pattern-macro expander with ellipsis patterns.

This provides the metaprogramming facility that makes HL a *host* language
(§2.1): SDSL designers define new syntactic forms by pattern matching, with
``...`` indicating repetition, exactly as in the paper's ``automaton``
macro. The expander is non-hygienic (a documented simplification — the
case studies do not require hygiene), supports nested ellipses, pattern
literals, and the ``_`` wildcard.

Grammar handled::

    (define-syntax name
      (syntax-rules (literal ...)
        [pattern template] ...))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.lang.reader import Symbol

ELLIPSIS = Symbol("...")
WILDCARD = Symbol("_")
QUOTE = Symbol("quote")
DEFINE_SYNTAX = Symbol("define-syntax")
SYNTAX_RULES = Symbol("syntax-rules")


class MacroError(ValueError):
    """A malformed macro definition or a use no rule matches."""


class Repeated:
    """The value of a pattern variable under an ellipsis: one match per
    repetition (possibly nested for nested ellipses)."""

    __slots__ = ("items",)

    def __init__(self, items: List):
        self.items = items

    def __repr__(self):
        return f"Repeated({self.items!r})"


class Rule:
    """One [pattern template] pair of a syntax-rules form."""

    def __init__(self, pattern, template, literals: Sequence[Symbol]):
        self.pattern = pattern
        self.template = template
        self.literals = frozenset(literals)
        self.variables = frozenset(self._pattern_vars(pattern))

    def _pattern_vars(self, pattern) -> List[Symbol]:
        if isinstance(pattern, Symbol):
            if pattern in self.literals or pattern in (ELLIPSIS, WILDCARD):
                return []
            return [pattern]
        if isinstance(pattern, list):
            out: List[Symbol] = []
            for item in pattern:
                out.extend(self._pattern_vars(item))
            return out
        return []

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def match(self, form) -> Optional[Dict[Symbol, object]]:
        bindings: Dict[Symbol, object] = {}
        if self._match(self.pattern, form, bindings):
            return bindings
        return None

    def _match(self, pattern, form, bindings) -> bool:
        if isinstance(pattern, Symbol):
            if pattern == WILDCARD:
                return True
            if pattern in self.literals:
                return isinstance(form, Symbol) and form == pattern
            bindings[pattern] = form
            return True
        if isinstance(pattern, list):
            if not isinstance(form, list):
                return False
            return self._match_list(pattern, form, bindings)
        # A datum pattern: numbers, booleans, strings.
        return type(pattern) is type(form) and pattern == form

    def _match_list(self, patterns: list, forms: list, bindings) -> bool:
        ellipsis_at = None
        for index, item in enumerate(patterns):
            if isinstance(item, Symbol) and item == ELLIPSIS:
                if index == 0:
                    raise MacroError("'...' cannot start a pattern")
                if ellipsis_at is not None:
                    raise MacroError(
                        "at most one '...' per pattern level is supported")
                ellipsis_at = index
        if ellipsis_at is None:
            if len(patterns) != len(forms):
                return False
            return all(self._match(p, f, bindings)
                       for p, f in zip(patterns, forms))
        repeated_pattern = patterns[ellipsis_at - 1]
        before = patterns[:ellipsis_at - 1]
        after = patterns[ellipsis_at + 1:]
        if len(forms) < len(before) + len(after):
            return False
        head = forms[:len(before)]
        tail = forms[len(forms) - len(after):] if after else []
        middle = forms[len(before):len(forms) - len(after)]
        for p, f in zip(before, head):
            if not self._match(p, f, bindings):
                return False
        for p, f in zip(after, tail):
            if not self._match(p, f, bindings):
                return False
        # Match each repetition independently and transpose the bindings.
        repetition_vars = self._pattern_vars(repeated_pattern)
        collected: Dict[Symbol, List] = {var: [] for var in repetition_vars}
        for f in middle:
            sub: Dict[Symbol, object] = {}
            if not self._match(repeated_pattern, f, sub):
                return False
            for var in repetition_vars:
                collected[var].append(sub.get(var))
        for var, values in collected.items():
            bindings[var] = Repeated(values)
        return True

    # ------------------------------------------------------------------
    # Template instantiation
    # ------------------------------------------------------------------

    def instantiate(self, bindings: Dict[Symbol, object]):
        return self._instantiate(self.template, bindings)

    def _instantiate(self, template, bindings):
        if isinstance(template, Symbol):
            if template in bindings:
                value = bindings[template]
                if isinstance(value, Repeated):
                    raise MacroError(
                        f"pattern variable {template} used without '...'")
                return value
            return template
        if not isinstance(template, list):
            return template
        out: List[object] = []
        index = 0
        while index < len(template):
            item = template[index]
            if index + 1 < len(template) and \
                    isinstance(template[index + 1], Symbol) and \
                    template[index + 1] == ELLIPSIS:
                out.extend(self._expand_repetition(item, bindings))
                index += 2
            else:
                out.append(self._instantiate(item, bindings))
                index += 1
        return out

    def _expand_repetition(self, template, bindings) -> List:
        repeated_vars = [var for var in self._template_vars(template)
                         if isinstance(bindings.get(var), Repeated)]
        if not repeated_vars:
            raise MacroError(
                f"'...' follows a template with no ellipsis variables: "
                f"{template!r}")
        lengths = {len(bindings[var].items) for var in repeated_vars}
        if len(lengths) != 1:
            raise MacroError(
                f"mismatched repetition counts for {repeated_vars}")
        count = lengths.pop()
        expansions = []
        for i in range(count):
            inner = dict(bindings)
            for var in repeated_vars:
                inner[var] = bindings[var].items[i]
            expansions.append(self._instantiate(template, inner))
        return expansions

    def _template_vars(self, template) -> List[Symbol]:
        if isinstance(template, Symbol):
            return [template] if template in self.variables else []
        if isinstance(template, list):
            out: List[Symbol] = []
            for item in template:
                out.extend(self._template_vars(item))
            return out
        return []


class MacroExpander:
    """Registers define-syntax forms and expands macro uses to fixpoint."""

    MAX_EXPANSIONS = 10_000

    def __init__(self):
        self.macros: Dict[Symbol, List[Rule]] = {}

    def define(self, form) -> None:
        """Register a ``(define-syntax name (syntax-rules ...))`` form."""
        if len(form) != 3 or not isinstance(form[1], Symbol):
            raise MacroError(f"malformed define-syntax: {form!r}")
        name, spec = form[1], form[2]
        if not (isinstance(spec, list) and spec and
                isinstance(spec[0], Symbol) and spec[0] == SYNTAX_RULES):
            raise MacroError("define-syntax requires a syntax-rules form")
        if len(spec) < 2 or not isinstance(spec[1], list):
            raise MacroError("syntax-rules requires a literals list")
        literals = [lit for lit in spec[1] if isinstance(lit, Symbol)]
        rules = []
        for clause in spec[2:]:
            if not (isinstance(clause, list) and len(clause) == 2):
                raise MacroError(f"malformed syntax-rules clause: {clause!r}")
            rules.append(Rule(clause[0], clause[1], literals))
        self.macros[name] = rules

    def expand(self, form, budget: Optional[List[int]] = None):
        """Fully expand all macro uses in `form`."""
        if budget is None:
            budget = [self.MAX_EXPANSIONS]
        while isinstance(form, list) and form and \
                isinstance(form[0], Symbol) and form[0] in self.macros:
            budget[0] -= 1
            if budget[0] < 0:
                raise MacroError("macro expansion did not terminate")
            form = self._expand_once(form)
        if not isinstance(form, list) or not form:
            return form
        head = form[0]
        if isinstance(head, Symbol) and head == QUOTE:
            return form
        if isinstance(head, Symbol) and head == DEFINE_SYNTAX:
            self.define(form)
            return None  # definition consumed; nothing left to evaluate
        return [self.expand(item, budget) for item in form]

    def _expand_once(self, form):
        name = form[0]
        for rule in self.macros[name]:
            bindings = rule.match(form)
            if bindings is not None:
                return rule.instantiate(bindings)
        raise MacroError(f"no syntax-rules pattern matches {form!r}")
