"""HL builtin procedures (the right column of Figure 7, and then some).

Each builtin is a Python callable over SVM values. List/arithmetic builtins
delegate to the lifted library in :mod:`repro.vm.builtins` and
:mod:`repro.sym.ops`; string and regexp operations — which the SVM does not
lift — are wrapped with symbolic reflection (:func:`~repro.vm.builtins.union_apply`),
exactly the way §2.3 lifts Racket's ``regexp-match?``.
"""

from __future__ import annotations

import re
from typing import Callable, Dict

from repro.lang.reader import Symbol
from repro.queries.outcome import Model
from repro.sym import ops
from repro.sym.values import Box, SymInt
from repro.vm import builtins as B
from repro.vm import context
from repro.vm.errors import AssertionFailure, TypeFailure
from repro.vm.mutable import Vector, box_get, box_set
from repro.vm.reflection import union_contents, union_size


def _fold(fn: Callable, values, unit):
    if not values:
        return unit
    result = values[0]
    for value in values[1:]:
        result = fn(result, value)
    return result


def _chain(compare: Callable, values):
    if len(values) < 2:
        raise TypeFailure("comparison needs at least two arguments")
    result = True
    for left, right in zip(values, values[1:]):
        result = ops.and_(result, compare(left, right))
    return result


def _num_sub(*values):
    if not values:
        raise TypeFailure("- needs at least one argument")
    if len(values) == 1:
        return ops.neg(values[0])
    return _fold(ops.sub, list(values), 0)


def _expect_string(value) -> str:
    if isinstance(value, str) and not isinstance(value, bool):
        return value
    raise TypeFailure(f"expected a string, got {value!r}")


def _string_append(*parts):
    def concatenate(*concrete):
        return "".join(_expect_string(part) for part in concrete)
    return B.union_apply(concatenate, *parts)


def _symbol_to_string(value):
    def convert(v):
        if isinstance(v, Symbol):
            return str(v)
        raise TypeFailure(f"expected a symbol, got {v!r}")
    return B.union_apply(convert, value)


def _string_to_symbol(value):
    return B.union_apply(lambda v: Symbol(_expect_string(v)), value)


def _regexp_match(pattern, string):
    """(regexp-match? rx str) — lifted via symbolic reflection (§2.3)."""
    def match(pattern, string):
        return re.search(_expect_string(pattern),
                         _expect_string(string)) is not None
    return B.union_apply(match, pattern, string)


def _number_to_string(value):
    def convert(v):
        if isinstance(v, SymInt):
            raise TypeFailure("number->string needs a concrete number")
        return str(v)
    return B.union_apply(convert, value)


def _evaluate(value, model):
    if not isinstance(model, Model):
        raise TypeFailure("evaluate needs a model (from solve/verify/...)")
    return model.evaluate(value)


def _range(*args):
    if len(args) == 1:
        start, stop = 0, args[0]
    elif len(args) == 2:
        start, stop = args
    else:
        raise TypeFailure("range takes one or two concrete integers")
    if isinstance(start, SymInt) or isinstance(stop, SymInt):
        raise TypeFailure("range bounds must be concrete")
    return tuple(range(start, stop))


def _build_list(count, proc):
    if isinstance(count, SymInt):
        raise TypeFailure("build-list count must be concrete")
    return tuple(B.apply_value(proc, index) for index in range(count))


def _list_filter(proc, lst):
    def run(concrete):
        kept: object = ()
        for element in reversed(concrete):
            keep = B.apply_value(proc, element)
            kept = context.current().branch(
                keep,
                lambda element=element, kept=kept: B.cons(element, kept),
                lambda kept=kept: kept)
        return kept
    return B.union_apply(lambda l: run(l if isinstance(l, tuple)
                                       else _bad_list(l)), lst)


def _bad_list(value):
    raise TypeFailure(f"expected a list, got {value!r}")


def _error(*parts):
    raise AssertionFailure(
        " ".join(str(part) for part in parts) or "error")


def _display(*parts):
    print(*parts, sep="", end="")


def _println(*parts):
    print(*parts, sep="")


def _vector_ref(vector, index):
    def run(vector, index):
        if not isinstance(vector, Vector):
            raise TypeFailure(f"expected a vector, got {vector!r}")
        return vector.ref(index)
    return B.union_apply(run, vector, index)


def _vector_set(vector, index, value):
    def run(vector, index):
        if not isinstance(vector, Vector):
            raise TypeFailure(f"expected a vector, got {vector!r}")
        vector.set(index, value)
    return B.union_apply(run, vector, index)


def _vector_length(vector):
    def run(vector):
        if not isinstance(vector, Vector):
            raise TypeFailure(f"expected a vector, got {vector!r}")
        return len(vector)
    return B.union_apply(run, vector)


def _make_vector(length, fill=0):
    if isinstance(length, SymInt):
        raise TypeFailure("make-vector length must be concrete")
    return Vector([fill] * length)


def _unbox(box):
    def run(box):
        if not isinstance(box, Box):
            raise TypeFailure(f"expected a box, got {box!r}")
        return box_get(box)
    return B.union_apply(run, box)


def _set_box(box, value):
    def run(box):
        if not isinstance(box, Box):
            raise TypeFailure(f"expected a box, got {box!r}")
        box_set(box, value)
    return B.union_apply(run, box)


def _union_contents_value(value):
    return tuple((guard, member) for guard, member in union_contents(value))


def make_builtins(interp) -> Dict[str, object]:
    """The initial global environment of an :class:`Interpreter`."""
    env: Dict[str, object] = {
        # Arithmetic.
        "+": lambda *vs: _fold(ops.add, list(vs), 0),
        "-": _num_sub,
        "*": lambda *vs: _fold(ops.mul, list(vs), 1),
        "quotient": ops.div,
        "remainder": ops.rem,
        "modulo": ops.modulo,
        "abs": lambda v: context.current().branch(
            ops.lt(v, 0), lambda: ops.neg(v), lambda: v),
        "min": lambda a, b: context.current().branch(
            ops.le(a, b), lambda: a, lambda: b),
        "max": lambda a, b: context.current().branch(
            ops.ge(a, b), lambda: a, lambda: b),
        "add1": lambda v: ops.add(v, 1),
        "sub1": lambda v: ops.sub(v, 1),
        "bitwise-and": ops.bitand,
        "bitwise-ior": ops.bitor,
        "bitwise-xor": ops.bitxor,
        "bitwise-not": ops.bitnot,
        "arithmetic-shift-left": ops.shl,
        "arithmetic-shift-right": ops.ashr,
        # Comparison.
        "=": lambda *vs: _chain(ops.num_eq, list(vs)),
        "<": lambda *vs: _chain(ops.lt, list(vs)),
        "<=": lambda *vs: _chain(ops.le, list(vs)),
        ">": lambda *vs: _chain(ops.gt, list(vs)),
        ">=": lambda *vs: _chain(ops.ge, list(vs)),
        "zero?": lambda v: ops.num_eq(v, 0),
        "positive?": lambda v: ops.gt(v, 0),
        "negative?": lambda v: ops.lt(v, 0),
        "even?": lambda v: ops.num_eq(ops.modulo(v, 2), 0),
        "odd?": lambda v: ops.num_eq(ops.modulo(v, 2), 1),
        # Booleans.
        "not": lambda v: ops.not_(ops.truthy(v)),
        "false?": lambda v: ops.not_(ops.truthy(v)),
        # Lists (immutable; Fig. 7's cons/car/cdr/length and friends).
        "cons": B.cons,
        "car": B.car,
        "cdr": B.cdr,
        "first": B.car,
        "rest": B.cdr,
        "list": lambda *vs: tuple(vs),
        "null": (),
        "empty": (),
        "length": B.length,
        "null?": B.is_null,
        "empty?": B.is_null,
        "pair?": B.is_pair,
        "list-ref": B.list_ref,
        "append": B.append,
        "reverse": B.reverse,
        "take": B.take,
        "drop": B.drop,
        "map": lambda proc, lst: B.list_map(proc, lst),
        "foldl": lambda proc, init, lst: B.list_foldl(
            lambda element, acc: B.apply_value(proc, element, acc), init, lst),
        "filter": _list_filter,
        "build-list": _build_list,
        "range": _range,
        "second": lambda lst: B.list_ref(lst, 1),
        "third": lambda lst: B.list_ref(lst, 2),
        "last": lambda lst: B.list_ref(lst, ops.sub(B.length(lst), 1)),
        # Type predicates (Fig. 7).
        "boolean?": B.is_boolean,
        "number?": B.is_number,
        "integer?": B.is_number,
        "list?": B.is_list,
        "procedure?": B.is_procedure,
        "union?": B.is_union,
        "vector?": B.is_vector,
        "box?": B.is_box,
        "symbol?": lambda v: isinstance(v, Symbol),
        "string?": lambda v: isinstance(v, str) and
        not isinstance(v, (bool, Symbol)),
        # Equality. HL deliberately omits eq?/eqv? (§4.4); equal? only.
        "equal?": B.equal,
        # Unions and reflection (§4.7).
        "union-size": union_size,
        "union-contents": _union_contents_value,
        # Vectors and boxes (mutable storage).
        "vector": lambda *vs: Vector(list(vs)),
        "make-vector": _make_vector,
        "vector-ref": _vector_ref,
        "vector-set!": _vector_set,
        "vector-length": _vector_length,
        "box": lambda v: Box(v),
        "unbox": _unbox,
        "set-box!": _set_box,
        # Strings, symbols, regexps (lifted by symbolic reflection).
        "string-append": _string_append,
        "symbol->string": _symbol_to_string,
        "string->symbol": _string_to_symbol,
        "number->string": _number_to_string,
        "regexp-match?": _regexp_match,
        # Application and control.
        "apply": lambda proc, args: B.union_apply(
            lambda arglist: B.apply_value(
                proc, *(arglist if isinstance(arglist, tuple)
                        else _bad_list(arglist))),
            args),
        "generate-forms": interp.generate_forms,
        "void": lambda *vs: None,
        "error": _error,
        # Models.
        "evaluate": _evaluate,
        "sat?": lambda v: isinstance(v, Model),
        "unsat?": lambda v: v is False,
        # Output.
        "display": _display,
        "displayln": _println,
        "newline": lambda: print(),
    }
    return env
