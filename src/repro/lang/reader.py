"""S-expression reader for the HL language.

Produces a simple Python representation:

- symbols    → :class:`Symbol` (an interned ``str`` subclass),
- integers   → ``int``,
- booleans   → ``bool`` (``#t``/``#f``/``true``/``false``),
- strings    → ``str``,
- lists      → Python ``list`` (square brackets are interchangeable with
  parentheses, as in Racket),
- ``'x``     → ``[Symbol('quote'), x]``.

Line comments start with ``;``.

Every token carries its 1-based line and column, and the spanned entry
points (:func:`read_all_spanned`) additionally return a
:class:`SourceMap` locating every form: compound forms are keyed by the
identity of their Python list, atoms — which are interned (symbols,
small ints) and so have no usable identity — by their *(parent, index)*
position. Source positions flow into :class:`ParseError`, into
``LangError`` messages (see :meth:`repro.lang.interp.Interpreter.run`),
and into ``symlint`` diagnostics.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple


class Span(NamedTuple):
    """A half-open source region, 1-based lines and columns."""

    line: int
    col: int
    end_line: int
    end_col: int
    filename: Optional[str] = None

    def label(self) -> str:
        return f"{self.filename or '<string>'}:{self.line}:{self.col}"


class ParseError(ValueError):
    """A syntax error in HL source text."""

    def __init__(self, message: str, line: Optional[int] = None,
                 col: Optional[int] = None,
                 filename: Optional[str] = None):
        if line is not None:
            where = f"{filename or '<string>'}:{line}"
            if col is not None:
                where += f":{col}"
            message = f"{where}: {message}"
        super().__init__(message)
        self.line = line
        self.col = col
        self.filename = filename


class Symbol(str):
    """An identifier. A distinct type so symbols never mix with strings."""

    __slots__ = ()

    _interned: dict = {}

    def __new__(cls, name: str):
        cached = cls._interned.get(name)
        if cached is None:
            cached = super().__new__(cls, name)
            cls._interned[name] = cached
        return cached

    def __repr__(self) -> str:
        return str(self)


class Token(NamedTuple):
    """One lexeme with its source extent."""

    kind: str
    value: object
    line: int
    col: int
    end_line: int
    end_col: int


class SourceMap:
    """Spans for the forms of one parsed source text.

    Compound forms (Python lists) are located by object identity; atoms
    cannot be (symbols and small integers are interned), so they are
    located by their position inside the nearest enclosing form. The map
    holds strong references to every recorded form, keeping the ids it
    keys on valid for its own lifetime.
    """

    def __init__(self, filename: Optional[str] = None):
        self.filename = filename
        self._forms: Dict[int, Span] = {}
        self._atoms: Dict[Tuple[int, int], Span] = {}
        self._retain: List[object] = []

    def record_form(self, form: list, span: Span) -> None:
        self._forms[id(form)] = span
        self._retain.append(form)

    def record_atom(self, parent: list, index: int, span: Span) -> None:
        self._atoms[(id(parent), index)] = span
        self._retain.append(parent)

    def span_of(self, form) -> Optional[Span]:
        """The span of a compound form, or None if unrecorded."""
        return self._forms.get(id(form))

    def atom_span(self, parent, index: int) -> Optional[Span]:
        """The span of the atom at `parent[index]`, or None."""
        return self._atoms.get((id(parent), index))

    def span_at(self, parent, index: int) -> Optional[Span]:
        """The span of `parent[index]`, compound or atom."""
        try:
            child = parent[index]
        except (IndexError, TypeError):
            return None
        if isinstance(child, list):
            return self.span_of(child)
        return self.atom_span(parent, index)


_DELIMS = "()[]'\";"
_CLOSER = {"(": ")", "[": "]"}


def tokenize(text: str, filename: Optional[str] = None) -> List[Token]:
    """Split source text into :class:`Token` lexemes with positions."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    line = 1
    col = 1

    def advance(upto: int) -> None:
        """Move the (line, col) cursor forward to index `upto`."""
        nonlocal i, line, col
        while i < upto:
            if text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch.isspace():
            advance(i + 1)
        elif ch == ";":
            j = i
            while j < n and text[j] != "\n":
                j += 1
            advance(j)
        elif ch in "()[]":
            tokens.append(Token("paren", ch, line, col, line, col + 1))
            advance(i + 1)
        elif ch == "'":
            tokens.append(Token("quote", "'", line, col, line, col + 1))
            advance(i + 1)
        elif ch == '"':
            start_line, start_col = line, col
            j = i + 1
            chunks: List[str] = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    escape = text[j + 1]
                    chunks.append({"n": "\n", "t": "\t"}.get(escape, escape))
                    j += 2
                else:
                    chunks.append(text[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string literal",
                                 start_line, start_col, filename)
            advance(j + 1)
            tokens.append(Token("string", "".join(chunks),
                                start_line, start_col, line, col))
        else:
            start_line, start_col = line, col
            j = i
            while j < n and not text[j].isspace() and text[j] not in _DELIMS:
                j += 1
            lexeme = text[i:j]
            advance(j)
            tokens.append(Token("atom", lexeme,
                                start_line, start_col, line, col))
    return tokens


def _parse_atom(text: str) -> object:
    if text == "#t" or text == "true":
        return True
    if text == "#f" or text == "false":
        return False
    try:
        return int(text, 0)
    except ValueError:
        pass
    if text.startswith("-") and text[1:].isdigit():
        return int(text)
    return Symbol(text)


def _token_span(tokens: List[Token], start: int, end: int,
                filename: Optional[str]) -> Span:
    """The source extent covered by tokens[start:end]."""
    first, last = tokens[start], tokens[end - 1]
    return Span(first.line, first.col, last.end_line, last.end_col, filename)


def _read_form(tokens: List[Token], position: int,
               srcmap: Optional[SourceMap] = None):
    filename = srcmap.filename if srcmap is not None else None
    if position >= len(tokens):
        if tokens:
            last = tokens[-1]
            raise ParseError("unexpected end of input",
                             last.end_line, last.end_col, filename)
        raise ParseError("unexpected end of input")
    token = tokens[position]
    kind, value = token.kind, token.value
    if kind == "quote":
        inner, after = _read_form(tokens, position + 1, srcmap)
        quoted = [Symbol("quote"), inner]
        if srcmap is not None:
            span = _token_span(tokens, position, after, filename)
            srcmap.record_form(quoted, span)
            srcmap.record_atom(quoted, 0, Span(token.line, token.col,
                                               token.end_line, token.end_col,
                                               filename))
            if not isinstance(inner, list):
                srcmap.record_atom(
                    quoted, 1,
                    _token_span(tokens, position + 1, after, filename))
        return quoted, after
    if kind == "string":
        return value, position + 1
    if kind == "atom":
        return _parse_atom(value), position + 1
    if kind == "paren" and value in "([":
        closer = _CLOSER[value]
        items: List[object] = []
        start = position
        position += 1
        while True:
            if position >= len(tokens):
                raise ParseError(f"missing closing '{closer}'",
                                 token.line, token.col, filename)
            next_token = tokens[position]
            if next_token.kind == "paren" and next_token.value in ")]":
                if next_token.value != closer:
                    raise ParseError(
                        f"mismatched delimiter: expected '{closer}', "
                        f"got '{next_token.value}'",
                        next_token.line, next_token.col, filename)
                if srcmap is not None:
                    srcmap.record_form(
                        items,
                        _token_span(tokens, start, position + 1, filename))
                return items, position + 1
            child_start = position
            form, position = _read_form(tokens, position, srcmap)
            if srcmap is not None and not isinstance(form, list):
                srcmap.record_atom(
                    items, len(items),
                    _token_span(tokens, child_start, position, filename))
            items.append(form)
    raise ParseError(f"unexpected token {value!r}",
                     token.line, token.col, filename)


def read(text: str):
    """Parse exactly one form from `text`."""
    tokens = tokenize(text)
    form, after = _read_form(tokens, 0)
    if after != len(tokens):
        extra = tokens[after]
        raise ParseError("trailing input after the first form",
                         extra.line, extra.col)
    return form


def read_all(text: str) -> List[object]:
    """Parse all top-level forms in `text`."""
    forms, _ = read_all_spanned(text, srcmap=None)
    return forms


def read_all_spanned(text: str, filename: Optional[str] = None,
                     srcmap: Optional[SourceMap] = ...,
                     ) -> Tuple[List[object], Optional[SourceMap]]:
    """Parse all top-level forms, returning them with a :class:`SourceMap`.

    Top-level atoms are recorded against the returned forms list itself
    (``srcmap.span_at(forms, i)``). Passing ``srcmap=None`` disables span
    recording (this is how :func:`read_all` is implemented).
    """
    if srcmap is ...:
        srcmap = SourceMap(filename)
    tokens = tokenize(text, filename)
    forms: List[object] = []
    position = 0
    while position < len(tokens):
        start = position
        form, position = _read_form(tokens, position, srcmap)
        if srcmap is not None and not isinstance(form, list):
            srcmap.record_atom(
                forms, len(forms),
                _token_span(tokens, start, position, filename))
        forms.append(form)
    return forms, srcmap


def write_form(form) -> str:
    """Render a form back to source text (used by generate-forms/render).

    Accepts both reader output (Python lists) and HL runtime data
    (tuples), so quoted values round-trip too.
    """
    if isinstance(form, bool):
        return "#t" if form else "#f"
    if isinstance(form, Symbol):
        return str(form)
    if isinstance(form, str):
        escaped = form.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(form, (list, tuple)):
        return "(" + " ".join(write_form(item) for item in form) + ")"
    return repr(form)
