"""S-expression reader for the HL language.

Produces a simple Python representation:

- symbols    → :class:`Symbol` (an interned ``str`` subclass),
- integers   → ``int``,
- booleans   → ``bool`` (``#t``/``#f``/``true``/``false``),
- strings    → ``str``,
- lists      → Python ``list`` (square brackets are interchangeable with
  parentheses, as in Racket),
- ``'x``     → ``[Symbol('quote'), x]``.

Line comments start with ``;``.
"""

from __future__ import annotations

from typing import List, Tuple


class ParseError(ValueError):
    """A syntax error in HL source text."""


class Symbol(str):
    """An identifier. A distinct type so symbols never mix with strings."""

    __slots__ = ()

    _interned: dict = {}

    def __new__(cls, name: str):
        cached = cls._interned.get(name)
        if cached is None:
            cached = super().__new__(cls, name)
            cls._interned[name] = cached
        return cached

    def __repr__(self) -> str:
        return str(self)


_DELIMS = "()[]'\";"
_CLOSER = {"(": ")", "[": "]"}


def tokenize(text: str) -> List[Tuple[str, object]]:
    """Split source text into (kind, value) tokens."""
    tokens: List[Tuple[str, object]] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch in "()[]":
            tokens.append(("paren", ch))
            i += 1
        elif ch == "'":
            tokens.append(("quote", "'"))
            i += 1
        elif ch == '"':
            j = i + 1
            chunks: List[str] = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    escape = text[j + 1]
                    chunks.append({"n": "\n", "t": "\t"}.get(escape, escape))
                    j += 2
                else:
                    chunks.append(text[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string literal")
            tokens.append(("string", "".join(chunks)))
            i = j + 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in _DELIMS:
                j += 1
            tokens.append(("atom", text[i:j]))
            i = j
    return tokens


def _parse_atom(text: str) -> object:
    if text == "#t" or text == "true":
        return True
    if text == "#f" or text == "false":
        return False
    try:
        return int(text, 0)
    except ValueError:
        pass
    if text.startswith("-") and text[1:].isdigit():
        return int(text)
    return Symbol(text)


def _read_form(tokens: List[Tuple[str, object]], position: int):
    if position >= len(tokens):
        raise ParseError("unexpected end of input")
    kind, value = tokens[position]
    if kind == "quote":
        inner, after = _read_form(tokens, position + 1)
        return [Symbol("quote"), inner], after
    if kind == "string":
        return value, position + 1
    if kind == "atom":
        return _parse_atom(value), position + 1
    if kind == "paren" and value in "([":
        closer = _CLOSER[value]
        items: List[object] = []
        position += 1
        while True:
            if position >= len(tokens):
                raise ParseError(f"missing closing '{closer}'")
            next_kind, next_value = tokens[position]
            if next_kind == "paren" and next_value in ")]":
                if next_value != closer:
                    raise ParseError(
                        f"mismatched delimiter: expected '{closer}', "
                        f"got '{next_value}'")
                return items, position + 1
            form, position = _read_form(tokens, position)
            items.append(form)
    raise ParseError(f"unexpected token {value!r}")


def read(text: str):
    """Parse exactly one form from `text`."""
    tokens = tokenize(text)
    form, after = _read_form(tokens, 0)
    if after != len(tokens):
        raise ParseError("trailing input after the first form")
    return form


def read_all(text: str) -> List[object]:
    """Parse all top-level forms in `text`."""
    tokens = tokenize(text)
    forms: List[object] = []
    position = 0
    while position < len(tokens):
        form, position = _read_form(tokens, position)
        forms.append(form)
    return forms


def write_form(form) -> str:
    """Render a form back to source text (used by generate-forms/render).

    Accepts both reader output (Python lists) and HL runtime data
    (tuples), so quoted values round-trip too.
    """
    if isinstance(form, bool):
        return "#t" if form else "#f"
    if isinstance(form, Symbol):
        return str(form)
    if isinstance(form, str):
        escaped = form.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(form, (list, tuple)):
        return "(" + " ".join(write_form(item) for item in form) + ")"
    return repr(form)
