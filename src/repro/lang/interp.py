"""The HL interpreter: core Scheme with symbolic values, run on the SVM.

This is the evaluator of Figure 8. Program state lives in the ambient
:class:`repro.vm.context.VM` (path condition π and assertion store α) and in
mutable :class:`~repro.sym.values.Box` cells, one per variable binding, so
``set!`` effects are merged at control-flow joins by the VM's write log —
the rule IF1 state merge.

Special forms: ``define``, ``define-symbolic``, ``define-symbolic*``,
``lambda``, ``if``, ``cond``, ``case``, ``when``, ``unless``, ``and``,
``or``, ``let``, ``let*``, ``letrec``, ``local``, ``begin``, ``set!``,
``quote``, ``assert``, ``choose``, ``for/all``, and the four queries
``solve``, ``verify``, ``synthesize``, ``debug`` (with first-class models
and cores, §2.2).

HL values map to SVM values: immutable lists are tuples, symbols are
:class:`~repro.lang.reader.Symbol`, procedures are :class:`Closure` objects
(callable, so union application via rule AP2 just works), and symbolic
constants are :class:`~repro.sym.values.SymBool`/``SymInt``.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from repro.lang.expander import MacroExpander
from repro.lang.reader import Span, Symbol, read_all_spanned, write_form
from repro.obs import tracing
from repro.obs.events import BUS
from repro.queries.debug import DebugSession, relax
from repro.queries.outcome import Model
from repro.queries.queries import cegis
from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.sym import ops
from repro.sym.fresh import fresh_bool, fresh_int
from repro.sym.values import Box, SymBool, SymInt, Union, default_int_width
from repro.vm import builtins as B
from repro.vm import context
from repro.vm.errors import AssertionFailure, SvmError
from repro.vm.mutable import Vector, box_get, box_set


class LangError(SvmError):
    """A malformed HL program or a runtime error outside assertion failure.

    When the error escapes :meth:`Interpreter.run`, the span of the
    top-level form being evaluated is attached (:attr:`span`) and its
    ``file:line:col`` label is prefixed to the message — deeper positions
    are the linter's job (:mod:`repro.analysis.lint`), but the top-level
    form is always known here.
    """

    span: "Span | None" = None

    def locate(self, span: "Span | None") -> None:
        """Attach `span` (first location wins; later frames keep it)."""
        if span is None or self.span is not None:
            return
        self.span = span
        if self.args:
            self.args = (f"{span.label()}: {self.args[0]}",) + self.args[1:]


class _StatusCell:
    """Mutable status slot for :func:`_hl_query` span end events."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = "error"


@contextmanager
def _hl_query(name: str):
    """Bracket an HL query form in a ``query.*`` span.

    ``tracing(None)`` installs the ``REPRO_TRACE`` environment sink, so
    HL programs are traceable with zero code changes — the same contract
    the embedded API's queries honor in :mod:`repro.queries`. ``traced``
    is latched at entry so the span stays balanced even if sinks change
    mid-query.
    """
    with tracing(None):
        traced = BUS.enabled
        status = _StatusCell()
        if traced:
            BUS.begin(name, "query")
        try:
            yield status
        finally:
            if traced:
                BUS.end(name, "query", status=status.value)


class Env:
    """Lexical environment: symbol → Box frames with a parent chain."""

    __slots__ = ("bindings", "parent")

    def __init__(self, parent: Optional["Env"] = None):
        self.bindings: Dict[Symbol, Box] = {}
        self.parent = parent

    def lookup(self, name: Symbol) -> Box:
        env: Optional[Env] = self
        while env is not None:
            cell = env.bindings.get(name)
            if cell is not None:
                return cell
            env = env.parent
        raise LangError(f"unbound identifier: {name}")

    def define(self, name: Symbol, value) -> Box:
        cell = Box(value, name=str(name))
        self.bindings[name] = cell
        return cell


class Closure:
    """A user procedure. Callable so rule AP2's union application works."""

    __slots__ = ("params", "rest", "body", "env", "interp", "name")

    def __init__(self, params: List[Symbol], rest: Optional[Symbol],
                 body: List, env: Env, interp: "Interpreter",
                 name: str = "lambda"):
        self.params = params
        self.rest = rest
        self.body = body
        self.env = env
        self.interp = interp
        self.name = name

    def __call__(self, *args):
        if self.rest is None and len(args) != len(self.params):
            raise LangError(
                f"{self.name}: expected {len(self.params)} argument(s), "
                f"got {len(args)}")
        if self.rest is not None and len(args) < len(self.params):
            raise LangError(
                f"{self.name}: expected at least {len(self.params)} "
                f"argument(s), got {len(args)}")
        frame = Env(self.env)
        for name, value in zip(self.params, args):
            frame.define(name, value)
        if self.rest is not None:
            frame.define(self.rest, tuple(args[len(self.params):]))
        result = None
        for form in self.body:
            result = self.interp.eval(form, frame)
        return result

    def __repr__(self):
        return f"#<procedure:{self.name}>"


_S = Symbol  # shorthand for the special-form table below


class Interpreter:
    """Evaluates HL programs on the ambient SVM."""

    def __init__(self, int_width: Optional[int] = None,
                 prelude: bool = True):
        self.expander = MacroExpander()
        self.globals = Env()
        self.int_width = int_width or default_int_width()
        self._symbolic_constants: Dict[Symbol, object] = {}
        self._symbolic_streams: Dict[Symbol, int] = {}
        self._choose_cache: Dict[int, List[SymBool]] = {}
        self._debug_predicate: Optional[Callable] = None
        self._install_builtins()
        if sys.getrecursionlimit() < 100_000:
            sys.setrecursionlimit(100_000)
        if prelude:
            from repro.lang.prelude import PRELUDE_SOURCE
            self.run(PRELUDE_SOURCE)

    # ------------------------------------------------------------------
    # Program entry points
    # ------------------------------------------------------------------

    def run(self, source: str,
            filename: Optional[str] = None) -> List[object]:
        """Expand and evaluate all forms; returns each form's value.

        `filename` labels source positions in error messages (parse
        errors and located :class:`LangError` instances); the default
        label is ``<string>``.
        """
        results = []
        forms, srcmap = read_all_spanned(source, filename)
        for index, form in enumerate(forms):
            span = (srcmap.span_of(form) if isinstance(form, list)
                    else srcmap.span_at(forms, index))
            try:
                expanded = self.expander.expand(form)
                if expanded is None:  # a define-syntax, eaten by the expander
                    continue
                results.append(self.eval(expanded, self.globals))
            except LangError as error:
                error.locate(span)
                raise
        return results

    # ------------------------------------------------------------------
    # The evaluator
    # ------------------------------------------------------------------

    def eval(self, form, env: Env):
        value = self._eval(form, env)
        if self._debug_predicate is not None:
            value = relax(value, _form_label(form))
        return value

    def _eval(self, form, env: Env):
        if isinstance(form, Symbol):
            return box_get(env.lookup(form))
        if isinstance(form, (bool, int, str)) or form is None:
            return form
        if not isinstance(form, list) or not form:
            raise LangError(f"cannot evaluate {form!r}")
        head = form[0]
        if isinstance(head, Symbol):
            handler = _SPECIAL_FORMS.get(head)
            if handler is not None:
                return handler(self, form, env)
        # Application.
        proc = self.eval(head, env)
        args = [self.eval(arg, env) for arg in form[1:]]
        return B.apply_value(proc, *args)

    def _eval_body(self, body: List, env: Env):
        result = None
        for form in body:
            result = self.eval(form, env)
        return result

    # ------------------------------------------------------------------
    # Special forms
    # ------------------------------------------------------------------

    def _sf_quote(self, form, env):
        if len(form) != 2:
            raise LangError("quote takes exactly one argument")
        return _datum(form[1])

    def _sf_if(self, form, env):
        if len(form) not in (3, 4):
            raise LangError("if takes a test and one or two branches")
        test = self.eval(form[1], env)
        then_thunk = lambda: self.eval(form[2], env)
        alt_thunk = (lambda: self.eval(form[3], env)) if len(form) == 4 \
            else (lambda: None)
        return context.current().branch(test, then_thunk, alt_thunk)

    def _sf_cond(self, form, env):
        return self._eval_cond_clauses(form[1:], env)

    def _eval_cond_clauses(self, clauses, env):
        if not clauses:
            return None
        clause = clauses[0]
        if not isinstance(clause, list) or not clause:
            raise LangError(f"malformed cond clause: {clause!r}")
        if isinstance(clause[0], Symbol) and clause[0] == _S("else"):
            return self._eval_body(clause[1:], env)
        test = self.eval(clause[0], env)
        return context.current().branch(
            test,
            lambda: self._eval_body(clause[1:], env)
            if len(clause) > 1 else test,
            lambda: self._eval_cond_clauses(clauses[1:], env))

    def _sf_case(self, form, env):
        if len(form) < 2:
            raise LangError("case requires a scrutinee")
        scrutinee = self.eval(form[1], env)
        return self._eval_case_clauses(scrutinee, form[2:], env)

    def _eval_case_clauses(self, scrutinee, clauses, env):
        if not clauses:
            return None
        clause = clauses[0]
        if not isinstance(clause, list) or not clause:
            raise LangError(f"malformed case clause: {clause!r}")
        if isinstance(clause[0], Symbol) and clause[0] == _S("else"):
            return self._eval_body(clause[1:], env)
        if not isinstance(clause[0], list):
            raise LangError("case clause data must be a parenthesized list")
        hit = False
        for datum in clause[0]:
            hit = ops.or_(hit, ops.truthy(B.equal(scrutinee, _datum(datum))))
        return context.current().branch(
            hit,
            lambda: self._eval_body(clause[1:], env),
            lambda: self._eval_case_clauses(scrutinee, clauses[1:], env))

    def _sf_when(self, form, env):
        test = self.eval(form[1], env)
        return context.current().branch(
            test, lambda: self._eval_body(form[2:], env), lambda: None)

    def _sf_unless(self, form, env):
        test = self.eval(form[1], env)
        return context.current().branch(
            test, lambda: None, lambda: self._eval_body(form[2:], env))

    def _sf_and(self, form, env):
        def chain(exprs):
            if not exprs:
                return True
            value = self.eval(exprs[0], env)
            if len(exprs) == 1:
                return value
            return context.current().branch(
                value, lambda: chain(exprs[1:]), lambda: value)
        return chain(form[1:])

    def _sf_or(self, form, env):
        def chain(exprs):
            if not exprs:
                return False
            value = self.eval(exprs[0], env)
            if len(exprs) == 1:
                return value
            return context.current().branch(
                value, lambda: value, lambda: chain(exprs[1:]))
        return chain(form[1:])

    def _sf_define(self, form, env):
        if len(form) < 3:
            raise LangError(f"malformed define: {form!r}")
        target = form[1]
        if isinstance(target, list):  # (define (f a b) body ...)
            if not target or not isinstance(target[0], Symbol):
                raise LangError(f"malformed define header: {target!r}")
            name = target[0]
            closure = self._make_lambda(target[1:], form[2:], env, str(name))
            env.define(name, closure)
            return None
        if not isinstance(target, Symbol):
            raise LangError(f"define target must be an identifier: {target!r}")
        if len(form) != 3:
            raise LangError("define takes exactly one value expression")
        value = self.eval(form[2], env)
        if isinstance(value, Closure) and value.name == "lambda":
            value.name = str(target)
        env.define(target, value)
        return None

    def _sf_define_symbolic(self, form, env):
        name, kind = self._parse_define_symbolic(form)
        cached = self._symbolic_constants.get(name)
        if cached is None:
            # DEF1: the constant is named by the identifier and re-used on
            # every subsequent evaluation of this form.
            if kind == "boolean":
                cached = fresh_bool(str(name), numbered=False)
            else:
                cached = fresh_int(str(name), width=self.int_width,
                                   numbered=False)
            self._symbolic_constants[name] = cached
        env.define(name, cached)
        return None

    def _sf_define_symbolic_star(self, form, env):
        name, kind = self._parse_define_symbolic(form)
        index = self._symbolic_streams.get(name, 0)
        self._symbolic_streams[name] = index + 1
        label = f"{name}${index}"
        if kind == "boolean":
            value = fresh_bool(label, numbered=False)
        else:
            value = fresh_int(label, width=self.int_width, numbered=False)
        env.define(name, value)
        return None

    def _parse_define_symbolic(self, form) -> Tuple[Symbol, str]:
        if len(form) != 3 or not isinstance(form[1], Symbol):
            raise LangError(f"malformed define-symbolic: {form!r}")
        type_form = form[2]
        if not isinstance(type_form, Symbol) or \
                type_form not in (_S("number?"), _S("boolean?")):
            raise LangError(
                "define-symbolic supports only number? and boolean? (Fig. 7)")
        return form[1], "boolean" if type_form == _S("boolean?") else "number"

    def _sf_lambda(self, form, env):
        if len(form) < 3:
            raise LangError(f"malformed lambda: {form!r}")
        return self._make_lambda(form[1], form[2:], env, "lambda")

    def _make_lambda(self, params_form, body, env, name) -> Closure:
        if isinstance(params_form, Symbol):  # (lambda args body)
            return Closure([], params_form, body, env, self, name)
        params: List[Symbol] = []
        rest: Optional[Symbol] = None
        expecting_rest = False
        for param in params_form:
            if isinstance(param, Symbol) and param == _S("."):
                expecting_rest = True
                continue
            if not isinstance(param, Symbol):
                raise LangError(f"bad parameter: {param!r}")
            if expecting_rest:
                rest = param
            else:
                params.append(param)
        return Closure(params, rest, body, env, self, name)

    def _sf_let(self, form, env):
        if len(form) >= 3 and isinstance(form[1], Symbol):
            # Named let: (let loop ([x e] ...) body ...)
            name, bindings, body = form[1], form[2], form[3:]
            params = [b[0] for b in bindings]
            args = [self.eval(b[1], env) for b in bindings]
            loop_env = Env(env)
            closure = Closure(params, None, list(body), loop_env, self,
                              str(name))
            loop_env.define(name, closure)
            return closure(*args)
        bindings, body = form[1], form[2:]
        frame = Env(env)
        for binding in bindings:
            frame.define(binding[0], self.eval(binding[1], env))
        return self._eval_body(body, frame)

    def _sf_let_star(self, form, env):
        bindings, body = form[1], form[2:]
        frame = env
        for binding in bindings:
            value = self.eval(binding[1], frame)
            frame = Env(frame)
            frame.define(binding[0], value)
        return self._eval_body(body, Env(frame))

    def _sf_letrec(self, form, env):
        bindings, body = form[1], form[2:]
        frame = Env(env)
        for binding in bindings:
            frame.define(binding[0], None)
        for binding in bindings:
            box_set(frame.lookup(binding[0]), self.eval(binding[1], frame))
        return self._eval_body(body, frame)

    def _sf_local(self, form, env):
        # (local [definitions ...] body ...), used by choose's expansion.
        definitions, body = form[1], form[2:]
        frame = Env(env)
        for definition in definitions:
            self.eval(definition, frame)
        return self._eval_body(body, frame)

    def _sf_begin(self, form, env):
        return self._eval_body(form[1:], env)

    def _sf_set_bang(self, form, env):
        if len(form) != 3 or not isinstance(form[1], Symbol):
            raise LangError(f"malformed set!: {form!r}")
        box_set(env.lookup(form[1]), self.eval(form[2], env))
        return None

    def _sf_assert(self, form, env):
        if len(form) not in (2, 3):
            raise LangError("assert takes a value and an optional message")
        value = self.eval(form[1], env)
        message = form[2] if len(form) == 3 else write_form(form)
        context.current().assert_(value, str(message))
        return None

    def _sf_choose(self, form, env):
        """(choose e ..+): a sketch hole selecting one of the expressions.

        Each syntactic occurrence gets its own stable selector constants
        (the paper implements this with define-symbolic so re-evaluating
        the same occurrence picks the same expression).
        """
        expressions = form[1:]
        if not expressions:
            raise LangError("choose requires at least one expression")
        cached = self._choose_cache.get(id(form))
        if cached is None:
            cached = (form, [fresh_bool("choose") for _ in expressions[:-1]])
            self._choose_cache[id(form)] = cached
        _, selectors = cached
        def pick(index: int):
            if index == len(expressions) - 1:
                return self.eval(expressions[index], env)
            return context.current().branch(
                selectors[index],
                lambda: self.eval(expressions[index], env),
                lambda: pick(index + 1))
        return pick(0)

    def _sf_for_all(self, form, env):
        # (for/all ([v expr]) body ...): symbolic reflection (§2.3).
        if len(form) < 3 or not isinstance(form[1], list) or \
                len(form[1]) != 1 or len(form[1][0]) != 2:
            raise LangError("for/all takes a single [id expr] binding")
        variable, expr = form[1][0]
        value = self.eval(expr, env)
        def run(component):
            frame = Env(env)
            frame.define(variable, component)
            return self._eval_body(form[2:], frame)
        return B.union_apply(run, value)

    # ------------------------------------------------------------------
    # Queries (§2.2; rule SQ1 and its variants)
    # ------------------------------------------------------------------

    def _collect_assertions(
            self, expr_form, env) -> Tuple[bool, List[T.Term], List[T.Term]]:
        """Evaluate under the current VM; returns (failed, α_before, α_new).

        α_before are the assumptions accumulated before the query (input
        preconditions, e.g. the bounds guards emitted while constructing
        symbolic words); α_new are the assertions produced by the queried
        expression itself. The store is restored afterwards (rule SQ1).
        """
        vm = context.current()
        mark = len(vm.assertions)
        failed = False
        try:
            self.eval(expr_form, env)
        except AssertionFailure:
            failed = True
        before = vm.assertions[:mark]
        new = vm.assertions[mark:]
        del vm.assertions[mark:]  # SQ1 restores the assertion store
        return failed, before, new

    def _sf_solve(self, form, env):
        # SQ1: a model of *all* assertions, prior and new alike.
        if len(form) != 2:
            raise LangError("solve takes exactly one expression")
        with _hl_query("query.solve") as span:
            failed, before, new = self._collect_assertions(form[1], env)
            if failed:
                span.value = "unsat"
                return False
            solver = SmtSolver()
            for assertion in before + new:
                solver.add_assertion(assertion)
            if solver.check() is SmtResult.SAT:
                span.value = "sat"
                return Model(solver.model())
            span.value = "unsat"
            return False

    def _sf_verify(self, form, env):
        # Prior assertions are assumptions; find a model failing a new one.
        if len(form) != 2:
            raise LangError("verify takes exactly one expression")
        with _hl_query("query.verify") as span:
            failed, before, new = self._collect_assertions(form[1], env)
            if failed:
                # A definite failure: any interpretation is a counterexample.
                span.value = "sat"
                return _trivial_model()
            if not new:
                span.value = "unsat"
                return False  # nothing can fail: no counterexample
            solver = SmtSolver()
            for assumption in before:
                solver.add_assertion(assumption)
            solver.add_assertion(T.mk_or(*[T.mk_not(a) for a in new]))
            if solver.check() is SmtResult.SAT:
                span.value = "sat"
                return Model(solver.model())
            span.value = "unsat"
            return False

    def _sf_synthesize(self, form, env):
        # (synthesize [input-expr] expr): ∃holes ∀inputs. pre ⇒ post.
        if len(form) != 3 or not isinstance(form[1], list) or len(form[1]) != 1:
            raise LangError("synthesize takes [input] and an expression")
        with _hl_query("query.synthesize") as span:
            input_value = self.eval(form[1][0], env)
            failed, before, new = self._collect_assertions(form[2], env)
            if failed:
                span.value = "unsat"
                return False
            pre = T.mk_and(*before) if before else T.TRUE
            post = T.mk_and(*new) if new else T.TRUE
            goal = T.mk_implies(pre, post)
            input_terms = _value_terms(input_value)
            outcome = cegis(goal, input_terms, context.current())
            span.value = outcome.status
            if outcome.status == "sat":
                return outcome.model
            return False

    def _sf_debug(self, form, env):
        # (debug [type-predicate] expr)
        if len(form) != 3 or not isinstance(form[1], list) or len(form[1]) != 1:
            raise LangError("debug takes [predicate] and an expression")
        predicate_value = self.eval(form[1][0], env)
        if not callable(predicate_value):
            raise LangError("debug's predicate must be a procedure")
        def predicate(value):
            result = predicate_value(value)
            return result is True
        vm = context.current()
        mark = len(vm.assertions)
        previous = self._debug_predicate
        self._debug_predicate = predicate
        with _hl_query("query.debug") as span, DebugSession(predicate) as session:
            try:
                self.eval(form[2], env)
                failed = False
            except AssertionFailure:
                failed = True
            finally:
                self._debug_predicate = previous
            assertions = list(vm.assertions)
            del vm.assertions[mark:]
            if failed:
                raise LangError(
                    "debug: the failure does not depend on any expression "
                    "of the given type")
            solver = SmtSolver()
            for assertion in assertions:
                solver.add_assertion(assertion)
            selectors = [sel for _, sel in session.relaxations]
            label_of = {sel: label for label, sel in session.relaxations}
            if solver.check(selectors) is not SmtResult.UNSAT:
                raise LangError("debug: the expression does not fail")
            core = solver.minimize_core()
            span.value = "sat"  # a core was found (matches repro.queries)
        return tuple(label_of[sel] for sel in core if sel in label_of)

    def generate_forms(self, model):
        """The paper's ``generate-forms``: resolve every evaluated ``choose``
        site under `model`, returning ((site chosen) ...) pairs of source
        forms (as quoted data)."""
        if not isinstance(model, Model):
            raise LangError("generate-forms needs a model")
        out = []
        for form, selectors in self._choose_cache.values():
            expressions = form[1:]
            chosen = expressions[-1]
            for index, selector in enumerate(selectors):
                if model.evaluate(selector):
                    chosen = expressions[index]
                    break
            out.append((_datum(form), _datum(chosen)))
        return tuple(out)

    # ------------------------------------------------------------------
    # Builtin environment
    # ------------------------------------------------------------------

    def _install_builtins(self) -> None:
        from repro.lang.prims import make_builtins
        for name, value in make_builtins(self).items():
            self.globals.define(Symbol(name), value)


def _form_label(form) -> str:
    """Debug-core label: the source text of the relaxed expression."""
    return write_form(form)


def _datum(form):
    """Convert a quoted source form to an HL runtime value."""
    if isinstance(form, list):
        return tuple(_datum(item) for item in form)
    return form


def _value_terms(value) -> List[T.Term]:
    """All symbolic-constant terms contained in an SVM value."""
    seen: List[T.Term] = []
    def walk(v):
        if isinstance(v, (SymBool, SymInt)):
            for var in T.term_vars(v.term):
                if var not in seen:
                    seen.append(var)
        elif isinstance(v, tuple):
            for element in v:
                walk(element)
        elif isinstance(v, Union):
            for guard, member in v.entries:
                for var in T.term_vars(guard):
                    if var not in seen:
                        seen.append(var)
                walk(member)
        elif isinstance(v, Box):
            walk(v.value)
        elif isinstance(v, Vector):
            for cell in v.cells:
                walk(cell)
    walk(value)
    return seen


def _trivial_model() -> Model:
    from repro.smt.solver import Model as SmtModel
    return Model(SmtModel({}))


_SPECIAL_FORMS: Dict[Symbol, Callable] = {
    _S("quote"): Interpreter._sf_quote,
    _S("if"): Interpreter._sf_if,
    _S("cond"): Interpreter._sf_cond,
    _S("case"): Interpreter._sf_case,
    _S("when"): Interpreter._sf_when,
    _S("unless"): Interpreter._sf_unless,
    _S("and"): Interpreter._sf_and,
    _S("or"): Interpreter._sf_or,
    _S("define"): Interpreter._sf_define,
    _S("define-symbolic"): Interpreter._sf_define_symbolic,
    _S("define-symbolic*"): Interpreter._sf_define_symbolic_star,
    _S("lambda"): Interpreter._sf_lambda,
    _S("let"): Interpreter._sf_let,
    _S("let*"): Interpreter._sf_let_star,
    _S("letrec"): Interpreter._sf_letrec,
    _S("local"): Interpreter._sf_local,
    _S("begin"): Interpreter._sf_begin,
    _S("set!"): Interpreter._sf_set_bang,
    _S("assert"): Interpreter._sf_assert,
    _S("choose"): Interpreter._sf_choose,
    _S("for/all"): Interpreter._sf_for_all,
    _S("solve"): Interpreter._sf_solve,
    _S("verify"): Interpreter._sf_verify,
    _S("synthesize"): Interpreter._sf_synthesize,
    _S("debug"): Interpreter._sf_debug,
}


def run_program(source: str, int_width: Optional[int] = None) -> List[object]:
    """Run an HL program under a fresh VM; returns top-level form values."""
    interp = Interpreter(int_width=int_width)
    with context.VM():
        return interp.run(source)


def run_program_with_stats(source: str, int_width: Optional[int] = None):
    """Like :func:`run_program` but also returns the VM's statistics."""
    interp = Interpreter(int_width=int_width)
    with context.VM() as vm:
        vm.stats.start()
        try:
            results = interp.run(source)
        finally:
            vm.stats.stop()
        return results, vm.stats
