"""The HL standard prelude, written in HL itself.

Everything here is defined *in the host language* on top of the lifted
core builtins — the same way Rosette's library grows out of its lifted
kernel. Because the definitions only use lifted operations and `if`, they
are automatically correct on symbolic values and unions; no Python code
needs to know about them.

The prelude is loaded into every :class:`repro.lang.interp.Interpreter`
unless it is constructed with ``prelude=False``.
"""

PRELUDE_SOURCE = """
;; --- pair/list accessors -------------------------------------------------
(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cddr p) (cdr (cdr p)))
(define (caddr p) (car (cddr p)))

;; --- list utilities -------------------------------------------------------
(define (list-tail lst k)
  (if (= k 0) lst (list-tail (cdr lst) (- k 1))))

(define (member x lst)
  (cond [(null? lst) #f]
        [(equal? x (car lst)) lst]
        [else (member x (cdr lst))]))

(define (assoc key pairs)
  (cond [(null? pairs) #f]
        [(equal? key (caar pairs)) (car pairs)]
        [else (assoc key (cdr pairs))]))

(define (andmap proc lst)
  (cond [(null? lst) #t]
        [(null? (cdr lst)) (proc (car lst))]
        [else (and (proc (car lst)) (andmap proc (cdr lst)))]))

(define (ormap proc lst)
  (cond [(null? lst) #f]
        [else (or (proc (car lst)) (ormap proc (cdr lst)))]))

(define (remove x lst)
  (cond [(null? lst) lst]
        [(equal? x (car lst)) (cdr lst)]
        [else (cons (car lst) (remove x (cdr lst)))]))

(define (count proc lst)
  (foldl (lambda (el acc) (if (proc el) (+ acc 1) acc)) 0 lst))

(define (append-map proc lst)
  (foldl (lambda (el acc) (append acc (proc el))) null lst))

(define (index-of lst x)
  (let loop ([rest lst] [i 0])
    (cond [(null? rest) #f]
          [(equal? (car rest) x) i]
          [else (loop (cdr rest) (+ i 1))])))

(define (flatten v)
  (cond [(null? v) null]
        [(list? v) (append (flatten (car v)) (flatten (cdr v)))]
        [else (list v)]))

(define (sum lst) (foldl + 0 lst))

(define (iota n) (range n))

;; --- higher-order helpers -------------------------------------------------
(define (compose f g) (lambda (x) (f (g x))))
(define (const c) (lambda args c))
(define (identity x) x)
(define (curry2 f a) (lambda (b) (f a b)))

;; --- numeric helpers --------------------------------------------------------
(define (clamp lo hi v) (min hi (max lo v)))
(define (between? lo hi v) (and (<= lo v) (<= v hi)))
(define (sgn v) (cond [(< v 0) -1] [(> v 0) 1] [else 0]))

;; --- comprehension sugar ----------------------------------------------------
;; (for/list ([x seq]) body ...): seq may be a list or a concrete count,
;; as in Racket's (for/list ([i k]) ...) over an integer range. This is
;; the form the paper's `word` generator uses (§2.2).
(define (in-sequence seq) (if (number? seq) (range seq) seq))
(define-syntax for/list
  (syntax-rules ()
    [(_ ([x seq]) body ...)
     (map (lambda (x) body ...) (in-sequence seq))]))

;; (for/and ([x seq]) body) and (for/or ([x seq]) body).
(define-syntax for/and
  (syntax-rules ()
    [(_ ([x seq]) body ...)
     (andmap (lambda (x) body ...) (in-sequence seq))]))
(define-syntax for/or
  (syntax-rules ()
    [(_ ([x seq]) body ...)
     (ormap (lambda (x) body ...) (in-sequence seq))]))
"""
