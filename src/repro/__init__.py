"""repro — a lightweight symbolic virtual machine for solver-aided host languages.

A from-scratch Python reproduction of Torlak & Bodik, PLDI 2014 (the
ROSETTE SVM paper). The package stack, bottom to top:

- :mod:`repro.solver` — CDCL SAT solver with assumptions and unsat cores;
- :mod:`repro.smt` — hash-consed boolean/bitvector terms, bit-blasting;
- :mod:`repro.sym` — symbolic values, symbolic unions, type-driven merging;
- :mod:`repro.vm` — the SVM: path conditions, assertion store, lifted
  builtins, symbolic reflection;
- :mod:`repro.queries` — solve / verify / synthesize / debug;
- :mod:`repro.lang` — the HL host language (s-expressions + syntax-rules
  macros) interpreted on the SVM;
- :mod:`repro.baselines` — classic symbolic execution and BMC-style
  merging, for comparison;
- :mod:`repro.sdsl` — the case-study SDSLs: SynthCL, WebSynth, IFCL, and
  the §2 automata language.

Quickstart (the paper's running example)::

    from repro import *

    set_default_int_width(8)

    def rev_pos(xs):
        ps = ()
        for x in xs:
            ps = branch(x > 0, lambda: builtins.cons(x, ps), lambda: ps)
        return ps

    def program():
        xs = (fresh_int("x"), fresh_int("x"))
        ps = rev_pos(xs)
        assert_(builtins.equal(builtins.length(ps), len(xs)))
        return xs

    outcome = solve(program)
    assert outcome.status == "sat"
"""

from repro.sym import (
    Box,
    FreshStream,
    SymBool,
    SymInt,
    Union,
    default_int_width,
    fresh_bool,
    fresh_int,
    merge,
    merge_many,
    reset_fresh_names,
    set_default_int_width,
)
from repro.vm import (
    VM,
    AssertionFailure,
    Vector,
    assert_,
    box_get,
    box_set,
    branch,
    builtins,
    current,
    for_all,
    lift,
    make_box,
    union_contents,
    union_size,
)
from repro.queries import Model, QueryOutcome, debug, relax, solve, synthesize, verify

__version__ = "1.0.0"

__all__ = [
    "Box", "FreshStream", "SymBool", "SymInt", "Union",
    "default_int_width", "fresh_bool", "fresh_int", "merge", "merge_many",
    "reset_fresh_names", "set_default_int_width",
    "VM", "AssertionFailure", "Vector", "assert_", "box_get", "box_set",
    "branch", "builtins", "current", "for_all", "lift", "make_box",
    "union_contents", "union_size",
    "Model", "QueryOutcome", "debug", "relax", "solve", "synthesize",
    "verify",
    "__version__",
]
