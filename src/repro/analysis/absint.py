"""Abstract interpretation over the interned term DAG.

One memoized post-order pass per root: every node is visited exactly once
(the DAG is acyclic, so the "fixpoint" is a single bottom-up sweep), and
each operator's transfer function maps the arguments' abstractions to a
sound abstraction of the result — an :class:`~repro.analysis.domains.AbsVal`
(known bits × unsigned interval, reduced) for bitvector nodes, a
``BTRUE``/``BFALSE``/``BTOP`` point for boolean nodes.

Exactness fast path: when every argument abstracts to a singleton, the
node is evaluated *concretely* through the same fold helpers
``repro.smt.terms`` uses, so the analysis is exact wherever the inputs
are — including the signed division family, where the abstract transfer
alone would give up.

The equality transfer adds one relational trick the non-relational
domains cannot see: for ``a = b`` over bitvectors it builds ``a - b``
through :func:`repro.smt.terms.mk_sub`, whose linear normal form folds
syntactically-related operands (``x+2 = x+5`` → difference ``3`` →
``BFALSE``) even though both sides abstract to ⊤.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.smt import terms as T
from repro.analysis import domains as D
from repro.analysis.domains import (
    BFALSE,
    BTOP,
    BTRUE,
    AbsVal,
    Interval,
    KnownBits,
    b3_and,
    b3_join,
    b3_not,
    b3_or,
    b3_xor,
    bool3,
)

AbstractValue = Union[AbsVal, "D._Bool3"]


class AbstractError(Exception):
    """The analysis met a term it has no transfer function for."""


def _as_abstract(term: T.Term, value) -> AbstractValue:
    """Coerce an environment entry (AbsVal/Bool3/int/bool) for `term`."""
    if isinstance(value, AbsVal) or value in (BTRUE, BFALSE, BTOP):
        return value
    if term.sort is T.BOOL:
        return bool3(bool(value))
    return AbsVal.const(int(value), term.width)


def _concrete_args(args: Iterable[AbstractValue]):
    """Concrete argument values if every abstraction is a singleton."""
    out = []
    for value in args:
        if isinstance(value, AbsVal):
            if not value.is_const():
                return None
            out.append(value.value())
        elif value is BTRUE:
            out.append(True)
        elif value is BFALSE:
            out.append(False)
        else:
            return None
    return out


def _lift_concrete(node: T.Term, value) -> AbstractValue:
    if node.sort is T.BOOL:
        return bool3(bool(value))
    return AbsVal.const(int(value), node.width)


_CMP_OPS = frozenset((T.OP_EQ, T.OP_ULT, T.OP_ULE, T.OP_SLT, T.OP_SLE))


def _chaos_value(node: T.Term) -> AbstractValue:
    """A deliberately wrong singleton (fault-injection harness only)."""
    if node.sort is T.BOOL:
        return BFALSE
    return AbsVal.const(5, node.width)


def _transfer(node: T.Term,
              memo: Dict[T.Term, AbstractValue]) -> AbstractValue:
    op = node.op
    if op == T.OP_TRUE:
        return BTRUE
    if op == T.OP_FALSE:
        return BFALSE
    if op == T.OP_BV_CONST:
        return AbsVal.const(node.const_value(), node.width)
    if node.is_var:
        return BTOP if node.sort is T.BOOL else AbsVal.top(node.width)

    if D.CHAOS_WRONG_OP is not None and op == D.CHAOS_WRONG_OP:
        return _chaos_value(node)

    args = [memo[arg] for arg in node.args]

    # Exactness fast path: all-singleton arguments evaluate concretely
    # through the same semantics `terms.evaluate` uses.
    concrete = _concrete_args(args)
    if concrete is not None:
        value = T._eval_node(
            node, {}, {id(arg): val for arg, val in zip(node.args, concrete)})
        return _lift_concrete(node, value)

    # Boolean connectives -------------------------------------------------
    if op == T.OP_NOT:
        return b3_not(args[0])
    if op == T.OP_AND:
        return b3_and(*args)
    if op == T.OP_OR:
        return b3_or(*args)
    if op == T.OP_XOR:
        return b3_xor(args[0], args[1])
    if op == T.OP_ITE:
        cond, then_val, else_val = args
        if cond is BTRUE:
            return then_val
        if cond is BFALSE:
            return else_val
        if node.sort is T.BOOL:
            return b3_join(then_val, else_val)
        return then_val.join(else_val)

    # Comparisons ---------------------------------------------------------
    if op in _CMP_OPS:
        return _compare(op, node, args)

    # Bitvector arithmetic / bitwise --------------------------------------
    a = args[0]
    if op == T.OP_ADD:
        result = a
        for b in args[1:]:
            result = AbsVal(result.bits.add(b.bits), result.rng.add(b.rng))
        return result.reduce()
    if op == T.OP_SUB:
        b = args[1]
        return AbsVal(a.bits.sub(b.bits), a.rng.sub(b.rng)).reduce()
    if op == T.OP_NEG:
        return AbsVal(a.bits.neg(), a.rng.neg()).reduce()
    if op == T.OP_MUL:
        b = args[1]
        return AbsVal(a.bits.mul(b.bits), a.rng.mul(b.rng)).reduce()
    if op == T.OP_UDIV:
        b = args[1]
        return AbsVal(KnownBits.top(node.width), a.rng.udiv(b.rng)).reduce()
    if op == T.OP_UREM:
        b = args[1]
        return AbsVal(KnownBits.top(node.width), a.rng.urem(b.rng)).reduce()
    if op in (T.OP_SDIV, T.OP_SREM, T.OP_SMOD):
        # Signed division is only exact on singletons (handled above).
        return AbsVal.top(node.width)
    if op == T.OP_BVAND:
        b = args[1]
        return AbsVal(a.bits.and_(b.bits), a.rng.bvand(b.rng)).reduce()
    if op == T.OP_BVOR:
        b = args[1]
        return AbsVal(a.bits.or_(b.bits), a.rng.bvor(b.rng)).reduce()
    if op == T.OP_BVXOR:
        b = args[1]
        return AbsVal(a.bits.xor_(b.bits), a.rng.bvxor(b.rng)).reduce()
    if op == T.OP_BVNOT:
        return AbsVal(a.bits.not_(), a.rng.bvnot()).reduce()
    if op in (T.OP_SHL, T.OP_LSHR, T.OP_ASHR):
        return _shift(op, node.width, a, args[1])

    raise AbstractError(f"no transfer function for operator {op!r}")


def _compare(op: str, node: T.Term, args) -> "D._Bool3":
    a, b = args
    if op == T.OP_EQ:
        if node.args[0].sort is T.BOOL:
            return b3_not(b3_xor(a, b))
        # Disjoint known bits or disjoint ranges decide inequality.
        if (a.bits.ones & b.bits.zeros) or (a.bits.zeros & b.bits.ones):
            return BFALSE
        if a.rng.hi < b.rng.lo or b.rng.hi < a.rng.lo:
            return BFALSE
        # Relational fallback: the linear normal form of a - b folds
        # syntactically related operands the domains abstract away.
        diff = T.mk_sub(node.args[0], node.args[1])
        if diff.is_const:
            return bool3(diff.const_value() == 0)
        return BTOP
    if op == T.OP_ULT:
        return a.rng.ult(b.rng)
    if op == T.OP_ULE:
        return a.rng.ule(b.rng)
    if op == T.OP_SLT:
        return a.rng.slt(b.rng)
    return a.rng.sle(b.rng)


def _shift(op: str, width: int, a: AbsVal, shift: AbsVal) -> AbsVal:
    if shift.is_const():
        amount = shift.value()
        if op == T.OP_SHL:
            bits = a.bits.shl_const(amount)
        elif op == T.OP_LSHR:
            bits = a.bits.lshr_const(amount)
        else:
            bits = a.bits.ashr_const(amount)
    elif op == T.OP_SHL:
        # A left shift by any amount preserves trailing zeros.
        bits = KnownBits((1 << a.bits.trailing_zeros()) - 1, 0, width)
    elif op == T.OP_LSHR or (op == T.OP_ASHR and
                             a.bits.trit(width - 1) == 0):
        # A right shift of a value with known leading zeros keeps them.
        lead = a.bits.leading_zeros()
        mask = (1 << width) - 1
        bits = KnownBits(mask & ~((1 << (width - lead)) - 1), 0, width)
    else:
        bits = KnownBits.top(width)
    if op == T.OP_SHL:
        rng = a.rng.shl(shift.rng)
    elif op == T.OP_LSHR:
        rng = a.rng.lshr(shift.rng)
    else:
        rng = a.rng.ashr(shift.rng)
    return AbsVal(bits, rng).reduce()


def analyze_term(term: T.Term,
                 env: Optional[Dict[T.Term, object]] = None,
                 ) -> Dict[T.Term, AbstractValue]:
    """Abstractly interpret the DAG under `term`.

    Returns the full memo table mapping every reachable node to its
    abstraction, so callers (the sanitizer, the lint rules) can inspect
    subterm facts without re-running the pass. `env` optionally seeds
    variables with abstract or concrete values.
    """
    memo: Dict[T.Term, AbstractValue] = {}
    if env:
        for var, value in env.items():
            memo[var] = _as_abstract(var, value)
    for node in T.postorder(term):
        if node not in memo:
            memo[node] = _transfer(node, memo)
    return memo


def value_of(term: T.Term,
             env: Optional[Dict[T.Term, object]] = None) -> AbstractValue:
    """The abstraction of `term` alone (convenience over analyze_term)."""
    return analyze_term(term, env)[term]


def bool3_of(term: T.Term,
             env: Optional[Dict[T.Term, object]] = None) -> "D._Bool3":
    """Three-valued verdict for a boolean term."""
    if term.sort is not T.BOOL:
        raise AbstractError(f"bool3_of needs a Bool term, got {term!r}")
    return value_of(term, env)
