"""Abstract domains for bitvector terms: known-bits and unsigned intervals.

Two classic numeric domains over fixed-width unsigned bitvectors, plus the
three-valued boolean domain that comparison transfer functions produce:

- :class:`KnownBits` — per-bit certainty: a mask of bits known to be 0 and
  a mask of bits known to be 1 (LLVM's ``KnownBits``, Miné's bitfield
  domain). Precise for the bitwise operators, shifts by constants, and
  low bits of addition.
- :class:`Interval` — an unsigned range ``[lo, hi]`` with no wraparound
  representation: an operation that may wrap widens to ``⊤`` unless every
  concrete result wraps uniformly. Precise for comparisons and bounded
  arithmetic — exactly the "bounds guard" shapes the SVM emits.
- ``BTRUE`` / ``BFALSE`` / ``BTOP`` — the flat boolean domain.

Soundness contract (property-tested exhaustively for small widths in
``tests/analysis/test_domains.py``): for every transfer function and every
pair of abstract inputs, the abstract result *contains* the concrete
result of the operation on every pair of concrete values drawn from the
inputs' concretizations. The domains never produce ⊥: every term has a
concrete value under every assignment, so an empty abstraction could only
arise from a transfer-function bug (see :func:`chaos_wrong_transfer`,
which injects exactly that for the fault-injection harness).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple


class _Bool3:
    """One point of the flat boolean lattice (module-level singletons)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


BTRUE = _Bool3("BTRUE")
BFALSE = _Bool3("BFALSE")
BTOP = _Bool3("BTOP")


def bool3(value: Optional[bool]) -> _Bool3:
    if value is None:
        return BTOP
    return BTRUE if value else BFALSE


def b3_not(a: _Bool3) -> _Bool3:
    if a is BTRUE:
        return BFALSE
    if a is BFALSE:
        return BTRUE
    return BTOP


def b3_and(*args: _Bool3) -> _Bool3:
    if any(a is BFALSE for a in args):
        return BFALSE
    if all(a is BTRUE for a in args):
        return BTRUE
    return BTOP


def b3_or(*args: _Bool3) -> _Bool3:
    if any(a is BTRUE for a in args):
        return BTRUE
    if all(a is BFALSE for a in args):
        return BFALSE
    return BTOP


def b3_xor(a: _Bool3, b: _Bool3) -> _Bool3:
    if a is BTOP or b is BTOP:
        return BTOP
    return bool3((a is BTRUE) != (b is BTRUE))


def b3_join(a: _Bool3, b: _Bool3) -> _Bool3:
    return a if a is b else BTOP


# ---------------------------------------------------------------------------
# Known bits
# ---------------------------------------------------------------------------

class KnownBits:
    """Per-bit knowledge: `zeros` bits are certainly 0, `ones` certainly 1.

    Invariant: ``zeros & ones == 0`` and both fit in `width` bits. A fully
    known value has ``zeros | ones == mask``.
    """

    __slots__ = ("zeros", "ones", "width")

    def __init__(self, zeros: int, ones: int, width: int):
        if zeros & ones:
            raise ValueError("contradictory known bits (zeros & ones != 0)")
        self.zeros = zeros
        self.ones = ones
        self.width = width

    # -- constructors --------------------------------------------------

    @staticmethod
    def top(width: int) -> "KnownBits":
        return KnownBits(0, 0, width)

    @staticmethod
    def const(value: int, width: int) -> "KnownBits":
        mask = (1 << width) - 1
        value &= mask
        return KnownBits(mask & ~value, value, width)

    # -- queries -------------------------------------------------------

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def unknown(self) -> int:
        return self.mask & ~(self.zeros | self.ones)

    def is_const(self) -> bool:
        return (self.zeros | self.ones) == self.mask

    def value(self) -> int:
        """The constant value (only meaningful when :meth:`is_const`)."""
        return self.ones

    def min_value(self) -> int:
        return self.ones

    def max_value(self) -> int:
        return self.ones | self.unknown

    def contains(self, value: int) -> bool:
        return (value & self.zeros) == 0 and \
            (value & self.ones) == self.ones

    def trailing_known(self) -> int:
        """Number of contiguous fully-known bits from the LSB."""
        known = self.zeros | self.ones
        count = 0
        while count < self.width and (known >> count) & 1:
            count += 1
        return count

    def trailing_zeros(self) -> int:
        """Number of contiguous known-zero bits from the LSB."""
        count = 0
        while count < self.width and (self.zeros >> count) & 1:
            count += 1
        return count

    def leading_zeros(self) -> int:
        """Number of contiguous known-zero bits from the MSB."""
        count = 0
        while count < self.width and \
                (self.zeros >> (self.width - 1 - count)) & 1:
            count += 1
        return count

    def join(self, other: "KnownBits") -> "KnownBits":
        return KnownBits(self.zeros & other.zeros, self.ones & other.ones,
                         self.width)

    def meet_masks(self, zeros: int, ones: int) -> "KnownBits":
        """Add knowledge from a second sound analysis of the same value."""
        return KnownBits(self.zeros | zeros, self.ones | ones, self.width)

    def trit(self, bit: int) -> Optional[int]:
        """Bit `bit` as 0, 1, or None (unknown)."""
        probe = 1 << bit
        if self.zeros & probe:
            return 0
        if self.ones & probe:
            return 1
        return None

    def concretizations(self) -> Iterator[int]:
        """Every concrete value this abstraction contains (small widths)."""
        free = [bit for bit in range(self.width) if self.trit(bit) is None]
        for selector in range(1 << len(free)):
            value = self.ones
            for index, bit in enumerate(free):
                if (selector >> index) & 1:
                    value |= 1 << bit
            yield value

    def __repr__(self) -> str:
        digits = []
        for bit in reversed(range(self.width)):
            trit = self.trit(bit)
            digits.append("?" if trit is None else str(trit))
        return f"KnownBits({''.join(digits)})"

    # -- transfer functions -------------------------------------------

    def not_(self) -> "KnownBits":
        return KnownBits(self.ones, self.zeros, self.width)

    def and_(self, other: "KnownBits") -> "KnownBits":
        return KnownBits(self.zeros | other.zeros, self.ones & other.ones,
                         self.width)

    def or_(self, other: "KnownBits") -> "KnownBits":
        return KnownBits(self.zeros & other.zeros, self.ones | other.ones,
                         self.width)

    def xor_(self, other: "KnownBits") -> "KnownBits":
        ones = (self.ones & other.zeros) | (self.zeros & other.ones)
        zeros = (self.ones & other.ones) | (self.zeros & other.zeros)
        return KnownBits(zeros, ones, self.width)

    def add(self, other: "KnownBits", carry_in: Optional[int] = 0,
            negate_other: bool = False) -> "KnownBits":
        """Ripple addition in three-valued logic, bit by bit.

        With ``negate_other`` the second operand is complemented, which
        together with ``carry_in=1`` implements subtraction.
        """
        rhs = other.not_() if negate_other else other
        carry: Optional[int] = carry_in
        zeros = ones = 0
        for bit in range(self.width):
            a, b, c = self.trit(bit), rhs.trit(bit), carry
            trits = (a, b, c)
            if None not in trits:
                total = a + b + c
                if total & 1:
                    ones |= 1 << bit
                else:
                    zeros |= 1 << bit
                carry = total >> 1
            else:
                known = [t for t in trits if t is not None]
                # The sum bit is unknown; the carry may still be known
                # when two of the three inputs agree (majority function).
                if known.count(1) >= 2:
                    carry = 1
                elif known.count(0) >= 2:
                    carry = 0
                else:
                    carry = None
        return KnownBits(zeros, ones, self.width)

    def sub(self, other: "KnownBits") -> "KnownBits":
        return self.add(other, carry_in=1, negate_other=True)

    def neg(self) -> "KnownBits":
        return KnownBits.const(0, self.width).sub(self)

    def mul(self, other: "KnownBits") -> "KnownBits":
        """Low known bits + trailing-zero accumulation.

        Product bit *i* depends only on operand bits ``0..i``, so when the
        low *k* bits of both operands are known the low *k* bits of the
        product are too. Independently, trailing zeros add.
        """
        width = self.width
        low = min(self.trailing_known(), other.trailing_known())
        zeros = ones = 0
        if low:
            lowmask = (1 << low) - 1
            product = ((self.ones & lowmask) * (other.ones & lowmask)) \
                & lowmask
            ones = product
            zeros = lowmask & ~product
        tz = min(width, self.trailing_zeros() + other.trailing_zeros())
        if tz:
            zeros |= (1 << tz) - 1
        return KnownBits(zeros & ~ones, ones, width)

    def shl_const(self, amount: int) -> "KnownBits":
        width = self.width
        mask = self.mask
        if amount >= width:
            return KnownBits.const(0, width)
        zeros = ((self.zeros << amount) | ((1 << amount) - 1)) & mask
        ones = (self.ones << amount) & mask
        return KnownBits(zeros, ones, width)

    def lshr_const(self, amount: int) -> "KnownBits":
        width = self.width
        if amount >= width:
            return KnownBits.const(0, width)
        high = ((1 << amount) - 1) << (width - amount) if amount else 0
        zeros = (self.zeros >> amount) | high
        ones = self.ones >> amount
        return KnownBits(zeros, ones, width)

    def ashr_const(self, amount: int) -> "KnownBits":
        width = self.width
        amount = min(amount, width - 1)
        sign = self.trit(width - 1)
        zeros = self.zeros >> amount
        ones = self.ones >> amount
        high = ((1 << amount) - 1) << (width - amount) if amount else 0
        if sign == 0:
            zeros |= high
        elif sign == 1:
            ones |= high
        return KnownBits(zeros & ~ones, ones, width)


# ---------------------------------------------------------------------------
# Unsigned intervals
# ---------------------------------------------------------------------------

class Interval:
    """An unsigned range ``[lo, hi]``, ``0 <= lo <= hi <= 2^width - 1``.

    No wrapped (``lo > hi``) representation: transfer functions widen to
    ``⊤`` unless the result provably does not wrap — or wraps uniformly,
    in which case the shifted range is still contiguous.
    """

    __slots__ = ("lo", "hi", "width")

    def __init__(self, lo: int, hi: int, width: int):
        if not 0 <= lo <= hi <= (1 << width) - 1:
            raise ValueError(f"bad interval [{lo}, {hi}] at width {width}")
        self.lo = lo
        self.hi = hi
        self.width = width

    @staticmethod
    def top(width: int) -> "Interval":
        return Interval(0, (1 << width) - 1, width)

    @staticmethod
    def const(value: int, width: int) -> "Interval":
        value &= (1 << width) - 1
        return Interval(value, value, width)

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == self.mask

    def is_const(self) -> bool:
        return self.lo == self.hi

    def value(self) -> int:
        return self.lo

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi),
                        self.width)

    def __repr__(self) -> str:
        return f"Interval([{self.lo}, {self.hi}], w={self.width})"

    # -- transfer functions -------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        size = 1 << self.width
        lo, hi = self.lo + other.lo, self.hi + other.hi
        if hi < size:
            return Interval(lo, hi, self.width)
        if lo >= size:
            # Every sum wraps exactly once; the range stays contiguous.
            return Interval(lo - size, hi - size, self.width)
        return Interval.top(self.width)

    def sub(self, other: "Interval") -> "Interval":
        size = 1 << self.width
        lo, hi = self.lo - other.hi, self.hi - other.lo
        if lo >= 0:
            return Interval(lo, hi, self.width)
        if hi < 0:
            return Interval(lo + size, hi + size, self.width)
        return Interval.top(self.width)

    def neg(self) -> "Interval":
        size = 1 << self.width
        if self.hi == 0:
            return self
        if self.lo > 0:
            return Interval(size - self.hi, size - self.lo, self.width)
        return Interval.top(self.width)

    def mul(self, other: "Interval") -> "Interval":
        hi = self.hi * other.hi
        if hi <= self.mask:
            return Interval(self.lo * other.lo, hi, self.width)
        return Interval.top(self.width)

    def udiv(self, other: "Interval") -> "Interval":
        # SMT-LIB: x udiv 0 = all-ones.
        if other.hi == 0:
            return Interval.const(self.mask, self.width)
        lo = self.lo // other.hi
        if other.lo >= 1:
            return Interval(lo, self.hi // other.lo, self.width)
        # The divisor may be zero: the all-ones result joins the range.
        return Interval(lo, self.mask, self.width)

    def urem(self, other: "Interval") -> "Interval":
        # x urem 0 = x, and x urem y <= min(x, y-1) for y >= 1; either
        # way the result never exceeds x.
        if other.lo >= 1:
            return Interval(0, min(self.hi, other.hi - 1), self.width)
        return Interval(0, self.hi, self.width)

    def shl(self, other: "Interval") -> "Interval":
        if other.hi >= self.width:
            return Interval.top(self.width)
        hi = self.hi << other.hi
        if hi <= self.mask:
            return Interval(self.lo << other.lo, hi, self.width)
        return Interval.top(self.width)

    def lshr(self, other: "Interval") -> "Interval":
        # Shifts >= width yield 0 (matching mk_lshr's fold).
        lo = 0 if other.hi >= self.width else self.lo >> other.hi
        hi = 0 if other.lo >= self.width else self.hi >> other.lo
        return Interval(lo, hi, self.width)

    def ashr(self, other: "Interval") -> "Interval":
        sign_bit = 1 << (self.width - 1)
        if self.hi < sign_bit:  # provably non-negative: behaves like lshr
            top = min(other.hi, self.width - 1)
            return Interval(self.lo >> top, self.hi >> other.lo, self.width)
        return Interval.top(self.width)

    def bvand(self, other: "Interval") -> "Interval":
        return Interval(0, min(self.hi, other.hi), self.width)

    def bvor(self, other: "Interval") -> "Interval":
        bits = max(self.hi.bit_length(), other.hi.bit_length())
        return Interval(max(self.lo, other.lo),
                        min(self.mask, (1 << bits) - 1), self.width)

    def bvxor(self, other: "Interval") -> "Interval":
        bits = max(self.hi.bit_length(), other.hi.bit_length())
        return Interval(0, min(self.mask, (1 << bits) - 1), self.width)

    def bvnot(self) -> "Interval":
        return Interval(self.mask - self.hi, self.mask - self.lo, self.width)

    # -- comparisons ---------------------------------------------------

    def ult(self, other: "Interval") -> _Bool3:
        if self.hi < other.lo:
            return BTRUE
        if self.lo >= other.hi:
            return BFALSE
        return BTOP

    def ule(self, other: "Interval") -> _Bool3:
        if self.hi <= other.lo:
            return BTRUE
        if self.lo > other.hi:
            return BFALSE
        return BTOP

    def _signed_parts(self) -> Optional[Tuple[int, int]]:
        """Signed bounds when the range does not straddle the sign flip."""
        sign_bit = 1 << (self.width - 1)
        if self.hi < sign_bit:       # entirely non-negative
            return self.lo, self.hi
        if self.lo >= sign_bit:      # entirely negative
            size = 1 << self.width
            return self.lo - size, self.hi - size
        return None

    def slt(self, other: "Interval") -> _Bool3:
        a, b = self._signed_parts(), other._signed_parts()
        if a is None or b is None:
            return BTOP
        if a[1] < b[0]:
            return BTRUE
        if a[0] >= b[1]:
            return BFALSE
        return BTOP

    def sle(self, other: "Interval") -> _Bool3:
        a, b = self._signed_parts(), other._signed_parts()
        if a is None or b is None:
            return BTOP
        if a[1] <= b[0]:
            return BTRUE
        if a[0] > b[1]:
            return BFALSE
        return BTOP


# ---------------------------------------------------------------------------
# The reduced product
# ---------------------------------------------------------------------------

class AbsVal:
    """A bitvector's abstraction: known bits × interval, mutually reduced.

    :meth:`reduce` iterates the classic exchange to a fixpoint: known high
    zeros tighten the interval, interval bounds below a power of two pin
    high bits to zero, and a singleton in either domain makes both exact.
    """

    __slots__ = ("bits", "rng")

    def __init__(self, bits: KnownBits, rng: Interval):
        self.bits = bits
        self.rng = rng

    @staticmethod
    def top(width: int) -> "AbsVal":
        return AbsVal(KnownBits.top(width), Interval.top(width))

    @staticmethod
    def const(value: int, width: int) -> "AbsVal":
        return AbsVal(KnownBits.const(value, width),
                      Interval.const(value, width))

    @property
    def width(self) -> int:
        return self.bits.width

    def is_const(self) -> bool:
        return self.bits.is_const() or self.rng.is_const()

    def value(self) -> int:
        return self.bits.value() if self.bits.is_const() else self.rng.value()

    def contains(self, value: int) -> bool:
        return self.bits.contains(value) and self.rng.contains(value)

    def join(self, other: "AbsVal") -> "AbsVal":
        return AbsVal(self.bits.join(other.bits), self.rng.join(other.rng))

    def reduce(self) -> "AbsVal":
        bits, rng = self.bits, self.rng
        for _ in range(2 * self.width + 2):  # strictly-monotone: terminates
            new_lo = max(rng.lo, bits.min_value())
            new_hi = min(rng.hi, bits.max_value())
            if new_lo > new_hi:
                # Only reachable through an unsound transfer function (the
                # chaos harness does this on purpose); keep the interval
                # rather than fabricating an empty one.
                new_lo, new_hi = rng.lo, rng.hi
            changed = (new_lo, new_hi) != (rng.lo, rng.hi)
            rng = Interval(new_lo, new_hi, rng.width)
            # High bits above the interval's magnitude are zero.
            zeros = bits.mask & ~((1 << rng.hi.bit_length()) - 1)
            if rng.is_const():
                value = rng.value()
                const_zeros = bits.mask & ~value
                if bits.ones & const_zeros or bits.zeros & value:
                    new_bits = bits  # contradiction: only an unsound
                    # transfer (chaos) gets here; don't make it worse.
                else:
                    new_bits = KnownBits(const_zeros, value, bits.width)
            else:
                new_bits = bits.meet_masks(zeros & ~bits.ones, 0)
            changed = changed or new_bits.zeros != bits.zeros or \
                new_bits.ones != bits.ones
            bits = new_bits
            if not changed:
                break
        return AbsVal(bits, rng)

    def __repr__(self) -> str:
        return f"AbsVal({self.bits!r}, {self.rng!r})"


# ---------------------------------------------------------------------------
# Fault injection (chaos harness hook)
# ---------------------------------------------------------------------------

#: When set to an operator name (e.g. ``"bvadd"``), the abstract
#: interpreter returns a deliberately *wrong* singleton for every term
#: with that operator. The certify-mode sanitizer cross-check must catch
#: the bogus rewrite this produces — see ``repro.solver.chaos``.
CHAOS_WRONG_OP: Optional[str] = None


@contextmanager
def chaos_wrong_transfer(op: str):
    """Scoped injection of a wrong transfer function for `op`."""
    global CHAOS_WRONG_OP
    previous = CHAOS_WRONG_OP
    CHAOS_WRONG_OP = op
    try:
        yield
    finally:
        CHAOS_WRONG_OP = previous
