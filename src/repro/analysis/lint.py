"""symlint — static diagnostics for HL programs and SYNTHCL kernels.

Layer 2 of :mod:`repro.analysis`: where the sanitizer rewrites *formulas*
the solver is about to see, symlint inspects *source* before it ever
runs, flagging the patterns that make symbolic evaluation blow up or
silently lose soundness:

- **HL001** — recursion whose only termination tests depend on a
  symbolic constant (or that has no termination test at all): under
  symbolic evaluation the recursion depth is chosen by the solver, so
  the SVM explores it to the engine's bound on *every* path.
- **HL002** — a symbolic index into a concrete sequence
  (``list-ref``/``vector-ref``/``take``/``drop``): sound, but forces a
  merge over every cell of the sequence per access.
- **HL003** — an ``assert`` whose condition the Layer-1 abstract
  interpreter decides statically: provably true (dead weight on every
  query) or provably false (the program can never pass verification).
- **HL004** — unreachable ``cond`` clauses: after ``else``, after a
  test Layer 1 proves true, or guarded by a test Layer 1 proves false.
- **CL001–CL003** — SYNTHCL host-program checks over the Python AST:
  silently disabled race checking, and a kernel in which every work
  item writes the same concrete cell (a definite race the static
  pre-detector of :mod:`repro.analysis.races` would prove).

Diagnostics carry :class:`~repro.lang.reader.Span` source positions
from the spanned reader (HL) or the ``ast`` node extents (Python). The
CLI::

    python -m repro.analysis.lint [--fail-on-new] [--baseline FILE] PATH...

lints ``.hl``/``.rkt`` files with the HL rules and ``.py`` files with
the SYNTHCL rules; ``--fail-on-new`` exits non-zero on any diagnostic
absent from the baseline (with no baseline file, on *any* diagnostic),
which is how CI keeps the example programs clean.
"""

from __future__ import annotations

import ast
import json
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.lang.reader import (ParseError, SourceMap, Span, Symbol,
                               read_all_spanned)
from repro.obs.events import BUS
from repro.smt import terms as T
from repro.sym.values import default_int_width
from repro.analysis.absint import AbstractError, bool3_of
from repro.analysis.domains import BFALSE, BTRUE

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Rule:
    """One registered check."""

    code: str           #: "HL001", "CL002", ...
    severity: str
    summary: str        #: one-line description (``--list-rules`` output)


@dataclass
class Diagnostic:
    """One finding, anchored to a source span when one is known."""

    rule: str
    severity: str
    message: str
    span: Optional[Span] = None
    filename: Optional[str] = None

    @property
    def location(self) -> str:
        if self.span is not None:
            return self.span.label()
        return self.filename or "<string>"

    def format(self) -> str:
        return f"{self.location}: {self.severity}: {self.rule} {self.message}"

    def fingerprint(self) -> str:
        """Baseline identity: stable across unrelated line-number shifts."""
        return f"{self.filename or '<string>'}::{self.rule}::{self.message}"

    def row(self) -> dict:
        span = None
        if self.span is not None:
            span = [self.span.line, self.span.col,
                    self.span.end_line, self.span.end_col]
        return {"rule": self.rule, "severity": self.severity,
                "message": self.message, "file": self.filename, "span": span}


#: Rule registries: code → (Rule, checker). HL checkers take an
#: :class:`HLContext`; Python checkers take a :class:`PyContext`.
HL_RULES: Dict[str, Tuple[Rule, Callable]] = {}
PY_RULES: Dict[str, Tuple[Rule, Callable]] = {}


def _register(registry: Dict[str, Tuple[Rule, Callable]], code: str,
              severity: str, summary: str):
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def decorate(fn: Callable) -> Callable:
        if code in registry:
            raise ValueError(f"duplicate rule code {code}")
        registry[code] = (Rule(code, severity, summary), fn)
        return fn

    return decorate


def hl_rule(code: str, severity: str, summary: str):
    return _register(HL_RULES, code, severity, summary)


def py_rule(code: str, severity: str, summary: str):
    return _register(PY_RULES, code, severity, summary)


def all_rules() -> List[Rule]:
    pairs = list(HL_RULES.values()) + list(PY_RULES.values())
    return sorted((rule for rule, _ in pairs), key=lambda r: r.code)


# ---------------------------------------------------------------------------
# HL rules
# ---------------------------------------------------------------------------

#: Special forms that branch; their test positions guard recursion.
_CONDITIONALS = {Symbol("if"), Symbol("cond"), Symbol("when"),
                 Symbol("unless"), Symbol("case")}
#: (head, index-argument position) of sequence accessors — HL002.
_INDEXED_ACCESS = {Symbol("list-ref"): 1, Symbol("vector-ref"): 1,
                   Symbol("take"): 1, Symbol("drop"): 1}


class HLContext:
    """Everything an HL rule needs: parsed forms, spans, symbolic names."""

    def __init__(self, forms: List[object], srcmap: SourceMap,
                 filename: Optional[str]):
        self.forms = forms
        self.srcmap = srcmap
        self.filename = filename
        #: names bound by define-symbolic / define-symbolic*, with type.
        self.symbolic: Dict[Symbol, str] = {}
        self.diagnostics: List[Diagnostic] = []
        for form in self._subforms():
            if (len(form) == 3 and isinstance(form[0], Symbol)
                    and form[0] in (Symbol("define-symbolic"),
                                    Symbol("define-symbolic*"))
                    and isinstance(form[1], Symbol)):
                kind = "boolean" if form[2] == Symbol("boolean?") else "number"
                self.symbolic[form[1]] = kind

    def _subforms(self) -> Iterator[list]:
        """Every compound form, preorder."""
        stack = [form for form in self.forms if isinstance(form, list)]
        while stack:
            form = stack.pop()
            yield form
            stack.extend(child for child in form if isinstance(child, list))

    def span_of(self, form, parent=None, index: Optional[int] = None,
                ) -> Optional[Span]:
        """Best-effort span: the form itself, else its slot in `parent`."""
        if isinstance(form, list):
            span = self.srcmap.span_of(form)
            if span is not None:
                return span
        if parent is not None and index is not None:
            span = self.srcmap.span_at(parent, index)
            if span is not None:
                return span
        if isinstance(parent, list):
            return self.srcmap.span_of(parent)
        return None

    def report(self, rule: Rule, span: Optional[Span], message: str) -> None:
        self.diagnostics.append(
            Diagnostic(rule.code, rule.severity, message, span,
                       self.filename))


def _mentions(form, names) -> bool:
    """Does `form` reference any of the given symbols?"""
    if isinstance(form, Symbol):
        return form in names
    if isinstance(form, list):
        return any(_mentions(child, names) for child in form)
    return False


def _guard_tests(form) -> Iterator[object]:
    """Test expressions of every conditional inside `form` (inclusive)."""
    if not isinstance(form, list) or not form:
        return
    head = form[0]
    if isinstance(head, Symbol) and head in _CONDITIONALS:
        if head == Symbol("cond"):
            for clause in form[1:]:
                if isinstance(clause, list) and clause:
                    yield clause[0]
        elif head == Symbol("case"):
            if len(form) > 1:
                yield form[1]
        elif len(form) > 1:            # if / when / unless
            yield form[1]
    for child in form:
        yield from _guard_tests(child)


def _has_conditional(form) -> bool:
    if not isinstance(form, list) or not form:
        return False
    head = form[0]
    if isinstance(head, Symbol) and head in _CONDITIONALS:
        return True
    return any(_has_conditional(child) for child in form)


def _defined_procedures(ctx: HLContext) -> Iterator[Tuple[Symbol, list, list]]:
    """(name, body-forms, define-form) for every procedure definition."""
    for form in ctx._subforms():
        if len(form) < 3 or form[0] != Symbol("define"):
            continue
        target = form[1]
        if isinstance(target, list) and target and isinstance(target[0],
                                                              Symbol):
            yield target[0], form[2:], form              # (define (f x) ...)
        elif (isinstance(target, Symbol) and isinstance(form[2], list)
              and form[2] and form[2][0] == Symbol("lambda")):
            yield target, form[2][2:], form              # (define f (lambda ...

@hl_rule("HL001", WARNING,
         "recursion guarded only by a symbolic value (or not at all)")
def _check_symbolic_recursion(ctx: HLContext) -> None:
    for name, body, define_form in _defined_procedures(ctx):
        if not any(_mentions(expr, {name}) for expr in body):
            continue                                     # not recursive
        span = ctx.span_of(define_form)
        tests = [t for expr in body for t in _guard_tests(expr)]
        if not any(_has_conditional(expr) for expr in body):
            ctx.report(HL_RULES["HL001"][0], span,
                       f"procedure {name} recurs unconditionally; symbolic "
                       f"evaluation will unroll it to the engine bound")
        elif any(_mentions(test, ctx.symbolic) for test in tests):
            ctx.report(HL_RULES["HL001"][0], span,
                       f"recursion in {name} is bounded by a symbolic value; "
                       f"every path unrolls to the engine bound — guard the "
                       f"recursion with a concrete fuel parameter")


@hl_rule("HL002", WARNING, "symbolic index into a concrete sequence")
def _check_symbolic_index(ctx: HLContext) -> None:
    for form in ctx._subforms():
        if not form or not isinstance(form[0], Symbol):
            continue
        arg_pos = _INDEXED_ACCESS.get(form[0])
        if arg_pos is None or len(form) <= arg_pos + 1:
            continue
        index_expr = form[arg_pos + 1]
        if _mentions(index_expr, ctx.symbolic):
            span = ctx.span_of(index_expr, form, arg_pos + 1)
            ctx.report(HL_RULES["HL002"][0], span,
                       f"({form[0]} ...) with a symbolic index forces a "
                       f"merge over every element; prefer iterating with "
                       f"a concrete index and selecting symbolically")


# -- Layer-1 bridge: decide HL conditions with the abstract interpreter. ----

_ARITH = {Symbol("+"): T.mk_add, Symbol("*"): T.mk_mul,
          Symbol("bitwise-and"): T.mk_bvand, Symbol("bitwise-ior"): T.mk_bvor,
          Symbol("bitwise-xor"): T.mk_bvxor}
_COMPARE = {Symbol("="): T.mk_eq, Symbol("<"): T.mk_slt,
            Symbol("<="): T.mk_sle}
_SWAPPED = {Symbol(">"): T.mk_slt, Symbol(">="): T.mk_sle}


def _form_term(ctx: HLContext, form) -> Optional[T.Term]:
    """Translate a side-effect-free HL expression to a term, or None.

    Symbolic constants become fresh term variables; any construct
    outside the translated subset (unknown bindings, calls, effects)
    aborts the translation, so a verdict from the resulting term is
    sound for exactly the expressions we can see through.
    """
    width = default_int_width()
    if isinstance(form, bool):
        return T.TRUE if form else T.FALSE
    if isinstance(form, int):
        if -(1 << (width - 1)) <= form < (1 << width):
            return T.bv_const(form, width)
        return None
    if isinstance(form, Symbol):
        kind = ctx.symbolic.get(form)
        if kind == "boolean":
            return T.bool_var(f"lint!{form}")
        if kind == "number":
            return T.bv_var(f"lint!{form}", width)
        return None
    if not isinstance(form, list) or not form:
        return None
    head = form[0]
    if not isinstance(head, Symbol):
        return None
    args = [_form_term(ctx, arg) for arg in form[1:]]
    if any(arg is None for arg in args):
        return None
    bv = [a for a in args if a.sort is T.BV]
    booleans = [a for a in args if a.sort is T.BOOL]
    if head in _ARITH and args and len(bv) == len(args):
        out = args[0]
        for arg in args[1:]:
            out = _ARITH[head](out, arg)
        return out
    if head == Symbol("-") and args and len(bv) == len(args):
        if len(args) == 1:
            return T.mk_neg(args[0])
        out = args[0]
        for arg in args[1:]:
            out = T.mk_sub(out, arg)
        return out
    if head in _COMPARE and len(args) == 2:
        if head == Symbol("=") and args[0].sort is not args[1].sort:
            return None
        if head != Symbol("=") and len(bv) != 2:
            return None
        return _COMPARE[head](args[0], args[1])
    if head in _SWAPPED and len(bv) == 2:
        return _SWAPPED[head](args[1], args[0])
    if head == Symbol("zero?") and len(bv) == 1:
        return T.mk_eq(args[0], T.bv_const(0, width))
    if head == Symbol("not") and len(booleans) == 1:
        return T.mk_not(args[0])
    if head == Symbol("and") and len(booleans) == len(args):
        return T.mk_and(*args) if args else T.TRUE
    if head == Symbol("or") and len(booleans) == len(args):
        return T.mk_or(*args) if args else T.FALSE
    return None


def _decide(ctx: HLContext, form):
    """Three-valued verdict for an HL condition, or None if untranslated."""
    term = _form_term(ctx, form)
    if term is None or term.sort is not T.BOOL:
        return None
    try:
        return bool3_of(term)
    except AbstractError:
        return None


@hl_rule("HL003", WARNING, "assert decided statically (dead or failing)")
def _check_constant_assert(ctx: HLContext) -> None:
    rule = HL_RULES["HL003"][0]
    for form in ctx._subforms():
        if (len(form) not in (2, 3) or form[0] != Symbol("assert")):
            continue
        verdict = _decide(ctx, form[1])
        span = ctx.span_of(form)
        if verdict is BTRUE:
            ctx.report(rule, span,
                       "assertion is provably true — it constrains nothing "
                       "and can be removed")
        elif verdict is BFALSE:
            ctx.diagnostics.append(Diagnostic(
                rule.code, ERROR,
                "assertion is provably false — it fails on every path",
                span, ctx.filename))


@hl_rule("HL004", WARNING, "unreachable cond clause")
def _check_unreachable_cond(ctx: HLContext) -> None:
    rule = HL_RULES["HL004"][0]
    for form in ctx._subforms():
        if not form or form[0] != Symbol("cond"):
            continue
        closed_by = None      # the clause that made the rest unreachable
        for position, clause in enumerate(form[1:], start=1):
            if not isinstance(clause, list) or not clause:
                continue
            span = ctx.span_of(clause, form, position)
            if closed_by is not None:
                ctx.report(rule, span,
                           f"clause is unreachable: the {closed_by} clause "
                           f"above it always takes the branch")
                continue
            test = clause[0]
            if isinstance(test, Symbol) and test == Symbol("else"):
                closed_by = "else"
                continue
            verdict = _decide(ctx, test)
            if verdict is BTRUE and test is not True:
                ctx.report(rule, span, "clause test is provably true — "
                                       "use else")
                closed_by = "provably-true"
            elif test is True:
                closed_by = "#t"
            elif verdict is BFALSE:
                ctx.report(rule, span,
                           "clause test is provably false — the clause "
                           "is dead")


def lint_hl_source(text: str, filename: Optional[str] = None,
                   ) -> List[Diagnostic]:
    """Run every HL rule over one source text."""
    try:
        forms, srcmap = read_all_spanned(text, filename)
    except ParseError as error:
        span = None
        if error.line is not None:
            span = Span(error.line, error.col or 1, error.line,
                        (error.col or 1) + 1, filename)
        return [Diagnostic("HL000", ERROR, str(error), span, filename)]
    ctx = HLContext(forms, srcmap, filename)
    for _, checker in HL_RULES.values():
        checker(ctx)
    return ctx.diagnostics


# ---------------------------------------------------------------------------
# SYNTHCL (Python) rules
# ---------------------------------------------------------------------------


class PyContext:
    """A parsed Python module plus a reporter."""

    def __init__(self, tree: ast.Module, filename: Optional[str]):
        self.tree = tree
        self.filename = filename
        self.diagnostics: List[Diagnostic] = []

    def span(self, node: ast.AST) -> Optional[Span]:
        if not hasattr(node, "lineno"):
            return None
        return Span(node.lineno, node.col_offset + 1,
                    getattr(node, "end_lineno", node.lineno),
                    getattr(node, "end_col_offset", node.col_offset) + 1,
                    self.filename)

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(rule.code, rule.severity, message, self.span(node),
                       self.filename))


def _runtime_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "CLRuntime"):
            yield node


@py_rule("CL001", WARNING, "race checking silently disabled")
def _check_races_disabled(ctx: PyContext) -> None:
    rule = PY_RULES["CL001"][0]
    for call in _runtime_calls(ctx.tree):
        for keyword in call.keywords:
            if (keyword.arg == "check_races"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False):
                ctx.report(rule, call,
                           "CLRuntime(check_races=False) drops the race "
                           "obligations silently; use race_mode=\"symbolic\" "
                           "to model them, or race_mode=\"off\" to document "
                           "the intent")


@py_rule("CL002", ERROR, "every work item writes the same concrete cell")
def _check_constant_write(ctx: PyContext) -> None:
    rule = PY_RULES["CL002"][0]
    seen: set = set()
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # Only kernels: functions that ask for their global id.
        uses_gid = any(isinstance(node, ast.Call)
                       and isinstance(node.func, ast.Attribute)
                       and node.func.attr == "get_global_id"
                       for node in ast.walk(fn))
        if not uses_gid:
            continue
        for node in ast.walk(fn):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "write" and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, int)
                    and id(node) not in seen):
                # An enclosing function walks nested kernels too.
                seen.add(id(node))
                ctx.report(rule, node.args[1],
                           f"kernel writes index {node.args[1].value} "
                           f"unconditionally — every work item hits the "
                           f"same cell, a definite race for any "
                           f"global_size > 1")


@py_rule("CL003", INFO, "race checking turned off")
def _check_race_mode_off(ctx: PyContext) -> None:
    rule = PY_RULES["CL003"][0]
    for call in _runtime_calls(ctx.tree):
        for keyword in call.keywords:
            if (keyword.arg == "race_mode"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value == "off"):
                ctx.report(rule, call,
                           "race_mode=\"off\" trusts the kernel's accesses; "
                           "the launch emits no obligations")


def lint_python_source(text: str, filename: Optional[str] = None,
                       ) -> List[Diagnostic]:
    """Run every SYNTHCL rule over one Python source text."""
    try:
        tree = ast.parse(text, filename=filename or "<string>")
    except SyntaxError as error:
        span = None
        if error.lineno is not None:
            span = Span(error.lineno, (error.offset or 1), error.lineno,
                        (error.offset or 1) + 1, filename)
        return [Diagnostic("CL000", ERROR, f"syntax error: {error.msg}",
                           span, filename)]
    ctx = PyContext(tree, filename)
    for _, checker in PY_RULES.values():
        checker(ctx)
    return ctx.diagnostics


# ---------------------------------------------------------------------------
# Drivers and CLI
# ---------------------------------------------------------------------------

_HL_SUFFIXES = (".hl", ".rkt")


def lint_file(path: str) -> List[Diagnostic]:
    """Lint one file, choosing the rule set by suffix."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(_HL_SUFFIXES):
        return lint_hl_source(text, path)
    if path.endswith(".py"):
        return lint_python_source(text, path)
    return []


def _lintable(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in sorted(os.walk(path)):
                for name in sorted(names):
                    if name.endswith(_HL_SUFFIXES + (".py",)):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    return files


def lint_paths(paths: Iterable[str]) -> List[Diagnostic]:
    """Lint files and directories; emits one ``analysis.lint`` span."""
    files = _lintable(paths)
    BUS.begin("analysis.lint", "analysis", files=len(files))
    diagnostics: List[Diagnostic] = []
    try:
        for path in files:
            diagnostics.extend(lint_file(path))
    finally:
        counts = {severity: 0 for severity in SEVERITIES}
        for diagnostic in diagnostics:
            counts[diagnostic.severity] = counts.get(diagnostic.severity,
                                                     0) + 1
        BUS.end("analysis.lint", "analysis", files=len(files),
                diagnostics=len(diagnostics), **counts)
    return diagnostics


def load_baseline(path: str) -> List[str]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return list(data.get("fingerprints", []))


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="symlint: static checks for HL programs (.hl/.rkt) "
                    "and SYNTHCL host programs (.py).")
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories to lint")
    parser.add_argument("--fail-on-new", action="store_true",
                        help="exit 1 on any diagnostic not in the baseline "
                             "(without a baseline: on any diagnostic at all)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="accepted-findings file (JSON) for --fail-on-new")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="record current findings as the baseline")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-diagnostic output")
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.severity:<8} {rule.summary}")
        return 0
    if not options.paths:
        parser.error("no paths given (or use --list-rules)")

    diagnostics = lint_paths(options.paths)
    diagnostics.sort(key=lambda d: (d.filename or "",
                                    d.span.line if d.span else 0,
                                    d.span.col if d.span else 0, d.rule))
    if not options.quiet:
        for diagnostic in diagnostics:
            print(diagnostic.format())

    if options.write_baseline:
        payload = {"fingerprints": sorted({d.fingerprint()
                                           for d in diagnostics})}
        with open(options.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    counts = {severity: sum(1 for d in diagnostics
                            if d.severity == severity)
              for severity in SEVERITIES}
    summary = ", ".join(f"{counts[s]} {s}{'s' if counts[s] != 1 else ''}"
                        for s in SEVERITIES)
    print(f"symlint: {len(diagnostics)} finding"
          f"{'s' if len(diagnostics) != 1 else ''} ({summary})")

    if options.fail_on_new:
        known = set()
        if options.baseline and os.path.exists(options.baseline):
            known = set(load_baseline(options.baseline))
        new = [d for d in diagnostics if d.fingerprint() not in known]
        if new:
            print(f"symlint: {len(new)} finding"
                  f"{'s' if len(new) != 1 else ''} not in baseline",
                  file=sys.stderr)
            return 1
        return 0
    return 1 if counts[ERROR] else 0


if __name__ == "__main__":
    sys.exit(main())
