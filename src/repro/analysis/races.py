"""Static data-race pre-detector for SYNTHCL kernel launches.

The dynamic machinery in :class:`repro.sdsl.synthcl.runtime.CLRuntime`
emits one solver obligation per (write, access) pair of distinct work
items touching the same buffer. Most of those pairs are trivially
disjoint — work item *g* writing cell *g* never collides with work item
*g'* writing cell *g'* — and asserting them just bloats every later
query with tautologies.

This module classifies each pairwise obligation *before* anything is
asserted, cheapest evidence first:

1. **concrete** — both indices are Python ints (or fold to constants
   through ``ops.num_eq``): compare them.
2. **linear** — the equality survives as a term, but the *difference* of
   the two index terms folds to a constant through the term layer's
   linear normal form (``i+2`` vs ``i+5`` → ``3`` → disjoint), a
   relational fact the non-relational domains cannot see.
3. **abstract** — the equality's three-valued verdict under the
   known-bits × interval analysis (:func:`repro.analysis.absint.bool3_of`)
   decides it (e.g. an even-index writer vs an odd-index writer).
4. **dynamic** — none of the above: fall back to the existing machinery
   (a path-guarded assertion, solved like any other).

Verdicts are sound in both directions: ``disjoint`` means *no*
assignment collides (the obligation is discharged with zero solver
work), ``overlap`` means *every* assignment collides (a definite race).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs.events import BUS
from repro.smt import terms as T
from repro.sym import ops
from repro.sym.values import bool_term
from repro.analysis.absint import bool3_of
from repro.analysis.domains import BFALSE, BTRUE

#: Pairwise verdicts.
DISJOINT = "disjoint"
OVERLAP = "overlap"
UNKNOWN = "unknown"


@dataclass
class RaceCheck:
    """One pairwise write-vs-access obligation and its static verdict."""

    buffer: str
    item_a: int
    item_b: int
    verdict: str            #: DISJOINT | OVERLAP | UNKNOWN
    reason: str             #: "concrete" | "fold" | "linear" | "abstract"
    #                          | "dynamic"

    def row(self) -> dict:
        return {"buffer": self.buffer, "items": (self.item_a, self.item_b),
                "verdict": self.verdict, "reason": self.reason}


@dataclass
class RaceReport:
    """Classification summary for one kernel launch."""

    checks: List[RaceCheck] = field(default_factory=list)

    @property
    def pairs(self) -> int:
        return len(self.checks)

    @property
    def discharged(self) -> int:
        """Obligations proven disjoint statically — zero solver work."""
        return sum(1 for c in self.checks if c.verdict == DISJOINT)

    @property
    def overlaps(self) -> int:
        return sum(1 for c in self.checks if c.verdict == OVERLAP)

    @property
    def residual(self) -> int:
        """Obligations left to the dynamic (solver-backed) machinery."""
        return sum(1 for c in self.checks if c.verdict == UNKNOWN)

    def first_overlap(self) -> Optional[RaceCheck]:
        for check in self.checks:
            if check.verdict == OVERLAP:
                return check
        return None

    def row(self) -> dict:
        return {"pairs": self.pairs, "discharged": self.discharged,
                "overlaps": self.overlaps, "residual": self.residual}


def classify_index_pair(idx_a, idx_b) -> Tuple[str, str]:
    """Statically compare two buffer indices: (verdict, evidence tier).

    Accepts Python ints and :class:`~repro.sym.values.SymInt` values —
    the same domain the dynamic race assertions handle.
    """
    equal = ops.num_eq(idx_a, idx_b)
    if isinstance(equal, bool):
        return (OVERLAP if equal else DISJOINT), "concrete"
    term = bool_term(equal)
    if term is T.TRUE:
        return OVERLAP, "fold"
    if term is T.FALSE:
        return DISJOINT, "fold"
    if term.op == T.OP_EQ and term.args[0].sort is T.BV:
        # The linear normal form of the difference folds syntactically
        # related indices (i+2 vs i+5) that both abstract to ⊤.
        diff = T.mk_sub(term.args[0], term.args[1])
        if diff.is_const:
            verdict = OVERLAP if diff.const_value() == 0 else DISJOINT
            return verdict, "linear"
    verdict = bool3_of(term)
    if verdict is BFALSE:
        return DISJOINT, "abstract"
    if verdict is BTRUE:
        return OVERLAP, "abstract"
    return UNKNOWN, "dynamic"


def classify_launch(items) -> Tuple[RaceReport, List[Tuple[RaceCheck, object]]]:
    """Classify every pairwise obligation of a finished launch.

    `items` are the launch's :class:`WorkItemContext`\\ s (duck-typed:
    ``global_id`` and an ``accesses`` log of ``(buffer, index,
    is_write)``). Returns the report plus the *residual* obligations —
    ``(check, distinct_condition)`` pairs the caller must still assert —
    where ``distinct_condition`` is the symbolic ``idx_a != idx_b``.
    """
    report = RaceReport()
    residual: List[Tuple[RaceCheck, object]] = []
    for i, item_a in enumerate(items):
        writes_a = [(buf, idx) for buf, idx, is_write in item_a.accesses
                    if is_write]
        if not writes_a:
            continue
        for item_b in items[i + 1:]:
            for buf_a, idx_a in writes_a:
                for buf_b, idx_b, _ in item_b.accesses:
                    if buf_a != buf_b:
                        continue
                    verdict, reason = classify_index_pair(idx_a, idx_b)
                    check = RaceCheck(buf_a, item_a.global_id,
                                      item_b.global_id, verdict, reason)
                    report.checks.append(check)
                    if verdict == UNKNOWN:
                        residual.append(
                            (check, ops.not_(ops.num_eq(idx_a, idx_b))))
    if BUS.enabled:
        BUS.instant("analysis.race", "analysis", **report.row())
    return report, residual
