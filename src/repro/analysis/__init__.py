"""Static analysis for the SVM: abstract interpretation and `symlint`.

Two cooperating layers sharing one dataflow core:

- **Layer 1 — term-DAG abstract interpretation** (:mod:`domains`,
  :mod:`absint`, :mod:`sanitize`): a reduced-product fixpoint engine over
  :mod:`repro.smt.terms` with *known-bits* and *unsigned-interval*
  domains. It powers :func:`sanitize`, the pre-solver formula pass that
  rewrites provably-constant subterms, narrows statically-decided ``ite``
  chains, and flags provably-false assertions before any SAT work — the
  LART-style "analyse and transform before symbolic computation" layer.
- **Layer 2 — symlint** (:mod:`lint`): a rule-based diagnostics engine
  over HL ASTs and SynthCL kernels with structured
  :class:`~repro.analysis.lint.Diagnostic` records carrying source spans,
  plus a ``python -m repro.analysis.lint`` CLI. The static data-race
  pre-detector for SynthCL (:mod:`races`) reuses Layer 1 to discharge
  disjoint-write obligations without the solver.

Everything here is *advisory or equivalence-preserving*: the sanitizer
only applies rewrites the abstract semantics proves valid for every
assignment, and in certify mode each rewrite is additionally cross-checked
on concretizations (trust-but-verify, like :mod:`repro.solver.certify`).
"""

from repro.analysis.absint import AbstractError, analyze_term, bool3_of, value_of
from repro.analysis.domains import (
    BFALSE,
    BTOP,
    BTRUE,
    AbsVal,
    Interval,
    KnownBits,
)
from repro.analysis.sanitize import SanitizeStats, sanitize, sanitize_assertion

# Layer 2 lives *above* the language layers it inspects (lint imports the
# HL reader; races imports repro.sym), while this package is imported
# from *inside* repro.smt.solver — so the Layer-2 names resolve lazily.
_LAYER2 = {
    "Diagnostic": "lint", "lint_file": "lint", "lint_hl_source": "lint",
    "lint_paths": "lint", "lint_python_source": "lint",
    "RaceCheck": "races", "RaceReport": "races", "classify_launch": "races",
}


def __getattr__(name: str):
    module_name = _LAYER2.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value

__all__ = [
    "AbsVal", "KnownBits", "Interval", "BTRUE", "BFALSE", "BTOP",
    "AbstractError", "analyze_term", "bool3_of", "value_of",
    "SanitizeStats", "sanitize", "sanitize_assertion",
    "Diagnostic", "lint_file", "lint_hl_source", "lint_paths",
    "lint_python_source",
    "RaceCheck", "RaceReport", "classify_launch",
]
