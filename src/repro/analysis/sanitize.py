"""The formula sanitizer: equivalence-preserving pre-solver rewrites.

:func:`sanitize` runs one abstract-interpretation pass
(:func:`repro.analysis.absint.analyze_term`) over a formula and rebuilds
it bottom-up, replacing every subterm whose abstraction is a *singleton*
with the corresponding constant. Because replacement happens through the
ordinary ``mk_*`` constructors, each planted constant cascades: a decided
``ite`` guard collapses the ``ite`` to one branch, a folded comparison
shrinks the boolean skeleton above it, and a whole assertion can reduce
to ``true`` (drop it) or ``false`` (the query is UNSAT before any SAT
work).

Soundness is by construction — a singleton abstraction means *every*
assignment gives the subterm that value, so swapping in the constant
preserves equivalence node-for-node — and, in certify mode, by test:
every rewritten root is re-evaluated against its original on concrete
assignments (exhaustively when the variable space is ≤ 2^12, on seeded
random samples otherwise) and a mismatch raises
:class:`~repro.solver.certify.CertificationError`. Downstream, answers
from a sanitizing solver still certify against the *original* assertions
(``SmtSolver`` keeps them), so the trust-but-verify chain of PR 4 extends
through this pass unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.events import BUS
from repro.smt import terms as T
from repro.analysis.absint import AbstractValue, analyze_term
from repro.analysis.domains import BFALSE, BTRUE, AbsVal

#: Exhaustive certify cross-check up to this many total variable bits
#: (2^12 = 4096 evaluations); larger spaces fall back to sampling.
EXHAUSTIVE_BITS = 12

#: Random concretizations per root when sampling.
SAMPLE_COUNT = 32


@dataclass
class SanitizeStats:
    """Counters for one or more sanitizer runs (accumulating)."""

    terms: int = 0               #: roots sanitized
    nodes: int = 0               #: DAG nodes analyzed
    rewrites: int = 0            #: subterms replaced by constants
    guards_decided: int = 0      #: ite guards statically decided
    comparisons_folded: int = 0  #: comparisons/equalities decided
    proved_true: int = 0         #: assertions reduced to `true`
    proved_false: int = 0        #: assertions reduced to `false`
    certified: int = 0           #: concrete cross-check evaluations

    def merge(self, other: "SanitizeStats") -> None:
        self.terms += other.terms
        self.nodes += other.nodes
        self.rewrites += other.rewrites
        self.guards_decided += other.guards_decided
        self.comparisons_folded += other.comparisons_folded
        self.proved_true += other.proved_true
        self.proved_false += other.proved_false
        self.certified += other.certified

    def row(self) -> Dict[str, int]:
        return {
            "terms": self.terms,
            "nodes": self.nodes,
            "rewrites": self.rewrites,
            "guards_decided": self.guards_decided,
            "comparisons_folded": self.comparisons_folded,
            "proved_true": self.proved_true,
            "proved_false": self.proved_false,
            "certified": self.certified,
        }


_CMP_OPS = frozenset((T.OP_EQ, T.OP_ULT, T.OP_ULE, T.OP_SLT, T.OP_SLE))


def _singleton_const(node: T.Term, value: AbstractValue) -> Optional[T.Term]:
    """The constant term for a singleton abstraction, else None."""
    if isinstance(value, AbsVal):
        if value.is_const():
            return T.bv_const(value.value(), node.width)
        return None
    if value is BTRUE:
        return T.TRUE
    if value is BFALSE:
        return T.FALSE
    return None


def sanitize(term: T.Term, *, certify: bool = False,
             rng: Optional[random.Random] = None,
             stats: Optional[SanitizeStats] = None) -> T.Term:
    """Rewrite `term` to an equivalent, no-larger formula.

    Pure with respect to the term DAG (interned terms are immutable);
    accumulates into `stats` when given. With ``certify=True`` every
    change is cross-checked on concrete assignments and a divergence
    raises ``CertificationError`` — the sanitizer analogue of PR 4's
    proof/model checks.
    """
    stats = stats if stats is not None else SanitizeStats()
    bus = BUS
    if bus.enabled:
        bus.begin("analysis.sanitize", "analysis", nodes=T.term_size(term))
    before = stats.row()
    result = None
    try:
        result = _sanitize_root(term, stats)
        if certify and result is not term:
            _cross_check(term, result, rng, stats)
        return result
    finally:
        if bus.enabled:
            delta = {key: value - before[key]
                     for key, value in stats.row().items()}
            bus.end("analysis.sanitize", "analysis",
                    changed=result is not None and result is not term,
                    **delta)


def _sanitize_root(term: T.Term, stats: SanitizeStats) -> T.Term:
    abstract = analyze_term(term)
    rebuild = T._rebuilders()
    out: Dict[T.Term, T.Term] = {}
    stats.terms += 1
    for node in T.postorder(term):
        stats.nodes += 1
        if node.is_const or node.is_var:
            out[node] = node
            continue
        replacement = _singleton_const(node, abstract[node])
        if replacement is not None:
            if replacement is not node:
                stats.rewrites += 1
                if node.op in _CMP_OPS:
                    stats.comparisons_folded += 1
            out[node] = replacement
            continue
        if node.op == T.OP_ITE and \
                abstract[node.args[0]] in (BTRUE, BFALSE):
            # The guard is decided but the surviving branch is not a
            # singleton: collapse to the branch directly.
            stats.guards_decided += 1
            branch = node.args[1 if abstract[node.args[0]] is BTRUE
                               else 2]
            out[node] = out[branch]
            stats.rewrites += 1
            continue
        new_args = tuple(out[arg] for arg in node.args)
        if all(new is old for new, old in zip(new_args, node.args)):
            out[node] = node
        else:
            rebuilt = rebuild[node.op](node, new_args)
            out[node] = rebuilt
            if rebuilt is not node:
                stats.rewrites += 1
    return out[term]


def sanitize_assertion(term: T.Term, *, certify: bool = False,
                       rng: Optional[random.Random] = None,
                       stats: Optional[SanitizeStats] = None) -> T.Term:
    """Sanitize an asserted formula and record proved-constant verdicts."""
    stats = stats if stats is not None else SanitizeStats()
    result = sanitize(term, certify=certify, rng=rng, stats=stats)
    if result is T.TRUE and term is not T.TRUE:
        stats.proved_true += 1
    elif result is T.FALSE and term is not T.FALSE:
        stats.proved_false += 1
        if BUS.enabled:
            BUS.instant("analysis.sanitize", "analysis",
                        proved_false=True, term=T.to_sexpr(term, max_depth=4))
    return result


def _cross_check(original: T.Term, rewritten: T.Term,
                 rng: Optional[random.Random],
                 stats: SanitizeStats) -> None:
    """Assert old == new on concrete assignments (certify mode)."""
    from repro.solver.certify import CertificationError

    variables = T.term_vars(original)
    total_bits = sum(max(1, var.width) for var in variables)
    assignments = []
    if total_bits <= EXHAUSTIVE_BITS:
        assignments = list(_all_assignments(variables))
    else:
        rng = rng or random.Random(0xA11A5)
        for _ in range(SAMPLE_COUNT):
            env = {}
            for var in variables:
                if var.sort is T.BOOL:
                    env[var] = bool(rng.getrandbits(1))
                else:
                    env[var] = rng.getrandbits(var.width)
            assignments.append(env)
    for env in assignments:
        stats.certified += 1
        old_val = T.evaluate(original, env)
        new_val = T.evaluate(rewritten, env)
        if old_val != new_val:
            raise CertificationError(
                "sanitize",
                f"rewrite changed the formula's value under {env!r}: "
                f"{old_val!r} became {new_val!r} "
                f"(original {original!r}, rewritten {rewritten!r})")


def _all_assignments(variables):
    """Every assignment over a small variable space."""
    if not variables:
        yield {}
        return
    head, tail = variables[0], variables[1:]
    if head.sort is T.BOOL:
        values = (False, True)
    else:
        values = range(1 << head.width)
    for rest in _all_assignments(tail):
        for value in values:
            env = dict(rest)
            env[head] = value
            yield env
