"""Table 2 (WEBSYNTH query bounds) and the WEBSYNTH rows of Table 4.

Each benchmark synthesizes an XPath for a synthetic page shaped like the
paper's three sites (iTunes / IMDb / AlAnon), from four examples each.
The defining Table 4 signature for these rows — large join counts, zero
unions, and sub-second solving — is asserted.

The default scale generates pages ~10–15% of the paper's node counts so
the suite stays fast; REPRO_BENCH_FULL=1 uses the paper's full shapes
(1104–2152 nodes, depth 10–22, 150–359 tokens).
"""

import pytest

from repro.sym import set_default_int_width
from repro.sdsl.websynth import (
    SITE_SPECS,
    concrete_matches,
    generate_site,
    synthesize_xpath,
    tree_depth,
    tree_size,
)
from repro.sdsl.websynth.xpath import token_vocabulary

from conftest import FULL

SCALE = 1.0 if FULL else 0.12


@pytest.mark.parametrize("spec", SITE_SPECS, ids=[s.name for s in SITE_SPECS])
def test_websynth_synthesis(benchmark, spec):
    set_default_int_width(16)
    root, truth, examples = generate_site(spec, scale=SCALE)

    def run():
        return synthesize_xpath(root, examples)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.stats
    print(f"\nTable 2 row: {spec.name:8s} nodes={tree_size(root):<6} "
          f"depth={tree_depth(root):<3} "
          f"tokens={len(token_vocabulary(root)):<4} "
          f"(paper: {spec.paper_nodes}/{spec.paper_depth}/{spec.paper_tokens})")
    print(f"Table 4 row: {spec.name}s joins={stats.joins:<8} "
          f"count={stats.unions_created:<4} sum={stats.union_cardinality_sum:<4} "
          f"SVM={stats.svm_seconds:6.2f}s solver={stats.solver_seconds:6.2f}s "
          f"-> {result.status}")
    assert result.status == "sat"
    # The paper's shape: many joins, ZERO unions, trivial solving time.
    assert stats.joins > 0
    assert stats.unions_created == 0
    got = concrete_matches(root, result.xpath)
    assert all(example in got for example in examples)
