#!/usr/bin/env python
"""CI tracing smoke: run one traced query per family, validate the traces.

Exercises the observability layer end to end the way a user would:

- a SYNTHCL verification sweep traced via the driver's ``trace=`` path;
- an IFCL EENI check traced the same way;
- a WEBSYNTH XPath synthesis traced via the ``REPRO_TRACE`` environment
  variable (the zero-code-change capture path);
- a SYNTHCL CEGIS synthesis, checking per-iteration spans appear.

Each JSONL trace must be non-empty, satisfy the structural invariants
(monotonic timestamps, LIFO span nesting), and convert to a Chrome
trace-event file that ``json.load`` accepts with ``ph``/``ts``/``pid``/
``tid`` on every event. The converted traces are left in the output
directory (default ``traces/``) for CI to archive. Exits non-zero on any
failure.
"""

import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import (  # noqa: E402
    check_trace_invariants,
    jsonl_to_chrome,
    load_jsonl_trace,
    reset_env_sink,
)
from repro.sym import set_default_int_width  # noqa: E402


def _validate(jsonl_path: Path, expect_names) -> list:
    rows = load_jsonl_trace(jsonl_path)
    assert rows, f"{jsonl_path}: trace is empty"
    check_trace_invariants(rows)
    names = {row["name"] for row in rows}
    for name in expect_names:
        assert name in names, \
            f"{jsonl_path}: expected a {name!r} event, saw {sorted(names)}"
    chrome_path = jsonl_path.with_suffix(".json")
    count = jsonl_to_chrome(jsonl_path, chrome_path)
    with open(chrome_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    events = payload["traceEvents"]
    assert len(events) == count == len(rows)
    for event in events:
        for key in ("ph", "ts", "pid", "tid"):
            assert key in event, f"{chrome_path}: event missing {key!r}"
    print(f"  {jsonl_path.name}: {len(rows)} events ok "
          f"({', '.join(sorted(names))})")
    return rows


def smoke_synthcl_verify(out_dir: Path) -> None:
    from repro.sdsl.synthcl.bench import run_benchmark
    # SF kernels branch on pixel coordinates, so the sweep produces VM
    # joins; the equalities still fold concretely (the refinement is
    # proven by term interning without a solver check), which is itself
    # worth seeing in a trace: query spans with no smt.check inside.
    print("synthcl verify sweep (SF1v, trace= path):")
    trace = out_dir / "synthcl_sf1v.jsonl"
    outcome = run_benchmark("SF1v", bounds=[(2, 2), (2, 3)],
                            trace=str(trace))
    assert outcome.status == "unsat", outcome.status
    rows = _validate(trace, ["query.verify", "vm.join"])
    joins = [r for r in rows if r["name"] == "vm.join"]
    assert all(j["args"].get("cardinality", 0) >= 2 for j in joins)


def smoke_synthcl_synthesize(out_dir: Path) -> None:
    from repro.sdsl.synthcl.bench import run_benchmark
    print("synthcl synthesis (FWT2s, cegis iterations):")
    trace = out_dir / "synthcl_fwt2s.jsonl"
    outcome = run_benchmark("FWT2s", trace=str(trace))
    assert outcome.status == "sat", outcome.status
    _validate(trace, ["query.synthesize", "cegis.iteration", "smt.check"])


def smoke_ifcl_verify(out_dir: Path) -> None:
    from repro.sdsl.ifcl import BUGGY_MACHINES
    from repro.sdsl.ifcl.verify import eeni_check
    print("ifcl EENI check (B2, trace= path):")
    trace = out_dir / "ifcl_b2.jsonl"
    result = eeni_check(BUGGY_MACHINES["B2"], 3, trace=str(trace))
    assert result.status == "insecure", result.status
    _validate(trace, ["query.verify", "smt.check", "vm.join", "vm.union"])


def smoke_websynth_env(out_dir: Path) -> None:
    from repro.sdsl.websynth import HtmlNode
    from repro.sdsl.websynth.synth import synthesize_xpath
    print("websynth synthesis (REPRO_TRACE environment capture):")
    page = HtmlNode("html", (
        HtmlNode("body", (
            HtmlNode("div", (HtmlNode("span", text="alpha"),
                             HtmlNode("span", text="beta"))),
            HtmlNode("div", (HtmlNode("p", text="noise"),
                             HtmlNode("span", text="gamma"))),
        )),
    ))
    trace = out_dir / "websynth_env.jsonl"
    set_default_int_width(16)
    os.environ["REPRO_TRACE"] = str(trace)
    try:
        result = synthesize_xpath(page, ["alpha", "beta", "gamma"])
    finally:
        del os.environ["REPRO_TRACE"]
        reset_env_sink()  # flush + detach so the file is complete
        set_default_int_width(32)
    assert result.status == "sat", result.status
    _validate(trace, ["query.solve", "smt.check", "smt.encode"])


def main() -> int:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "traces")
    out_dir.mkdir(parents=True, exist_ok=True)
    smoke_synthcl_verify(out_dir)
    smoke_synthcl_synthesize(out_dir)
    smoke_ifcl_verify(out_dir)
    smoke_websynth_env(out_dir)
    print(f"tracing smoke ok; artifacts in {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
