"""Figure 10: union-cardinality growth for B1v across verification bounds.

The paper executes the B1v benchmark with bounds 1..15 and plots the sum
of symbolic-union cardinalities against the number of control-flow joins,
fitting the slow-growing quadratic ``y = 3.1e-5 x² + 1.23x − 494`` with
R² = 0.9993 — the evidence that type-driven merging keeps state polynomial
despite exponentially many paths.

This benchmark regenerates the series. Only *evaluation* is measured (the
figure is about the SVM, not the solver), so it sweeps deep bounds
cheaply. The quadratic fit and its R² are computed with numpy and printed;
the assertions check the paper's qualitative claims: monotone growth and a
(near-)quadratic fit far below exponential growth.
"""

import math

import numpy as np
import pytest

from repro.sym import set_default_int_width
from repro.vm.context import VM
from repro.sdsl.ifcl import BUGGY_MACHINES, eeni_thunks

from conftest import FULL

MAX_BOUND = 15 if FULL else 10


def _evaluate_b1v(bound: int):
    """Run only the SVM evaluation of B1v at the given bound."""
    setup, check, _ = eeni_thunks(BUGGY_MACHINES["B1"], bound)
    with VM() as vm:
        vm.stats.start()
        setup()
        check()
        vm.stats.stop()
        return vm.stats


def test_fig10_union_growth(benchmark):
    set_default_int_width(5)

    def sweep():
        series = []
        for bound in range(1, MAX_BOUND + 1):
            stats = _evaluate_b1v(bound)
            series.append((stats.joins, stats.union_cardinality_sum))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    joins = np.array([j for j, _ in series], dtype=float)
    sums = np.array([s for _, s in series], dtype=float)

    print("\nFigure 10 series (bound, joins, sum of union cardinalities):")
    for bound, (j, s) in enumerate(series, start=1):
        print(f"  k={bound:<3} joins={j:<8} sum={s}")

    # Quadratic fit, as in the paper's y = ax^2 + bx + c.
    coeffs = np.polyfit(joins, sums, deg=2)
    fitted = np.polyval(coeffs, joins)
    ss_res = float(np.sum((sums - fitted) ** 2))
    ss_tot = float(np.sum((sums - np.mean(sums)) ** 2))
    r_squared = 1.0 - ss_res / ss_tot
    print(f"  fit: y = {coeffs[0]:.4g}x^2 + {coeffs[1]:.4g}x + {coeffs[2]:.4g}"
          f"   R^2 = {r_squared:.4f}"
          "   (paper: y = 3.122e-5x^2 + 1.2253x - 494.2, R^2 = 0.9993)")

    # The paper's claims: growth is monotone, and a quadratic fits nearly
    # perfectly — i.e. far from the exponential path count 2^joins.
    assert all(sums[i] < sums[i + 1] for i in range(len(sums) - 1))
    assert r_squared > 0.99
    # Sub-exponential: sum grows by a bounded factor per bound increment.
    ratios = sums[1:] / sums[:-1]
    assert max(ratios[2:]) < 3.0
