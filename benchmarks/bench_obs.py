#!/usr/bin/env python
"""Micro-benchmark guard: tracing *disabled* must cost (almost) nothing.

The observability layer's contract is that every instrumentation site is
a single ``BUS.enabled`` attribute check when no sink is subscribed. This
guard bounds the end-to-end cost of those checks on a real workload
without relying on flaky wall-clock A/B comparisons:

1. run a representative solve once with a counting sink subscribed, to
   learn how many times instrumentation sites actually fire (events
   emitted, plus the per-conflict milestone guard which runs even when
   no event results);
2. run it again with tracing disabled, timing the solve;
3. measure the cost of one disabled-path guard (`bus.enabled` attribute
   read + branch) with a tight loop;
4. assert   guard_cost × site_executions  <  2% × solve_time.

Step 3 deliberately over-counts (the loop includes its own overhead), so
the bound is conservative. Exits non-zero if the budget is blown.

Runnable directly (CI) or via pytest.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.events import BUS  # noqa: E402

OVERHEAD_BUDGET = 0.02  # fraction of solve wall time


def _workload():
    """A real query that exercises every site family: the bounded EENI
    verification of a leaky IFC machine (joins, unions, encode spans,
    checks, conflicts)."""
    from repro.sdsl.ifcl import BUGGY_MACHINES
    from repro.sdsl.ifcl.verify import eeni_check

    result = eeni_check(BUGGY_MACHINES["B2"], 3)
    assert result.status == "insecure", result.status
    return result


class _CountingSink:
    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def __call__(self, event):
        self.count += 1


def measure():
    # 1. Count site firings on an enabled run.
    sink = _CountingSink()
    unsubscribe = BUS.subscribe(sink)
    try:
        outcome = _workload()
    finally:
        unsubscribe()
    conflicts = outcome.stats.solver_conflicts
    # Every emitted event came from one guarded site; conflicts execute
    # the milestone guard each time but emit only every 1024th.
    site_executions = sink.count + conflicts

    # 2. Time the disabled run.
    assert not BUS.enabled
    started = time.perf_counter()
    _workload()
    solve_seconds = time.perf_counter() - started

    # 3. Cost of one disabled guard: attribute read + falsy branch.
    bus = BUS
    probes = 200_000
    started = time.perf_counter()
    acc = 0
    for _ in range(probes):
        if bus.enabled:
            acc += 1  # pragma: no cover - bus is disabled here
    guard_seconds = (time.perf_counter() - started) / probes
    assert acc == 0

    overhead = guard_seconds * site_executions
    fraction = overhead / solve_seconds
    print(f"sites fired: {site_executions} "
          f"({sink.count} events + {conflicts} conflict guards)")
    print(f"disabled solve: {solve_seconds * 1000:.1f} ms; "
          f"guard cost: {guard_seconds * 1e9:.0f} ns/site")
    print(f"estimated disabled-tracing overhead: {overhead * 1e6:.0f} µs "
          f"= {fraction * 100:.3f}% (budget {OVERHEAD_BUDGET * 100:.0f}%)")
    return fraction


def test_disabled_tracing_overhead():
    assert measure() < OVERHEAD_BUDGET


if __name__ == "__main__":
    sys.exit(0 if measure() < OVERHEAD_BUDGET else 1)
