"""Shared benchmark configuration.

Every benchmark prints the paper-style row(s) it regenerates (run pytest
with ``-s`` to see them inline; they are also summarized by
pytest-benchmark's own table). Expensive IFCL/deep-bound rows are included
only when ``REPRO_BENCH_FULL=1`` so that the default
``pytest benchmarks/ --benchmark-only`` completes on a laptop.
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"


def full_only(reason="set REPRO_BENCH_FULL=1 to include this row"):
    return pytest.mark.skipif(not FULL, reason=reason)


def pytest_addoption(parser):
    parser.addoption(
        "--budget-ms", type=int, default=None,
        help="wall-clock budget (ms) for the budgeted benchmark rows; "
             "defaults to a generous 60s so unbudgeted runs complete")
    parser.addoption(
        "--certify", action="store_true", default=False,
        help="include the trust-but-verify rows: the factoring sweep is "
             "re-run with certification on and the overhead ratio lands "
             "in BENCH_solver.json")
    parser.addoption(
        "--sanitize", action="store_true", default=False,
        help="include the formula-sanitizer rows: the guarded factoring "
             "family is run with the abstract-interpretation pre-pass off "
             "and on, and the CNF-clause reduction lands in "
             "BENCH_solver.json")


@pytest.fixture
def certify_enabled(request):
    if not request.config.getoption("--certify"):
        pytest.skip("pass --certify to include the certification rows")
    return True


@pytest.fixture
def sanitize_enabled(request):
    if not request.config.getoption("--sanitize"):
        pytest.skip("pass --sanitize to include the sanitizer rows")
    return True


@pytest.fixture
def budget_ms(request):
    value = request.config.getoption("--budget-ms")
    return 60_000 if value is None else value


@pytest.fixture(autouse=True)
def _fresh_names():
    from repro.sym.fresh import reset_fresh_names
    from repro.sym.values import UNION_COUNTERS
    reset_fresh_names()
    UNION_COUNTERS.reset()
    yield
