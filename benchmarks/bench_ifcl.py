"""Table 3 (IFCL query bounds) and the IFCL rows of Table 4.

Each benchmark runs the bounded EENI verifier for one buggy machine at its
minimal counterexample bound (the paper picks "the length of the known
counterexample for that benchmark"). The row printed matches Table 4's
columns: joins, union count, sum/max of cardinalities, SVM seconds and
solver seconds.

Paper bounds vs ours (instruction-set size is identical; sequence bounds
differ because our machines' minimal attacks differ — see EXPERIMENTS.md):

====  =====  ============  ==============================
id    #ops   paper bound   our bound
====  =====  ============  ==============================
B1v   7      3             5
B2v   7      3             3
B3v   7      5             7
B4v   7      7             3
J1v   8      6             5
J2v   8      4             5
CR1v  9      7             5
CR2v  9      8             8 (best effort; nested call)
CR3v  9      8             8 (best effort; nested call)
CR4v  9      10            5
====  =====  ============  ==============================
"""

import pytest

from repro.sym import set_default_int_width
from repro.sdsl.ifcl import BUGGY_MACHINES, CORRECT_MACHINES, eeni_check

from conftest import full_only

# (machine, our bound, paper's bound) — our bounds are the minimal
# counterexample lengths measured for our semantics.
BOUNDS = [
    ("B1", 5, 3),
    ("B2", 3, 3),
    ("B3", 7, 5),
    ("B4", 3, 7),
    ("J1", 5, 6),
    ("J2", 5, 4),
    ("CR1", 5, 7),
    ("CR2", 8, 8),
    ("CR3", 8, 8),
    ("CR4", 5, 10),
]

QUICK = {"B1", "B2", "B4", "J1", "J2", "CR1", "CR4"}

# Rows whose SAT search can exceed a laptop budget: they run with a
# conflict cap and may legitimately report `unknown` instead of a
# counterexample (the bug itself is separately confirmed by the one-rule
# unit tests in tests/sdsl/).
CAPPED = {"CR1", "CR4", "CR2", "CR3"}
_QUICK_CAP = 300_000


def _row(name: str, bound: int, result) -> str:
    stats = result.stats
    return (f"{name}v  joins={stats.joins:<7} count={stats.unions_created:<6} "
            f"sum={stats.union_cardinality_sum:<7} "
            f"max={stats.max_union_cardinality:<3} "
            f"SVM={stats.svm_seconds:6.2f}s  solver={stats.solver_seconds:6.2f}s "
            f"-> {result.status}")


@pytest.mark.parametrize("name,bound,paper_bound",
                         [b for b in BOUNDS if b[0] in QUICK])
def test_ifcl_verify(benchmark, name, bound, paper_bound):
    set_default_int_width(5)
    semantics = BUGGY_MACHINES[name]
    cap = _QUICK_CAP if name in CAPPED else None

    def run():
        return eeni_check(semantics, bound, max_conflicts=cap)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nTable 3/4 row:", _row(name, bound, result),
          f"(bound: ours={bound}, paper={paper_bound})")
    if name in CAPPED:
        assert result.status in ("insecure", "unknown"), \
            f"{name} must not verify as secure at bound {bound}"
    else:
        assert result.status == "insecure", \
            f"{name} must violate EENI at bound {bound}"


# CR2/CR3 need a *nested* call under a secret pc, so their minimal attacks
# sit at bound ≥ 8 — beyond this reproduction's single-core solve budget to
# confirm routinely. They run best-effort under REPRO_BENCH_FULL with a
# conflict cap; B3's bound-7 attack is confirmed and asserted.
BEST_EFFORT = {"CR2", "CR3"}


@pytest.mark.parametrize("name,bound,paper_bound",
                         [b for b in BOUNDS if b[0] not in QUICK])
@full_only()
def test_ifcl_verify_deep(benchmark, name, bound, paper_bound):
    set_default_int_width(5)
    semantics = BUGGY_MACHINES[name]
    cap = 2_000_000 if name in BEST_EFFORT else None

    def run():
        return eeni_check(semantics, bound, max_conflicts=cap)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nTable 3/4 row:", _row(name, bound, result),
          f"(bound: ours={bound}, paper={paper_bound})")
    if name in BEST_EFFORT:
        assert result.status in ("insecure", "unknown")
    else:
        assert result.status == "insecure"


@pytest.mark.parametrize("machine", ["basic", "jump", "cr"])
def test_ifcl_correct_machines_secure(benchmark, machine):
    """Sanity row: the unmutated machines satisfy bounded EENI."""
    set_default_int_width(5)
    semantics = CORRECT_MACHINES[machine]

    def run():
        return eeni_check(semantics, 3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncorrect-{machine}@3:", result.status)
    assert result.status == "secure"
