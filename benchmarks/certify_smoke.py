#!/usr/bin/env python
"""CI certification smoke: certified queries per family, plus chaos.

Exercises trust-but-verify mode end to end the way a user would:

- a SYNTHCL CEGIS synthesis via the driver's ``certify=`` path — every
  guess and every counterexample check is certified;
- an IFCL EENI check (the certified-verify row: the insecurity witness's
  model is re-evaluated at the term level);
- a WEBSYNTH XPath synthesis certified via the ``REPRO_CERTIFY``
  environment variable (the zero-code-change path);
- a fault-localization ``debug`` query — the MaxSAT-style loop's UNSAT
  answers replay their DRUP proofs and the minimized core is re-proved on
  a fresh one-shot solver;
- the fault-injection suite: every chaos class must be caught.

Each query must report its expected status with at least one certified
check; a certifier that wrongly rejected a genuine answer would raise
``CertificationError`` and fail the script. Exits non-zero on any failure.
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sym import set_default_int_width  # noqa: E402


def _report(label, outcome, expect_status):
    stats = outcome.stats
    assert outcome.status == expect_status, \
        f"{label}: expected {expect_status}, got {outcome.status}"
    assert stats.certified_checks >= 1, \
        f"{label}: no certified checks recorded"
    assert stats.certified_checks == stats.solver_checks, \
        f"{label}: {stats.solver_checks} checks but only " \
        f"{stats.certified_checks} certified"
    print(f"  {label}: {outcome.status}, "
          f"{stats.certified_checks}/{stats.solver_checks} checks certified")


def smoke_synthcl_synthesize() -> None:
    from repro.sdsl.synthcl.bench import run_benchmark
    print("synthcl synthesis (FWT2s, certify= path):")
    _report("FWT2s", run_benchmark("FWT2s", certify=True), "sat")


def smoke_ifcl_verify() -> None:
    from repro.sdsl.ifcl import BUGGY_MACHINES
    from repro.sdsl.ifcl.verify import eeni_check
    print("ifcl EENI check (B2, certify= path):")
    result = eeni_check(BUGGY_MACHINES["B2"], 3, certify=True)
    assert result.status == "insecure", result.status
    stats = result.stats
    assert stats.certified_checks >= 1, "ifcl: no certified checks"
    print(f"  B2: insecure, "
          f"{stats.certified_checks}/{stats.solver_checks} checks certified")


def smoke_websynth_env() -> None:
    from repro.sdsl.websynth import HtmlNode
    from repro.sdsl.websynth.synth import synthesize_xpath
    print("websynth synthesis (REPRO_CERTIFY environment knob):")
    page = HtmlNode("html", (
        HtmlNode("body", (
            HtmlNode("div", (HtmlNode("span", text="alpha"),
                             HtmlNode("span", text="beta"))),
            HtmlNode("div", (HtmlNode("p", text="noise"),
                             HtmlNode("span", text="gamma"))),
        )),
    ))
    set_default_int_width(16)
    os.environ["REPRO_CERTIFY"] = "1"
    try:
        result = synthesize_xpath(page, ["alpha", "beta", "gamma"])
    finally:
        del os.environ["REPRO_CERTIFY"]
        set_default_int_width(32)
    _report("xpath", result, "sat")


def smoke_debug_query() -> None:
    from repro.queries.debug import debug, relax
    from repro.smt import terms as T
    from repro.sym.values import SymInt
    from repro.vm.context import assert_
    print("debug query (certify= path):")

    def thunk():
        x = relax(SymInt(T.bv_var("smoke_dbg", 8)), "x")
        y = relax(x + 1, "x+1")
        assert_(y == 0)
        assert_(x == 7)

    outcome = debug(thunk, certify=True)
    assert outcome.status == "sat", outcome.status
    assert outcome.core, "debug: empty blame core"
    assert outcome.stats.certified_checks >= 2, \
        "debug: expected the relaxation loop to certify several checks"
    print(f"  blame core {sorted(outcome.core)}, "
          f"{outcome.stats.certified_checks}/{outcome.stats.solver_checks} "
          f"checks certified")


def smoke_chaos(seed: int) -> None:
    from repro.solver.chaos import run_chaos
    print(f"fault injection (seed {seed}):")
    outcomes = run_chaos(seed=seed)
    for outcome in outcomes:
        status = "caught" if outcome.caught else "MISSED"
        print(f"  {outcome.fault:<24} {status}")
    missed = [o.fault for o in outcomes if not o.caught]
    assert not missed, f"certifiers accepted injected faults: {missed}"
    assert len(outcomes) >= 6, "chaos taxonomy shrank below six classes"


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    smoke_synthcl_synthesize()
    smoke_ifcl_verify()
    smoke_websynth_env()
    smoke_debug_query()
    smoke_chaos(seed)
    print("certification smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
