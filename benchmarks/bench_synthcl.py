"""Table 1 (SYNTHCL query bounds) and the SYNTHCL rows of Table 4.

Verification rows (MM*v, SF*v, FWT*v) check a refinement against the
reference on every symbolic input within bounds and must come back
``unsat`` with **zero unions** — the paper's signature for these rows
("the operations on these complex data types were all evaluated
concretely"). Synthesis rows (MM2s, SF*s, FWT*s) complete sketches by
CEGIS and do create unions (procedure-choice holes, rule AP2).

Bounds are scaled from Table 1 (see the module table below and
EXPERIMENTS.md); pass REPRO_BENCH_FULL=1 for larger sweeps.
"""

import pytest

from repro.sym import set_default_int_width
from repro.sdsl.synthcl import SYNTHCL_BENCHMARKS, run_benchmark

from conftest import FULL

VERIFY_IDS = ["MM1v", "MM2v", "SF1v", "SF2v", "SF3v", "SF4v", "SF5v",
              "SF6v", "SF7v", "FWT1v", "FWT2v"]
SYNTH_IDS = ["MM2s", "SF3s", "FWT1s", "FWT2s"]
SYNTH_FULL_IDS = ["SF7s"]

FULL_BOUNDS = {
    "MM1v": [(n, p, m) for n in (2, 4) for p in (2, 4) for m in (2, 4)],
    "MM2v": [(n, p, m) for n in (2, 4) for p in (2, 4) for m in (2, 4)],
    "FWT1v": [0, 1, 2, 3, 4],
    "FWT2v": [0, 1, 2, 3, 4],
}


def _print_row(name, outcome):
    stats = outcome.stats
    bench = SYNTHCL_BENCHMARKS[name]
    print(f"\nTable 1/4 row: {name:6s} joins={stats.joins:<8} "
          f"count={stats.unions_created:<6} "
          f"sum={stats.union_cardinality_sum:<7} "
          f"max={stats.max_union_cardinality:<4} "
          f"SVM={stats.svm_seconds:6.2f}s solver={stats.solver_seconds:6.2f}s "
          f"-> {outcome.status}   "
          f"(paper bounds: {bench.paper_bounds})")


@pytest.mark.parametrize("name", VERIFY_IDS)
def test_synthcl_verification(benchmark, name):
    set_default_int_width(8)
    bounds = FULL_BOUNDS.get(name) if FULL else None

    def run():
        return run_benchmark(name, bounds=bounds)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_row(name, outcome)
    assert outcome.status == "unsat", f"{name}: refinement must verify"
    # Table 4: all SYNTHCL verification rows have zero unions.
    assert outcome.stats.unions_created == 0


@pytest.mark.parametrize("name", SYNTH_IDS)
def test_synthcl_synthesis(benchmark, name):
    set_default_int_width(8)

    def run():
        return run_benchmark(name)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_row(name, outcome)
    assert outcome.status == "sat", f"{name}: sketch must be completable"
    # Table 4: unions are used most heavily by SYNTHCL synthesis queries.
    assert outcome.stats.unions_created > 0


@pytest.mark.parametrize("name", SYNTH_FULL_IDS)
@pytest.mark.skipif(not FULL, reason="set REPRO_BENCH_FULL=1")
def test_synthcl_synthesis_deep(benchmark, name):
    set_default_int_width(8)

    def run():
        return run_benchmark(name)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_row(name, outcome)
    assert outcome.status == "sat"
