"""Ablation: what does type-driven merging buy? (DESIGN.md experiment A1)

Three head-to-head comparisons on identical workloads, isolating the two
design decisions of §4:

1. **merging vs. path enumeration** — the number of solver problems a
   symbolic-execution engine creates grows with the path count, while the
   SVM produces one encoding;
2. **type-driven vs. logical-only merging** — disabling structural merging
   (the BMC-style baseline) inflates union cardinalities from O(n) to
   O(paths) on list-manipulating code and on the IFCL machine;
3. **concrete evaluation** — the WEBSYNTH interpreter under the SVM keeps
   every union away (all structure concrete), which no merging at all can
   match.
"""

import pytest

from repro.baselines import SymbolicExecutor, run_with_logical_merging
from repro.sym import fresh_int, ops, set_default_int_width
from repro.sym.merge import merge_strategy
from repro.vm import builtins as B
from repro.vm.context import VM, current


def rev_pos(xs):
    ps = ()
    for x in xs:
        ps = current().branch(ops.gt(x, 0),
                              lambda x=x, ps=ps: B.cons(x, ps),
                              lambda ps=ps: ps)
    return ps


def test_merge_strategy_on_lists(benchmark):
    set_default_int_width(8)
    size = 6

    def program():
        xs = tuple(fresh_int("x") for _ in range(size))
        return rev_pos(xs)

    def compare():
        with VM() as typed_vm:
            typed_vm.stats.start()
            typed = program()
            typed_vm.stats.stop()
        logical_vm, logical, _ = run_with_logical_merging(program)
        return (typed_vm.stats, len(typed),
                logical_vm.stats, len(logical))

    typed_stats, typed_card, logical_stats, logical_card = \
        benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nA1.2 revPos(n={size}): type-driven union={typed_card} "
          f"(sum {typed_stats.union_cardinality_sum}) vs "
          f"logical-only union={logical_card} "
          f"(sum {logical_stats.union_cardinality_sum})")
    assert typed_card == size + 1           # Fig. 6: linear
    assert logical_card > typed_card        # path-proportional
    assert logical_stats.union_cardinality_sum > \
        typed_stats.union_cardinality_sum


def test_merge_strategy_on_ifcl(benchmark):
    """The IFCL machine state under both strategies (3 steps)."""
    from repro.sdsl.ifcl import BUGGY_MACHINES, eeni_thunks
    set_default_int_width(5)
    bound = 3

    def evaluate():
        setup, check, _ = eeni_thunks(BUGGY_MACHINES["B1"], bound)
        with VM() as vm:
            vm.stats.start()
            setup()
            check()
            vm.stats.stop()
        return vm.stats

    def compare():
        typed = evaluate()
        with merge_strategy("logical"):
            logical = evaluate()
        return typed, logical

    typed, logical = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nA1.2 IFCL B1@{bound}: type-driven sum="
          f"{typed.union_cardinality_sum} max={typed.max_union_cardinality} "
          f"vs logical-only sum={logical.union_cardinality_sum} "
          f"max={logical.max_union_cardinality}")
    assert logical.union_cardinality_sum > typed.union_cardinality_sum


def test_path_explosion_vs_single_encoding(benchmark):
    set_default_int_width(8)

    def compare():
        rows = []
        for size in (3, 5, 7):
            def program(size=size):
                xs = tuple(fresh_int("x") for _ in range(size))
                return rev_pos(xs)
            executor = SymbolicExecutor()
            paths = sum(1 for _ in executor.explore(program))
            with VM() as vm:
                program()
            rows.append((size, paths, vm.stats.joins))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nA1.1 path explosion (n, symex paths, SVM joins):")
    for size, paths, joins in rows:
        print(f"  n={size}: paths={paths} vs joins={joins}")
        assert paths == 2 ** size
        assert joins == size               # linear in program size


def test_concrete_evaluation_strips_host_constructs(benchmark):
    """WEBSYNTH under the SVM: zero unions regardless of tree size."""
    from repro.sdsl.websynth import SITE_SPECS, generate_site, synthesize_xpath
    set_default_int_width(16)

    def run():
        root, _, examples = generate_site(SITE_SPECS[0], scale=0.1)
        return synthesize_xpath(root, examples)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nA1.3 websynth: joins={result.stats.joins}, "
          f"unions={result.stats.unions_created} (all structure concrete)")
    assert result.stats.unions_created == 0
