"""Microbenchmarks for the solver substrate itself.

Not a paper artifact — but the paper's Z3 column implicitly benchmarks its
backend, and ours is home-grown, so its scaling behaviour is worth pinning:

- unit-propagation throughput on long implication chains;
- CDCL on small pigeonhole instances (the classic resolution-hard family);
- bit-blasting + solving a multiplier equation (the heaviest circuit the
  SDSLs generate).
"""

import pytest

from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.solver.sat import SatResult, SatSolver


def test_propagation_chain(benchmark):
    """A 20k-variable implication chain solved by pure propagation."""
    def run():
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(20_000)]
        for a, b in zip(variables, variables[1:]):
            solver.add_clause([-a, b])
        solver.add_clause([variables[0]])
        assert solver.solve() is SatResult.SAT
        return solver.num_propagations

    propagations = benchmark.pedantic(run, rounds=1, iterations=1)
    assert propagations >= 19_999


@pytest.mark.parametrize("holes", [5, 6])
def test_pigeonhole(benchmark, holes):
    """PHP(n+1, n): UNSAT, exponential for resolution — a CDCL stress test."""
    pigeons = holes + 1

    def run():
        solver = SatSolver()
        var = {(p, h): solver.new_var()
               for p in range(pigeons) for h in range(holes)}
        for p in range(pigeons):
            solver.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        return solver.solve()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result is SatResult.UNSAT


def test_multiplier_inversion(benchmark):
    """Factor 143 = 11 × 13 with an 8-bit multiplier circuit."""
    def run():
        x = T.bv_var("factor_x", 8)
        y = T.bv_var("factor_y", 8)
        solver = SmtSolver()
        solver.add_assertion(T.mk_eq(T.mk_mul(x, y), T.bv_const(143, 8)))
        solver.add_assertion(T.mk_ult(T.bv_const(1, 8), x))
        solver.add_assertion(T.mk_ult(T.bv_const(1, 8), y))
        # Keep the product below 2^8 so the equation is non-modular.
        solver.add_assertion(T.mk_ult(x, T.bv_const(16, 8)))
        solver.add_assertion(T.mk_ult(y, T.bv_const(16, 8)))
        assert solver.check() is SmtResult.SAT
        model = solver.model([x, y])
        return model[x] * model[y]

    product = benchmark.pedantic(run, rounds=1, iterations=1)
    assert product == 143
