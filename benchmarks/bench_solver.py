"""Microbenchmarks for the solver substrate itself.

Not a paper artifact — but the paper's Z3 column implicitly benchmarks its
backend, and ours is home-grown, so its scaling behaviour is worth pinning:

- unit-propagation throughput on long implication chains;
- CDCL on small pigeonhole instances (the classic resolution-hard family);
- bit-blasting + solving a multiplier equation (the heaviest circuit the
  SDSLs generate);
- incremental solving: scoped (push/pop) query sequences against a shared
  circuit vs. fresh one-shot solvers, and a CEGIS synthesis loop — both
  print encode-cache and per-check solver statistics, the counters that
  prove iterative queries re-encode nothing they have already seen;
- the same incremental sweep under a wall-clock :class:`Budget`
  (``--budget-ms``), the resource-governance smoke row.

Besides the human-readable prints, every row lands in
``BENCH_solver.json`` (schema documented in EXPERIMENTS.md; location
overridable via ``REPRO_BENCH_JSON``) so CI can archive machine-readable
numbers.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.obs.events import BUS
from repro.obs.metrics import BusMetrics
from repro.smt import terms as T
from repro.smt.solver import SmtResult, SmtSolver
from repro.solver.budget import Budget
from repro.solver.sat import SatResult, SatSolver

_ROWS = []
_ACTIVE_METRICS = []


def _record_row(name, seconds, **fields):
    row = {"name": name, "seconds": seconds}
    row.update(fields)
    # Each row carries the observability snapshot of its test: encode-cache
    # hit rate, conflicts/check, budget trips, restart counts, and the
    # check-time histograms (schema documented in EXPERIMENTS.md).
    if _ACTIVE_METRICS:
        row["metrics"] = _ACTIVE_METRICS[-1].snapshot()
    _ROWS.append(row)
    return row


@pytest.fixture(autouse=True)
def _bench_metrics():
    """Aggregate bus events into a fresh metrics registry per test."""
    metrics = BusMetrics()
    unsubscribe = BUS.subscribe(metrics)
    _ACTIVE_METRICS.append(metrics)
    try:
        yield metrics
    finally:
        _ACTIVE_METRICS.pop()
        unsubscribe()


def _solver_fields(solver: SmtSolver) -> dict:
    return {
        "conflicts": solver.cumulative.conflicts,
        "decisions": solver.cumulative.decisions,
        "propagations": solver.cumulative.propagations,
        "learned": solver.cumulative.learned,
        "encode_hits": solver.blaster.cache_hits,
        "encode_misses": solver.blaster.cache_misses,
        "budget_trips": solver.cumulative.tripped,
    }


@pytest.fixture(scope="module", autouse=True)
def _bench_json_writer():
    """Write all recorded rows to BENCH_solver.json after the module runs."""
    _ROWS.clear()
    yield
    target = os.environ.get("REPRO_BENCH_JSON")
    path = Path(target) if target else \
        Path(__file__).resolve().parent.parent / "BENCH_solver.json"
    payload = {
        "schema": "bench_solver/v1",
        "generated_unix": time.time(),
        "rows": _ROWS,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {len(_ROWS)} row(s) to {path}")


def test_propagation_chain(benchmark):
    """A 20k-variable implication chain solved by pure propagation."""
    def run():
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(20_000)]
        for a, b in zip(variables, variables[1:]):
            solver.add_clause([-a, b])
        solver.add_clause([variables[0]])
        started = time.perf_counter()
        assert solver.solve() is SatResult.SAT
        _record_row("propagation_chain", time.perf_counter() - started,
                    propagations=solver.num_propagations)
        return solver.num_propagations

    propagations = benchmark.pedantic(run, rounds=1, iterations=1)
    assert propagations >= 19_999


@pytest.mark.parametrize("holes", [5, 6])
def test_pigeonhole(benchmark, holes):
    """PHP(n+1, n): UNSAT, exponential for resolution — a CDCL stress test."""
    pigeons = holes + 1

    def run():
        solver = SatSolver()
        var = {(p, h): solver.new_var()
               for p in range(pigeons) for h in range(holes)}
        for p in range(pigeons):
            solver.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        started = time.perf_counter()
        result = solver.solve()
        _record_row(f"pigeonhole_{pigeons}_{holes}",
                    time.perf_counter() - started,
                    conflicts=solver.num_conflicts,
                    learned=solver.num_learned)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result is SatResult.UNSAT


def test_multiplier_inversion(benchmark):
    """Factor 143 = 11 × 13 with an 8-bit multiplier circuit."""
    def run():
        started = time.perf_counter()
        x = T.bv_var("factor_x", 8)
        y = T.bv_var("factor_y", 8)
        solver = SmtSolver()
        solver.add_assertion(T.mk_eq(T.mk_mul(x, y), T.bv_const(143, 8)))
        solver.add_assertion(T.mk_ult(T.bv_const(1, 8), x))
        solver.add_assertion(T.mk_ult(T.bv_const(1, 8), y))
        # Keep the product below 2^8 so the equation is non-modular.
        solver.add_assertion(T.mk_ult(x, T.bv_const(16, 8)))
        solver.add_assertion(T.mk_ult(y, T.bv_const(16, 8)))
        assert solver.check() is SmtResult.SAT
        model = solver.model([x, y])
        _record_row("multiplier_inversion", time.perf_counter() - started,
                    **_solver_fields(solver))
        return model[x] * model[y]

    product = benchmark.pedantic(run, rounds=1, iterations=1)
    assert product == 143


WIDTH = 12
FACTOR_TARGETS = [7 * n for n in range(2, 40)]


def _factoring_scope(solver, x, y, product, target):
    """One scoped factoring query: is `target` a nontrivial product?"""
    solver.push()
    try:
        solver.add_assertion(T.mk_eq(product, T.bv_const(target, WIDTH)))
        solver.add_assertion(T.mk_ult(T.bv_const(1, WIDTH), x))
        solver.add_assertion(T.mk_ult(T.bv_const(1, WIDTH), y))
        return solver.check()
    finally:
        solver.pop()


def test_incremental_factoring(benchmark):
    """38 factoring queries via push/pop over one persistent multiplier.

    The multiplier circuit is bit-blasted once; each query only encodes
    its (tiny) equality against the target constant, and clauses learned
    while solving earlier targets keep pruning later ones. The one-shot
    variant of the same queries (fresh solver each time, the seed
    behaviour) re-encodes the multiplier 38×.
    """
    def run():
        started = time.perf_counter()
        x = T.bv_var("inc_bench_x", WIDTH)
        y = T.bv_var("inc_bench_y", WIDTH)
        solver = SmtSolver()
        product = T.mk_mul(x, y)
        sats = 0
        for target in FACTOR_TARGETS:
            if _factoring_scope(solver, x, y, product, target) is SmtResult.SAT:
                sats += 1
        # Asking an already-seen target again must re-encode *nothing*.
        misses_before_repeat = solver.blaster.cache_misses
        assert _factoring_scope(
            solver, x, y, product, FACTOR_TARGETS[0]) is SmtResult.SAT
        assert solver.blaster.cache_misses == misses_before_repeat
        print(f"\nincremental factoring: {sats}/{len(FACTOR_TARGETS)} sat, "
              f"encode_hits={solver.blaster.cache_hits} "
              f"encode_misses={solver.blaster.cache_misses} "
              f"conflicts={solver.cumulative.conflicts} "
              f"learned={solver.cumulative.learned}")
        _record_row("incremental_factoring", time.perf_counter() - started,
                    queries=len(FACTOR_TARGETS), sat=sats,
                    **_solver_fields(solver))
        return sats, solver.blaster.cache_hits

    sats, hits = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sats == len(FACTOR_TARGETS)
    assert hits > 0


def test_oneshot_factoring_baseline(benchmark):
    """The same 38 queries with a fresh solver each — the pre-incremental
    cost model, kept as the comparison row for the benchmark table."""
    def run():
        started = time.perf_counter()
        x = T.bv_var("one_bench_x", WIDTH)
        y = T.bv_var("one_bench_y", WIDTH)
        sats = 0
        conflicts = 0
        encode_misses = 0
        for target in FACTOR_TARGETS:
            solver = SmtSolver()
            solver.add_assertion(
                T.mk_eq(T.mk_mul(x, y), T.bv_const(target, WIDTH)))
            solver.add_assertion(T.mk_ult(T.bv_const(1, WIDTH), x))
            solver.add_assertion(T.mk_ult(T.bv_const(1, WIDTH), y))
            if solver.check() is SmtResult.SAT:
                sats += 1
            conflicts += solver.cumulative.conflicts
            encode_misses += solver.blaster.cache_misses
        _record_row("oneshot_factoring_baseline",
                    time.perf_counter() - started,
                    queries=len(FACTOR_TARGETS), sat=sats,
                    conflicts=conflicts, encode_misses=encode_misses)
        return sats

    sats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sats == len(FACTOR_TARGETS)


def test_budgeted_incremental_factoring(benchmark, budget_ms):
    """The incremental sweep under a wall-clock budget (``--budget-ms``).

    With the default (generous) budget every query completes; with a tight
    one the sweep degrades gracefully — once the shared budget trips, the
    remaining queries answer UNKNOWN immediately instead of hanging. The
    JSON row records the budget and its spend either way, which is the
    CI smoke check for the resource governor.
    """
    def run():
        started = time.perf_counter()
        budget = Budget(ms=budget_ms)
        x = T.bv_var("bud_bench_x", WIDTH)
        y = T.bv_var("bud_bench_y", WIDTH)
        solver = SmtSolver(budget=budget)
        product = T.mk_mul(x, y)
        sats = unknowns = 0
        for target in FACTOR_TARGETS:
            result = _factoring_scope(solver, x, y, product, target)
            if result is SmtResult.SAT:
                sats += 1
            elif result is SmtResult.UNKNOWN:
                unknowns += 1
        report = solver.last_report
        print(f"\nbudgeted factoring ({budget_ms}ms): "
              f"{sats} sat, {unknowns} unknown"
              + (f", tripped: {report.reason}" if report else ""))
        _record_row("budgeted_incremental_factoring",
                    time.perf_counter() - started,
                    queries=len(FACTOR_TARGETS), sat=sats, unknown=unknowns,
                    budget_ms=budget_ms,
                    budget_spent_conflicts=budget.spent_conflicts,
                    budget_spent_propagations=budget.spent_propagations,
                    budget_elapsed_seconds=budget.elapsed_seconds(),
                    tripped_reason=report.reason if report else None,
                    **_solver_fields(solver))
        return sats, unknowns

    sats, unknowns = benchmark.pedantic(run, rounds=1, iterations=1)
    # Every query is answered — some possibly by an honest UNKNOWN.
    assert sats + unknowns == len(FACTOR_TARGETS)


def test_certified_factoring_overhead(benchmark, certify_enabled):
    """The factoring sweep with trust-but-verify on (``--certify``).

    Runs the incremental sweep twice — plain, then with ``certify=True``
    (DRUP proof logging, every SAT answer's model re-checked clause by
    clause and re-evaluated at the term level, plus one UNSAT scope whose
    proof is replayed) — and records the overhead ratio. The design
    target is ≤1.3× with certification on; the assertion bound is looser
    because shared CI runners are noisy, but the measured ratio is in the
    JSON row for trend tracking.
    """
    def _sweep(certify, prefix):
        started = time.perf_counter()
        x = T.bv_var(f"{prefix}_x", WIDTH)
        y = T.bv_var(f"{prefix}_y", WIDTH)
        solver = SmtSolver(certify=certify)
        product = T.mk_mul(x, y)
        sats = 0
        for target in FACTOR_TARGETS:
            if _factoring_scope(solver, x, y, product, target) is SmtResult.SAT:
                sats += 1
        # One contradictory scope so the proof path is measured too.
        solver.push()
        try:
            solver.add_assertion(T.mk_eq(x, T.bv_const(2, WIDTH)))
            solver.add_assertion(T.mk_eq(x, T.bv_const(3, WIDTH)))
            assert solver.check() is SmtResult.UNSAT
        finally:
            solver.pop()
        return time.perf_counter() - started, sats, solver

    def run():
        plain_seconds, plain_sats, _ = _sweep(False, "cert_bench_plain")
        cert_seconds, cert_sats, solver = _sweep(True, "cert_bench_on")
        assert plain_sats == cert_sats == len(FACTOR_TARGETS)
        assert solver.cumulative.certified == len(FACTOR_TARGETS) + 1
        ratio = cert_seconds / plain_seconds if plain_seconds else float("inf")
        print(f"\ncertified factoring: plain {plain_seconds:.3f}s, "
              f"certified {cert_seconds:.3f}s, ratio {ratio:.2f}, "
              f"proof steps {proof_counts(solver)}")
        _record_row("certified_factoring_overhead", cert_seconds,
                    plain_seconds=plain_seconds,
                    overhead_ratio=ratio,
                    queries=len(FACTOR_TARGETS) + 1,
                    certified_checks=solver.cumulative.certified,
                    proof_steps=proof_counts(solver),
                    **_solver_fields(solver))
        return ratio

    def proof_counts(solver):
        return dict(solver.proof.counts()) if solver.proof else {}

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    # Generous bound for noisy shared runners; the 1.3× design target is
    # tracked via the recorded ratio, not asserted here.
    assert ratio < 3.0


def test_sanitized_factoring(benchmark, sanitize_enabled):
    """The factoring sweep through the formula sanitizer (``--sanitize``).

    Two families, each solved with the abstract-interpretation pre-pass
    off and on:

    - *guarded*: every assertion arrives wrapped in statically-true
      range guards (``(x & m) * (y & m) <= m*m``-shaped conjuncts, the
      bounds-check residue sketch-generated formulas carry). The
      interval domain proves each guard, so its masked-multiplier
      circuit never reaches the bit-blaster and the CNF shrinks — the
      row asserts ≥5% fewer clauses.
    - *plain*: the unguarded sweep, where sanitizing must be a no-op —
      the row asserts the clause count regresses by at most 2%.
    """
    def _guards(x, y, width):
        # (x & m) * (y & m) <= m*m is an interval tautology, but its
        # multiplier is real CNF work if it survives to the blaster.
        return [T.mk_ule(T.mk_mul(T.mk_bvand(x, T.bv_const(mask, width)),
                                  T.mk_bvand(y, T.bv_const(mask, width))),
                         T.bv_const(mask * mask, width))
                for mask in (0x3F, 0x1F)]

    def _sweep(analyze, guarded, prefix):
        started = time.perf_counter()
        x = T.bv_var(f"{prefix}_x", WIDTH)
        y = T.bv_var(f"{prefix}_y", WIDTH)
        sats = clauses = rewrites = 0
        for target in FACTOR_TARGETS:
            solver = SmtSolver(analyze=analyze)
            payload = [
                T.mk_eq(T.mk_mul(x, y), T.bv_const(target, WIDTH)),
                T.mk_ult(T.bv_const(1, WIDTH), x),
                T.mk_ult(T.bv_const(1, WIDTH), y),
            ]
            for term in payload:
                if guarded:
                    for guard in _guards(x, y, WIDTH):
                        term = T.mk_and(guard, term)
                solver.add_assertion(term)
            if solver.check() is SmtResult.SAT:
                sats += 1
            clauses += solver.sat.num_clauses
            rewrites += solver.sanitize_stats.rewrites
        return time.perf_counter() - started, sats, clauses, rewrites

    def run():
        results = {}
        for family, guarded in (("guarded", True), ("plain", False)):
            for analyze in (False, True):
                key = f"{family}_{'on' if analyze else 'off'}"
                results[key] = _sweep(analyze, guarded,
                                      f"san_{key}")
        for key in ("guarded_off", "plain_off", "plain_on"):
            assert results[key][3] == 0  # rewrites only with analyze=True
        reduction = 1 - results["guarded_on"][2] / results["guarded_off"][2]
        plain_ratio = results["plain_on"][2] / results["plain_off"][2]
        print(f"\nsanitized factoring: guarded clauses "
              f"{results['guarded_off'][2]} -> {results['guarded_on'][2]} "
              f"({reduction:.1%} fewer, "
              f"{results['guarded_on'][3]} rewrites), "
              f"plain clause ratio {plain_ratio:.3f}")
        _record_row("sanitized_factoring", results["guarded_on"][0],
                    queries=len(FACTOR_TARGETS),
                    baseline_seconds=results["guarded_off"][0],
                    clauses_guarded_plain=results["guarded_off"][2],
                    clauses_guarded_sanitized=results["guarded_on"][2],
                    clause_reduction=reduction,
                    sanitize_rewrites=results["guarded_on"][3],
                    clauses_plain_family_off=results["plain_off"][2],
                    clauses_plain_family_on=results["plain_on"][2],
                    plain_clause_ratio=plain_ratio)
        for key, (_, sats, _, _) in results.items():
            assert sats == len(FACTOR_TARGETS), key
        return reduction, plain_ratio

    reduction, plain_ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    # The acceptance bar: the sanitizer must actually shrink the guarded
    # family and must not bloat the family it cannot improve.
    assert reduction >= 0.05
    assert plain_ratio <= 1.02


def test_cegis_synthesis_loop(benchmark):
    """A multi-iteration CEGIS run on persistent solvers.

    Synthesizes the hole constants of a masked-mux identity over 16-bit
    words; every counterexample pins down a few bits, so the loop runs
    ~14 guess/check rounds. Prints the per-query solver row — the
    encode-cache hits show iterations reusing earlier encodings instead
    of re-bit-blasting them.
    """
    from repro.queries import synthesize
    from repro.sym import fresh_int, ops
    from repro.vm import assert_, builtins as B

    def run():
        started = time.perf_counter()
        x = fresh_int("cegis_x", width=16)
        h1 = fresh_int("cegis_h1", width=16)
        h2 = fresh_int("cegis_h2", width=16)
        outcome = synthesize([x], lambda: assert_(B.equal(
            ops.bitor(ops.bitand(x, h1), ops.bitand(ops.bitnot(x), h2)),
            ops.bitor(ops.bitand(x, 0xBEEF),
                      ops.bitand(ops.bitnot(x), 0x1234)))))
        assert outcome.status == "sat"
        assert outcome.model.evaluate(h1) & 0xFFFF == 0xBEEF
        print(f"\ncegis synthesis: {outcome.message}")
        print(f"solver row: {outcome.stats.solver_row()}")
        row = dict(outcome.stats.solver_row())
        row["svm_seconds"] = outcome.stats.svm_seconds
        row["solver_seconds"] = outcome.stats.solver_seconds
        _record_row("cegis_synthesis_loop", time.perf_counter() - started,
                    **row)
        return outcome.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.solver_checks > 2
    assert stats.encode_cache_hits > 0
