"""Figure 5/6: the revPos example across all three encoding strategies.

The paper introduces its design space with revPos (Fig. 5a): symbolic
execution explores O(2^n) paths (Fig. 5b), bounded model checking merges
everything into opaque formulas (Fig. 5c), and the SVM's type-driven
merging produces the compact union DAG of Fig. 6 — n+1 merged lists after
filtering an n-element symbolic list.

This benchmark measures all three on the same program and prints the
comparison series: paths explored (symex) vs. union cardinalities
(SVM/BMC-style), plus the solve-query outcome of each.
"""

import pytest

from repro.baselines import SymbolicExecutor, bmc_solve, run_with_logical_merging
from repro.queries import solve
from repro.sym import fresh_int, ops, set_default_int_width
from repro.sym.values import Union
from repro.vm import assert_, builtins as B
from repro.vm.context import VM, current

SIZES = (2, 4, 6)


def rev_pos(xs):
    ps = ()
    for x in xs:
        ps = current().branch(ops.gt(x, 0),
                              lambda x=x, ps=ps: B.cons(x, ps),
                              lambda ps=ps: ps)
    return ps


def make_program(size):
    def program():
        xs = tuple(fresh_int("x") for _ in range(size))
        ps = rev_pos(xs)
        assert_(B.equal(B.length(ps), len(xs)))
        return ps
    return program


def test_fig5_svm_vs_baselines(benchmark):
    set_default_int_width(8)

    def compare():
        rows = []
        for size in SIZES:
            program = make_program(size)
            # SVM (type-driven merging).
            outcome = solve(program)
            svm_members = outcome.stats.max_union_cardinality
            # Classic symbolic execution: enumerate the full tree (a
            # debugging/synthesis query needs *all* paths, §3.2).
            executor = SymbolicExecutor()
            paths = sum(1 for _ in executor.explore(program))
            # BMC-style merging: final union cardinality.
            vm, _, _ = run_with_logical_merging(program)
            rows.append((size, svm_members, paths,
                         vm.stats.max_union_cardinality, outcome.status))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nFigure 5/6 comparison (n = input length):")
    print("  n   SVM max-union   symex paths   BMC-style max-union")
    for size, svm_m, paths, bmc_m, status in rows:
        print(f"  {size:<3} {svm_m:<15} {paths:<13} {bmc_m}")
        # Fig. 6's claim: the SVM union stays linear (n+1 lists)…
        assert svm_m <= size + 1
        # …while path enumeration is exponential.
        assert paths >= 2 ** (size - 1)
        # BMC-style merging loses the structural collapse.
        assert bmc_m >= svm_m
        assert status == "sat"


def test_fig6_union_structure(benchmark):
    """The exact Fig. 6 state: ps merges into lists of length 0..n."""
    set_default_int_width(8)

    def shape():
        with VM():
            xs = tuple(fresh_int("x") for _ in range(2))
            return rev_pos(xs)

    ps = benchmark.pedantic(shape, rounds=1, iterations=1)
    assert isinstance(ps, Union)
    lengths = sorted(len(v) for v in ps.values())
    print("\nFigure 6 union of ps:", lengths, "=> {[b2,(x1,x0)] [b5,(i0)] [b6,()]}")
    assert lengths == [0, 1, 2]
